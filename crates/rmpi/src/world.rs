//! Ranks, point-to-point messaging, and collectives.

use crate::mailbox::Mailbox;
use crate::message::{f64s_to_bytes, u64s_to_bytes, Envelope, MpiError, ANY_SOURCE};
use crate::session::{recv_site, waitany_site, MpiSession};
use reomp_core::{AccessKind, ThreadCtx};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Reserved tag base for collectives (user tags must stay below this).
pub const COLLECTIVE_TAG_BASE: u32 = 1 << 30;
const TAG_BCAST: u32 = COLLECTIVE_TAG_BASE;
const TAG_REDUCE: u32 = COLLECTIVE_TAG_BASE + 1;
const TAG_GATHER: u32 = COLLECTIVE_TAG_BASE + 2;
const TAG_HALO: u32 = COLLECTIVE_TAG_BASE + 3;

/// The communicator: spawns one OS thread per rank and runs `f` on each.
#[derive(Debug)]
pub struct World;

impl World {
    /// Run an `nranks`-rank program. Returns each rank's output, indexed by
    /// rank. Panics in a rank propagate after all ranks are joined.
    pub fn run<R, F>(nranks: u32, session: Arc<MpiSession>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        assert!(nranks > 0, "need at least one rank");
        assert_eq!(
            session.nranks(),
            nranks,
            "session rank count must match the world"
        );
        let mailboxes: Arc<Vec<Mailbox>> = Arc::new((0..nranks).map(|_| Mailbox::new()).collect());
        let barrier = Arc::new(Barrier::new(nranks as usize));
        let stats = Arc::new(WorldStats::default());

        let mut results: Vec<Option<R>> = (0..nranks).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..nranks)
                .map(|rank| {
                    let mailboxes = Arc::clone(&mailboxes);
                    let barrier = Arc::clone(&barrier);
                    let session = Arc::clone(&session);
                    let stats = Arc::clone(&stats);
                    let f = &f;
                    s.spawn(move || {
                        let mut ctx = RankCtx {
                            rank,
                            nranks,
                            mailboxes,
                            barrier,
                            session,
                            stats,
                            recv_timeout: Duration::from_secs(30),
                        };
                        f(&mut ctx)
                    })
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(r) => results[rank] = Some(r),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("rank finished"))
            .collect()
    }
}

/// Aggregate messaging statistics for a world run.
#[derive(Debug, Default)]
pub struct WorldStats {
    /// Messages sent.
    pub sends: AtomicU64,
    /// Messages received.
    pub recvs: AtomicU64,
    /// Wildcard (`ANY_SOURCE`) receives.
    pub wildcard_recvs: AtomicU64,
    /// Payload bytes moved.
    pub bytes: AtomicU64,
}

/// A pending non-blocking operation (`MPI_Request`).
#[derive(Debug)]
pub struct Request {
    kind: ReqKind,
    /// Construction-time `(peer, tag)` key: stable across record and
    /// replay regardless of completion state, so `waitany` can derive a
    /// deterministic site (and thus a receive-order domain) from the
    /// request set.
    key: (u32, u32),
}

#[derive(Debug)]
enum ReqKind {
    /// Buffered send: complete on creation.
    SendDone,
    /// Pending receive (concrete source).
    Recv {
        src: u32,
        tag: u32,
        done: Option<Envelope>,
    },
    /// Completed.
    Done,
}

impl Request {
    /// Whether the request has completed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self.kind, ReqKind::Done)
    }
}

/// One rank's handle: point-to-point operations and collectives.
pub struct RankCtx {
    rank: u32,
    nranks: u32,
    mailboxes: Arc<Vec<Mailbox>>,
    barrier: Arc<Barrier>,
    session: Arc<MpiSession>,
    stats: Arc<WorldStats>,
    recv_timeout: Duration,
}

impl RankCtx {
    /// This rank's ID.
    #[must_use]
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// World size.
    #[must_use]
    pub fn nranks(&self) -> u32 {
        self.nranks
    }

    /// Change the receive timeout (default 30 s).
    pub fn set_recv_timeout(&mut self, t: Duration) {
        self.recv_timeout = t;
    }

    /// Shared statistics.
    #[must_use]
    pub fn stats(&self) -> &WorldStats {
        &self.stats
    }

    /// Send `payload` to `dst` with `tag` (`MPI_Send`; buffered,
    /// non-blocking in this in-process world).
    pub fn send(&self, dst: u32, tag: u32, payload: &[u8]) -> Result<(), MpiError> {
        let mb = self
            .mailboxes
            .get(dst as usize)
            .ok_or(MpiError::InvalidRank(dst))?;
        self.stats.sends.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        mb.push(Envelope {
            src: self.rank,
            tag,
            payload: payload.to_vec(),
        });
        Ok(())
    }

    /// Send a slice of `f64`s.
    pub fn send_f64s(&self, dst: u32, tag: u32, values: &[f64]) -> Result<(), MpiError> {
        self.send(dst, tag, &f64s_to_bytes(values))
    }

    /// Send a slice of `u64`s.
    pub fn send_u64s(&self, dst: u32, tag: u32, values: &[u64]) -> Result<(), MpiError> {
        self.send(dst, tag, &u64s_to_bytes(values))
    }

    /// Blocking receive (`MPI_Recv`). `src`/`tag` may be [`ANY_SOURCE`] /
    /// [`crate::ANY_TAG`]. Wildcard matches are recorded in record mode and
    /// enforced in replay mode — the ReMPI mechanism.
    ///
    /// The optional `gate` is the hybrid `MPI_THREAD_MULTIPLE` hook of
    /// §VI-C: when several runtime threads of one rank receive
    /// concurrently, passing each thread's [`ThreadCtx`] records which
    /// thread got which message.
    ///
    /// Compatibility note: the gate site is the per-`(rank, src, tag)`
    /// [`recv_site`] hash (so receives can spread across gate domains);
    /// before the `(rank × domain)` sharding it was a per-rank constant.
    /// rmpi trace *directories* from before the change load and replay
    /// unchanged, but a **thread** `TraceBundle` whose gated receives
    /// were recorded with the old constant embeds the old site hash and
    /// will report a site divergence here — re-record hybrid thread
    /// traces with the current build.
    pub fn recv(&self, src: u32, tag: u32, gate: Option<&ThreadCtx>) -> Result<Envelope, MpiError> {
        match gate {
            Some(ctx) => {
                // The gate site is the same (requested src, tag) hash the
                // receive-order domain is derived from, so a thread
                // session with a matching plan keeps every receive of one
                // MPI domain in one thread-gate domain (see
                // [`MpiSession::matching_thread_plan`]).
                let site = recv_site(self.rank, src, tag);
                ctx.try_gate(site, AccessKind::MpiOp, || self.recv_ungated(src, tag))
                    .unwrap_or_else(|e| panic!("hybrid replay failed: {e}"))
            }
            None => self.recv_ungated(src, tag),
        }
    }

    fn recv_ungated(&self, src: u32, tag: u32) -> Result<Envelope, MpiError> {
        let mb = &self.mailboxes[self.rank as usize];
        self.stats.recvs.fetch_add(1, Ordering::Relaxed);
        if src == ANY_SOURCE {
            self.stats.wildcard_recvs.fetch_add(1, Ordering::Relaxed);
            // The stream is chosen by the *requested* (src, tag) — known
            // identically in record and replay before any match is made.
            let dom = self.session.domain_of(recv_site(self.rank, src, tag));
            // Replay: force the recorded match.
            if let Some(rec) = self.session.next_recv(self.rank, dom)? {
                return mb.recv(self.rank, rec.src, rec.tag, self.recv_timeout);
            }
            let env = mb.recv(self.rank, src, tag, self.recv_timeout)?;
            self.session.log_recv(self.rank, dom, env.src, env.tag);
            return Ok(env);
        }
        mb.recv(self.rank, src, tag, self.recv_timeout)
    }

    /// Non-blocking probe (`MPI_Iprobe`): whether a matching message is
    /// queued, and its `(src, tag)`.
    #[must_use]
    pub fn iprobe(&self, src: u32, tag: u32) -> Option<(u32, u32)> {
        self.mailboxes[self.rank as usize].probe(src, tag)
    }

    // ------------------------------------------------------------------
    // Non-blocking operations (`MPI_Isend`/`MPI_Irecv`/`MPI_Wait[any]`)
    // ------------------------------------------------------------------

    /// Non-blocking send. This in-process world buffers sends, so the
    /// request completes immediately; it exists so ported code keeps its
    /// request bookkeeping.
    pub fn isend(&self, dst: u32, tag: u32, payload: &[u8]) -> Result<Request, MpiError> {
        self.send(dst, tag, payload)?;
        Ok(Request {
            kind: ReqKind::SendDone,
            key: (dst, tag),
        })
    }

    /// Non-blocking receive from a concrete source (wildcard receives use
    /// the blocking [`RankCtx::recv`], where the ReMPI recorder attaches).
    pub fn irecv(&self, src: u32, tag: u32) -> Result<Request, MpiError> {
        if src == ANY_SOURCE {
            return Err(MpiError::InvalidRank(src));
        }
        Ok(Request {
            kind: ReqKind::Recv {
                src,
                tag,
                done: None,
            },
            key: (src, tag),
        })
    }

    /// Complete one request (`MPI_Wait`): blocks for receives.
    pub fn wait(&self, req: &mut Request) -> Result<Option<Envelope>, MpiError> {
        match &mut req.kind {
            ReqKind::SendDone => {
                req.kind = ReqKind::Done;
                Ok(None)
            }
            ReqKind::Done => Ok(None),
            ReqKind::Recv { src, tag, done } => {
                let env = match done.take() {
                    Some(env) => env,
                    None => self.mailboxes[self.rank as usize].recv(
                        self.rank,
                        *src,
                        *tag,
                        self.recv_timeout,
                    )?,
                };
                req.kind = ReqKind::Done;
                Ok(Some(env))
            }
        }
    }

    /// Test one request without blocking (`MPI_Test`).
    pub fn test(&self, req: &mut Request) -> Option<Envelope> {
        match &mut req.kind {
            ReqKind::SendDone => {
                req.kind = ReqKind::Done;
                None
            }
            ReqKind::Done => None,
            ReqKind::Recv { src, tag, done } => {
                if done.is_none() {
                    *done = self.mailboxes[self.rank as usize].try_recv(*src, *tag);
                }
                let env = done.take();
                if env.is_some() {
                    req.kind = ReqKind::Done;
                }
                env
            }
        }
    }

    /// Complete *some* pending request (`MPI_Waitany`) and return its
    /// index plus the received envelope. **Which** request completes first
    /// is scheduling- and arrival-dependent — the non-determinism the
    /// paper's §VI-C instruments — so the chosen index is recorded in
    /// record mode and enforced in replay mode.
    pub fn waitany(&self, reqs: &mut [Request]) -> Result<(usize, Option<Envelope>), MpiError> {
        if reqs.is_empty() {
            return Err(MpiError::InvalidRank(u32::MAX));
        }
        // The completion-order stream is chosen by the request set's
        // construction-time keys — identical in record and replay.
        let site = waitany_site(self.rank, reqs.iter().map(|r| r.key));
        let dom = self.session.domain_of(site);
        // Replay: the recorded index must complete next.
        if let Some(idx) = self.session.next_waitany(self.rank, dom)? {
            let idx = idx as usize;
            let env = self.wait(&mut reqs[idx])?;
            return Ok((idx, env));
        }
        // Record/passthrough: poll until any request completes.
        let deadline = std::time::Instant::now() + self.recv_timeout;
        loop {
            for (i, req) in reqs.iter_mut().enumerate() {
                if matches!(req.kind, ReqKind::Done) {
                    continue;
                }
                if matches!(req.kind, ReqKind::SendDone) {
                    req.kind = ReqKind::Done;
                    self.session.log_waitany(self.rank, dom, i as u32);
                    return Ok((i, None));
                }
                if let Some(env) = self.test(req) {
                    self.session.log_waitany(self.rank, dom, i as u32);
                    return Ok((i, Some(env)));
                }
            }
            if std::time::Instant::now() > deadline {
                return Err(MpiError::RecvTimeout {
                    rank: self.rank,
                    src: ANY_SOURCE,
                    tag: 0,
                });
            }
            std::thread::yield_now();
        }
    }

    // ------------------------------------------------------------------
    // Collectives (built on p2p, like small-cluster MPI implementations)
    // ------------------------------------------------------------------

    /// All-ranks barrier.
    pub fn barrier(&self) {
        self.barrier_with(None);
    }

    /// All-ranks barrier that also notes a cross-domain synchronization
    /// point in the calling thread's **thread** session
    /// ([`ThreadCtx::sync_point`]): in a multi-domain hybrid record run
    /// the rank barrier orders every gate domain's pre-barrier accesses
    /// before this thread's next gated access, and the stamped
    /// `CrossDomainEdge` makes replay restore that order — the same
    /// mechanism (and the same acyclicity argument) as the thread gate's
    /// barrier shim. A no-op wrapper around [`RankCtx::barrier`] for
    /// single-domain sessions and `None`.
    pub fn barrier_with(&self, gate: Option<&ThreadCtx>) {
        self.barrier.wait();
        if let Some(ctx) = gate {
            ctx.sync_point();
        }
    }

    /// Broadcast `data` from `root` to every rank (overwrites `data` on
    /// non-roots).
    pub fn bcast_f64s(&self, root: u32, data: &mut Vec<f64>) -> Result<(), MpiError> {
        if self.rank == root {
            for dst in 0..self.nranks {
                if dst != root {
                    self.send_f64s(dst, TAG_BCAST, data)?;
                }
            }
        } else {
            *data = self.recv(root, TAG_BCAST, None)?.as_f64s();
        }
        Ok(())
    }

    /// Element-wise sum-reduce to `root`. The root combines contributions
    /// in **arrival order** (wildcard receives!), so floating-point results
    /// are run-to-run non-deterministic unless recorded — the §II-A
    /// numerical-reproducibility scenario.
    pub fn reduce_sum_f64(&self, root: u32, local: &[f64]) -> Result<Option<Vec<f64>>, MpiError> {
        if self.rank != root {
            self.send_f64s(root, TAG_REDUCE, local)?;
            return Ok(None);
        }
        let mut acc = local.to_vec();
        for _ in 0..self.nranks - 1 {
            let contribution = self.recv(ANY_SOURCE, TAG_REDUCE, None)?.as_f64s();
            for (a, c) in acc.iter_mut().zip(&contribution) {
                *a += c;
            }
        }
        Ok(Some(acc))
    }

    /// Sum-allreduce: reduce to rank 0, then broadcast.
    pub fn allreduce_sum_f64(&self, local: &[f64]) -> Result<Vec<f64>, MpiError> {
        let reduced = self.reduce_sum_f64(0, local)?;
        let mut data = reduced.unwrap_or_else(|| vec![0.0; local.len()]);
        self.bcast_f64s(0, &mut data)?;
        Ok(data)
    }

    /// Gather one `u64` per rank to `root`, ordered by rank (deterministic
    /// fixed-source receives).
    pub fn gather_u64(&self, root: u32, value: u64) -> Result<Option<Vec<u64>>, MpiError> {
        if self.rank != root {
            self.send_u64s(root, TAG_GATHER, &[value])?;
            return Ok(None);
        }
        let mut out = Vec::with_capacity(self.nranks as usize);
        for src in 0..self.nranks {
            if src == root {
                out.push(value);
            } else {
                out.push(self.recv(src, TAG_GATHER, None)?.as_u64s()[0]);
            }
        }
        Ok(Some(out))
    }

    /// Exchange boundary slices with ring neighbours (the halo-exchange
    /// pattern of stencil codes). Returns `(from_left, from_right)`.
    pub fn halo_exchange_f64s(
        &self,
        to_left: &[f64],
        to_right: &[f64],
    ) -> Result<(Vec<f64>, Vec<f64>), MpiError> {
        let left = (self.rank + self.nranks - 1) % self.nranks;
        let right = (self.rank + 1) % self.nranks;
        self.send_f64s(left, TAG_HALO, to_left)?;
        self.send_f64s(right, TAG_HALO + 1, to_right)?;
        let from_right = self.recv(right, TAG_HALO, None)?.as_f64s();
        let from_left = self.recv(left, TAG_HALO + 1, None)?.as_f64s();
        Ok((from_left, from_right))
    }
}

impl std::fmt::Debug for RankCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankCtx")
            .field("rank", &self.rank)
            .field("nranks", &self.nranks)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn passthrough(n: u32) -> Arc<MpiSession> {
        Arc::new(MpiSession::passthrough(n))
    }

    #[test]
    fn ping_pong() {
        let out = World::run(2, passthrough(2), |rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, b"ping").unwrap();
                rank.recv(1, 2, None).unwrap().payload
            } else {
                let m = rank.recv(0, 1, None).unwrap();
                assert_eq!(m.payload, b"ping");
                rank.send(0, 2, b"pong").unwrap();
                b"pong".to_vec()
            }
        });
        assert_eq!(out[0], b"pong");
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let flag = AtomicU64::new(0);
        World::run(4, passthrough(4), |rank| {
            flag.fetch_add(1, Ordering::SeqCst);
            rank.barrier();
            assert_eq!(flag.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn bcast_distributes_roots_data() {
        let out = World::run(3, passthrough(3), |rank| {
            let mut data = if rank.rank() == 1 {
                vec![1.0, 2.0, 3.0]
            } else {
                vec![]
            };
            rank.bcast_f64s(1, &mut data).unwrap();
            data
        });
        for d in out {
            assert_eq!(d, vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn reduce_sums_across_ranks() {
        let out = World::run(4, passthrough(4), |rank| {
            let local = vec![f64::from(rank.rank()); 2];
            rank.reduce_sum_f64(0, &local).unwrap()
        });
        assert_eq!(out[0], Some(vec![6.0, 6.0]));
        assert_eq!(out[1], None);
    }

    #[test]
    fn allreduce_gives_everyone_the_sum() {
        let out = World::run(3, passthrough(3), |rank| {
            rank.allreduce_sum_f64(&[1.0, f64::from(rank.rank())])
                .unwrap()
        });
        for d in out {
            assert_eq!(d, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        let out = World::run(4, passthrough(4), |rank| {
            rank.gather_u64(2, u64::from(rank.rank()) * 10).unwrap()
        });
        assert_eq!(out[2], Some(vec![0, 10, 20, 30]));
    }

    #[test]
    fn halo_exchange_ring() {
        let out = World::run(3, passthrough(3), |rank| {
            let me = f64::from(rank.rank());
            rank.halo_exchange_f64s(&[me], &[me + 100.0]).unwrap()
        });
        // from_left is left neighbour's to_right; from_right is right's to_left.
        assert_eq!(out[0], (vec![102.0], vec![1.0]));
        assert_eq!(out[1], (vec![100.0], vec![2.0]));
        assert_eq!(out[2], (vec![101.0], vec![0.0]));
    }

    #[test]
    fn wildcard_recv_is_recorded_and_replayed() {
        let run = |session: Arc<MpiSession>| {
            World::run(4, session, |rank| {
                if rank.rank() == 0 {
                    (0..3)
                        .map(|_| rank.recv(ANY_SOURCE, 5, None).unwrap().src)
                        .collect::<Vec<_>>()
                } else {
                    // Stagger sends a little to vary arrival order.
                    std::thread::sleep(Duration::from_micros(u64::from(rank.rank()) * 50));
                    rank.send(0, 5, &[rank.rank() as u8]).unwrap();
                    vec![]
                }
            })
        };
        let session = Arc::new(MpiSession::record(4));
        let recorded = run(Arc::clone(&session))[0].clone();
        let trace = session.finish();
        assert_eq!(trace.rank_events(0), 3);

        let session = Arc::new(MpiSession::replay(trace));
        let replayed = run(Arc::clone(&session))[0].clone();
        assert_eq!(replayed, recorded);
        assert_eq!(session.fully_consumed(), Some(true));
    }

    #[test]
    fn reduce_replays_bitwise_identical_fp_sum() {
        // Order-sensitive values: only an order-faithful replay reproduces
        // the root's floating-point bits.
        let run = |session: Arc<MpiSession>| {
            World::run(3, session, |rank| {
                let local = match rank.rank() {
                    0 => vec![1e16],
                    1 => vec![1.0],
                    _ => vec![-1e16],
                };
                rank.reduce_sum_f64(0, &local)
                    .unwrap()
                    .map(|v| v[0].to_bits())
            })
        };
        let session = Arc::new(MpiSession::record(3));
        let recorded = run(Arc::clone(&session))[0];
        let trace = session.finish();

        let session = Arc::new(MpiSession::replay(trace));
        let replayed = run(Arc::clone(&session))[0];
        assert_eq!(recorded, replayed);
    }

    #[test]
    fn replay_exhaustion_is_an_error() {
        let trace = crate::session::MpiTrace::single(vec![vec![]], vec![vec![]]);
        let session = Arc::new(MpiSession::replay(trace));
        World::run(1, session, |rank| {
            // One wildcard recv but the trace is empty.
            match rank.recv(ANY_SOURCE, 1, None) {
                Err(MpiError::ReplayExhausted {
                    rank: 0, domain: 0, ..
                }) => {}
                other => panic!("expected exhaustion, got {other:?}"),
            }
        });
    }

    #[test]
    fn multi_domain_session_shards_recv_streams_by_tag() {
        // Two tags whose receive sites land in different domains: the
        // recorded streams stay apart, replay re-routes identically, and
        // both streams are fully consumed.
        let cfg = crate::session::MpiSessionConfig::with_domains(4);
        let s0 = recv_site(0, ANY_SOURCE, 5);
        let s1 = recv_site(0, ANY_SOURCE, 6);
        let run = |session: Arc<MpiSession>| {
            World::run(3, session, |rank| {
                if rank.rank() == 0 {
                    let a = rank.recv(ANY_SOURCE, 5, None).unwrap().src;
                    let b = rank.recv(ANY_SOURCE, 6, None).unwrap().src;
                    let c = rank.recv(ANY_SOURCE, 5, None).unwrap().src;
                    vec![a, b, c]
                } else {
                    std::thread::sleep(Duration::from_micros(u64::from(rank.rank()) * 40));
                    rank.send(0, 5, &[1]).unwrap();
                    rank.send(0, 6, &[2]).unwrap();
                    vec![]
                }
            })
        };
        let session = Arc::new(MpiSession::record_with(3, cfg));
        let (da, db) = (session.domain_of(s0), session.domain_of(s1));
        let recorded = run(Arc::clone(&session))[0].clone();
        let trace = session.finish();
        assert_eq!(trace.domains, 4);
        assert_eq!(trace.recv_stream(0, da).len(), 2, "tag-5 stream");
        if db != da {
            assert_eq!(trace.recv_stream(0, db).len(), 1, "tag-6 stream");
        }
        assert_eq!(trace.rank_events(0), 3);
        // (One tag-6 message stays in the mailbox — mailboxes are
        // per-World, so the replay run starts fresh.)
        let session = Arc::new(MpiSession::replay(trace));
        let replayed = run(Arc::clone(&session))[0].clone();
        assert_eq!(replayed, recorded);
        assert_eq!(session.fully_consumed(), Some(true));
        assert!(session.divergences().is_empty());
    }
}

#[cfg(test)]
mod nonblocking_tests {
    use super::*;
    use crate::session::MpiSession;

    fn passthrough(n: u32) -> Arc<MpiSession> {
        Arc::new(MpiSession::passthrough(n))
    }

    #[test]
    fn isend_completes_immediately_and_wait_returns_nothing() {
        World::run(2, passthrough(2), |rank| {
            if rank.rank() == 0 {
                let mut req = rank.isend(1, 1, b"x").unwrap();
                assert!(rank.wait(&mut req).unwrap().is_none());
                assert!(req.is_done());
            } else {
                assert_eq!(rank.recv(0, 1, None).unwrap().payload, b"x");
            }
        });
    }

    #[test]
    fn irecv_wait_receives() {
        World::run(2, passthrough(2), |rank| {
            if rank.rank() == 0 {
                let mut req = rank.irecv(1, 9).unwrap();
                let env = rank.wait(&mut req).unwrap().unwrap();
                assert_eq!(env.payload, b"hello");
                // Waiting again on a done request is a no-op.
                assert!(rank.wait(&mut req).unwrap().is_none());
            } else {
                rank.send(0, 9, b"hello").unwrap();
            }
        });
    }

    #[test]
    fn irecv_rejects_wildcard_source() {
        World::run(1, passthrough(1), |rank| {
            assert!(rank.irecv(ANY_SOURCE, 0).is_err());
        });
    }

    #[test]
    fn test_is_nonblocking() {
        World::run(2, passthrough(2), |rank| {
            if rank.rank() == 0 {
                let mut req = rank.irecv(1, 2).unwrap();
                // Nothing sent yet: test must not block or complete.
                let mut polls = 0;
                loop {
                    match rank.test(&mut req) {
                        Some(env) => {
                            assert_eq!(env.payload, vec![7]);
                            break;
                        }
                        None => {
                            polls += 1;
                            assert!(!req.is_done());
                            if polls == 3 {
                                // Tell the sender we are ready.
                                rank.send(1, 1, b"go").unwrap();
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            } else {
                let _ = rank.recv(0, 1, None).unwrap();
                rank.send(0, 2, &[7]).unwrap();
            }
        });
    }

    #[test]
    fn waitany_completion_order_is_recorded_and_replayed() {
        // Rank 0 posts two receives from ranks 1 and 2 and drains them with
        // waitany; the completion order depends on arrival and is replayed.
        let run = |session: Arc<MpiSession>| {
            World::run(3, session, |rank| {
                if rank.rank() == 0 {
                    let mut reqs = vec![rank.irecv(1, 4).unwrap(), rank.irecv(2, 4).unwrap()];
                    let (first, env1) = rank.waitany(&mut reqs).unwrap();
                    let (second, env2) = rank.waitany(&mut reqs).unwrap();
                    assert_ne!(first, second);
                    vec![
                        (first as u32, env1.unwrap().src),
                        (second as u32, env2.unwrap().src),
                    ]
                } else {
                    std::thread::sleep(Duration::from_micros(u64::from(rank.rank()) * 37));
                    rank.send(0, 4, &[rank.rank() as u8]).unwrap();
                    vec![]
                }
            })
        };
        let session = Arc::new(MpiSession::record(3));
        let recorded = run(Arc::clone(&session))[0].clone();
        let trace = session.finish();
        assert_eq!(trace.total_waitany(), 2);

        for _ in 0..2 {
            let session = Arc::new(MpiSession::replay(trace.clone()));
            let replayed = run(session)[0].clone();
            assert_eq!(replayed, recorded);
        }
    }

    #[test]
    fn waitany_on_empty_set_errors() {
        World::run(1, passthrough(1), |rank| {
            let mut reqs: Vec<Request> = vec![];
            assert!(rank.waitany(&mut reqs).is_err());
        });
    }
}
