//! Static verification of [`MpiTrace`]s — the rmpi counterpart of
//! [`reomp_core::verify`].
//!
//! The same tier structure applies:
//!
//! * **Structural** — [`MpiTrace::validate`]'s shape checks: stream-count
//!   arity against `domains`, waitany/recv pairing, plan-domain
//!   agreement, checkpoint arity.
//! * **Ordering** — per-`(rank × domain)` stream well-formedness: every
//!   matched source must name an existing rank (a receive from a
//!   nonexistent rank can never be replayed), and a flight-recorder
//!   window must actually bound its streams (no stream may retain more
//!   events than the checkpointed window).
//! * **Plan** — hybrid thread-plan agreement ([`verify_hybrid`]): two
//!   receive sites the MPI partition co-locates in one stream are
//!   replay-ordered by the *thread* gate in hybrid runs, so a thread
//!   plan that splits them breaks the hybrid soundness contract of
//!   [`MpiSession::matching_thread_plan`](crate::session::MpiSession::matching_thread_plan).
//!
//! A clean trace earns the same [`Certificate`] type the thread verifier
//! mints, digesting every stream, the plan, and the checkpoint with the
//! identical FNV function — `reomp-inspect --mpi --verify` prints it and
//! CI diffs it.

use crate::session::MpiTrace;
use reomp_core::plan::DomainPlan;
use reomp_core::verify::{
    Certificate, Diagnostic, Fnv, Severity, Tier, VerifyReport, MAX_DIAGS_PER_CHECK,
};

/// The static MPI-trace verifier. Stateless, like
/// [`Verifier`](reomp_core::Verifier).
#[derive(Debug, Default)]
pub struct MpiVerifier;

impl MpiVerifier {
    /// A verifier with default settings.
    #[must_use]
    pub fn new() -> MpiVerifier {
        MpiVerifier
    }

    /// Run every tier over `trace` and produce the report. Never panics;
    /// structural corruption short-circuits the deeper tiers.
    #[must_use]
    pub fn verify(&self, trace: &MpiTrace) -> VerifyReport {
        let mut report = VerifyReport {
            diagnostics: Vec::new(),
            certificate: None,
            checks: 0,
        };

        report.checks += 1;
        if let Err(e) = trace.validate() {
            report.diagnostics.push(Diagnostic {
                tier: Tier::Structural,
                severity: Severity::Error,
                location: "trace".into(),
                message: e.to_string(),
            });
            return report;
        }

        ordering(trace, &mut report);

        // The trace's own matching thread plan must satisfy the hybrid
        // contract (a stamped plan that disagrees with itself means the
        // plan section was tampered with).
        report.checks += 1;
        report.absorb(verify_hybrid(trace, &trace.matching_thread_plan()));

        if report.is_clean() {
            report.certificate = Some(certificate(trace));
        }
        report
    }
}

/// The Ordering tier: would replay actually drive these streams?
fn ordering(trace: &MpiTrace, out: &mut VerifyReport) {
    let nranks = trace.nranks();
    let domains = trace.domains.max(1);

    // Matched sources must name existing ranks.
    out.checks += 1;
    let mut n = 0usize;
    for (s, stream) in trace.recv_streams.iter().enumerate() {
        let (rank, dom) = (s as u32 / domains, s as u32 % domains);
        if let Some(pos) = stream.iter().position(|e| e.src >= nranks) {
            push_capped(
                out,
                &mut n,
                Diagnostic {
                    tier: Tier::Ordering,
                    severity: Severity::Error,
                    location: format!("rank {rank} domain {dom} event {pos}"),
                    message: format!(
                        "matched source {} is not a rank of this {nranks}-rank world — \
                         replay would wait forever for its message",
                        stream[pos].src
                    ),
                },
            );
        }
    }

    // A flight window must bound what it claims to bound.
    out.checks += 1;
    if let Some(cp) = &trace.checkpoint {
        let mut n = 0usize;
        let window = u64::from(cp.window);
        for (s, (recv, wa)) in trace
            .recv_streams
            .iter()
            .zip(&trace.waitany_streams)
            .enumerate()
        {
            let (rank, dom) = (s as u32 / domains, s as u32 % domains);
            for (what, len) in [("receive", recv.len() as u64), ("waitany", wa.len() as u64)] {
                if len > window {
                    push_capped(
                        out,
                        &mut n,
                        Diagnostic {
                            tier: Tier::Ordering,
                            severity: Severity::Error,
                            location: format!("rank {rank} domain {dom}"),
                            message: format!(
                                "{what} stream retains {len} events but the flight \
                                 window is {window}"
                            ),
                        },
                    );
                }
            }
        }
    }
}

/// Check the hybrid soundness contract between this MPI trace's receive
/// partition and a thread-session [`DomainPlan`]: every pair of receive
/// sites the MPI plan pins to one MPI domain (hence one replay stream)
/// must share a thread-gate domain, because the per-stream receive order
/// is only reproducible when the thread gate serializes those receives.
/// Returns one Plan-tier diagnostic per violating site pair (capped).
#[must_use]
pub fn verify_hybrid(trace: &MpiTrace, thread_plan: &DomainPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(plan) = &trace.plan else {
        // Hashed-fallback partitions carry no pinned sites to cross-check.
        return out;
    };
    let sites = plan.sorted_assignments();
    for (i, &(a, dom_a)) in sites.iter().enumerate() {
        for &(b, dom_b) in &sites[i + 1..] {
            if dom_a != dom_b {
                continue;
            }
            let ta = thread_plan.domain_of(reomp_core::SiteId(a));
            let tb = thread_plan.domain_of(reomp_core::SiteId(b));
            if ta != tb {
                if out.len() == MAX_DIAGS_PER_CHECK {
                    out.push(Diagnostic {
                        tier: Tier::Plan,
                        severity: Severity::Error,
                        location: "plan".into(),
                        message: "further hybrid plan disagreements suppressed".into(),
                    });
                    return out;
                }
                out.push(Diagnostic {
                    tier: Tier::Plan,
                    severity: Severity::Error,
                    location: format!("mpi domain {dom_a}"),
                    message: format!(
                        "receive sites {a:#x} and {b:#x} share an MPI stream but the \
                         thread plan splits them across domains {ta} and {tb} — their \
                         per-stream receive order is not thread-gate-ordered"
                    ),
                });
            }
        }
    }
    out
}

fn push_capped(out: &mut VerifyReport, count: &mut usize, diag: Diagnostic) {
    *count += 1;
    match (*count).cmp(&(MAX_DIAGS_PER_CHECK + 1)) {
        std::cmp::Ordering::Less => out.diagnostics.push(diag),
        std::cmp::Ordering::Equal => out.diagnostics.push(Diagnostic {
            message: "further findings of this kind suppressed".into(),
            ..diag
        }),
        std::cmp::Ordering::Greater => {}
    }
}

/// Deterministic digest over the trace: header, every stream, the plan's
/// sorted assignments, and the checkpoint.
fn certificate(trace: &MpiTrace) -> Certificate {
    let mut h = Fnv::new();
    h.u64(u64::from(trace.domains));
    h.u64(trace.recv_streams.len() as u64);
    for stream in &trace.recv_streams {
        h.u64(stream.len() as u64);
        for e in stream {
            h.u64(u64::from(e.src));
            h.u64(u64::from(e.tag));
        }
    }
    for stream in &trace.waitany_streams {
        h.u64(stream.len() as u64);
        for &idx in stream {
            h.u64(u64::from(idx));
        }
    }
    match &trace.plan {
        Some(plan) => {
            h.u8(1);
            h.u64(u64::from(plan.domains()));
            for (site, dom) in plan.sorted_assignments() {
                h.u64(site);
                h.u64(u64::from(dom));
            }
        }
        None => h.u8(0),
    }
    match &trace.checkpoint {
        Some(cp) => {
            h.u8(1);
            h.u8(cp.trigger.code());
            h.u64(u64::from(cp.window));
            for &b in cp.recv_bases.iter().chain(&cp.waitany_bases) {
                h.u64(b);
            }
        }
        None => h.u8(0),
    }
    Certificate {
        digest: h.finish(),
        detail: format!(
            "mpi ranks={} domains={} events={} waitany={}{}",
            trace.nranks(),
            trace.domains,
            trace.total_events(),
            trace.total_waitany(),
            if trace.checkpoint.is_some() {
                " windowed"
            } else {
                ""
            }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{MpiCheckpoint, RecvEvent};
    use reomp_core::trace::DumpTrigger;
    use reomp_core::SiteId;

    fn trace_2x2() -> MpiTrace {
        MpiTrace {
            domains: 2,
            plan: None,
            recv_streams: vec![
                vec![RecvEvent { src: 1, tag: 0 }],
                vec![RecvEvent { src: 1, tag: 1 }],
                vec![RecvEvent { src: 0, tag: 0 }],
                vec![],
            ],
            waitany_streams: vec![vec![0], vec![], vec![], vec![]],
            checkpoint: None,
        }
    }

    #[test]
    fn clean_trace_gets_a_stable_certificate() {
        let v = MpiVerifier::new();
        let a = v.verify(&trace_2x2());
        let b = v.verify(&trace_2x2());
        assert!(a.is_clean(), "{a}");
        assert_eq!(a.certificate, b.certificate);
        let mut tweaked = trace_2x2();
        tweaked.recv_streams[0][0].tag = 9;
        assert_ne!(v.verify(&tweaked).certificate, a.certificate);
    }

    #[test]
    fn structural_corruption_is_flagged() {
        let mut t = trace_2x2();
        t.waitany_streams.pop();
        let report = MpiVerifier::new().verify(&t);
        assert_eq!(report.worst_tier(), Some(Tier::Structural), "{report}");
    }

    #[test]
    fn out_of_world_source_is_an_ordering_error() {
        let mut t = trace_2x2();
        t.recv_streams[0][0].src = 7;
        let report = MpiVerifier::new().verify(&t);
        assert_eq!(report.worst_tier(), Some(Tier::Ordering), "{report}");
    }

    #[test]
    fn overfull_flight_window_is_an_ordering_error() {
        let mut t = trace_2x2();
        t.recv_streams[2] = vec![RecvEvent { src: 0, tag: 0 }; 3];
        t.checkpoint = Some(MpiCheckpoint {
            window: 2,
            trigger: DumpTrigger::Manual,
            recv_bases: vec![0; 4],
            waitany_bases: vec![0; 4],
        });
        let report = MpiVerifier::new().verify(&t);
        assert_eq!(report.worst_tier(), Some(Tier::Ordering), "{report}");
    }

    #[test]
    fn hybrid_split_of_colocated_sites_is_a_plan_error() {
        let mut plan = DomainPlan::new(2);
        plan.set(SiteId(10), 0);
        plan.set(SiteId(11), 0); // co-located with site 10
        let mut t = trace_2x2();
        t.plan = Some(plan);
        // The matching thread plan (the plan itself) agrees — clean.
        let report = MpiVerifier::new().verify(&t);
        assert!(report.is_clean(), "{report}");

        // A thread plan splitting the co-located pair violates the
        // contract.
        let mut bad = DomainPlan::new(2);
        bad.set(SiteId(10), 0);
        bad.set(SiteId(11), 1);
        let diags = verify_hybrid(&t, &bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].tier, Tier::Plan);
    }
}
