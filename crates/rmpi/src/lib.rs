//! # rmpi — message-passing substrate with ReMPI-style record-and-replay
//!
//! The paper composes ReOMP with **ReMPI** (Sato et al., SC'15) to replay
//! hybrid MPI+OpenMP applications (§VI-C). Neither MPI nor ReMPI exists in
//! this workspace, so this crate provides both halves:
//!
//! * an in-process message-passing runtime — [`World`] spawns one OS
//!   thread per *rank*, each with a tagged [`mailbox`]; point-to-point
//!   sends, wildcard (`ANY_SOURCE`) receives, and collectives built on
//!   p2p. Wildcard receives and arrival-order reductions are genuinely
//!   non-deterministic, exactly the message races ReMPI exists to tame;
//! * a receive-order recorder — [`MpiSession`] logs, per **(rank ×
//!   domain)** stream (classic ReMPI keeps one per-process record file;
//!   [`MpiSessionConfig::domains`] shards it across receive-site domains
//!   the way the thread gate's domains shard the order-recording gate),
//!   which source each wildcard receive matched, and enforces the same
//!   matching during replay. Trace encoding includes a delta/RLE
//!   compressor in the spirit of ReMPI's clock-delta compression.
//!
//! For `MPI_THREAD_MULTIPLE` hybrid replay, receive-side calls accept an
//! optional [`reomp_core::ThreadCtx`] and wrap themselves in a
//! `gate(MpiOp)` — the §VI-C recipe of instrumenting `gate_in`/`gate_out`
//! around receive/wait/test/probe.
//!
//! ```
//! use rmpi::{World, MpiSession, ANY_SOURCE};
//! use std::sync::Arc;
//!
//! // Record which source a wildcard receive matches.
//! let session = Arc::new(MpiSession::record(3));
//! let outputs = World::run(3, session.clone(), |rank| {
//!     if rank.rank() == 0 {
//!         let a = rank.recv(ANY_SOURCE, 7, None).unwrap();
//!         let b = rank.recv(ANY_SOURCE, 7, None).unwrap();
//!         vec![a.src, b.src]
//!     } else {
//!         rank.send(0, 7, &[rank.rank() as u8]).unwrap();
//!         vec![]
//!     }
//! });
//! let first_order = outputs[0].clone();
//! let trace = session.finish();
//!
//! // Replay matches the same sources in the same order.
//! let session = Arc::new(MpiSession::replay(trace));
//! let outputs = World::run(3, session, |rank| {
//!     if rank.rank() == 0 {
//!         let a = rank.recv(ANY_SOURCE, 7, None).unwrap();
//!         let b = rank.recv(ANY_SOURCE, 7, None).unwrap();
//!         vec![a.src, b.src]
//!     } else {
//!         rank.send(0, 7, &[rank.rank() as u8]).unwrap();
//!         vec![]
//!     }
//! });
//! assert_eq!(outputs[0], first_order);
//! ```

#![warn(missing_docs)]

pub mod compress;
pub mod mailbox;
pub mod message;
pub mod session;
pub mod verify;
pub mod world;

pub use mailbox::Mailbox;
pub use message::{Envelope, MpiError, ANY_SOURCE, ANY_TAG};
pub use session::{
    recv_site, waitany_site, MpiCheckpoint, MpiDivergence, MpiMode, MpiSession, MpiSessionConfig,
    MpiTrace, RecvEvent,
};
pub use verify::{verify_hybrid, MpiVerifier};
pub use world::{RankCtx, Request, World};
