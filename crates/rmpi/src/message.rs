//! Message envelopes, wildcard constants, typed payload helpers.

use std::fmt;

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: u32 = u32::MAX;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: u32 = u32::MAX;

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending rank.
    pub src: u32,
    /// Message tag.
    pub tag: u32,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Interpret the payload as little-endian `f64`s.
    #[must_use]
    pub fn as_f64s(&self) -> Vec<f64> {
        self.payload
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect()
    }

    /// Interpret the payload as little-endian `u64`s.
    #[must_use]
    pub fn as_u64s(&self) -> Vec<u64> {
        self.payload
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect()
    }
}

/// Encode `f64`s as a little-endian payload.
#[must_use]
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode `u64`s as a little-endian payload.
#[must_use]
pub fn u64s_to_bytes(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Errors from the message-passing runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Destination or source rank does not exist.
    InvalidRank(u32),
    /// A receive waited longer than the configured timeout.
    RecvTimeout {
        /// The receiving rank.
        rank: u32,
        /// Requested source (possibly [`ANY_SOURCE`]).
        src: u32,
        /// Requested tag (possibly [`ANY_TAG`]).
        tag: u32,
    },
    /// Replay: one `(rank × domain)` wildcard-receive stream has fewer
    /// records than the run performs.
    ReplayExhausted {
        /// The receiving rank.
        rank: u32,
        /// The receive-order domain whose stream ran dry.
        domain: u32,
        /// Events that stream had served before running dry.
        consumed: usize,
        /// The last admitted events of that stream, newest first (bounded
        /// by the session's history capacity) — the ReMPI analogue of the
        /// thread gate's `Divergence` access history.
        history: Vec<crate::session::RecvEvent>,
    },
    /// Replay: one `(rank × domain)` waitany stream has fewer records than
    /// the run performs.
    WaitanyExhausted {
        /// The waiting rank.
        rank: u32,
        /// The receive-order domain whose waitany stream ran dry.
        domain: u32,
        /// Completions that stream had served before running dry.
        consumed: usize,
    },
    /// The world was shut down while waiting.
    Shutdown,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::RecvTimeout { rank, src, tag } => {
                write!(f, "rank {rank}: receive (src ")?;
                if *src == ANY_SOURCE {
                    write!(f, "ANY")?;
                } else {
                    write!(f, "{src}")?;
                }
                write!(f, ", tag ")?;
                if *tag == ANY_TAG {
                    write!(f, "ANY")?;
                } else {
                    write!(f, "{tag}")?;
                }
                write!(f, ") timed out")
            }
            MpiError::ReplayExhausted {
                rank,
                domain,
                consumed,
                history,
            } => {
                write!(
                    f,
                    "rank {rank} domain {domain}: wildcard-receive trace exhausted \
                     after {consumed} events"
                )?;
                crate::session::fmt_history(f, history)
            }
            MpiError::WaitanyExhausted {
                rank,
                domain,
                consumed,
            } => {
                write!(
                    f,
                    "rank {rank} domain {domain}: waitany trace exhausted \
                     after {consumed} completions"
                )
            }
            MpiError::Shutdown => write!(f, "world shut down"),
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_payload_roundtrip() {
        let vals = [1.5, -2.25, f64::MAX, 0.0];
        let env = Envelope {
            src: 1,
            tag: 2,
            payload: f64s_to_bytes(&vals),
        };
        assert_eq!(env.as_f64s(), vals);
    }

    #[test]
    fn u64_payload_roundtrip() {
        let vals = [0u64, 1, u64::MAX];
        let env = Envelope {
            src: 0,
            tag: 0,
            payload: u64s_to_bytes(&vals),
        };
        assert_eq!(env.as_u64s(), vals);
    }

    #[test]
    fn error_messages_name_wildcards() {
        let e = MpiError::RecvTimeout {
            rank: 3,
            src: ANY_SOURCE,
            tag: 9,
        };
        let text = e.to_string();
        assert!(text.contains("ANY"), "{text}");
        assert!(text.contains("tag 9"), "{text}");
    }
}
