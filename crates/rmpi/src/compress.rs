//! Trace compression in the spirit of ReMPI's *clock-delta compression*
//! (Sato et al., SC'15).
//!
//! ReMPI's insight: recorded message orders are highly regular — most
//! wildcard receives match the source the program "expects", so encoding
//! the *difference* from a predictable sequence plus run-length encoding
//! shrinks record files dramatically, which matters because record-file
//! I/O bounds the scalability of record-and-replay tools (paper §II-B).
//!
//! The format here: each `(src, tag)` pair stream is zigzag-delta encoded
//! against the previous record, then run-length encoded, then varint
//! packed. Regular patterns (round-robin neighbours, repeated sources)
//! collapse to a handful of bytes.

use crate::session::RecvEvent;
use bytes::{Buf, Bytes, BytesMut};
use reomp_core::codec::{get_uvarint, put_uvarint, rle_runs, unzigzag, zigzag};
use reomp_core::TraceError;

/// Encode one rank's wildcard-receive stream.
#[must_use]
pub fn encode_events(events: &[RecvEvent]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    put_uvarint(&mut buf, events.len() as u64);

    // Delta each field against its predecessor, then RLE the delta pairs
    // with the codec pipeline's shared run scanner.
    let mut deltas: Vec<(u64, u64)> = Vec::with_capacity(events.len());
    let (mut prev_src, mut prev_tag) = (0i64, 0i64);
    for e in events {
        let ds = zigzag(i64::from(e.src) - prev_src);
        let dt = zigzag(i64::from(e.tag) - prev_tag);
        deltas.push((ds, dt));
        prev_src = i64::from(e.src);
        prev_tag = i64::from(e.tag);
    }

    for (run_len, &(ds, dt)) in rle_runs(&deltas) {
        put_uvarint(&mut buf, run_len);
        put_uvarint(&mut buf, ds);
        put_uvarint(&mut buf, dt);
    }
    buf.to_vec()
}

/// Decode one rank's wildcard-receive stream.
pub fn decode_events(bytes: &[u8]) -> Result<Vec<RecvEvent>, TraceError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let count = get_uvarint(&mut buf)? as usize;
    let mut out = Vec::with_capacity(count);
    let (mut prev_src, mut prev_tag) = (0i64, 0i64);
    while out.len() < count {
        let run_len = get_uvarint(&mut buf)? as usize;
        if run_len == 0 {
            return Err(TraceError::Corrupt("zero-length RLE run".into()));
        }
        let ds = unzigzag(get_uvarint(&mut buf)?);
        let dt = unzigzag(get_uvarint(&mut buf)?);
        for _ in 0..run_len.min(count - out.len()) {
            prev_src += ds;
            prev_tag += dt;
            let src = u32::try_from(prev_src)
                .map_err(|_| TraceError::Corrupt(format!("src {prev_src} out of range")))?;
            let tag = u32::try_from(prev_tag)
                .map_err(|_| TraceError::Corrupt(format!("tag {prev_tag} out of range")))?;
            out.push(RecvEvent { src, tag });
        }
    }
    if buf.has_remaining() {
        return Err(TraceError::Corrupt(
            "trailing bytes after RLE stream".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
use proptest::prelude::Strategy;

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: u32, tag: u32) -> RecvEvent {
        RecvEvent { src, tag }
    }

    #[test]
    fn roundtrip_empty_and_single() {
        assert_eq!(decode_events(&encode_events(&[])).unwrap(), vec![]);
        let one = vec![ev(5, 3)];
        assert_eq!(decode_events(&encode_events(&one)).unwrap(), one);
    }

    #[test]
    fn roundtrip_irregular_stream() {
        let events: Vec<RecvEvent> = (0..500)
            .map(|i| ev((i * 7919) % 13, (i * 104729) % 5))
            .collect();
        assert_eq!(decode_events(&encode_events(&events)).unwrap(), events);
    }

    #[test]
    fn repeated_source_compresses_to_constant_size() {
        // 10k receives all from rank 3, tag 0: one run.
        let events: Vec<RecvEvent> = std::iter::once(ev(3, 0))
            .chain((0..9_999).map(|_| ev(3, 0)))
            .collect();
        let bytes = encode_events(&events);
        assert!(
            bytes.len() < 32,
            "constant stream must collapse, got {} bytes",
            bytes.len()
        );
        assert_eq!(decode_events(&bytes).unwrap(), events);
    }

    #[test]
    fn round_robin_compresses_well() {
        // Sources 0,1,2,3,0,1,2,3,...: deltas cycle (1,1,1,-3), so RLE runs
        // stay short, but small varint deltas still beat the 8-byte raw
        // encoding by ~4x. (ReMPI's full CDC also exploits periodicity; we
        // keep the simpler delta+RLE and verify the raw-size win.)
        let events: Vec<RecvEvent> = (0..10_000u32).map(|i| ev(i % 4, 1)).collect();
        let bytes = encode_events(&events);
        let raw = events.len() * 8;
        assert!(
            bytes.len() * 4 <= raw,
            "round-robin must compress ≥4x vs raw ({} vs {raw} bytes)",
            bytes.len()
        );
        assert_eq!(decode_events(&bytes).unwrap(), events);
    }

    #[test]
    fn corrupt_streams_rejected() {
        let events = vec![ev(1, 1), ev(2, 2)];
        let mut bytes = encode_events(&events);
        bytes.push(0xff); // trailing garbage
        assert!(decode_events(&bytes).is_err());
        assert!(decode_events(&[]).is_err(), "missing count");
    }

    proptest::proptest! {
        #[test]
        fn roundtrip_random(events in proptest::collection::vec(
            (0u32..64, 0u32..8).prop_map(|(s, t)| RecvEvent { src: s, tag: t }),
            0..300,
        )) {
            let bytes = encode_events(&events);
            proptest::prop_assert_eq!(decode_events(&bytes).unwrap(), events);
        }
    }
}
