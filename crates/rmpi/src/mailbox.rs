//! Per-rank mailboxes: tagged FIFO queues with condition-variable wakeups.
//!
//! Matching follows MPI semantics: messages from one sender with one tag
//! are *non-overtaking* (FIFO per (src, tag) pair), but messages from
//! different senders race — a wildcard receive takes whichever matching
//! message arrived first, which is the non-determinism ReMPI records.

use crate::message::{Envelope, MpiError, ANY_SOURCE, ANY_TAG};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// A rank's incoming message queue.
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    arrived: Condvar,
}

fn matches(env: &Envelope, src: u32, tag: u32) -> bool {
    (src == ANY_SOURCE || env.src == src) && (tag == ANY_TAG || env.tag == tag)
}

impl Mailbox {
    /// New empty mailbox.
    #[must_use]
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Deposit a message (called by the sender's thread).
    pub fn push(&self, env: Envelope) {
        self.queue.lock().push_back(env);
        self.arrived.notify_all();
    }

    /// Number of queued messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Non-blocking probe: would a `(src, tag)` receive match right now?
    /// Returns the envelope's `(src, tag)` without removing it
    /// (`MPI_Iprobe`).
    #[must_use]
    pub fn probe(&self, src: u32, tag: u32) -> Option<(u32, u32)> {
        let q = self.queue.lock();
        q.iter()
            .find(|e| matches(e, src, tag))
            .map(|e| (e.src, e.tag))
    }

    /// Blocking receive of the first message matching `(src, tag)`, in
    /// arrival order. `rank` is only for diagnostics.
    pub fn recv(
        &self,
        rank: u32,
        src: u32,
        tag: u32,
        timeout: Duration,
    ) -> Result<Envelope, MpiError> {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| matches(e, src, tag)) {
                return Ok(q.remove(pos).expect("position valid under lock"));
            }
            if self.arrived.wait_for(&mut q, timeout).timed_out() {
                return Err(MpiError::RecvTimeout { rank, src, tag });
            }
        }
    }

    /// Non-blocking receive (`MPI_Test`-style): take a matching message if
    /// one is already queued.
    #[must_use]
    pub fn try_recv(&self, src: u32, tag: u32) -> Option<Envelope> {
        let mut q = self.queue.lock();
        let pos = q.iter().position(|e| matches(e, src, tag))?;
        q.remove(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u32, tag: u32, byte: u8) -> Envelope {
        Envelope {
            src,
            tag,
            payload: vec![byte],
        }
    }

    const T: Duration = Duration::from_millis(200);

    #[test]
    fn fifo_per_source_and_tag() {
        let mb = Mailbox::new();
        mb.push(env(1, 5, 10));
        mb.push(env(1, 5, 11));
        assert_eq!(mb.recv(0, 1, 5, T).unwrap().payload, vec![10]);
        assert_eq!(mb.recv(0, 1, 5, T).unwrap().payload, vec![11]);
    }

    #[test]
    fn tag_filtering_skips_non_matching() {
        let mb = Mailbox::new();
        mb.push(env(1, 5, 10));
        mb.push(env(1, 6, 11));
        assert_eq!(mb.recv(0, 1, 6, T).unwrap().payload, vec![11]);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn wildcard_takes_arrival_order() {
        let mb = Mailbox::new();
        mb.push(env(2, 5, 20));
        mb.push(env(1, 5, 10));
        let first = mb.recv(0, ANY_SOURCE, 5, T).unwrap();
        assert_eq!(first.src, 2, "arrival order");
        let second = mb.recv(0, ANY_SOURCE, ANY_TAG, T).unwrap();
        assert_eq!(second.src, 1);
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        assert_eq!(mb.probe(ANY_SOURCE, ANY_TAG), None);
        mb.push(env(3, 7, 1));
        assert_eq!(mb.probe(ANY_SOURCE, 7), Some((3, 7)));
        assert_eq!(mb.len(), 1);
        assert!(mb.try_recv(3, 7).is_some());
        assert!(mb.try_recv(3, 7).is_none());
    }

    #[test]
    fn recv_times_out() {
        let mb = Mailbox::new();
        match mb.recv(4, 1, 2, Duration::from_millis(30)) {
            Err(MpiError::RecvTimeout { rank: 4, .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn blocking_recv_wakes_on_push() {
        let mb = std::sync::Arc::new(Mailbox::new());
        let mb2 = std::sync::Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.recv(0, 9, 1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        mb.push(env(9, 1, 42));
        assert_eq!(h.join().unwrap().unwrap().payload, vec![42]);
    }
}
