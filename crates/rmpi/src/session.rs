//! The ReMPI-equivalent session: per-rank wildcard-receive order recording.

use crate::compress::{decode_events, encode_events};
use crate::message::MpiError;
use parking_lot::Mutex;
use reomp_core::TraceError;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What a recorded wildcard receive matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvEvent {
    /// Matched source rank.
    pub src: u32,
    /// Matched tag.
    pub tag: u32,
}

/// A complete per-rank receive-order trace (ReMPI record files).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MpiTrace {
    /// One stream per rank, in that rank's receive order.
    pub per_rank: Vec<Vec<RecvEvent>>,
    /// Per rank: the request indices chosen by successive `waitany` calls
    /// (the `MPI_Waitany` completion order the paper's §VI-C gates).
    pub waitany_per_rank: Vec<Vec<u32>>,
}

impl MpiTrace {
    /// Number of ranks.
    #[must_use]
    pub fn nranks(&self) -> u32 {
        self.per_rank.len() as u32
    }

    /// Total wildcard receives recorded.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.per_rank.iter().map(|r| r.len() as u64).sum()
    }

    /// Persist as one compressed file per rank plus a manifest, mirroring
    /// ReMPI's per-process record files.
    pub fn save_dir(&self, dir: &Path) -> Result<u64, TraceError> {
        std::fs::create_dir_all(dir)?;
        let mut bytes = 0u64;
        let manifest = format!("rmpi-trace v1\nranks {}\n", self.per_rank.len());
        std::fs::write(dir.join("manifest.txt"), &manifest)?;
        bytes += manifest.len() as u64;
        for (rank, events) in self.per_rank.iter().enumerate() {
            let encoded = encode_events(events);
            bytes += encoded.len() as u64;
            std::fs::write(dir.join(format!("rank_{rank}.rmpi")), encoded)?;
            let wa: Vec<RecvEvent> = self
                .waitany_per_rank
                .get(rank)
                .map(|v| v.iter().map(|&i| RecvEvent { src: i, tag: 0 }).collect())
                .unwrap_or_default();
            let encoded = encode_events(&wa);
            bytes += encoded.len() as u64;
            std::fs::write(dir.join(format!("rank_{rank}.waitany.rmpi")), encoded)?;
        }
        Ok(bytes)
    }

    /// Load a trace previously written by [`MpiTrace::save_dir`].
    pub fn load_dir(dir: &Path) -> Result<MpiTrace, TraceError> {
        let manifest = std::fs::read_to_string(dir.join("manifest.txt")).map_err(TraceError::Io)?;
        let mut lines = manifest.lines();
        if lines.next() != Some("rmpi-trace v1") {
            return Err(TraceError::Corrupt("bad rmpi manifest header".into()));
        }
        let ranks: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("ranks "))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| TraceError::Corrupt("bad rank count".into()))?;
        let mut per_rank = Vec::with_capacity(ranks);
        let mut waitany_per_rank = Vec::with_capacity(ranks);
        for rank in 0..ranks {
            let bytes = std::fs::read(dir.join(format!("rank_{rank}.rmpi")))?;
            per_rank.push(decode_events(&bytes)?);
            let wa_path = dir.join(format!("rank_{rank}.waitany.rmpi"));
            let wa = if wa_path.exists() {
                decode_events(&std::fs::read(wa_path)?)?
                    .into_iter()
                    .map(|e| e.src)
                    .collect()
            } else {
                Vec::new()
            };
            waitany_per_rank.push(wa);
        }
        Ok(MpiTrace {
            per_rank,
            waitany_per_rank,
        })
    }
}

/// Session mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiMode {
    /// No recording; wildcard receives are free-running.
    Passthrough,
    /// Log every wildcard receive's matched `(src, tag)`.
    Record,
    /// Force every wildcard receive to match the recorded `(src, tag)`.
    Replay,
}

/// Shared record/replay state for one [`crate::World`] run.
#[derive(Debug)]
pub struct MpiSession {
    mode: MpiMode,
    nranks: u32,
    logs: Vec<Mutex<Vec<RecvEvent>>>,
    waitany_logs: Vec<Mutex<Vec<u32>>>,
    cursors: Vec<AtomicUsize>,
    waitany_cursors: Vec<AtomicUsize>,
    trace: Option<MpiTrace>,
}

impl MpiSession {
    /// Free-running session.
    #[must_use]
    pub fn passthrough(nranks: u32) -> Self {
        Self::build(MpiMode::Passthrough, nranks, None)
    }

    /// Recording session.
    #[must_use]
    pub fn record(nranks: u32) -> Self {
        Self::build(MpiMode::Record, nranks, None)
    }

    /// Replay session over a recorded trace.
    #[must_use]
    pub fn replay(trace: MpiTrace) -> Self {
        let nranks = trace.nranks();
        Self::build(MpiMode::Replay, nranks, Some(trace))
    }

    fn build(mode: MpiMode, nranks: u32, trace: Option<MpiTrace>) -> Self {
        MpiSession {
            mode,
            nranks,
            logs: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
            waitany_logs: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
            cursors: (0..nranks).map(|_| AtomicUsize::new(0)).collect(),
            waitany_cursors: (0..nranks).map(|_| AtomicUsize::new(0)).collect(),
            trace,
        }
    }

    /// Session mode.
    #[must_use]
    pub fn mode(&self) -> MpiMode {
        self.mode
    }

    /// Number of ranks.
    #[must_use]
    pub fn nranks(&self) -> u32 {
        self.nranks
    }

    /// Record one matched wildcard receive (record mode only).
    pub fn log_recv(&self, rank: u32, src: u32, tag: u32) {
        if self.mode == MpiMode::Record {
            self.logs[rank as usize].lock().push(RecvEvent { src, tag });
        }
    }

    /// Replay mode: the `(src, tag)` the next wildcard receive of `rank`
    /// must match.
    pub fn next_recv(&self, rank: u32) -> Result<Option<RecvEvent>, MpiError> {
        if self.mode != MpiMode::Replay {
            return Ok(None);
        }
        let trace = self.trace.as_ref().expect("replay has trace");
        let pos = self.cursors[rank as usize].fetch_add(1, Ordering::Relaxed);
        trace.per_rank[rank as usize]
            .get(pos)
            .copied()
            .map(Some)
            .ok_or(MpiError::ReplayExhausted { rank })
    }

    /// Record one `waitany` completion choice (record mode only).
    pub fn log_waitany(&self, rank: u32, index: u32) {
        if self.mode == MpiMode::Record {
            self.waitany_logs[rank as usize].lock().push(index);
        }
    }

    /// Replay mode: the request index the next `waitany` of `rank` must
    /// complete.
    pub fn next_waitany(&self, rank: u32) -> Result<Option<u32>, MpiError> {
        if self.mode != MpiMode::Replay {
            return Ok(None);
        }
        let trace = self.trace.as_ref().expect("replay has trace");
        let pos = self.waitany_cursors[rank as usize].fetch_add(1, Ordering::Relaxed);
        trace
            .waitany_per_rank
            .get(rank as usize)
            .and_then(|v| v.get(pos))
            .copied()
            .map(Some)
            .ok_or(MpiError::ReplayExhausted { rank })
    }

    /// Extract the recorded trace (record mode).
    #[must_use]
    pub fn finish(&self) -> MpiTrace {
        MpiTrace {
            per_rank: self
                .logs
                .iter()
                .map(|l| std::mem::take(&mut *l.lock()))
                .collect(),
            waitany_per_rank: self
                .waitany_logs
                .iter()
                .map(|l| std::mem::take(&mut *l.lock()))
                .collect(),
        }
    }

    /// Replay mode: whether every rank consumed its full stream.
    #[must_use]
    pub fn fully_consumed(&self) -> Option<bool> {
        let trace = self.trace.as_ref()?;
        Some(
            self.cursors
                .iter()
                .zip(&trace.per_rank)
                .all(|(c, r)| c.load(Ordering::Relaxed) >= r.len()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_log_and_finish() {
        let s = MpiSession::record(2);
        s.log_recv(0, 1, 7);
        s.log_recv(0, 1, 8);
        s.log_recv(1, 0, 7);
        let trace = s.finish();
        assert_eq!(trace.nranks(), 2);
        assert_eq!(trace.total_events(), 3);
        assert_eq!(trace.per_rank[0][1], RecvEvent { src: 1, tag: 8 });
    }

    #[test]
    fn passthrough_logs_nothing() {
        let s = MpiSession::passthrough(1);
        s.log_recv(0, 0, 0);
        assert_eq!(s.finish().total_events(), 0);
        assert_eq!(s.next_recv(0).unwrap(), None);
    }

    #[test]
    fn replay_serves_events_in_order_then_exhausts() {
        let trace = MpiTrace {
            per_rank: vec![vec![
                RecvEvent { src: 2, tag: 5 },
                RecvEvent { src: 1, tag: 5 },
            ]],
            waitany_per_rank: vec![vec![]],
        };
        let s = MpiSession::replay(trace);
        assert_eq!(s.fully_consumed(), Some(false));
        assert_eq!(s.next_recv(0).unwrap(), Some(RecvEvent { src: 2, tag: 5 }));
        assert_eq!(s.next_recv(0).unwrap(), Some(RecvEvent { src: 1, tag: 5 }));
        assert_eq!(s.fully_consumed(), Some(true));
        assert!(matches!(
            s.next_recv(0),
            Err(MpiError::ReplayExhausted { rank: 0 })
        ));
    }

    #[test]
    fn trace_dir_roundtrip() {
        let trace = MpiTrace {
            per_rank: vec![
                (0..100).map(|i| RecvEvent { src: i % 3, tag: 1 }).collect(),
                vec![],
                vec![RecvEvent { src: 0, tag: 9 }],
            ],
            waitany_per_rank: vec![vec![0, 1, 0], vec![], vec![2]],
        };
        let dir = std::env::temp_dir().join(format!("rmpi-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        trace.save_dir(&dir).unwrap();
        let back = MpiTrace::load_dir(&dir).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
