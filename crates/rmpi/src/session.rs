//! The ReMPI-equivalent session: per-**(rank × domain)** wildcard-receive
//! order recording.
//!
//! Classic ReMPI keeps one receive-order record file per rank; every
//! wildcard receive and `waitany` of a rank serializes through that single
//! stream. Mirroring the thread gate's *gate domains*
//! ([`reomp_core::SessionConfig::domains`]), the recorder here partitions
//! receive **sites** — the *requested* `(src, tag)` of a call, hashed to a
//! [`SiteId`] by [`recv_site`]/[`waitany_site`] — across `D` independent
//! order streams per rank through the same [`DomainPlan`] machinery. Each
//! `(rank, domain)` stream owns its own log in record mode and its own
//! cursor in replay mode, so receives routed to different domains (e.g.
//! different tags) record and replay concurrently inside one rank — the
//! hybrid `MPI_THREAD_MULTIPLE` scaling story of the paper's §VI-C.
//!
//! The partition is a pure function of the requested `(src, tag)`:
//! identical in record and replay, which is what makes per-domain streams
//! replayable at all. The site the *thread* gate wraps a hybrid receive in
//! is the same [`recv_site`] hash, so a thread session configured with a
//! matching plan ([`MpiSession::matching_thread_plan`]) co-locates every
//! receive of one MPI domain in one thread-gate domain — receives that
//! share a stream stay mutually ordered, the same soundness contract the
//! thread gate's domain plans enforce for aliased sites.
//!
//! With `D = 1` (the default) everything degenerates to the classic
//! per-rank single stream, and the on-disk layout is byte-identical to the
//! pre-domain format (pinned by golden tests).

use crate::compress::{decode_events, encode_events};
use crate::message::MpiError;
use bytes::{Buf, Bytes, BytesMut};
use parking_lot::Mutex;
use reomp_core::codec::{decode_plan, encode_plan, get_uvarint, put_uvarint};
use reomp_core::{DomainPlan, DumpTrigger, SiteId, TraceError};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// What a recorded wildcard receive matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvEvent {
    /// Matched source rank.
    pub src: u32,
    /// Matched tag.
    pub tag: u32,
}

/// Render a newest-first admitted-event history the same way in every
/// diagnostic ([`MpiDivergence`] and `MpiError::ReplayExhausted`).
pub(crate) fn fmt_history(
    f: &mut std::fmt::Formatter<'_>,
    history: &[RecvEvent],
) -> std::fmt::Result {
    if history.is_empty() {
        return Ok(());
    }
    write!(f, "; last admitted (newest first):")?;
    for e in history {
        write!(f, " (src {}, tag {})", e.src, e.tag)?;
    }
    Ok(())
}

fn mix_key(rank: u32, peer: u32, tag: u32) -> u64 {
    u64::from(rank)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((u64::from(peer) << 32) | u64::from(tag))
}

/// Site of a receive call: a stable hash of the **requested** `(src, tag)`
/// (wildcards included verbatim), not the matched one — record and replay
/// compute it before any message is chosen, so both route the call to the
/// same `(rank × domain)` stream. The same site is what hybrid gated
/// receives pass to the thread gate.
#[must_use]
pub fn recv_site(rank: u32, src: u32, tag: u32) -> SiteId {
    SiteId::from_label_indexed("rmpi:recv", mix_key(rank, src, tag))
}

/// Site of a `waitany` call: an order-sensitive fold over the
/// construction-time `(peer, tag)` keys of the request set. Requests are
/// created in program order, so the fold is identical in record and
/// replay even when completion states differ.
#[must_use]
pub fn waitany_site(rank: u32, keys: impl IntoIterator<Item = (u32, u32)>) -> SiteId {
    let mut h = 0xa076_1d64_78bd_642f_u64;
    for (peer, tag) in keys {
        h = h.rotate_left(5) ^ mix_key(rank, peer, tag);
        h = h.wrapping_mul(0x2545_f491_4f6c_dd1d);
    }
    SiteId::from_label_indexed("rmpi:waitany", h)
}

/// Checkpoint of a bounded (flight-recorder) rmpi recording — the rmpi
/// analogue of [`reomp_core::Checkpoint`]. Eviction in a bounded
/// `(rank × domain)` stream is prefix-shaped (the oldest events go
/// first), so one per-stream count captures the discarded history:
/// replay free-runs the first `recv_bases[s]` receives of stream `s`
/// and only then starts enforcing the retained tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MpiCheckpoint {
    /// Retained-window size the recorder ran with (events per stream).
    pub window: u32,
    /// What caused the window to be materialized.
    pub trigger: DumpTrigger,
    /// Per `(rank × domain)` stream (flat, rank-major): wildcard
    /// receives evicted before the retained tail.
    pub recv_bases: Vec<u64>,
    /// Per `(rank × domain)` stream: `waitany` completions evicted
    /// before the retained tail.
    pub waitany_bases: Vec<u64>,
}

impl MpiCheckpoint {
    /// Structural consistency against the owning trace's stream count.
    pub fn check(&self, streams: usize) -> Result<(), TraceError> {
        if self.window == 0 {
            return Err(TraceError::Corrupt("rmpi checkpoint window is 0".into()));
        }
        if self.recv_bases.len() != streams || self.waitany_bases.len() != streams {
            return Err(TraceError::Corrupt(format!(
                "rmpi checkpoint has {}/{} bases for {streams} streams",
                self.recv_bases.len(),
                self.waitany_bases.len()
            )));
        }
        Ok(())
    }

    /// Encode as the `checkpoint.rmpi` section (varint framed, mirroring
    /// the core codec's RTCP section).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"RMCP");
        buf.extend_from_slice(&[1u8, self.trigger.code()]);
        put_uvarint(&mut buf, u64::from(self.window));
        put_uvarint(&mut buf, self.recv_bases.len() as u64);
        for &b in self.recv_bases.iter().chain(&self.waitany_bases) {
            put_uvarint(&mut buf, b);
        }
        buf.to_vec()
    }

    /// Inverse of [`MpiCheckpoint::encode`].
    pub fn decode(bytes: &[u8]) -> Result<MpiCheckpoint, TraceError> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 6 || &buf.chunk()[..4] != b"RMCP" {
            return Err(TraceError::Corrupt("bad rmpi checkpoint magic".into()));
        }
        buf.advance(4);
        let version = buf.get_u8();
        if version != 1 {
            return Err(TraceError::Corrupt(format!(
                "rmpi checkpoint version {version} unsupported"
            )));
        }
        let trigger = DumpTrigger::from_code(buf.get_u8())
            .ok_or_else(|| TraceError::Corrupt("bad rmpi checkpoint trigger".into()))?;
        let window = u32::try_from(get_uvarint(&mut buf)?)
            .map_err(|_| TraceError::Corrupt("rmpi checkpoint window overflow".into()))?;
        let streams = get_uvarint(&mut buf)? as usize;
        if streams > bytes.len() {
            return Err(TraceError::Corrupt("rmpi checkpoint stream count".into()));
        }
        let mut bases = Vec::with_capacity(streams * 2);
        for _ in 0..streams * 2 {
            bases.push(get_uvarint(&mut buf)?);
        }
        if buf.has_remaining() {
            return Err(TraceError::Corrupt(
                "trailing bytes after rmpi checkpoint".into(),
            ));
        }
        let waitany_bases = bases.split_off(streams);
        Ok(MpiCheckpoint {
            window,
            trigger,
            recv_bases: bases,
            waitany_bases,
        })
    }
}

/// A complete receive-order trace: one stream per `(rank × domain)`
/// (ReMPI record files, sharded like the thread gate's domains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpiTrace {
    /// Number of receive-order domains per rank (`1` = the classic
    /// single-stream-per-rank recording).
    pub domains: u32,
    /// The site → domain plan the recording partitioned receive sites
    /// with; `None` means the hashed fallback partition
    /// ([`DomainPlan::hashed_fallback`]) over `domains`.
    pub plan: Option<DomainPlan>,
    /// Wildcard-receive streams, flat and rank-major: index
    /// `rank * domains + dom`, each in that stream's receive order.
    pub recv_streams: Vec<Vec<RecvEvent>>,
    /// Per `(rank × domain)`: the request indices chosen by successive
    /// `waitany` calls (the `MPI_Waitany` completion order the paper's
    /// §VI-C gates). Same flat layout as [`MpiTrace::recv_streams`].
    pub waitany_streams: Vec<Vec<u32>>,
    /// `Some` when the trace is a bounded flight-recorder window rather
    /// than a full recording: per-stream evicted-event counts replay
    /// free-runs past before enforcing the retained tail.
    pub checkpoint: Option<MpiCheckpoint>,
}

impl Default for MpiTrace {
    fn default() -> MpiTrace {
        MpiTrace {
            domains: 1,
            plan: None,
            recv_streams: Vec::new(),
            waitany_streams: Vec::new(),
            checkpoint: None,
        }
    }
}

impl MpiTrace {
    /// A classic single-domain trace from per-rank streams (the pre-domain
    /// layout; every rank holds exactly one stream).
    #[must_use]
    pub fn single(per_rank: Vec<Vec<RecvEvent>>, waitany_per_rank: Vec<Vec<u32>>) -> MpiTrace {
        let mut waitany = waitany_per_rank;
        waitany.resize(per_rank.len(), Vec::new());
        MpiTrace {
            domains: 1,
            plan: None,
            recv_streams: per_rank,
            waitany_streams: waitany,
            checkpoint: None,
        }
    }

    /// Number of ranks.
    #[must_use]
    pub fn nranks(&self) -> u32 {
        (self.recv_streams.len() / self.domains.max(1) as usize) as u32
    }

    /// Total wildcard receives recorded.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.recv_streams.iter().map(|r| r.len() as u64).sum()
    }

    /// Total `waitany` completions recorded.
    #[must_use]
    pub fn total_waitany(&self) -> u64 {
        self.waitany_streams.iter().map(|r| r.len() as u64).sum()
    }

    fn stream_index(&self, rank: u32, dom: u32) -> usize {
        (rank * self.domains + dom) as usize
    }

    /// Rank `rank`'s receive stream in domain `dom`.
    ///
    /// # Panics
    /// Panics when `rank >= nranks` or `dom >= domains`.
    #[must_use]
    pub fn recv_stream(&self, rank: u32, dom: u32) -> &[RecvEvent] {
        assert!(rank < self.nranks() && dom < self.domains);
        &self.recv_streams[self.stream_index(rank, dom)]
    }

    /// Rank `rank`'s waitany stream in domain `dom`.
    ///
    /// # Panics
    /// Panics when `rank >= nranks` or `dom >= domains`.
    #[must_use]
    pub fn waitany_stream(&self, rank: u32, dom: u32) -> &[u32] {
        assert!(rank < self.nranks() && dom < self.domains);
        &self.waitany_streams[self.stream_index(rank, dom)]
    }

    /// Total receives recorded by one rank across its domains.
    #[must_use]
    pub fn rank_events(&self, rank: u32) -> u64 {
        (0..self.domains)
            .map(|d| self.recv_stream(rank, d).len() as u64)
            .sum()
    }

    /// The receive-order domain of `site` under this trace's partition —
    /// the stamped plan when one exists, the hashed fallback otherwise.
    #[must_use]
    pub fn domain_of(&self, site: SiteId) -> u32 {
        domain_of(self.domains, self.plan.as_ref(), site)
    }

    /// The thread-session [`DomainPlan`] this trace's partition requires
    /// of a hybrid run — the trace-side counterpart of
    /// [`MpiSession::matching_thread_plan`]: the stamped plan when one
    /// exists, else a bare plan whose hashed fallback matches the
    /// trace's own fallback partition.
    #[must_use]
    pub fn matching_thread_plan(&self) -> DomainPlan {
        self.plan
            .clone()
            .unwrap_or_else(|| DomainPlan::new(self.domains))
    }

    /// Structural consistency check; run after decoding and before replay.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.domains == 0 {
            return Err(TraceError::Corrupt("rmpi trace with zero domains".into()));
        }
        if !self
            .recv_streams
            .len()
            .is_multiple_of(self.domains as usize)
        {
            return Err(TraceError::Corrupt(format!(
                "{} receive streams are not a multiple of {} domains",
                self.recv_streams.len(),
                self.domains
            )));
        }
        if self.waitany_streams.len() != self.recv_streams.len() {
            return Err(TraceError::Corrupt(format!(
                "{} waitany streams for {} receive streams",
                self.waitany_streams.len(),
                self.recv_streams.len()
            )));
        }
        if let Some(plan) = &self.plan {
            if plan.domains() != self.domains {
                return Err(TraceError::Corrupt(format!(
                    "plan partitions {} domains but the trace has {}",
                    plan.domains(),
                    self.domains
                )));
            }
        }
        if let Some(cp) = &self.checkpoint {
            cp.check(self.recv_streams.len())?;
        }
        Ok(())
    }

    /// Persist as one compressed file per `(rank × domain)` stream plus a
    /// manifest, mirroring ReMPI's per-process record files. Single-domain
    /// traces write the pre-domain `v1` layout **byte-identically** (old
    /// tooling keeps working); multi-domain traces write a `v2` manifest
    /// with the domain count, per-domain files carrying the domain id in
    /// their name, and — when partitioned by an explicit plan — the plan
    /// as a codec section in `plan.rmpi`. Stale record files from a
    /// previous layout in the same directory are scrubbed first and the
    /// manifest is written last.
    pub fn save_dir(&self, dir: &Path) -> Result<u64, TraceError> {
        self.validate()?;
        std::fs::create_dir_all(dir)?;
        // Hygiene (same discipline as DirStore): no manifest while the
        // directory is in flux, no stale streams from an older layout.
        let manifest_path = dir.join("manifest.txt");
        let _ = std::fs::remove_file(&manifest_path);
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(".rmpi") {
                let _ = std::fs::remove_file(entry.path());
            }
        }

        let mut bytes = 0u64;
        let nranks = self.nranks();
        for rank in 0..nranks {
            for dom in 0..self.domains {
                let recv_name = if self.domains == 1 {
                    format!("rank_{rank}.rmpi")
                } else {
                    format!("rank_{rank}.d{dom}.rmpi")
                };
                let wa_name = if self.domains == 1 {
                    format!("rank_{rank}.waitany.rmpi")
                } else {
                    format!("rank_{rank}.d{dom}.waitany.rmpi")
                };
                let encoded = encode_events(self.recv_stream(rank, dom));
                bytes += encoded.len() as u64;
                std::fs::write(dir.join(recv_name), encoded)?;
                // Waitany indices ride the same event codec as `(idx, 0)`
                // pairs (delta/RLE loves the small monotone-ish values).
                let wa: Vec<RecvEvent> = self
                    .waitany_stream(rank, dom)
                    .iter()
                    .map(|&i| RecvEvent { src: i, tag: 0 })
                    .collect();
                let encoded = encode_events(&wa);
                bytes += encoded.len() as u64;
                std::fs::write(dir.join(wa_name), encoded)?;
            }
        }

        // Layout version: v1 is the pinned pre-domain single-stream
        // layout, v2 adds domain sharding, v3 adds the flight checkpoint.
        // A full (unbounded) D = 1 trace must stay byte-identical to v1.
        let mut manifest = if self.checkpoint.is_some() {
            format!(
                "rmpi-trace v3\nranks {}\ndomains {}\n",
                nranks, self.domains
            )
        } else if self.domains == 1 {
            format!("rmpi-trace v1\nranks {}\n", nranks)
        } else {
            format!(
                "rmpi-trace v2\nranks {}\ndomains {}\n",
                nranks, self.domains
            )
        };
        if self.domains > 1 {
            if let Some(plan) = &self.plan {
                let encoded = encode_plan(plan);
                bytes += encoded.len() as u64;
                std::fs::write(dir.join("plan.rmpi"), &encoded)?;
                manifest.push_str("plan 1\n");
            }
        }
        if let Some(cp) = &self.checkpoint {
            let encoded = cp.encode();
            bytes += encoded.len() as u64;
            std::fs::write(dir.join("checkpoint.rmpi"), &encoded)?;
            manifest.push_str("flight 1\n");
        }
        std::fs::write(&manifest_path, &manifest)?;
        bytes += manifest.len() as u64;
        Ok(bytes)
    }

    /// Load a trace previously written by [`MpiTrace::save_dir`] (either
    /// the pre-domain `v1` layout or the sharded `v2` layout).
    pub fn load_dir(dir: &Path) -> Result<MpiTrace, TraceError> {
        let manifest = std::fs::read_to_string(dir.join("manifest.txt")).map_err(TraceError::Io)?;
        let mut lines = manifest.lines();
        let version = match lines.next() {
            Some("rmpi-trace v1") => 1u32,
            Some("rmpi-trace v2") => 2,
            Some("rmpi-trace v3") => 3,
            _ => return Err(TraceError::Corrupt("bad rmpi manifest header".into())),
        };
        let ranks: u32 = lines
            .next()
            .and_then(|l| l.strip_prefix("ranks "))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| TraceError::Corrupt("bad rank count".into()))?;
        let (domains, has_plan, has_flight) = if version == 1 {
            (1u32, false, false)
        } else {
            let domains = lines
                .next()
                .and_then(|l| l.strip_prefix("domains "))
                .and_then(|n| n.parse::<u32>().ok())
                .filter(|&d| d >= 1)
                .ok_or_else(|| TraceError::Corrupt("bad domain count".into()))?;
            let rest: Vec<&str> = lines.collect();
            let has_plan = rest.contains(&"plan 1");
            let has_flight = version >= 3 && rest.contains(&"flight 1");
            (domains, has_plan, has_flight)
        };
        let plan = if has_plan {
            let bytes = std::fs::read(dir.join("plan.rmpi"))?;
            Some(decode_plan(&bytes)?)
        } else {
            None
        };
        let checkpoint = if has_flight {
            let bytes = std::fs::read(dir.join("checkpoint.rmpi"))?;
            Some(MpiCheckpoint::decode(&bytes)?)
        } else {
            None
        };
        let streams = (ranks * domains) as usize;
        let mut recv_streams = Vec::with_capacity(streams);
        let mut waitany_streams = Vec::with_capacity(streams);
        for rank in 0..ranks {
            for dom in 0..domains {
                let (recv_name, wa_name) = if domains == 1 {
                    (
                        format!("rank_{rank}.rmpi"),
                        format!("rank_{rank}.waitany.rmpi"),
                    )
                } else {
                    (
                        format!("rank_{rank}.d{dom}.rmpi"),
                        format!("rank_{rank}.d{dom}.waitany.rmpi"),
                    )
                };
                let bytes = std::fs::read(dir.join(recv_name))?;
                recv_streams.push(decode_events(&bytes)?);
                let wa_path = dir.join(wa_name);
                let wa = if wa_path.exists() {
                    decode_events(&std::fs::read(wa_path)?)?
                        .into_iter()
                        .map(|e| e.src)
                        .collect()
                } else {
                    Vec::new()
                };
                waitany_streams.push(wa);
            }
        }
        let trace = MpiTrace {
            domains,
            plan,
            recv_streams,
            waitany_streams,
            checkpoint,
        };
        trace.validate()?;
        Ok(trace)
    }
}

/// The `(rank × domain)` partition shared by sessions and traces: the
/// explicit plan when one is set, [`DomainPlan::hashed_fallback`]
/// otherwise. (There is no legacy-modulo variant here — rmpi had no
/// multi-domain format before the hashed partition existed.)
fn domain_of(domains: u32, plan: Option<&DomainPlan>, site: SiteId) -> u32 {
    if domains <= 1 {
        return 0;
    }
    match plan {
        Some(plan) => plan.domain_of(site),
        None => DomainPlan::hashed_fallback(domains, site),
    }
}

/// Session mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiMode {
    /// No recording; wildcard receives are free-running.
    Passthrough,
    /// Log every wildcard receive's matched `(src, tag)`.
    Record,
    /// Force every wildcard receive to match the recorded `(src, tag)`.
    Replay,
}

/// Tuning knobs for an [`MpiSession`].
#[derive(Debug, Clone)]
pub struct MpiSessionConfig {
    /// Number of receive-order domains per rank (clamped to ≥ 1). `1` —
    /// the default — reproduces the classic single-stream recording and
    /// trace layout byte-for-byte.
    pub domains: u32,
    /// Explicit receive-site → domain assignment. When set it
    /// **overrides** [`MpiSessionConfig::domains`] with its own count
    /// (mirroring [`reomp_core::SessionConfig::plan`]); the plan is
    /// stamped into the trace and reconstructed by replay.
    pub plan: Option<DomainPlan>,
    /// Replay: events retained per `(rank × domain)` stream for
    /// divergence diagnostics (`0` disables the history).
    pub history_capacity: usize,
    /// Record: `Some(n)` bounds in-situ retention to the last `n` events
    /// per `(rank × domain)` stream (the rmpi leg of the flight
    /// recorder); [`MpiSession::finish`] then stamps an [`MpiCheckpoint`]
    /// with the per-stream evicted counts. `None` (the default) retains
    /// everything, as the classic recorder does.
    pub flight: Option<u32>,
}

impl Default for MpiSessionConfig {
    fn default() -> MpiSessionConfig {
        MpiSessionConfig {
            domains: 1,
            plan: None,
            history_capacity: 16,
            flight: None,
        }
    }
}

impl MpiSessionConfig {
    /// A plan-less config over `domains` receive-order domains.
    #[must_use]
    pub fn with_domains(domains: u32) -> MpiSessionConfig {
        MpiSessionConfig {
            domains,
            ..MpiSessionConfig::default()
        }
    }

    /// Read `REOMP_DOMAINS` (the same knob the thread gate uses) for the
    /// domain count and `REOMP_FLIGHT` (shared with the thread gate's
    /// flight recorder) for the bounded-retention window; everything else
    /// stays at the defaults.
    #[must_use]
    pub fn from_env() -> MpiSessionConfig {
        let domains = std::env::var("REOMP_DOMAINS")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .filter(|&d| d >= 1)
            .unwrap_or(1);
        let flight = std::env::var("REOMP_FLIGHT")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .filter(|&n| n >= 1);
        MpiSessionConfig {
            flight,
            ..MpiSessionConfig::with_domains(domains)
        }
    }

    /// The domain count the session will actually run with: the plan's
    /// count when a plan is set, the raw knob otherwise (clamped to ≥ 1).
    #[must_use]
    pub fn effective_domains(&self) -> u32 {
        self.plan
            .as_ref()
            .map(DomainPlan::domains)
            .unwrap_or(self.domains)
            .max(1)
    }
}

/// One under-consumed `(rank × domain)` replay stream — the rmpi analogue
/// of the thread gate's `Divergence` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpiDivergence {
    /// The rank whose stream diverged.
    pub rank: u32,
    /// The receive-order domain of the stream.
    pub domain: u32,
    /// Wildcard receives consumed out of [`MpiDivergence::recv_recorded`].
    pub recv_consumed: usize,
    /// Wildcard receives the stream recorded.
    pub recv_recorded: usize,
    /// Waitany completions consumed out of
    /// [`MpiDivergence::waitany_recorded`].
    pub waitany_consumed: usize,
    /// Waitany completions the stream recorded.
    pub waitany_recorded: usize,
    /// The last admitted receive events of the stream, newest first.
    pub history: Vec<RecvEvent>,
}

impl std::fmt::Display for MpiDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} domain {}: replay consumed {}/{} receives, {}/{} waitany",
            self.rank,
            self.domain,
            self.recv_consumed,
            self.recv_recorded,
            self.waitany_consumed,
            self.waitany_recorded
        )?;
        fmt_history(f, &self.history)
    }
}

/// Shared record/replay state for one [`crate::World`] run.
#[derive(Debug)]
pub struct MpiSession {
    mode: MpiMode,
    nranks: u32,
    domains: u32,
    plan: Option<DomainPlan>,
    history_capacity: usize,
    flight: Option<u32>,
    logs: Vec<Mutex<Vec<RecvEvent>>>,
    waitany_logs: Vec<Mutex<Vec<u32>>>,
    // Record + flight: events evicted per stream (the checkpoint bases).
    recv_bases: Vec<AtomicU64>,
    waitany_bases: Vec<AtomicU64>,
    cursors: Vec<AtomicUsize>,
    waitany_cursors: Vec<AtomicUsize>,
    history: Vec<Mutex<VecDeque<RecvEvent>>>,
    trace: Option<MpiTrace>,
}

impl MpiSession {
    /// Free-running session.
    #[must_use]
    pub fn passthrough(nranks: u32) -> Self {
        Self::build(
            MpiMode::Passthrough,
            nranks,
            MpiSessionConfig::default(),
            None,
        )
    }

    /// Recording session with the classic one-stream-per-rank layout.
    #[must_use]
    pub fn record(nranks: u32) -> Self {
        Self::record_with(nranks, MpiSessionConfig::default())
    }

    /// Recording session with explicit configuration (domain count or
    /// plan).
    #[must_use]
    pub fn record_with(nranks: u32, cfg: MpiSessionConfig) -> Self {
        Self::build(MpiMode::Record, nranks, cfg, None)
    }

    /// Replay session over a recorded trace. The domain count and plan
    /// always come from the trace (a trace can only replay against the
    /// partition it was recorded with).
    ///
    /// # Panics
    /// Panics when the trace is structurally inconsistent; use
    /// [`MpiSession::try_replay`] for the fallible form.
    #[must_use]
    pub fn replay(trace: MpiTrace) -> Self {
        Self::try_replay(trace).expect("structurally valid rmpi trace")
    }

    /// Fallible form of [`MpiSession::replay`].
    pub fn try_replay(trace: MpiTrace) -> Result<Self, TraceError> {
        trace.validate()?;
        let nranks = trace.nranks();
        let cfg = MpiSessionConfig {
            domains: trace.domains,
            plan: trace.plan.clone(),
            ..MpiSessionConfig::default()
        };
        Ok(Self::build(MpiMode::Replay, nranks, cfg, Some(trace)))
    }

    fn build(mode: MpiMode, nranks: u32, cfg: MpiSessionConfig, trace: Option<MpiTrace>) -> Self {
        let domains = cfg.effective_domains();
        let streams = (nranks * domains) as usize;
        MpiSession {
            mode,
            nranks,
            domains,
            plan: cfg.plan,
            history_capacity: cfg.history_capacity,
            flight: cfg.flight.map(|n| n.max(1)),
            logs: (0..streams).map(|_| Mutex::new(Vec::new())).collect(),
            waitany_logs: (0..streams).map(|_| Mutex::new(Vec::new())).collect(),
            recv_bases: (0..streams).map(|_| AtomicU64::new(0)).collect(),
            waitany_bases: (0..streams).map(|_| AtomicU64::new(0)).collect(),
            cursors: (0..streams).map(|_| AtomicUsize::new(0)).collect(),
            waitany_cursors: (0..streams).map(|_| AtomicUsize::new(0)).collect(),
            history: (0..streams).map(|_| Mutex::new(VecDeque::new())).collect(),
            trace,
        }
    }

    /// Session mode.
    #[must_use]
    pub fn mode(&self) -> MpiMode {
        self.mode
    }

    /// Number of ranks.
    #[must_use]
    pub fn nranks(&self) -> u32 {
        self.nranks
    }

    /// Number of receive-order domains per rank (≥ 1).
    #[must_use]
    pub fn domains(&self) -> u32 {
        self.domains
    }

    /// The session's receive-site plan, if it runs with one.
    #[must_use]
    pub fn plan(&self) -> Option<&DomainPlan> {
        self.plan.as_ref()
    }

    /// The receive-order domain `site` belongs to — a fixed partition
    /// record and replay compute identically.
    #[inline]
    #[must_use]
    pub fn domain_of(&self, site: SiteId) -> u32 {
        domain_of(self.domains, self.plan.as_ref(), site)
    }

    /// A [`DomainPlan`] for the per-rank **thread** sessions of a hybrid
    /// run that makes the thread gate's partition agree with this
    /// session's: receives sharing one `(rank × domain)` receive stream
    /// then share one thread-gate domain, so their relative pop order is
    /// enforced by the thread gate (the hybrid soundness contract —
    /// without it, two thread-gate domains could consume one receive
    /// stream out of recorded order).
    #[must_use]
    pub fn matching_thread_plan(&self) -> DomainPlan {
        self.plan
            .clone()
            .unwrap_or_else(|| DomainPlan::new(self.domains))
    }

    fn stream_index(&self, rank: u32, dom: u32) -> usize {
        debug_assert!(rank < self.nranks && dom < self.domains);
        (rank * self.domains + dom) as usize
    }

    fn push_history(&self, stream: usize, ev: RecvEvent) {
        if self.history_capacity == 0 {
            return;
        }
        let mut h = self.history[stream].lock();
        if h.len() == self.history_capacity {
            h.pop_front();
        }
        h.push_back(ev);
    }

    fn history_snapshot(&self, stream: usize) -> Vec<RecvEvent> {
        // Newest first, like the thread gate's divergence history.
        self.history[stream].lock().iter().rev().copied().collect()
    }

    /// Record one matched wildcard receive into `(rank, dom)` (record mode
    /// only). With a flight window the stream retains only the last
    /// `window` events; the evicted count accumulates into the
    /// checkpoint base for this stream.
    pub fn log_recv(&self, rank: u32, dom: u32, src: u32, tag: u32) {
        if self.mode == MpiMode::Record {
            let stream = self.stream_index(rank, dom);
            let mut log = self.logs[stream].lock();
            log.push(RecvEvent { src, tag });
            if let Some(window) = self.flight {
                let excess = log.len().saturating_sub(window as usize);
                if excess > 0 {
                    log.drain(..excess);
                    self.recv_bases[stream].fetch_add(excess as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Replay mode: the `(src, tag)` the next wildcard receive of
    /// `(rank, dom)` must match.
    pub fn next_recv(&self, rank: u32, dom: u32) -> Result<Option<RecvEvent>, MpiError> {
        if self.mode != MpiMode::Replay {
            return Ok(None);
        }
        let trace = self.trace.as_ref().expect("replay has trace");
        let stream = self.stream_index(rank, dom);
        let pos = self.cursors[stream].fetch_add(1, Ordering::Relaxed);
        // Windowed replay: the first `base` receives of this stream were
        // evicted before the dump — free-run them (no enforcement is
        // possible) and start enforcing at the retained tail.
        let base = trace
            .checkpoint
            .as_ref()
            .map_or(0, |cp| cp.recv_bases[stream] as usize);
        let Some(pos) = pos.checked_sub(base) else {
            return Ok(None);
        };
        match trace.recv_stream(rank, dom).get(pos).copied() {
            Some(ev) => {
                self.push_history(stream, ev);
                Ok(Some(ev))
            }
            None => Err(MpiError::ReplayExhausted {
                rank,
                domain: dom,
                consumed: trace.recv_stream(rank, dom).len(),
                history: self.history_snapshot(stream),
            }),
        }
    }

    /// Record one `waitany` completion choice into `(rank, dom)` (record
    /// mode only). Flight windows bound this stream exactly like
    /// [`MpiSession::log_recv`].
    pub fn log_waitany(&self, rank: u32, dom: u32, index: u32) {
        if self.mode == MpiMode::Record {
            let stream = self.stream_index(rank, dom);
            let mut log = self.waitany_logs[stream].lock();
            log.push(index);
            if let Some(window) = self.flight {
                let excess = log.len().saturating_sub(window as usize);
                if excess > 0 {
                    log.drain(..excess);
                    self.waitany_bases[stream].fetch_add(excess as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Replay mode: the request index the next `waitany` of `(rank, dom)`
    /// must complete.
    pub fn next_waitany(&self, rank: u32, dom: u32) -> Result<Option<u32>, MpiError> {
        if self.mode != MpiMode::Replay {
            return Ok(None);
        }
        let trace = self.trace.as_ref().expect("replay has trace");
        let stream = self.stream_index(rank, dom);
        let pos = self.waitany_cursors[stream].fetch_add(1, Ordering::Relaxed);
        let base = trace
            .checkpoint
            .as_ref()
            .map_or(0, |cp| cp.waitany_bases[stream] as usize);
        let Some(pos) = pos.checked_sub(base) else {
            return Ok(None);
        };
        match trace.waitany_stream(rank, dom).get(pos).copied() {
            Some(idx) => Ok(Some(idx)),
            None => Err(MpiError::WaitanyExhausted {
                rank,
                domain: dom,
                consumed: trace.waitany_stream(rank, dom).len(),
            }),
        }
    }

    /// Extract the recorded trace (record mode). Flight sessions stamp a
    /// [`DumpTrigger::Manual`] checkpoint; use
    /// [`MpiSession::finish_with_trigger`] to record why the window was
    /// materialized.
    #[must_use]
    pub fn finish(&self) -> MpiTrace {
        self.finish_with_trigger(DumpTrigger::Manual)
    }

    /// [`MpiSession::finish`], naming the dump trigger stamped into the
    /// checkpoint of a flight (bounded-retention) recording. The trigger
    /// is ignored for unbounded sessions, which carry no checkpoint.
    #[must_use]
    pub fn finish_with_trigger(&self, trigger: DumpTrigger) -> MpiTrace {
        let checkpoint = self.flight.map(|window| MpiCheckpoint {
            window,
            trigger,
            recv_bases: self
                .recv_bases
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            waitany_bases: self
                .waitany_bases
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        });
        MpiTrace {
            domains: self.domains,
            plan: self.plan.clone(),
            recv_streams: self
                .logs
                .iter()
                .map(|l| std::mem::take(&mut *l.lock()))
                .collect(),
            waitany_streams: self
                .waitany_logs
                .iter()
                .map(|l| std::mem::take(&mut *l.lock()))
                .collect(),
            checkpoint,
        }
    }

    /// Replay mode: whether every `(rank × domain)` stream consumed its
    /// full recording. See [`MpiSession::divergences`] for which streams
    /// did not, with history.
    #[must_use]
    pub fn fully_consumed(&self) -> Option<bool> {
        self.trace.as_ref()?;
        Some(self.divergences().is_empty())
    }

    /// Replay mode: every under-consumed stream, named by rank **and**
    /// domain with its last-N admitted-event history (empty in other
    /// modes and when replay consumed everything). Over-consumption
    /// surfaces as [`MpiError::ReplayExhausted`] at the offending call
    /// instead.
    #[must_use]
    pub fn divergences(&self) -> Vec<MpiDivergence> {
        let Some(trace) = self.trace.as_ref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for rank in 0..self.nranks {
            for dom in 0..self.domains {
                let stream = self.stream_index(rank, dom);
                // Windowed replays free-run the first `base` calls of a
                // stream; only calls past the base consume the recording.
                let (recv_base, wa_base) = trace.checkpoint.as_ref().map_or((0, 0), |cp| {
                    (
                        cp.recv_bases[stream] as usize,
                        cp.waitany_bases[stream] as usize,
                    )
                });
                let recv_recorded = trace.recv_stream(rank, dom).len();
                let recv_consumed = self.cursors[stream]
                    .load(Ordering::Relaxed)
                    .saturating_sub(recv_base)
                    .min(recv_recorded);
                let waitany_recorded = trace.waitany_stream(rank, dom).len();
                let waitany_consumed = self.waitany_cursors[stream]
                    .load(Ordering::Relaxed)
                    .saturating_sub(wa_base)
                    .min(waitany_recorded);
                if recv_consumed < recv_recorded || waitany_consumed < waitany_recorded {
                    out.push(MpiDivergence {
                        rank,
                        domain: dom,
                        recv_consumed,
                        recv_recorded,
                        waitany_consumed,
                        waitany_recorded,
                        history: self.history_snapshot(stream),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_log_and_finish() {
        let s = MpiSession::record(2);
        s.log_recv(0, 0, 1, 7);
        s.log_recv(0, 0, 1, 8);
        s.log_recv(1, 0, 0, 7);
        let trace = s.finish();
        assert_eq!(trace.nranks(), 2);
        assert_eq!(trace.domains, 1);
        assert_eq!(trace.total_events(), 3);
        assert_eq!(trace.recv_stream(0, 0)[1], RecvEvent { src: 1, tag: 8 });
    }

    #[test]
    fn passthrough_logs_nothing() {
        let s = MpiSession::passthrough(1);
        s.log_recv(0, 0, 0, 0);
        assert_eq!(s.finish().total_events(), 0);
        assert_eq!(s.next_recv(0, 0).unwrap(), None);
    }

    #[test]
    fn replay_serves_events_in_order_then_exhausts_with_diagnostics() {
        let trace = MpiTrace::single(
            vec![vec![
                RecvEvent { src: 2, tag: 5 },
                RecvEvent { src: 1, tag: 5 },
            ]],
            vec![vec![]],
        );
        let s = MpiSession::replay(trace);
        assert_eq!(s.fully_consumed(), Some(false));
        assert_eq!(
            s.next_recv(0, 0).unwrap(),
            Some(RecvEvent { src: 2, tag: 5 })
        );
        assert_eq!(
            s.next_recv(0, 0).unwrap(),
            Some(RecvEvent { src: 1, tag: 5 })
        );
        assert_eq!(s.fully_consumed(), Some(true));
        assert!(s.divergences().is_empty());
        // The exhaustion error names the rank AND domain and carries the
        // admitted history, newest first.
        match s.next_recv(0, 0) {
            Err(MpiError::ReplayExhausted {
                rank: 0,
                domain: 0,
                consumed: 2,
                history,
            }) => {
                assert_eq!(
                    history,
                    vec![RecvEvent { src: 1, tag: 5 }, RecvEvent { src: 2, tag: 5 }]
                );
            }
            other => panic!("expected exhaustion with history, got {other:?}"),
        }
        let err = s.next_recv(0, 0).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("rank 0 domain 0"), "{text}");
        assert!(text.contains("(src 1, tag 5)"), "{text}");
    }

    #[test]
    fn divergences_name_under_consumed_streams() {
        let mut trace = MpiTrace::single(vec![vec![RecvEvent { src: 1, tag: 0 }]], vec![vec![0]]);
        trace.recv_streams.push(vec![RecvEvent { src: 0, tag: 3 }]);
        trace.waitany_streams.push(vec![]);
        trace.domains = 2;
        trace.validate().unwrap();
        let s = MpiSession::replay(trace);
        assert_eq!(s.nranks(), 1);
        // Consume only domain 0's receive; its waitany and all of domain 1
        // stay untouched.
        let _ = s.next_recv(0, 0).unwrap();
        let divs = s.divergences();
        assert_eq!(divs.len(), 2);
        assert_eq!((divs[0].rank, divs[0].domain), (0, 0));
        assert_eq!(divs[0].recv_consumed, 1);
        assert_eq!(divs[0].waitany_consumed, 0);
        assert_eq!(divs[0].waitany_recorded, 1);
        assert_eq!((divs[1].rank, divs[1].domain), (0, 1));
        assert_eq!(divs[1].recv_consumed, 0);
        assert_eq!(divs[1].recv_recorded, 1);
        let text = divs[1].to_string();
        assert!(text.contains("rank 0 domain 1"), "{text}");
        assert_eq!(s.fully_consumed(), Some(false));
    }

    #[test]
    fn waitany_exhaustion_names_rank_and_domain() {
        let s = MpiSession::replay(MpiTrace::single(vec![vec![]], vec![vec![]]));
        match s.next_waitany(0, 0) {
            Err(MpiError::WaitanyExhausted {
                rank: 0,
                domain: 0,
                consumed: 0,
            }) => {}
            other => panic!("expected waitany exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn multi_domain_session_routes_by_site() {
        let cfg = MpiSessionConfig::with_domains(4);
        let s = MpiSession::record_with(2, cfg);
        assert_eq!(s.domains(), 4);
        // The partition is total, stable, and matches the hashed fallback.
        for tag in 0..64u32 {
            let site = recv_site(0, crate::ANY_SOURCE, tag);
            let dom = s.domain_of(site);
            assert!(dom < 4);
            assert_eq!(dom, DomainPlan::hashed_fallback(4, site));
            assert_eq!(dom, s.domain_of(site));
        }
        // Record into two different domains; the trace keeps them apart.
        s.log_recv(0, 1, 3, 9);
        s.log_recv(0, 2, 4, 9);
        s.log_recv(1, 1, 0, 9);
        let trace = s.finish();
        assert_eq!(trace.domains, 4);
        assert_eq!(trace.nranks(), 2);
        assert_eq!(trace.recv_stream(0, 1).len(), 1);
        assert_eq!(trace.recv_stream(0, 2).len(), 1);
        assert_eq!(trace.recv_stream(0, 0).len(), 0);
        assert_eq!(trace.rank_events(0), 2);
        assert_eq!(trace.rank_events(1), 1);
    }

    #[test]
    fn planned_session_routes_by_plan_and_replay_reconstructs_it() {
        let a = recv_site(0, crate::ANY_SOURCE, 1);
        let b = recv_site(0, crate::ANY_SOURCE, 2);
        let plan = DomainPlan::with_assignments(2, [(a, 1), (b, 0)]);
        let cfg = MpiSessionConfig {
            plan: Some(plan.clone()),
            ..MpiSessionConfig::default()
        };
        let s = MpiSession::record_with(1, cfg);
        assert_eq!(s.domains(), 2);
        assert_eq!(s.domain_of(a), 1);
        assert_eq!(s.domain_of(b), 0);
        s.log_recv(0, 1, 5, 1);
        let trace = s.finish();
        assert_eq!(trace.plan.as_ref(), Some(&plan));
        assert_eq!(trace.domain_of(a), 1);

        let replay = MpiSession::replay(trace);
        assert_eq!(replay.domain_of(a), 1);
        assert_eq!(replay.domain_of(b), 0);
        assert_eq!(replay.matching_thread_plan(), plan);
    }

    #[test]
    fn matching_thread_plan_mirrors_hashed_partition() {
        let s = MpiSession::record_with(1, MpiSessionConfig::with_domains(3));
        let plan = s.matching_thread_plan();
        assert_eq!(plan.domains(), 3);
        assert!(plan.is_empty(), "plan-less sessions mirror via empty plan");
        for tag in 0..32 {
            let site = recv_site(0, crate::ANY_SOURCE, tag);
            assert_eq!(plan.domain_of(site), s.domain_of(site));
        }
    }

    #[test]
    fn sites_are_stable_and_spread() {
        assert_eq!(recv_site(0, 1, 2), recv_site(0, 1, 2));
        assert_ne!(recv_site(0, 1, 2), recv_site(0, 1, 3));
        assert_ne!(recv_site(0, 1, 2), recv_site(1, 1, 2));
        let keys = [(1u32, 2u32), (3, 4)];
        assert_eq!(waitany_site(0, keys), waitany_site(0, keys));
        assert_ne!(
            waitany_site(0, [(1u32, 2u32), (3, 4)]),
            waitany_site(0, [(3u32, 4u32), (1, 2)]),
            "fold is order-sensitive"
        );
    }

    #[test]
    fn trace_validate_rejects_inconsistency() {
        let mut t = MpiTrace::single(vec![vec![]], vec![vec![]]);
        t.domains = 0;
        assert!(t.validate().is_err());
        let mut t = MpiTrace::single(vec![vec![], vec![]], vec![vec![], vec![]]);
        t.domains = 2;
        t.waitany_streams.pop();
        assert!(t.validate().is_err());
        let mut t = MpiTrace::single(vec![vec![], vec![]], vec![vec![], vec![]]);
        t.domains = 2;
        t.plan = Some(DomainPlan::new(3));
        assert!(t.validate().is_err(), "plan domain count must match");
        t.plan = Some(DomainPlan::new(2));
        t.validate().unwrap();
    }

    #[test]
    fn trace_dir_roundtrip_single_domain() {
        let trace = MpiTrace::single(
            vec![
                (0..100).map(|i| RecvEvent { src: i % 3, tag: 1 }).collect(),
                vec![],
                vec![RecvEvent { src: 0, tag: 9 }],
            ],
            vec![vec![0, 1, 0], vec![], vec![2]],
        );
        let dir = std::env::temp_dir().join(format!("rmpi-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        trace.save_dir(&dir).unwrap();
        let back = MpiTrace::load_dir(&dir).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_dir_roundtrip_multi_domain_with_plan() {
        let site = recv_site(0, crate::ANY_SOURCE, 7);
        let plan = DomainPlan::with_assignments(2, [(site, 1)]);
        let trace = MpiTrace {
            domains: 2,
            plan: Some(plan),
            recv_streams: vec![
                vec![RecvEvent { src: 1, tag: 0 }],
                vec![RecvEvent { src: 2, tag: 7 }, RecvEvent { src: 1, tag: 7 }],
                vec![],
                vec![RecvEvent { src: 0, tag: 9 }],
            ],
            waitany_streams: vec![vec![1, 0], vec![], vec![], vec![2]],
            checkpoint: None,
        };
        let dir = std::env::temp_dir().join(format!("rmpi-trace-md-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        trace.save_dir(&dir).unwrap();
        let back = MpiTrace::load_dir(&dir).unwrap();
        assert_eq!(back, trace);

        // Re-saving a single-domain trace over the same directory scrubs
        // the stale multi-domain files and drops back to the v1 layout.
        let single = MpiTrace::single(vec![vec![RecvEvent { src: 3, tag: 3 }]], vec![vec![]]);
        single.save_dir(&dir).unwrap();
        assert!(!dir.join("rank_0.d0.rmpi").exists(), "stale file scrubbed");
        assert!(!dir.join("plan.rmpi").exists(), "stale plan scrubbed");
        assert_eq!(MpiTrace::load_dir(&dir).unwrap(), single);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn golden_single_domain_layout_is_byte_identical_to_legacy() {
        // The pre-domain (PR ≤ 4) writer produced exactly:
        //   manifest.txt       "rmpi-trace v1\nranks {N}\n"
        //   rank_{r}.rmpi          encode_events(recv stream)
        //   rank_{r}.waitany.rmpi  encode_events(indices as (idx, 0))
        // A D = 1 trace must keep every one of those bytes — old trace
        // directories and old tooling must notice no change.
        let trace = MpiTrace::single(
            vec![
                vec![RecvEvent { src: 2, tag: 5 }, RecvEvent { src: 1, tag: 5 }],
                vec![RecvEvent { src: 0, tag: 1 }],
            ],
            vec![vec![1, 0], vec![]],
        );
        let dir = std::env::temp_dir().join(format!("rmpi-golden-v1-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        trace.save_dir(&dir).unwrap();

        assert_eq!(
            std::fs::read(dir.join("manifest.txt")).unwrap(),
            b"rmpi-trace v1\nranks 2\n".to_vec()
        );
        for (rank, stream) in trace.recv_streams.iter().enumerate() {
            assert_eq!(
                std::fs::read(dir.join(format!("rank_{rank}.rmpi"))).unwrap(),
                encode_events(stream),
                "rank {rank} recv bytes"
            );
            let wa: Vec<RecvEvent> = trace.waitany_streams[rank]
                .iter()
                .map(|&i| RecvEvent { src: i, tag: 0 })
                .collect();
            assert_eq!(
                std::fs::read(dir.join(format!("rank_{rank}.waitany.rmpi"))).unwrap(),
                encode_events(&wa),
                "rank {rank} waitany bytes"
            );
        }
        // Exactly the legacy file set — no domain files, no plan section.
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "manifest.txt",
                "rank_0.rmpi",
                "rank_0.waitany.rmpi",
                "rank_1.rmpi",
                "rank_1.waitany.rmpi",
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn golden_pre_domain_directory_loads_unchanged() {
        // A directory written byte-by-byte the way the pre-domain code did
        // it (no `domains` manifest line, per-rank files) must load into a
        // D = 1 trace and replay through the same session API.
        let dir = std::env::temp_dir().join(format!("rmpi-golden-old-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.txt"), "rmpi-trace v1\nranks 1\n").unwrap();
        let stream = vec![RecvEvent { src: 1, tag: 4 }, RecvEvent { src: 2, tag: 4 }];
        std::fs::write(dir.join("rank_0.rmpi"), encode_events(&stream)).unwrap();
        // Old directories may predate waitany files entirely.
        let trace = MpiTrace::load_dir(&dir).unwrap();
        assert_eq!(trace.domains, 1);
        assert_eq!(trace.plan, None);
        assert_eq!(trace.recv_stream(0, 0), &stream[..]);
        assert_eq!(trace.waitany_stream(0, 0), &[] as &[u32]);
        let s = MpiSession::replay(trace);
        assert_eq!(s.next_recv(0, 0).unwrap(), Some(stream[0]));
        assert_eq!(s.next_recv(0, 0).unwrap(), Some(stream[1]));
        assert_eq!(s.fully_consumed(), Some(true));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn golden_multi_domain_manifest_and_sections_pinned() {
        // Pin the v2 layout: manifest lines, per-(rank × domain) file
        // names, per-stream bytes through the event codec, and the plan
        // section through the core codec.
        let site = recv_site(0, crate::ANY_SOURCE, 3);
        let plan = DomainPlan::with_assignments(2, [(site, 1)]);
        let trace = MpiTrace {
            domains: 2,
            plan: Some(plan.clone()),
            recv_streams: vec![
                vec![RecvEvent { src: 1, tag: 0 }],
                vec![RecvEvent { src: 1, tag: 3 }],
                vec![],
                vec![],
            ],
            waitany_streams: vec![vec![0], vec![], vec![], vec![]],
            checkpoint: None,
        };
        let dir = std::env::temp_dir().join(format!("rmpi-golden-v2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        trace.save_dir(&dir).unwrap();

        assert_eq!(
            std::fs::read(dir.join("manifest.txt")).unwrap(),
            b"rmpi-trace v2\nranks 2\ndomains 2\nplan 1\n".to_vec()
        );
        for rank in 0..2u32 {
            for dom in 0..2u32 {
                assert_eq!(
                    std::fs::read(dir.join(format!("rank_{rank}.d{dom}.rmpi"))).unwrap(),
                    encode_events(trace.recv_stream(rank, dom)),
                );
            }
        }
        assert_eq!(
            std::fs::read(dir.join("plan.rmpi")).unwrap(),
            encode_plan(&plan).to_vec(),
            "plan section reuses the core codec bytes"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flight_session_bounds_retention_and_stamps_bases() {
        let cfg = MpiSessionConfig {
            flight: Some(3),
            ..MpiSessionConfig::default()
        };
        let s = MpiSession::record_with(1, cfg);
        for i in 0..10u32 {
            s.log_recv(0, 0, i, 7);
            s.log_waitany(0, 0, i);
        }
        let trace = s.finish_with_trigger(DumpTrigger::Panic);
        trace.validate().unwrap();
        // Only the last 3 events survive; the 7 evicted ones are counted.
        assert_eq!(trace.recv_stream(0, 0).len(), 3);
        assert_eq!(trace.recv_stream(0, 0)[0].src, 7);
        assert_eq!(trace.waitany_stream(0, 0), &[7, 8, 9]);
        let cp = trace.checkpoint.as_ref().unwrap();
        assert_eq!(cp.window, 3);
        assert_eq!(cp.trigger, DumpTrigger::Panic);
        assert_eq!(cp.recv_bases, vec![7]);
        assert_eq!(cp.waitany_bases, vec![7]);
    }

    #[test]
    fn windowed_replay_free_runs_the_evicted_prefix() {
        // Record 6 receives under a window of 2, then replay: the first 4
        // calls free-run (Ok(None), passthrough matching), the last 2 are
        // enforced against the retained tail.
        let cfg = MpiSessionConfig {
            flight: Some(2),
            ..MpiSessionConfig::default()
        };
        let rec = MpiSession::record_with(1, cfg);
        for i in 0..6u32 {
            rec.log_recv(0, 0, i, 1);
        }
        let trace = rec.finish();
        let s = MpiSession::replay(trace);
        for _ in 0..4 {
            assert_eq!(s.next_recv(0, 0).unwrap(), None, "evicted prefix free-runs");
        }
        assert_eq!(
            s.next_recv(0, 0).unwrap(),
            Some(RecvEvent { src: 4, tag: 1 })
        );
        assert_eq!(s.fully_consumed(), Some(false), "tail not fully consumed");
        assert_eq!(
            s.next_recv(0, 0).unwrap(),
            Some(RecvEvent { src: 5, tag: 1 })
        );
        assert_eq!(s.fully_consumed(), Some(true));
        assert!(s.next_recv(0, 0).is_err(), "past the tail is exhaustion");
    }

    #[test]
    fn flight_trace_roundtrips_through_the_v3_dir_layout() {
        let cfg = MpiSessionConfig {
            domains: 2,
            flight: Some(2),
            ..MpiSessionConfig::default()
        };
        let s = MpiSession::record_with(2, cfg);
        for i in 0..5u32 {
            s.log_recv(0, 1, i, 3);
        }
        s.log_recv(1, 0, 0, 9);
        s.log_waitany(0, 0, 2);
        let trace = s.finish_with_trigger(DumpTrigger::Divergence);
        let dir = std::env::temp_dir().join(format!("rmpi-flight-v3-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        trace.save_dir(&dir).unwrap();
        let manifest = std::fs::read_to_string(dir.join("manifest.txt")).unwrap();
        assert_eq!(manifest, "rmpi-trace v3\nranks 2\ndomains 2\nflight 1\n");
        assert!(dir.join("checkpoint.rmpi").exists());
        let back = MpiTrace::load_dir(&dir).unwrap();
        assert_eq!(back, trace);
        let cp = back.checkpoint.unwrap();
        assert_eq!(cp.trigger, DumpTrigger::Divergence);
        assert_eq!(cp.recv_bases, vec![0, 3, 0, 0], "stream (0, d1) evicted 3");

        // Re-saving an unbounded trace over the dump scrubs the
        // checkpoint section and drops back to the v1 layout.
        let single = MpiTrace::single(vec![vec![RecvEvent { src: 3, tag: 3 }]], vec![vec![]]);
        single.save_dir(&dir).unwrap();
        assert!(!dir.join("checkpoint.rmpi").exists(), "stale dump scrubbed");
        assert_eq!(MpiTrace::load_dir(&dir).unwrap(), single);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_codec_rejects_corruption() {
        let cp = MpiCheckpoint {
            window: 4,
            trigger: DumpTrigger::Race,
            recv_bases: vec![1, 2],
            waitany_bases: vec![0, 3],
        };
        assert_eq!(MpiCheckpoint::decode(&cp.encode()).unwrap(), cp);
        assert!(MpiCheckpoint::decode(b"RMCP").is_err(), "truncated");
        assert!(
            MpiCheckpoint::decode(b"XXXX\x01\x00\x04\x00").is_err(),
            "magic"
        );
        let mut bytes = cp.encode();
        bytes[5] = 9; // unknown trigger code
        assert!(MpiCheckpoint::decode(&bytes).is_err());
        let mut bytes = cp.encode();
        bytes.push(0);
        assert!(MpiCheckpoint::decode(&bytes).is_err(), "trailing bytes");
        // A checkpoint whose base arity disagrees with the trace fails
        // trace validation even when the section itself decodes.
        let mut t = MpiTrace::single(vec![vec![]], vec![vec![]]);
        t.checkpoint = Some(cp);
        assert!(t.validate().is_err());
    }
}
