//! A brute-force happens-before oracle for differential testing.
//!
//! Keeps the *entire* access history with full vector-clock snapshots and
//! compares every new access against every previous access to the same
//! cell — O(n²) and memory-hungry, but obviously correct. Property tests
//! check FastTrack against it on random event streams.

use crate::fasttrack::Access;
use crate::vc::VectorClock;
use reomp_core::SiteId;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
struct HistAccess {
    tid: u32,
    vc: VectorClock,
    access: Access,
    site: SiteId,
}

/// The oracle detector. Mirrors the [`crate::fasttrack::FastTrack`] event
/// API so tests can drive both with the same stream.
#[derive(Debug)]
pub struct Oracle {
    threads: HashMap<u32, VectorClock>,
    locks: HashMap<u64, VectorClock>,
    barriers: HashMap<u64, VectorClock>,
    history: HashMap<u64, Vec<HistAccess>>,
    racy_addrs: HashSet<u64>,
    racy_sites: HashSet<SiteId>,
    nthreads: u32,
}

impl Oracle {
    /// Oracle for a team of `nthreads`.
    #[must_use]
    pub fn new(nthreads: u32) -> Self {
        Oracle {
            threads: HashMap::new(),
            locks: HashMap::new(),
            barriers: HashMap::new(),
            history: HashMap::new(),
            racy_addrs: HashSet::new(),
            racy_sites: HashSet::new(),
            nthreads,
        }
    }

    fn thread_mut(&mut self, tid: u32) -> &mut VectorClock {
        let n = self.nthreads;
        self.threads.entry(tid).or_insert_with(|| {
            let mut vc = VectorClock::new(n);
            vc.tick(tid);
            vc
        })
    }

    /// See [`crate::fasttrack::FastTrack::fork`].
    pub fn fork(&mut self, parent: u32, child: u32) {
        let p = self.thread_mut(parent).clone();
        self.thread_mut(child).join(&p);
        self.thread_mut(parent).tick(parent);
    }

    /// See [`crate::fasttrack::FastTrack::join`].
    pub fn join(&mut self, parent: u32, child: u32) {
        let c = {
            let vc = self.thread_mut(child);
            vc.tick(child);
            vc.clone()
        };
        self.thread_mut(parent).join(&c);
    }

    /// See [`crate::fasttrack::FastTrack::acquire`].
    pub fn acquire(&mut self, tid: u32, lock: u64) {
        if let Some(l) = self.locks.get(&lock) {
            let l = l.clone();
            self.thread_mut(tid).join(&l);
        } else {
            let _ = self.thread_mut(tid);
        }
    }

    /// See [`crate::fasttrack::FastTrack::release`].
    pub fn release(&mut self, tid: u32, lock: u64) {
        let vc = self.thread_mut(tid).clone();
        self.locks.insert(lock, vc);
        self.thread_mut(tid).tick(tid);
    }

    /// See [`crate::fasttrack::FastTrack::barrier_arrive`].
    pub fn barrier_arrive(&mut self, tid: u32, generation: u64) {
        let vc = self.thread_mut(tid).clone();
        self.barriers
            .entry(generation)
            .or_insert_with(|| VectorClock::new(self.nthreads))
            .join(&vc);
        self.thread_mut(tid).tick(tid);
    }

    /// See [`crate::fasttrack::FastTrack::barrier_depart`].
    pub fn barrier_depart(&mut self, tid: u32, generation: u64) {
        if let Some(b) = self.barriers.get(&generation) {
            let b = b.clone();
            self.thread_mut(tid).join(&b);
        }
    }

    /// Record an access and compare against the entire history of `addr`.
    pub fn access(&mut self, tid: u32, addr: u64, site: SiteId, access: Access) {
        let vc = self.thread_mut(tid).clone();
        let hist = self.history.entry(addr).or_default();
        for prev in hist.iter() {
            let conflicting =
                matches!(access, Access::Write) || matches!(prev.access, Access::Write);
            if !conflicting || prev.tid == tid {
                continue;
            }
            // prev happens-before cur iff prev's own component is visible.
            let ordered = prev.vc.get(prev.tid) <= vc.get(prev.tid);
            if !ordered {
                self.racy_addrs.insert(addr);
                self.racy_sites.insert(prev.site);
                self.racy_sites.insert(site);
            }
        }
        hist.push(HistAccess {
            tid,
            vc,
            access,
            site,
        });
    }

    /// Cells with at least one race.
    #[must_use]
    pub fn racy_addrs(&self) -> &HashSet<u64> {
        &self.racy_addrs
    }

    /// Sites involved in at least one race.
    #[must_use]
    pub fn racy_sites(&self) -> &HashSet<SiteId> {
        &self.racy_sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasttrack::FastTrack;
    use ompr::events::MAIN_TID;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Acquire(u8),
        Release(u8),
        Read(u8),
        Write(u8),
        Barrier,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..2).prop_map(Op::Acquire),
            (0u8..2).prop_map(Op::Release),
            (0u8..3).prop_map(Op::Read),
            (0u8..3).prop_map(Op::Write),
            Just(Op::Barrier),
        ]
    }

    /// Drive both detectors with an identical interleaved schedule and
    /// compare the racy-address sets. Threads take turns round-robin; lock
    /// operations are sanitised into acquire/release pairs per thread.
    fn run_both(per_thread_ops: &[Vec<Op>]) -> (HashSet<u64>, HashSet<u64>) {
        let n = per_thread_ops.len() as u32;
        let mut ft = FastTrack::new(n);
        let mut oracle = Oracle::new(n);
        for t in 0..n {
            ft.fork(MAIN_TID, t);
            oracle.fork(MAIN_TID, t);
        }
        let mut held: Vec<HashSet<u8>> = vec![HashSet::new(); n as usize];
        let mut barrier_gen = 0u64;
        let max_len = per_thread_ops.iter().map(Vec::len).max().unwrap_or(0);
        for step in 0..max_len {
            // Interleave threads: visit them in rotating order.
            for off in 0..n {
                let t = (off + step as u32) % n;
                let Some(op) = per_thread_ops[t as usize].get(step) else {
                    continue;
                };
                match op {
                    Op::Acquire(l) => {
                        if held[t as usize].insert(*l) {
                            ft.acquire(t, u64::from(*l));
                            oracle.acquire(t, u64::from(*l));
                        }
                    }
                    Op::Release(l) => {
                        if held[t as usize].remove(l) {
                            ft.release(t, u64::from(*l));
                            oracle.release(t, u64::from(*l));
                        }
                    }
                    Op::Read(a) => {
                        let site = SiteId(u64::from(*a) + 1);
                        ft.access(t, u64::from(*a), site, Access::Read);
                        oracle.access(t, u64::from(*a), site, Access::Read);
                    }
                    Op::Write(a) => {
                        let site = SiteId(u64::from(*a) + 100);
                        ft.access(t, u64::from(*a), site, Access::Write);
                        oracle.access(t, u64::from(*a), site, Access::Write);
                    }
                    Op::Barrier => {
                        // Model as a global synchronization of all threads
                        // at a fresh generation (simplification: applied
                        // immediately for every thread).
                        for tt in 0..n {
                            ft.barrier_arrive(tt, barrier_gen);
                            oracle.barrier_arrive(tt, barrier_gen);
                        }
                        for tt in 0..n {
                            ft.barrier_depart(tt, barrier_gen);
                            oracle.barrier_depart(tt, barrier_gen);
                        }
                        barrier_gen += 1;
                    }
                }
            }
        }
        let ft_addrs: HashSet<u64> = ft.races().iter().map(|r| r.addr).collect();
        (ft_addrs, oracle.racy_addrs().clone())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn fasttrack_matches_oracle_on_racy_addrs(
            ops in proptest::collection::vec(
                proptest::collection::vec(op_strategy(), 0..12),
                1..4,
            )
        ) {
            let (ft, oracle) = run_both(&ops);
            // FastTrack detects *at least one* race per racy variable
            // (like TSan, it reports the first conflicting pair), and it
            // never reports a variable the oracle considers clean.
            prop_assert_eq!(&ft, &oracle, "fasttrack {:?} vs oracle {:?}", ft, oracle);
        }
    }

    #[test]
    fn oracle_basics() {
        let mut o = Oracle::new(2);
        o.fork(MAIN_TID, 0);
        o.fork(MAIN_TID, 1);
        o.access(0, 1, SiteId(1), Access::Write);
        o.access(1, 1, SiteId(2), Access::Write);
        assert!(o.racy_addrs().contains(&1));
        assert!(o.racy_sites().contains(&SiteId(1)));
    }
}
