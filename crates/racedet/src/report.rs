//! Race reports: the equivalent of the TSan report file of toolflow step (1).

use reomp_core::SiteId;
use std::collections::HashSet;
use std::fmt;

/// Which side of a racing pair an access was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessSide {
    /// The access read the location.
    Read,
    /// The access wrote the location.
    Write,
}

impl fmt::Display for AccessSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessSide::Read => "read",
            AccessSide::Write => "write",
        })
    }
}

/// One detected race: a pair of conflicting, unsynchronized accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceInfo {
    /// The memory cell involved.
    pub addr: u64,
    /// Site of the earlier access.
    pub first_site: SiteId,
    /// Side of the earlier access.
    pub first_side: AccessSide,
    /// Thread of the earlier access.
    pub first_tid: u32,
    /// Site of the later access.
    pub second_site: SiteId,
    /// Side of the later access.
    pub second_side: AccessSide,
    /// Thread of the later access.
    pub second_tid: u32,
}

/// The full report of a detection run.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Every detected race pair, in detection order (may contain repeats on
    /// the same sites from different dynamic instances).
    pub races: Vec<RaceInfo>,
    /// Number of memory events analysed.
    pub events_analysed: u64,
}

impl RaceReport {
    /// The set of sites involved in any race — the paper's "data race
    /// instances" whose hashes become thread-lock IDs (§III).
    #[must_use]
    pub fn racy_sites(&self) -> HashSet<SiteId> {
        let mut sites = HashSet::new();
        for r in &self.races {
            sites.insert(r.first_site);
            sites.insert(r.second_site);
        }
        // Site 0 is the "unknown prior access" placeholder, never a real
        // instrumentation target.
        sites.remove(&SiteId(0));
        sites
    }

    /// Distinct racy memory cells.
    #[must_use]
    pub fn racy_addrs(&self) -> HashSet<u64> {
        self.races.iter().map(|r| r.addr).collect()
    }

    /// Whether no races were found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
    }

    /// Deduplicated (site, site) race pairs.
    #[must_use]
    pub fn unique_pairs(&self) -> HashSet<(SiteId, SiteId)> {
        self.races
            .iter()
            .map(|r| {
                if r.first_site <= r.second_site {
                    (r.first_site, r.second_site)
                } else {
                    (r.second_site, r.first_site)
                }
            })
            .collect()
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "race report: {} race(s) over {} event(s), {} site(s), {} cell(s)",
            self.races.len(),
            self.events_analysed,
            self.racy_sites().len(),
            self.racy_addrs().len()
        )?;
        for (i, r) in self.races.iter().enumerate() {
            writeln!(
                f,
                "  #{i}: {} by T{} at {} races with {} by T{} at {} (cell {:#x})",
                r.first_side,
                r.first_tid,
                r.first_site,
                r.second_side,
                r.second_tid,
                r.second_site,
                r.addr
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn race(a: u64, b: u64, addr: u64) -> RaceInfo {
        RaceInfo {
            addr,
            first_site: SiteId(a),
            first_side: AccessSide::Write,
            first_tid: 0,
            second_site: SiteId(b),
            second_side: AccessSide::Write,
            second_tid: 1,
        }
    }

    #[test]
    fn racy_sites_collects_both_sides_and_drops_placeholder() {
        let report = RaceReport {
            races: vec![race(1, 2, 10), race(0, 3, 11)],
            events_analysed: 42,
        };
        let sites = report.racy_sites();
        assert!(sites.contains(&SiteId(1)));
        assert!(sites.contains(&SiteId(2)));
        assert!(sites.contains(&SiteId(3)));
        assert!(!sites.contains(&SiteId(0)));
        assert_eq!(report.racy_addrs().len(), 2);
        assert!(!report.is_clean());
    }

    #[test]
    fn unique_pairs_is_order_insensitive() {
        let report = RaceReport {
            races: vec![race(1, 2, 10), race(2, 1, 12), race(1, 2, 13)],
            events_analysed: 3,
        };
        assert_eq!(report.unique_pairs().len(), 1);
    }

    #[test]
    fn display_renders_each_race() {
        let report = RaceReport {
            races: vec![race(1, 2, 10)],
            events_analysed: 1,
        };
        let text = report.to_string();
        assert!(text.contains("1 race(s)"));
        assert!(text.contains("T0"));
        assert!(text.contains("T1"));
    }
}
