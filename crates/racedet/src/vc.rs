//! Vector clocks over team threads (plus the forking master context).

use ompr::events::MAIN_TID;
use std::fmt;

/// A vector clock with one component per team thread and one for the
/// master/forking context.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock {
    slots: Vec<u64>,
}

/// Map a thread ID to its clock slot (master context gets slot 0).
#[inline]
#[must_use]
pub fn slot_of(tid: u32) -> usize {
    if tid == MAIN_TID {
        0
    } else {
        tid as usize + 1
    }
}

impl VectorClock {
    /// Zero clock for a team of `nthreads` (capacity includes the master).
    #[must_use]
    pub fn new(nthreads: u32) -> Self {
        VectorClock {
            slots: vec![0; nthreads as usize + 1],
        }
    }

    /// Component for thread `tid`.
    #[inline]
    #[must_use]
    pub fn get(&self, tid: u32) -> u64 {
        self.slots.get(slot_of(tid)).copied().unwrap_or(0)
    }

    /// Set the component for thread `tid`.
    pub fn set(&mut self, tid: u32, value: u64) {
        let slot = slot_of(tid);
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, 0);
        }
        self.slots[slot] = value;
    }

    /// Increment this thread's own component (a release step).
    pub fn tick(&mut self, tid: u32) {
        let v = self.get(tid);
        self.set(tid, v + 1);
    }

    /// Pointwise maximum: `self ⊔= other`.
    pub fn join(&mut self, other: &VectorClock) {
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether `self ⪯ other` pointwise (`self` happens-before-or-equals).
    #[must_use]
    pub fn le(&self, other: &VectorClock) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.slots.get(i).copied().unwrap_or(0))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

/// A FastTrack *epoch*: one (thread, clock) pair — the compressed
/// representation of "last access" when a single thread dominates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Owning thread.
    pub tid: u32,
    /// That thread's clock at the access.
    pub clock: u64,
}

impl Epoch {
    /// The bottom epoch (before any access).
    pub const BOTTOM: Epoch = Epoch { tid: 0, clock: 0 };

    /// Whether the access at this epoch happens-before the thread state
    /// `vc` (`e ⪯ vc` in FastTrack notation).
    #[inline]
    #[must_use]
    pub fn le(self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.tid)
    }

    /// Whether this is the bottom epoch.
    #[inline]
    #[must_use]
    pub fn is_bottom(self) -> bool {
        self.clock == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut vc = VectorClock::new(2);
        assert_eq!(vc.get(1), 0);
        vc.tick(1);
        vc.tick(1);
        assert_eq!(vc.get(1), 2);
        assert_eq!(vc.get(0), 0);
    }

    #[test]
    fn main_tid_uses_slot_zero() {
        let mut vc = VectorClock::new(2);
        vc.tick(MAIN_TID);
        assert_eq!(vc.get(MAIN_TID), 1);
        assert_eq!(vc.get(0), 0, "team thread 0 is a different slot");
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.set(0, 5);
        b.set(0, 3);
        b.set(1, 7);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 7);
    }

    #[test]
    fn le_is_partial_order() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        assert!(a.le(&b) && b.le(&a), "zero clocks are equal");
        a.set(0, 1);
        b.set(1, 1);
        assert!(!a.le(&b), "concurrent");
        assert!(!b.le(&a), "concurrent");
        b.join(&a);
        assert!(a.le(&b));
    }

    #[test]
    fn join_grows_capacity() {
        let mut a = VectorClock::new(1);
        let mut b = VectorClock::new(4);
        b.set(3, 9);
        a.join(&b);
        assert_eq!(a.get(3), 9);
    }

    #[test]
    fn epoch_le_checks_only_owner_component() {
        let mut vc = VectorClock::new(2);
        vc.set(1, 4);
        assert!(Epoch { tid: 1, clock: 4 }.le(&vc));
        assert!(Epoch { tid: 1, clock: 3 }.le(&vc));
        assert!(!Epoch { tid: 1, clock: 5 }.le(&vc));
        assert!(Epoch::BOTTOM.le(&vc));
        assert!(Epoch::BOTTOM.is_bottom());
    }
}
