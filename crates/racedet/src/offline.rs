//! Offline (post-hoc) race analysis over recorded traces.
//!
//! Step (1) of the paper's toolflow normally runs the detector *live*,
//! alongside the application. This module re-runs the same FastTrack
//! analysis over the **recorded** order instead — reconstructed
//! symbolically from a [`TraceBundle`]'s validation columns, per-domain
//! clocks, and cross-domain edges, with **no threads spawned and no user
//! code executed**:
//!
//! * [`offline_report`] replays the bundle's merged access order through
//!   [`FastTrack`], yielding the same kind of [`RaceReport`] a live
//!   [`Detector`](crate::Detector) produces. The report can feed
//!   [`DomainPlanner`](crate::DomainPlanner) directly — a domain plan
//!   without a live probe run.
//! * [`check_plan_soundness`] then proves (or refutes) the property the
//!   PR 4 proptest can only witness dynamically: every pair of *racing*
//!   accesses recorded in **different** gate domains must be ordered by
//!   the cross-domain edge graph. A racing pair split across domains with
//!   no connecting edge is exactly the legacy-modulo soundness hole —
//!   replay would not reproduce their relative order.
//!
//! The soundness check works at access granularity: within one domain the
//! gate totally orders all accesses, so only cross-domain pairs need an
//! edge-derived happens-before proof. Per-access vector clocks over
//! domains are computed in one sweep of the merged order (edge anchors
//! join the waited domain's prefix clock), and per racing address the
//! standard discipline — writes totally ordered, every read ordered
//! against its neighbouring writes — is verified pair by pair.
//!
//! Traces record sites, not memory addresses, so by default two accesses
//! alias iff they share a site hash; [`offline_report_with`] and
//! [`check_plan_soundness_with`] accept a `SiteId → addr` map for callers
//! (like tests with known layouts) that can refine this.

use crate::fasttrack::{Access, FastTrack};
use crate::report::RaceReport;
use reomp_core::site::AccessKind;
use reomp_core::verify::{Diagnostic, Severity, Tier, MAX_DIAGS_PER_CHECK};
use reomp_core::{SiteId, TraceBundle};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Why a bundle could not be analysed offline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfflineError {
    /// The bundle failed structural validation.
    Corrupt(String),
    /// The bundle has no per-access site/kind validation columns
    /// (recorded with `validate_sites: false`), so the access sequence
    /// cannot be reconstructed.
    MissingValidation,
    /// The cross-domain edges contain a wait cycle; no merged order
    /// exists.
    CyclicEdges,
}

impl fmt::Display for OfflineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfflineError::Corrupt(msg) => write!(f, "corrupt bundle: {msg}"),
            OfflineError::MissingValidation => {
                f.write_str("bundle has no site/kind validation columns")
            }
            OfflineError::CyclicEdges => {
                f.write_str("cross-domain edges are cyclic; no merged order exists")
            }
        }
    }
}

impl std::error::Error for OfflineError {}

/// One reconstructed access: where it was recorded and what it did.
#[derive(Debug, Clone, Copy)]
struct TraceAccess {
    /// Gate domain the access was recorded in.
    dom: u32,
    /// 1-based absolute position within its domain (clock-base aware).
    abs: u64,
    /// Index into the merged order (and the `vcs` table).
    pos: usize,
    /// Thread that performed it.
    tid: u32,
    site: SiteId,
    kind: AccessKind,
}

/// The merged access sequence plus per-access domain vector clocks.
struct MergedView {
    accesses: Vec<TraceAccess>,
    /// `vcs[pos][d]` = number of domain-`d` accesses known complete when
    /// access `pos` ran (its own domain component includes itself).
    vcs: Vec<Vec<u64>>,
}

impl MergedView {
    /// Whether access `x` happens-before (or equals) access `y` under the
    /// per-domain total orders plus the cross-domain edges.
    fn ordered(&self, x: &TraceAccess, y: &TraceAccess) -> bool {
        self.vcs[y.pos][x.dom as usize] >= x.abs
    }
}

/// Reconstruct the merged order with sites, kinds, and domain vector
/// clocks. Fails (never panics) on corrupt, validation-less, or cyclic
/// input.
fn merged_view(bundle: &TraceBundle) -> Result<MergedView, OfflineError> {
    bundle
        .validate()
        .map_err(|e| OfflineError::Corrupt(e.to_string()))?;
    if !bundle.has_validation() {
        return Err(OfflineError::MissingValidation);
    }
    if !bundle.edges_consistent() {
        return Err(OfflineError::CyclicEdges);
    }
    let d = bundle.domains as usize;
    let order = bundle.merged_order();
    let index = bundle.edge_index();
    let is_st = bundle.is_st();

    let mut cur: Vec<Vec<u64>> = (0..d)
        .map(|dom| {
            let mut vc = vec![0u64; d];
            // The evicted prefix of a windowed bundle counts as completed
            // history of the domain itself.
            vc[dom] = bundle.clock_base(dom as u32);
            vc
        })
        .collect();
    let mut emitted: Vec<u64> = (0..d).map(|dom| bundle.clock_base(dom as u32)).collect();
    // Per domain: merged position of its 1st, 2nd, … retained access.
    let mut hist: Vec<Vec<usize>> = vec![Vec::new(); d];
    let mut vcs: Vec<Vec<u64>> = Vec::with_capacity(order.len());
    let mut accesses: Vec<TraceAccess> = Vec::with_capacity(order.len());

    for (pos, &(dom, _value, tid, seq)) in order.iter().enumerate() {
        let dx = dom as usize;
        let i = seq as usize;
        let (site, kind_code) = if is_st {
            let st = &bundle.st[dx];
            let sites = st.sites.as_ref().ok_or(OfflineError::MissingValidation)?;
            let kinds = st.kinds.as_ref().ok_or(OfflineError::MissingValidation)?;
            (sites[i], kinds[i])
        } else {
            let t = bundle.thread(dom, tid);
            let sites = t.sites.as_ref().ok_or(OfflineError::MissingValidation)?;
            let kinds = t.kinds.as_ref().ok_or(OfflineError::MissingValidation)?;
            (sites[i], kinds[i])
        };
        let kind = AccessKind::from_code(kind_code).ok_or_else(|| {
            OfflineError::Corrupt(format!("bad kind code {kind_code} in domain {dom}"))
        })?;

        // Join the edge waits: the anchor happens-after the waited
        // domain's c-th access — and everything that access knew.
        let key = (dom, if is_st { 0 } else { tid }, seq);
        if let Some(waits) = index.get(&key) {
            for &(j, c) in waits {
                let jx = j as usize;
                let base = bundle.clock_base(j);
                if c > base {
                    if let Some(&h) = hist[jx].get((c - base - 1) as usize) {
                        let snap = vcs[h].clone();
                        for (slot, &v) in cur[dx].iter_mut().zip(&snap) {
                            *slot = (*slot).max(v);
                        }
                    }
                }
                cur[dx][jx] = cur[dx][jx].max(c);
            }
        }
        emitted[dx] += 1;
        cur[dx][dx] = emitted[dx];

        vcs.push(cur[dx].clone());
        hist[dx].push(pos);
        accesses.push(TraceAccess {
            dom,
            abs: emitted[dx],
            pos,
            tid,
            site: SiteId(site),
            kind,
        });
    }
    Ok(MergedView { accesses, vcs })
}

/// Run FastTrack over the recorded order, treating each site hash as its
/// own memory address. Equivalent to [`offline_report_with`] with
/// `|site| site.raw()`.
pub fn offline_report(bundle: &TraceBundle) -> Result<RaceReport, OfflineError> {
    offline_report_with(bundle, |site| site.raw())
}

/// Run FastTrack over the recorded order with a caller-supplied
/// `SiteId → address` aliasing map (traces record sites, not addresses).
///
/// Event mapping mirrors the live detector's view of a gated run:
/// * [`AccessKind::Load`] → a read of `addr_of(site)`,
/// * [`AccessKind::Store`] → a write of `addr_of(site)`,
/// * every other kind (criticals, atomics, reductions, ordered, MPI ops)
///   → an acquire+release of a lock keyed by the site — they are mutual
///   exclusion, not data.
///
/// All threads are forked from the main thread before the sweep, exactly
/// as the `ompr` runtime forks its workers.
pub fn offline_report_with(
    bundle: &TraceBundle,
    addr_of: impl Fn(SiteId) -> u64,
) -> Result<RaceReport, OfflineError> {
    let view = merged_view(bundle)?;
    let mut ft = FastTrack::new(bundle.nthreads);
    for tid in 0..bundle.nthreads {
        ft.fork(ompr::events::MAIN_TID, tid);
    }
    let mut events = 0u64;
    for a in &view.accesses {
        events += 1;
        match a.kind {
            AccessKind::Load => ft.access(a.tid, addr_of(a.site), a.site, Access::Read),
            AccessKind::Store => ft.access(a.tid, addr_of(a.site), a.site, Access::Write),
            _ => {
                ft.acquire(a.tid, a.site.raw());
                ft.release(a.tid, a.site.raw());
            }
        }
    }
    Ok(RaceReport {
        races: ft.take_races(),
        events_analysed: events,
    })
}

/// One plan-soundness violation: a racing access pair recorded in
/// different gate domains with no cross-domain edge path ordering them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanViolation {
    /// The aliased address the sites race on.
    pub addr: u64,
    /// Site of the earlier (merged-order) access.
    pub first_site: SiteId,
    /// Domain the earlier access was recorded in.
    pub first_domain: u32,
    /// Site of the later access.
    pub second_site: SiteId,
    /// Domain the later access was recorded in.
    pub second_domain: u32,
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "racing sites {:#x} (domain {}) and {:#x} (domain {}) on address {:#x} \
             are split across domains with no ordering edge — replay cannot \
             reproduce their relative order",
            self.first_site.raw(),
            self.first_domain,
            self.second_site.raw(),
            self.second_domain,
            self.addr
        )
    }
}

/// Outcome of the static plan-soundness analysis.
#[derive(Debug, Clone, Default)]
pub struct PlanSoundness {
    /// Distinct violating site pairs (deduplicated; one entry per pair).
    pub violations: Vec<PlanViolation>,
    /// Number of racing addresses whose access orders were swept.
    pub checked_addrs: usize,
    /// Number of cross-domain access pairs proven ordered by edges.
    pub proven_pairs: u64,
}

impl PlanSoundness {
    /// Whether every racing pair is co-located or edge-ordered.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Statically check that the bundle's domain partition is *sound* for the
/// races in `report`: every pair of racing accesses is either recorded in
/// the same gate domain (totally ordered by its gate) or connected by
/// cross-domain edges. Uses `site.raw()` as the aliasing map; see
/// [`check_plan_soundness_with`].
pub fn check_plan_soundness(
    bundle: &TraceBundle,
    report: &RaceReport,
) -> Result<PlanSoundness, OfflineError> {
    check_plan_soundness_with(bundle, report, |site| site.raw())
}

/// [`check_plan_soundness`] with a caller-supplied aliasing map (must be
/// the same map the report was produced with).
pub fn check_plan_soundness_with(
    bundle: &TraceBundle,
    report: &RaceReport,
    addr_of: impl Fn(SiteId) -> u64,
) -> Result<PlanSoundness, OfflineError> {
    if bundle.domains <= 1 {
        // One domain totally orders everything; trivially sound.
        bundle
            .validate()
            .map_err(|e| OfflineError::Corrupt(e.to_string()))?;
        return Ok(PlanSoundness::default());
    }
    let view = merged_view(bundle)?;
    let racy_addrs = report.racy_addrs();
    if racy_addrs.is_empty() {
        return Ok(PlanSoundness::default());
    }

    // Group this trace's accesses by aliased address, merged order kept.
    let mut by_addr: HashMap<u64, Vec<&TraceAccess>> = HashMap::new();
    for a in &view.accesses {
        let addr = addr_of(a.site);
        if racy_addrs.contains(&addr) {
            by_addr.entry(addr).or_default().push(a);
        }
    }

    let mut out = PlanSoundness::default();
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut check = |x: &TraceAccess, y: &TraceAccess, addr: u64, out: &mut PlanSoundness| {
        if x.dom == y.dom {
            return; // the domain gate totally orders them
        }
        if view.ordered(x, y) {
            out.proven_pairs += 1;
            return;
        }
        let pair = (
            x.site.raw().min(y.site.raw()),
            x.site.raw().max(y.site.raw()),
        );
        if seen.insert(pair) {
            out.violations.push(PlanViolation {
                addr,
                first_site: x.site,
                first_domain: x.dom,
                second_site: y.site,
                second_domain: y.dom,
            });
        }
    };

    for (&addr, accesses) in &by_addr {
        out.checked_addrs += 1;
        // Replay preserves per-address order iff the writes are totally
        // ordered and every read is ordered against its neighbouring
        // writes; checking adjacent pairs in merged order covers all of
        // it transitively in O(n).
        let mut prev_write: Option<&TraceAccess> = None;
        let mut pending_reads: Vec<&TraceAccess> = Vec::new();
        for a in accesses {
            if a.kind == AccessKind::Load {
                if let Some(w) = prev_write {
                    check(w, a, addr, &mut out);
                }
                pending_reads.push(a);
            } else {
                // Anything that mutates or excludes orders like a write.
                if let Some(w) = prev_write {
                    check(w, a, addr, &mut out);
                }
                for r in pending_reads.drain(..) {
                    check(r, a, addr, &mut out);
                }
                prev_write = Some(a);
            }
        }
    }
    out.violations
        .sort_by_key(|v| (v.addr, v.first_site.raw(), v.second_site.raw()));
    Ok(out)
}

/// Fold a plan-soundness run into verifier [`Diagnostic`]s (Plan tier),
/// ready for [`VerifyReport::absorb`](reomp_core::VerifyReport::absorb).
/// Analysis failures surface as a single diagnostic rather than an `Err`,
/// so the CLI path stays infallible; violation diagnostics are capped at
/// [`MAX_DIAGS_PER_CHECK`].
#[must_use]
pub fn plan_soundness_diagnostics(bundle: &TraceBundle, report: &RaceReport) -> Vec<Diagnostic> {
    let sound = match check_plan_soundness(bundle, report) {
        Ok(s) => s,
        Err(e) => {
            return vec![Diagnostic {
                tier: Tier::Plan,
                severity: Severity::Error,
                location: "bundle".into(),
                message: format!("plan soundness not analysable: {e}"),
            }]
        }
    };
    let mut out: Vec<Diagnostic> = sound
        .violations
        .iter()
        .take(MAX_DIAGS_PER_CHECK)
        .map(|v| Diagnostic {
            tier: Tier::Plan,
            severity: Severity::Error,
            location: format!("domains {} × {}", v.first_domain, v.second_domain),
            message: v.to_string(),
        })
        .collect();
    if sound.violations.len() > MAX_DIAGS_PER_CHECK {
        out.push(Diagnostic {
            tier: Tier::Plan,
            severity: Severity::Error,
            location: "bundle".into(),
            message: format!(
                "{} further racing site pairs split across domains",
                sound.violations.len() - MAX_DIAGS_PER_CHECK
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use reomp_core::trace::{CrossDomainEdge, ThreadTrace};
    use reomp_core::{Scheme, TraceBundle};

    const LOAD: u8 = AccessKind::Load as u8;
    const STORE: u8 = AccessKind::Store as u8;

    /// One domain, two threads, both storing to site 7 with no sync:
    /// a write-write race the offline sweep must find.
    fn racy_bundle() -> TraceBundle {
        TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 1,
            threads: vec![
                ThreadTrace {
                    values: vec![0, 2],
                    sites: Some(vec![7, 7]),
                    kinds: Some(vec![LOAD, STORE]),
                },
                ThreadTrace {
                    values: vec![1, 3],
                    sites: Some(vec![7, 7]),
                    kinds: Some(vec![LOAD, STORE]),
                },
            ],
            st: vec![],
        }
    }

    /// Two domains, one thread each… the legacy-modulo shape: sites 2 and
    /// 3 alias the same address but land in different domains with no
    /// edges.
    fn split_bundle(edges: Vec<CrossDomainEdge>) -> TraceBundle {
        TraceBundle {
            plan: None,
            edges,
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 2,
            threads: vec![
                // domain 0: thread 0 stores site 2 twice
                ThreadTrace {
                    values: vec![0, 1],
                    sites: Some(vec![2, 2]),
                    kinds: Some(vec![STORE, STORE]),
                },
                ThreadTrace {
                    values: vec![],
                    sites: Some(vec![]),
                    kinds: Some(vec![]),
                },
                // domain 1: thread 1 stores site 3 twice
                ThreadTrace {
                    values: vec![],
                    sites: Some(vec![]),
                    kinds: Some(vec![]),
                },
                ThreadTrace {
                    values: vec![0, 1],
                    sites: Some(vec![3, 3]),
                    kinds: Some(vec![STORE, STORE]),
                },
            ],
            st: vec![],
        }
    }

    /// Sites 2 and 3 both map to address 40 (the aliasing the live
    /// proptest builds with one RacyCell behind two site labels).
    fn alias(site: SiteId) -> u64 {
        match site.raw() {
            2 | 3 => 40,
            other => other,
        }
    }

    #[test]
    fn offline_finds_the_recorded_race() {
        let report = offline_report(&racy_bundle()).unwrap();
        assert!(!report.races.is_empty());
        assert!(report.racy_sites().contains(&SiteId(7)));
        assert_eq!(report.events_analysed, 4);
    }

    #[test]
    fn missing_validation_is_reported_not_panicked() {
        let mut b = racy_bundle();
        for t in &mut b.threads {
            t.sites = None;
            t.kinds = None;
        }
        assert_eq!(
            offline_report(&b).unwrap_err(),
            OfflineError::MissingValidation
        );
    }

    #[test]
    fn corrupt_bundle_is_reported_not_panicked() {
        let mut b = racy_bundle();
        b.threads.pop();
        assert!(matches!(
            offline_report(&b).unwrap_err(),
            OfflineError::Corrupt(_)
        ));
    }

    #[test]
    fn split_racing_sites_without_edges_are_unsound() {
        let b = split_bundle(vec![]);
        let report = offline_report_with(&b, alias).unwrap();
        assert!(
            report.racy_sites().contains(&SiteId(2)) && report.racy_sites().contains(&SiteId(3)),
            "{report:?}"
        );
        let sound = check_plan_soundness_with(&b, &report, alias).unwrap();
        assert!(!sound.is_sound());
        let v = sound.violations[0];
        assert_eq!(v.addr, 40);
        assert_ne!(v.first_domain, v.second_domain);
        let diags = {
            // The diagnostics path uses the raw-site aliasing, under which
            // sites 2 and 3 do not alias — exercise it on the raw report.
            let raw = offline_report(&b).unwrap();
            plan_soundness_diagnostics(&b, &raw)
        };
        // Sites 2 and 3 don't race under raw aliasing (different addrs).
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn edges_restore_soundness() {
        // Serialize the two domains: each domain-1 store waits for both
        // domain-0 stores… wait counts are absolute completed counts.
        let edges = vec![CrossDomainEdge {
            domain: 1,
            thread: 1,
            seq: 0,
            waits: vec![(0, 2)],
        }];
        let b = split_bundle(edges);
        let report = offline_report_with(&b, alias).unwrap();
        let sound = check_plan_soundness_with(&b, &report, alias).unwrap();
        assert!(sound.is_sound(), "{:?}", sound.violations);
        assert!(sound.proven_pairs > 0);
    }

    #[test]
    fn single_domain_is_trivially_sound() {
        let b = racy_bundle();
        let report = offline_report(&b).unwrap();
        let sound = check_plan_soundness(&b, &report).unwrap();
        assert!(sound.is_sound());
    }
}
