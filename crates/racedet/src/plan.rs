//! The domain planner: race report → [`DomainPlan`].
//!
//! The toolflow's race-detection step (Fig. 2 step (1)) already decides
//! *which* sites are gated (`instrumentation_plan`). This module closes the
//! ROADMAP's "derive both from one race report" item: the same report also
//! decides *where* each gated site lives when the order-recording gate is
//! sharded into domains.
//!
//! Two constraints drive the assignment:
//!
//! 1. **Soundness** — sites that race on the same memory cell must record
//!    into the *same* domain, or their relative order is lost (the
//!    multi-domain trace keeps no order between domains outside of sync
//!    edges). The planner runs a union-find over the report's
//!    racing-address site groups so every such group co-locates.
//! 2. **Balance** — the remaining freedom is used to spread load: groups
//!    are greedy bin-packed onto the least-loaded domain by *observed gate
//!    frequency*, using either per-site weights or the
//!    `SessionReport::domain_gates` breakdown of a previous run as the
//!    feedback signal.

use reomp_core::{DomainPlan, SiteId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::report::RaceReport;

/// Builds a [`DomainPlan`] from race reports and gate-frequency feedback.
///
/// ```
/// use racedet::{DomainPlanner, RaceReport};
/// # let report = RaceReport::default();
/// let plan = DomainPlanner::new(4).observe_report(&report).build();
/// assert_eq!(plan.domains(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DomainPlanner {
    domains: u32,
    /// All sites the planner has seen (deterministically ordered).
    sites: BTreeSet<SiteId>,
    /// Union-find parent pointers over racing sites.
    parent: HashMap<SiteId, SiteId>,
    /// One representative site per racing address, so every site that
    /// touches the address unions into one group.
    addr_rep: HashMap<u64, SiteId>,
    /// Observed gate frequency per site (default weight 1).
    weights: HashMap<SiteId, u64>,
}

impl DomainPlanner {
    /// Planner for `domains` gate domains (clamped to ≥ 1).
    #[must_use]
    pub fn new(domains: u32) -> DomainPlanner {
        DomainPlanner {
            domains: domains.max(1),
            sites: BTreeSet::new(),
            parent: HashMap::new(),
            addr_rep: HashMap::new(),
            weights: HashMap::new(),
        }
    }

    fn find(&mut self, site: SiteId) -> SiteId {
        let p = *self.parent.entry(site).or_insert(site);
        if p == site {
            return site;
        }
        let root = self.find(p);
        self.parent.insert(site, root); // path compression
        root
    }

    fn union(&mut self, a: SiteId, b: SiteId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the smaller site id becomes the root.
            let (root, child) = if ra <= rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(child, root);
        }
    }

    fn note_site(&mut self, site: SiteId) {
        if site != SiteId(0) {
            self.sites.insert(site);
        }
    }

    /// Fold a race report in: both sides of every race union with each
    /// other *and* with every other site seen racing on the same address,
    /// so aliased sites (distinct sites, same cell) provably co-locate.
    /// Site 0 — the "unknown prior access" placeholder — is ignored.
    #[must_use]
    pub fn observe_report(mut self, report: &RaceReport) -> DomainPlanner {
        for race in &report.races {
            let pair: Vec<SiteId> = [race.first_site, race.second_site]
                .into_iter()
                .filter(|&s| s != SiteId(0))
                .collect();
            for &site in &pair {
                self.note_site(site);
                match self.addr_rep.get(&race.addr) {
                    Some(&rep) => self.union(rep, site),
                    None => {
                        self.addr_rep.insert(race.addr, site);
                    }
                }
            }
            if let [a, b] = pair[..] {
                self.union(a, b);
            }
        }
        self
    }

    /// Record an observed gate frequency for `site` (adds to any previous
    /// weight; unweighted sites count as 1 during packing).
    #[must_use]
    pub fn weight(mut self, site: SiteId, gates: u64) -> DomainPlanner {
        self.note_site(site);
        *self.weights.entry(site).or_insert(0) += gates;
        self
    }

    /// Fold in the per-domain gate breakdown of a *previous* run
    /// (`SessionReport::domain_gates`) executed under `prev` — the
    /// feedback loop of the toolflow. Each known site is credited its
    /// previous domain's observed gate count, split evenly among the sites
    /// that mapped there; a site with no domain data keeps its weight.
    #[must_use]
    pub fn feedback(mut self, prev: &DomainPlan, domain_gates: &[u64]) -> DomainPlanner {
        if domain_gates.is_empty() || self.sites.is_empty() {
            return self;
        }
        // How many known sites the previous partition put in each domain.
        let mut members: BTreeMap<u32, u64> = BTreeMap::new();
        let sites: Vec<SiteId> = self.sites.iter().copied().collect();
        for &site in &sites {
            *members.entry(prev.domain_of(site)).or_insert(0) += 1;
        }
        for site in sites {
            let dom = prev.domain_of(site);
            let Some(&gates) = domain_gates.get(dom as usize) else {
                continue;
            };
            let share = gates / members[&dom].max(1);
            *self.weights.entry(site).or_insert(0) += share;
        }
        self
    }

    /// Produce the plan: racing-site groups co-locate, groups are assigned
    /// greedily (heaviest first) to the least-loaded domain, and every
    /// observed site ends up explicitly pinned. Deterministic for a given
    /// input set.
    #[must_use]
    pub fn build(mut self) -> DomainPlan {
        let domains = self.domains;
        // Group sites by union-find root (singletons for non-racing ones).
        let mut groups: BTreeMap<SiteId, Vec<SiteId>> = BTreeMap::new();
        let sites: Vec<SiteId> = self.sites.iter().copied().collect();
        for site in sites {
            let root = self.find(site);
            groups.entry(root).or_default().push(site);
        }
        // Heaviest group first; ties break on the (ordered) root id.
        let mut ordered: Vec<(u64, SiteId, Vec<SiteId>)> = groups
            .into_iter()
            .map(|(root, members)| {
                let w: u64 = members
                    .iter()
                    .map(|s| self.weights.get(s).copied().unwrap_or(1).max(1))
                    .sum();
                (w, root, members)
            })
            .collect();
        ordered.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut plan = DomainPlan::new(domains);
        let mut load = vec![0u64; domains as usize];
        for (w, _, members) in ordered {
            // Least-loaded domain, lowest id on ties.
            let dom = (0..domains)
                .min_by_key(|&d| (load[d as usize], d))
                .unwrap_or(0);
            load[dom as usize] += w;
            for site in members {
                plan.set(site, dom);
            }
        }
        plan
    }
}

/// One-shot convenience: a plan over `domains` domains from a single race
/// report, with unit weights.
#[must_use]
pub fn domain_plan(report: &RaceReport, domains: u32) -> DomainPlan {
    DomainPlanner::new(domains).observe_report(report).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{AccessSide, RaceInfo};

    fn race(a: u64, b: u64, addr: u64) -> RaceInfo {
        RaceInfo {
            addr,
            first_site: SiteId(a),
            first_side: AccessSide::Write,
            first_tid: 0,
            second_site: SiteId(b),
            second_side: AccessSide::Write,
            second_tid: 1,
        }
    }

    #[test]
    fn racing_pairs_co_locate() {
        let report = RaceReport {
            races: vec![race(1, 2, 100), race(3, 4, 200)],
            events_analysed: 4,
        };
        let plan = domain_plan(&report, 4);
        assert_eq!(plan.domain_of(SiteId(1)), plan.domain_of(SiteId(2)));
        assert_eq!(plan.domain_of(SiteId(3)), plan.domain_of(SiteId(4)));
        assert_eq!(plan.assigned(), 4);
    }

    #[test]
    fn same_address_transitively_co_locates_disjoint_pairs() {
        // Two races with disjoint site pairs on ONE address: all four
        // sites alias the same memory and must share a domain.
        let report = RaceReport {
            races: vec![race(1, 2, 100), race(3, 4, 100)],
            events_analysed: 4,
        };
        let plan = domain_plan(&report, 4);
        let dom = plan.domain_of(SiteId(1));
        for s in [2u64, 3, 4] {
            assert_eq!(plan.domain_of(SiteId(s)), dom, "site {s}");
        }
    }

    #[test]
    fn placeholder_site_zero_is_ignored() {
        let report = RaceReport {
            races: vec![race(0, 5, 100)],
            events_analysed: 1,
        };
        let plan = domain_plan(&report, 2);
        assert_eq!(plan.assigned(), 1, "only site 5 is planned");
    }

    #[test]
    fn independent_groups_spread_across_domains() {
        // 4 equally-weighted independent pairs over 4 domains: greedy
        // packing gives each pair its own domain.
        let report = RaceReport {
            races: (0..4).map(|i| race(10 + i, 20 + i, 1000 + i)).collect(),
            events_analysed: 8,
        };
        let plan = domain_plan(&report, 4);
        let doms: std::collections::HashSet<u32> =
            (0..4).map(|i| plan.domain_of(SiteId(10 + i))).collect();
        assert_eq!(doms.len(), 4, "four groups on four domains");
    }

    #[test]
    fn weights_drive_bin_packing() {
        // One hot group (weight 100) and three cold groups over 2 domains:
        // the three cold ones must share the other domain.
        let report = RaceReport {
            races: vec![
                race(1, 2, 100),
                race(11, 12, 200),
                race(21, 22, 300),
                race(31, 32, 400),
            ],
            events_analysed: 8,
        };
        let plan = DomainPlanner::new(2)
            .observe_report(&report)
            .weight(SiteId(1), 100)
            .build();
        let hot = plan.domain_of(SiteId(1));
        for s in [11u64, 21, 31] {
            assert_ne!(plan.domain_of(SiteId(s)), hot, "cold group {s}");
        }
    }

    #[test]
    fn feedback_credits_previous_domain_load() {
        // Previous run under the legacy modulo put sites 2 and 4 in domain
        // 0 (raw % 2 == 0) and site 3 in domain 1. Domain 0 was 100× as
        // hot; after feedback the two even sites are the heavy ones and
        // end up separated for balance.
        let report = RaceReport::default();
        let prev = DomainPlan::new(2); // hashed fallback, irrelevant here
        let planner = DomainPlanner::new(2)
            .observe_report(&report)
            .weight(SiteId(2), 0)
            .weight(SiteId(3), 0)
            .weight(SiteId(4), 0)
            .feedback(&prev, &[0, 0]);
        // No gates observed anywhere: weights stay ~0, packing still total.
        let plan = planner.build();
        assert_eq!(plan.assigned(), 3);

        let prev =
            DomainPlan::with_assignments(2, [(SiteId(2), 0), (SiteId(4), 0), (SiteId(3), 1)]);
        let plan = DomainPlanner::new(2)
            .weight(SiteId(2), 0)
            .weight(SiteId(3), 0)
            .weight(SiteId(4), 0)
            .feedback(&prev, &[1000, 10])
            .build();
        // The two previously-hot sites split across domains.
        assert_ne!(plan.domain_of(SiteId(2)), plan.domain_of(SiteId(4)));
    }

    #[test]
    fn plan_is_deterministic() {
        let report = RaceReport {
            races: vec![race(5, 6, 1), race(7, 8, 2), race(9, 10, 3)],
            events_analysed: 6,
        };
        let a = domain_plan(&report, 3);
        let b = domain_plan(&report, 3);
        assert_eq!(a, b);
    }
}
