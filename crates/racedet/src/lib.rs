//! # racedet — happens-before data-race detection for the ReOMP toolflow
//!
//! Step (1) of the paper's toolflow (Fig. 2) runs the application under
//! ThreadSanitizer to find data races; the report's call stacks are hashed
//! into *race instance* IDs that decide which instructions get gated (§III).
//!
//! This crate is that step for the `ompr` runtime: [`Detector`] implements
//! [`ompr::EventSink`], consumes the runtime's fork/join, lock, barrier,
//! and memory events, and runs the **FastTrack** algorithm (Flanagan &
//! Freund, PLDI'09 — the same epoch-based happens-before analysis TSan v2
//! uses) to find conflicting unsynchronized accesses. The resulting
//! [`RaceReport`] yields the set of racy [`SiteId`]s, which becomes the
//! session's *instrumentation plan* (`SessionConfig::gate_plan`) — and,
//! through [`DomainPlanner`], the session's *domain plan*
//! (`SessionConfig::plan`): racing/aliased sites co-locate in one gate
//! domain, the remaining sites are load-balanced across domains by
//! observed gate frequency.
//!
//! A deliberately simple [`oracle`] (full vector-clock history comparison)
//! is provided for differential testing.
//!
//! ```
//! use ompr::Runtime;
//! use racedet::Detector;
//! use reomp_core::Session;
//! use std::sync::Arc;
//!
//! let detector = Arc::new(Detector::new(2));
//! let session = Session::passthrough(2);
//! let rt = Runtime::new(session).with_sink(detector.clone());
//!
//! let cell = ompr::RacyCell::new("doc:flag", 0u64);
//! rt.parallel(|w| {
//!     w.racy_store(&cell, u64::from(w.tid())); // write-write race
//! });
//!
//! let report = detector.report();
//! assert!(report.racy_sites().contains(&cell.site()));
//! ```

#![warn(missing_docs)]

pub mod detector;
pub mod fasttrack;
pub mod offline;
pub mod oracle;
pub mod plan;
pub mod report;
pub mod vc;

pub use detector::Detector;
pub use offline::{
    check_plan_soundness, offline_report, plan_soundness_diagnostics, OfflineError, PlanSoundness,
    PlanViolation,
};
pub use plan::{domain_plan, DomainPlanner};
pub use report::{RaceInfo, RaceReport};
pub use vc::VectorClock;

use reomp_core::SiteId;

/// Build an instrumentation plan (the sites that must be gated) from a race
/// report plus the always-gated construct sites (criticals, atomics,
/// reductions are identifiable statically, §III).
#[must_use]
pub fn instrumentation_plan(
    report: &RaceReport,
    always_gated: impl IntoIterator<Item = SiteId>,
) -> std::collections::HashSet<SiteId> {
    let mut plan = report.racy_sites();
    plan.extend(always_gated);
    plan
}
