//! The [`Detector`]: an [`ompr::EventSink`] running FastTrack online.

use crate::fasttrack::{Access, FastTrack};
use crate::report::RaceReport;
use ompr::events::{Event, EventSink};
use parking_lot::Mutex;

/// Online race detector. Attach to a runtime with
/// [`ompr::Runtime::with_sink`] and run the application once in
/// passthrough mode (toolflow step (1)); then collect the
/// [`RaceReport`] with [`Detector::report`].
///
/// Events are analysed under a single mutex, which serializes them into a
/// linearization consistent with the runtime's real synchronization — the
/// same vantage point a TSan runtime has.
#[derive(Debug)]
pub struct Detector {
    state: Mutex<FastTrack>,
    events: std::sync::atomic::AtomicU64,
}

impl Detector {
    /// Detector for a team of `nthreads`.
    #[must_use]
    pub fn new(nthreads: u32) -> Self {
        Detector {
            state: Mutex::new(FastTrack::new(nthreads)),
            events: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Snapshot the report (races found so far).
    #[must_use]
    pub fn report(&self) -> RaceReport {
        RaceReport {
            races: self.state.lock().races().to_vec(),
            events_analysed: self.events.load(std::sync::atomic::Ordering::Relaxed),
        }
    }
}

impl EventSink for Detector {
    fn event(&self, e: Event) {
        self.events
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut ft = self.state.lock();
        match e {
            Event::Fork { parent, child } => ft.fork(parent, child),
            Event::Join { parent, child } => ft.join(parent, child),
            Event::Acquire { tid, lock } => ft.acquire(tid, lock),
            Event::Release { tid, lock } => ft.release(tid, lock),
            Event::Read { tid, addr, site } => ft.access(tid, addr, site, Access::Read),
            Event::Write { tid, addr, site } => ft.access(tid, addr, site, Access::Write),
            Event::BarrierArrive { tid, generation } => ft.barrier_arrive(tid, generation),
            Event::BarrierDepart { tid, generation } => ft.barrier_depart(tid, generation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompr::{Critical, RacyCell, Runtime};
    use reomp_core::Session;
    use std::sync::Arc;

    fn detect(nthreads: u32, body: impl Fn(&ompr::Worker) + Sync) -> RaceReport {
        let detector = Arc::new(Detector::new(nthreads));
        let session = Session::passthrough(nthreads);
        let rt = Runtime::new(session).with_sink(detector.clone());
        rt.parallel(body);
        detector.report()
    }

    #[test]
    fn detects_racy_cell_write_write() {
        let cell = RacyCell::new("det:ww", 0u64);
        let report = detect(4, |w| {
            w.racy_store(&cell, u64::from(w.tid()));
        });
        assert!(report.racy_sites().contains(&cell.site()), "{report}");
    }

    #[test]
    fn detects_load_store_race() {
        let cell = RacyCell::new("det:rw", 0u64);
        let report = detect(2, |w| {
            if w.tid() == 0 {
                for _ in 0..100 {
                    let _ = w.racy_load(&cell);
                }
            } else {
                for i in 0..100 {
                    w.racy_store(&cell, i);
                }
            }
        });
        assert!(!report.is_clean());
        assert!(report.racy_sites().contains(&cell.site()));
    }

    #[test]
    fn critical_sections_are_race_free() {
        let cs = Critical::new("det:cs");
        let cell = RacyCell::new("det:guarded", 0u64);
        let report = detect(4, |w| {
            for _ in 0..20 {
                w.critical(&cs, || {
                    cell.raw_store(cell.raw_load() + 1);
                });
            }
        });
        assert!(report.is_clean(), "{report}");
        assert_eq!(cell.raw_load(), 80, "critical preserved the updates");
    }

    #[test]
    fn atomic_regions_are_race_free() {
        let sum = ompr::AtomicF64::new(0.0);
        let site = reomp_core::SiteId::from_label("det:atomic");
        let report = detect(4, |w| {
            for _ in 0..20 {
                w.atomic_add_f64(site, &sum, 1.0);
            }
        });
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn barrier_separated_phases_are_race_free() {
        let cell = RacyCell::new("det:phase", 0u64);
        let report = detect(3, |w| {
            if w.tid() == 0 {
                cell.raw_store(1);
                // Emit the write event explicitly through the gate path.
            }
            w.barrier();
            let _ = cell.raw_load();
        });
        // raw_ accesses bypass events; this checks the barrier machinery
        // produces no spurious races.
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn racy_phases_without_barrier_detected_but_with_barrier_clean() {
        // Same program twice: with and without a barrier between the
        // producer's store and the consumers' loads.
        let with_barrier = {
            let cell = RacyCell::new("det:wb", 0u64);
            detect(2, |w| {
                if w.tid() == 0 {
                    w.racy_store(&cell, 7);
                }
                w.barrier();
                if w.tid() == 1 {
                    let _ = w.racy_load(&cell);
                }
            })
        };
        assert!(with_barrier.is_clean(), "{with_barrier}");

        let without_barrier = {
            let cell = RacyCell::new("det:nb", 0u64);
            detect(2, |w| {
                if w.tid() == 0 {
                    w.racy_store(&cell, 7);
                }
                if w.tid() == 1 {
                    let _ = w.racy_load(&cell);
                }
            })
        };
        // The two accesses are unsynchronized; FastTrack must flag them
        // (whichever order they occurred in).
        assert!(!without_barrier.is_clean(), "{without_barrier}");
    }

    #[test]
    fn plan_feeds_gate_plan() {
        let cell = RacyCell::new("det:plan", 0u64);
        let cs = Critical::new("det:plan-cs");
        let report = detect(2, |w| {
            w.racy_store(&cell, 1);
            w.critical(&cs, || {});
        });
        let plan = crate::instrumentation_plan(&report, [cs.site()]);
        assert!(plan.contains(&cell.site()));
        assert!(plan.contains(&cs.site()));
    }
}
