//! The FastTrack happens-before analysis (Flanagan & Freund, PLDI'09).
//!
//! Per-thread vector clocks `C_t`, per-lock clocks `L_m`, per-barrier
//! clocks, and per-variable *last access* state that adaptively switches
//! between a compressed epoch (single last reader/writer) and a full read
//! vector when reads are shared — exactly the representation ThreadSanitizer
//! v2 uses, which is the tool the paper invokes in toolflow step (1).

use crate::report::{AccessSide, RaceInfo};
use crate::vc::{Epoch, VectorClock};
use reomp_core::SiteId;
use std::collections::HashMap;

/// The kind of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// A read.
    Read,
    /// A write.
    Write,
}

/// Last-reads state of one variable.
#[derive(Debug, Clone)]
enum ReadState {
    /// All reads so far are ordered: keep only the last (epoch + site).
    Exclusive(Epoch, SiteId),
    /// Concurrent readers exist: full vector of read clocks, plus the site
    /// of each thread's last read (for reporting).
    Shared(VectorClock, HashMap<u32, SiteId>),
}

/// Per-variable FastTrack state.
#[derive(Debug, Clone)]
struct VarState {
    write: Epoch,
    write_site: Option<SiteId>,
    read: ReadState,
}

impl VarState {
    fn new() -> Self {
        VarState {
            write: Epoch::BOTTOM,
            write_site: None,
            read: ReadState::Exclusive(Epoch::BOTTOM, SiteId(0)),
        }
    }
}

/// The analysis state machine. Not thread-safe by itself; the
/// [`crate::Detector`] wraps it in a mutex and feeds it events in
/// observation order.
#[derive(Debug)]
pub struct FastTrack {
    threads: HashMap<u32, VectorClock>,
    locks: HashMap<u64, VectorClock>,
    barriers: HashMap<u64, VectorClock>,
    vars: HashMap<u64, VarState>,
    races: Vec<RaceInfo>,
    nthreads: u32,
}

impl FastTrack {
    /// Analysis for a team of `nthreads`.
    #[must_use]
    pub fn new(nthreads: u32) -> Self {
        FastTrack {
            threads: HashMap::new(),
            locks: HashMap::new(),
            barriers: HashMap::new(),
            vars: HashMap::new(),
            races: Vec::new(),
            nthreads,
        }
    }

    fn thread_mut(&mut self, tid: u32) -> &mut VectorClock {
        let n = self.nthreads;
        self.threads.entry(tid).or_insert_with(|| {
            let mut vc = VectorClock::new(n);
            // Each thread starts with its own component at 1, so fresh
            // epochs are distinguishable from BOTTOM.
            vc.tick(tid);
            vc
        })
    }

    /// `parent` forks `child`: the child inherits the parent's knowledge.
    pub fn fork(&mut self, parent: u32, child: u32) {
        let parent_vc = self.thread_mut(parent).clone();
        let child_vc = self.thread_mut(child);
        child_vc.join(&parent_vc);
        self.thread_mut(parent).tick(parent);
    }

    /// `parent` joins `child`: the parent learns everything the child did.
    pub fn join(&mut self, parent: u32, child: u32) {
        let child_vc = {
            let vc = self.thread_mut(child);
            vc.tick(child);
            vc.clone()
        };
        self.thread_mut(parent).join(&child_vc);
    }

    /// Lock acquire: `C_t ⊔= L_m`.
    pub fn acquire(&mut self, tid: u32, lock: u64) {
        if let Some(l) = self.locks.get(&lock) {
            let l = l.clone();
            self.thread_mut(tid).join(&l);
        } else {
            // Ensure the thread state exists either way.
            let _ = self.thread_mut(tid);
        }
    }

    /// Lock release: `L_m := C_t; C_t.tick()`.
    pub fn release(&mut self, tid: u32, lock: u64) {
        let vc = self.thread_mut(tid).clone();
        self.locks.insert(lock, vc);
        self.thread_mut(tid).tick(tid);
    }

    /// Barrier arrival: publish this thread's knowledge into the episode.
    pub fn barrier_arrive(&mut self, tid: u32, generation: u64) {
        let vc = self.thread_mut(tid).clone();
        self.barriers
            .entry(generation)
            .or_insert_with(|| VectorClock::new(self.nthreads))
            .join(&vc);
        self.thread_mut(tid).tick(tid);
    }

    /// Barrier departure: absorb every arriver's knowledge.
    pub fn barrier_depart(&mut self, tid: u32, generation: u64) {
        if let Some(b) = self.barriers.get(&generation) {
            let b = b.clone();
            self.thread_mut(tid).join(&b);
        }
    }

    /// A read or write of variable `addr` at source `site` by `tid`.
    pub fn access(&mut self, tid: u32, addr: u64, site: SiteId, access: Access) {
        let vc = self.thread_mut(tid).clone();
        let epoch = Epoch {
            tid,
            clock: vc.get(tid),
        };
        let state = self.vars.entry(addr).or_insert_with(VarState::new);
        let mut found: Vec<RaceInfo> = Vec::new();

        match access {
            Access::Read => {
                // write-read race?
                if !state.write.le(&vc) {
                    found.push(RaceInfo {
                        addr,
                        first_site: state.write_site.unwrap_or(SiteId(0)),
                        first_side: AccessSide::Write,
                        first_tid: state.write.tid,
                        second_site: site,
                        second_side: AccessSide::Read,
                        second_tid: tid,
                    });
                }
                match &mut state.read {
                    ReadState::Exclusive(last, last_site) => {
                        if last.is_bottom() || last.tid == tid || last.le(&vc) {
                            *last = epoch;
                            *last_site = site;
                        } else {
                            // Concurrent readers: inflate to a read vector.
                            let mut rv = VectorClock::new(self.nthreads);
                            rv.set(last.tid, last.clock);
                            rv.set(tid, epoch.clock);
                            let mut sites = HashMap::new();
                            sites.insert(last.tid, *last_site);
                            sites.insert(tid, site);
                            state.read = ReadState::Shared(rv, sites);
                        }
                    }
                    ReadState::Shared(rv, sites) => {
                        rv.set(tid, epoch.clock);
                        sites.insert(tid, site);
                    }
                }
            }
            Access::Write => {
                // write-write race?
                if !state.write.le(&vc) {
                    found.push(RaceInfo {
                        addr,
                        first_site: state.write_site.unwrap_or(SiteId(0)),
                        first_side: AccessSide::Write,
                        first_tid: state.write.tid,
                        second_site: site,
                        second_side: AccessSide::Write,
                        second_tid: tid,
                    });
                }
                // read-write race?
                match &state.read {
                    ReadState::Exclusive(last, last_site) => {
                        if !last.is_bottom() && !last.le(&vc) {
                            found.push(RaceInfo {
                                addr,
                                first_site: *last_site,
                                first_side: AccessSide::Read,
                                first_tid: last.tid,
                                second_site: site,
                                second_side: AccessSide::Write,
                                second_tid: tid,
                            });
                        }
                    }
                    ReadState::Shared(rv, sites) => {
                        if !rv.le(&vc) {
                            // Report against one concurrent reader (TSan
                            // reports a pair too).
                            let offender = sites
                                .iter()
                                .find(|(t, _)| rv.get(**t) > vc.get(**t))
                                .map(|(t, s)| (*t, *s));
                            if let Some((t, s)) = offender {
                                found.push(RaceInfo {
                                    addr,
                                    first_site: s,
                                    first_side: AccessSide::Read,
                                    first_tid: t,
                                    second_site: site,
                                    second_side: AccessSide::Write,
                                    second_tid: tid,
                                });
                            }
                        }
                    }
                }
                state.write = epoch;
                state.write_site = Some(site);
                // FastTrack resets the read state on a same-thread write
                // only conceptually; keeping it is sound (may re-report).
            }
        }
        self.races.extend(found);
    }

    /// All races found so far.
    #[must_use]
    pub fn races(&self) -> &[RaceInfo] {
        &self.races
    }

    /// Drain the collected races.
    pub fn take_races(&mut self) -> Vec<RaceInfo> {
        std::mem::take(&mut self.races)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: u64 = 100;
    const SA: SiteId = SiteId(0xa);
    const SB: SiteId = SiteId(0xb);
    const LOCK: u64 = 7;

    fn forked(n: u32) -> FastTrack {
        let mut ft = FastTrack::new(n);
        for t in 0..n {
            ft.fork(ompr::events::MAIN_TID, t);
        }
        ft
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let mut ft = forked(2);
        ft.access(0, X, SA, Access::Write);
        ft.access(1, X, SB, Access::Write);
        assert_eq!(ft.races().len(), 1);
        let r = &ft.races()[0];
        assert_eq!(r.first_site, SA);
        assert_eq!(r.second_site, SB);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut ft = forked(3);
        ft.access(0, X, SA, Access::Read);
        ft.access(1, X, SA, Access::Read);
        ft.access(2, X, SA, Access::Read);
        assert!(ft.races().is_empty());
    }

    #[test]
    fn write_then_concurrent_read_races() {
        let mut ft = forked(2);
        ft.access(0, X, SA, Access::Write);
        ft.access(1, X, SB, Access::Read);
        assert_eq!(ft.races().len(), 1);
        assert_eq!(ft.races()[0].second_side, AccessSide::Read);
    }

    #[test]
    fn shared_read_then_write_races() {
        let mut ft = forked(3);
        ft.access(0, X, SA, Access::Read);
        ft.access(1, X, SA, Access::Read); // inflates to read vector
        ft.access(2, X, SB, Access::Write);
        assert!(
            ft.races()
                .iter()
                .any(|r| r.first_side == AccessSide::Read && r.second_side == AccessSide::Write),
            "{:?}",
            ft.races()
        );
    }

    #[test]
    fn lock_discipline_prevents_races() {
        let mut ft = forked(2);
        ft.acquire(0, LOCK);
        ft.access(0, X, SA, Access::Write);
        ft.release(0, LOCK);
        ft.acquire(1, LOCK);
        ft.access(1, X, SB, Access::Write);
        ft.release(1, LOCK);
        assert!(ft.races().is_empty(), "{:?}", ft.races());
    }

    #[test]
    fn lock_must_be_the_same_to_synchronize() {
        let mut ft = forked(2);
        ft.acquire(0, LOCK);
        ft.access(0, X, SA, Access::Write);
        ft.release(0, LOCK);
        ft.acquire(1, LOCK + 1); // different lock!
        ft.access(1, X, SB, Access::Write);
        ft.release(1, LOCK + 1);
        assert_eq!(ft.races().len(), 1);
    }

    #[test]
    fn fork_join_orders_accesses() {
        let mut ft = FastTrack::new(2);
        let main = ompr::events::MAIN_TID;
        ft.fork(main, 0);
        ft.access(0, X, SA, Access::Write);
        ft.join(main, 0);
        // Second region: thread 1 forked after joining thread 0.
        ft.fork(main, 1);
        ft.access(1, X, SB, Access::Write);
        assert!(ft.races().is_empty(), "{:?}", ft.races());
    }

    #[test]
    fn barrier_orders_phases() {
        let mut ft = forked(2);
        ft.access(0, X, SA, Access::Write);
        ft.barrier_arrive(0, 0);
        ft.barrier_arrive(1, 0);
        ft.barrier_depart(0, 0);
        ft.barrier_depart(1, 0);
        ft.access(1, X, SB, Access::Write);
        assert!(ft.races().is_empty(), "{:?}", ft.races());
    }

    #[test]
    fn missing_barrier_races_across_phases() {
        let mut ft = forked(2);
        ft.access(0, X, SA, Access::Write);
        // No barrier here.
        ft.access(1, X, SB, Access::Write);
        assert_eq!(ft.races().len(), 1);
    }

    #[test]
    fn same_thread_sequences_never_race() {
        let mut ft = forked(1);
        for _ in 0..10 {
            ft.access(0, X, SA, Access::Write);
            ft.access(0, X, SA, Access::Read);
        }
        assert!(ft.races().is_empty());
    }
}
