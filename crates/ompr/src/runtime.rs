//! The fork-join runtime: teams, parallel regions, worksharing dispatch.

use crate::barrier::TeamBarrier;
use crate::events::{Event, EventSink, MAIN_TID};
use crate::schedule::Schedule;
use crate::worker::Worker;
use parking_lot::Mutex;
use reomp_core::Session;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;

/// Per-construct shared state (dynamic-loop cursors, `single` claims).
///
/// OpenMP requires all team threads to encounter worksharing constructs in
/// the same order, so constructs are numbered per-thread and the numbers
/// agree across the team; the map below is keyed by that sequence number.
#[derive(Debug, Default)]
pub(crate) struct ConstructState {
    pub cursor: AtomicUsize,
    pub claimed: AtomicBool,
}

pub(crate) struct TeamShared {
    pub barrier: TeamBarrier,
    pub constructs: Mutex<HashMap<u64, Arc<ConstructState>>>,
    pub sink: Option<Arc<dyn EventSink>>,
}

impl TeamShared {
    pub(crate) fn construct(&self, seq: u64) -> Arc<ConstructState> {
        Arc::clone(
            self.constructs
                .lock()
                .entry(seq)
                .or_insert_with(|| Arc::new(ConstructState::default())),
        )
    }

    pub(crate) fn emit(&self, e: Event) {
        if let Some(sink) = &self.sink {
            sink.event(e);
        }
    }
}

/// The OpenMP-like runtime: a [`Session`] plus a team size.
///
/// Each [`Runtime::parallel`] call forks a team of `session.nthreads()`
/// OS threads (fork-join, like `#pragma omp parallel`), hands every thread
/// a [`Worker`], and joins at region end. Workers register with the
/// session, so gated constructs inside the region are recorded or replayed
/// according to the session's mode.
pub struct Runtime {
    session: Arc<Session>,
    sink: Option<Arc<dyn EventSink>>,
}

impl Runtime {
    /// Runtime over `session`; the team size is the session's thread count.
    #[must_use]
    pub fn new(session: Arc<Session>) -> Self {
        Runtime {
            session,
            sink: None,
        }
    }

    /// Attach a dynamic-analysis event sink (the race-detection step runs
    /// the application once with a detector attached, Fig. 2 step (1)).
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Team size.
    #[must_use]
    pub fn nthreads(&self) -> u32 {
        self.session.nthreads()
    }

    /// The underlying session.
    #[must_use]
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Execute a parallel region: `f` runs once on every team thread.
    ///
    /// Equivalent to `#pragma omp parallel`; combine with the worker's
    /// worksharing methods (`for_static`, `for_dynamic`, …), `barrier`,
    /// `critical`, etc. inside the region.
    pub fn parallel<F>(&self, f: F)
    where
        F: Fn(&Worker) + Sync,
    {
        let n = self.nthreads();
        let team = TeamShared {
            barrier: TeamBarrier::new(n),
            constructs: Mutex::new(HashMap::new()),
            sink: self.sink.clone(),
        };
        for tid in 0..n {
            team.emit(Event::Fork {
                parent: MAIN_TID,
                child: tid,
            });
        }
        let team = &team;
        let f = &f;
        std::thread::scope(|s| {
            for tid in 0..n {
                let ctx = self.session.register_thread(tid);
                s.spawn(move || {
                    let worker = Worker::new(tid, n, ctx, team);
                    f(&worker);
                });
            }
        });
        for tid in 0..n {
            team.emit(Event::Join {
                parent: MAIN_TID,
                child: tid,
            });
        }
    }

    /// `#pragma omp parallel for` over `range` with the given schedule.
    pub fn parallel_for<F>(&self, range: Range<usize>, schedule: Schedule, f: F)
    where
        F: Fn(&Worker, usize) + Sync,
    {
        let f = &f;
        self.parallel(|w| match schedule {
            Schedule::Static => w.for_static(range.clone(), |i| f(w, i)),
            Schedule::StaticChunk(c) => w.for_static_chunk(range.clone(), c, |i| f(w, i)),
            Schedule::Dynamic(c) => w.for_dynamic(range.clone(), c, |i| f(w, i)),
            Schedule::Guided(c) => w.for_guided(range.clone(), c, |i| f(w, i)),
        });
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("nthreads", &self.nthreads())
            .field("has_sink", &self.sink.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::VecSink;
    use reomp_core::{Scheme, Session};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn parallel_runs_every_tid_once() {
        let session = Session::passthrough(4);
        let rt = Runtime::new(session);
        let mask = AtomicU64::new(0);
        rt.parallel(|w| {
            let bit = 1u64 << w.tid();
            let prev = mask.fetch_or(bit, Ordering::SeqCst);
            assert_eq!(prev & bit, 0, "tid {} ran twice", w.tid());
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn parallel_for_static_covers_range() {
        let session = Session::passthrough(3);
        let rt = Runtime::new(session);
        let hits: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        rt.parallel_for(0..50, Schedule::Static, |_w, i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn fork_join_events_emitted() {
        let sink = Arc::new(VecSink::new());
        let session = Session::passthrough(2);
        let rt = Runtime::new(session).with_sink(sink.clone());
        rt.parallel(|_w| {});
        let events = sink.take();
        let forks = events
            .iter()
            .filter(|e| matches!(e, Event::Fork { .. }))
            .count();
        let joins = events
            .iter()
            .filter(|e| matches!(e, Event::Join { .. }))
            .count();
        assert_eq!(forks, 2);
        assert_eq!(joins, 2);
    }

    #[test]
    fn regions_can_repeat_on_one_session() {
        let session = Session::record(Scheme::Dc, 2);
        let rt = Runtime::new(session.clone());
        let cs = crate::Critical::new("repeat");
        for _ in 0..3 {
            rt.parallel(|w| {
                w.critical(&cs, || {});
            });
        }
        let report = session.finish().unwrap();
        assert_eq!(report.stats.gates, 6);
        assert_eq!(report.bundle.unwrap().total_records(), 6);
    }

    #[test]
    fn runtime_constructs_record_and_replay_across_gate_domains() {
        // The ompr constructs (racy cells, criticals, reductions) hash
        // their sites across gate domains transparently: a multi-domain
        // recording made through the runtime must replay bit-for-bit.
        use reomp_core::SessionConfig;
        let cfg = SessionConfig {
            domains: 4,
            ..SessionConfig::default()
        };
        let run = |session: Arc<Session>| {
            let rt = Runtime::new(session);
            let cells: Vec<crate::RacyCell<u64>> = (0..4)
                .map(|i| crate::RacyCell::new(&format!("domtest:cell{i}"), 0))
                .collect();
            let cs = crate::Critical::new("domtest:cs");
            let safe = AtomicU64::new(0);
            rt.parallel(|w| {
                for _ in 0..20 {
                    w.racy_update(&cells[w.tid() as usize % 4], |v| v + 1);
                    w.critical(&cs, || {
                        safe.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            let finals: Vec<u64> = cells.iter().map(|c| c.raw_load()).collect();
            (finals, safe.load(Ordering::Relaxed))
        };

        let session = Session::record_with(Scheme::De, 4, cfg);
        let recorded = run(session.clone());
        let report = session.finish().unwrap();
        let bundle = report.bundle.unwrap();
        assert_eq!(bundle.domains, 4);
        assert!(
            report.domain_gates.iter().filter(|&&g| g > 0).count() > 1,
            "sites must scatter across domains: {:?}",
            report.domain_gates
        );

        let session = Session::replay(bundle).unwrap();
        let replayed = run(session.clone());
        let report = session.finish().unwrap();
        assert_eq!(report.failure, None);
        assert_eq!(report.fully_consumed, Some(true));
        assert_eq!(replayed, recorded);
    }
}
