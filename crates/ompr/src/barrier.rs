//! Sense-reversing team barrier.
//!
//! Barriers are deterministic synchronization (all-to-all), so they need no
//! record-and-replay gate; they do, however, establish happens-before edges
//! that the race detector must see, which is why [`crate::Worker::barrier`]
//! emits arrive/depart events around the wait.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// A reusable barrier for a fixed-size team.
#[derive(Debug)]
pub struct TeamBarrier {
    n: u32,
    count: AtomicU32,
    sense: AtomicBool,
    generation: AtomicU64,
}

impl TeamBarrier {
    /// Barrier for `n` threads.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(n > 0);
        TeamBarrier {
            n,
            count: AtomicU32::new(0),
            sense: AtomicBool::new(false),
            generation: AtomicU64::new(0),
        }
    }

    /// Team size.
    #[must_use]
    pub fn team_size(&self) -> u32 {
        self.n
    }

    /// Number of completed barrier episodes.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Wait until all `n` threads arrive. `local_sense` is the caller's
    /// per-thread sense flag, flipped on every use; returns the generation
    /// number of the barrier episode that completed.
    pub fn wait(&self, local_sense: &mut bool) -> u64 {
        let target = !*local_sense;
        *local_sense = target;
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver: reset and release everyone.
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::AcqRel);
            self.sense.store(target, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != target {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_barrier_never_blocks() {
        let b = TeamBarrier::new(1);
        let mut sense = false;
        assert_eq!(b.wait(&mut sense), 0);
        assert_eq!(b.wait(&mut sense), 1);
        assert_eq!(b.generation(), 2);
    }

    #[test]
    fn barrier_separates_phases() {
        const N: u32 = 4;
        const ROUNDS: usize = 50;
        let b = TeamBarrier::new(N);
        let phase_counts: Vec<AtomicUsize> = (0..ROUNDS).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    let mut sense = false;
                    for (round, count) in phase_counts.iter().enumerate() {
                        count.fetch_add(1, Ordering::SeqCst);
                        b.wait(&mut sense);
                        // After the barrier, every thread must observe the
                        // full count for this phase.
                        assert_eq!(count.load(Ordering::SeqCst), N as usize, "round {round}");
                        b.wait(&mut sense);
                    }
                });
            }
        });
        assert_eq!(b.generation(), 2 * ROUNDS as u64);
    }

    #[test]
    fn generations_are_monotone() {
        let b = TeamBarrier::new(2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut sense = false;
                    let mut last = None;
                    for _ in 0..100 {
                        let g = b.wait(&mut sense);
                        if let Some(prev) = last {
                            assert!(g > prev);
                        }
                        last = Some(g);
                    }
                });
            }
        });
    }
}
