//! Named critical sections (`#pragma omp critical [(name)]`).
//!
//! Clang translates a critical clause into a
//! `__kmpc_critical`/`__kmpc_end_critical` pair; the paper instruments
//! `gate_in` *before* the former and `gate_out` *after* the latter (§V).
//! [`crate::Worker::critical`] does exactly that: the ReOMP gate wraps the
//! mutex acquisition plus the user region, so the recorded order is the
//! order threads entered the critical section. In a multi-domain session
//! a critical gate anchors cross-domain edges, so it always records
//! through the gate's *locked* slow path — only plain racy loads/stores
//! ride the lock-free ticket fast path (see [`crate::racy`]).

use reomp_core::SiteId;

/// A named critical section; create one per `critical` construct and share
/// it across the team.
#[derive(Debug)]
pub struct Critical {
    name: String,
    site: SiteId,
    pub(crate) mutex: parking_lot::Mutex<()>,
}

impl Critical {
    /// Critical section identified by `name` (the site hash is derived from
    /// it, like ReOMP's hash of the construct's source location).
    #[must_use]
    pub fn new(name: &str) -> Self {
        Critical {
            name: name.to_string(),
            site: SiteId::from_label(name),
            mutex: parking_lot::Mutex::new(()),
        }
    }

    /// The construct's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate site of this construct.
    #[must_use]
    pub fn site(&self) -> SiteId {
        self.site
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_is_stable_per_name() {
        let a = Critical::new("update");
        let b = Critical::new("update");
        let c = Critical::new("other");
        assert_eq!(a.site(), b.site());
        assert_ne!(a.site(), c.site());
        assert_eq!(a.name(), "update");
    }

    #[test]
    fn mutex_provides_exclusion() {
        let cs = Critical::new("excl");
        let mut value = 0u64;
        let cell = std::cell::UnsafeCell::new(&mut value);
        // Exercise the raw mutex directly (Worker::critical is tested in
        // worker.rs with the full gate path).
        let counter = parking_lot::Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        let _g = cs.mutex.lock();
                        *counter.lock() += 1;
                    }
                });
            }
        });
        let _ = cell;
        assert_eq!(*counter.lock(), 4000);
    }
}
