//! Benign data races, expressible in safe Rust.
//!
//! The paper's motivating workloads contain *intended* data races: producer
//! threads store to shared variables while consumers poll them, avoiding
//! lock overhead (§IV-D). A C data race is undefined behaviour in Rust, so
//! [`RacyCell`] stores the value in a relaxed `AtomicU64`. Relaxed atomics
//! preserve exactly the property record-and-replay relies on — every
//! interleaving of the individual load/store *instructions* is a legal
//! execution with well-defined per-access values — without UB. The gated
//! accessors live on [`crate::Worker`] (`racy_load`/`racy_store`), which
//! instrument each instruction with `AccessKind::Load`/`Store`, the only
//! kinds eligible for DE epoch sharing (Condition 1). Plain loads and
//! stores are also the accesses that take the recorder's lock-free
//! ticket-gate fast path (`REOMP_TICKET_GATE`, on by default): a racy
//! access records through one `fetch_add` on the domain's ticket word
//! rather than a mutex bracket, which is exactly the hot path these
//! polling workloads hammer.

// ORDERING(file): deliberately-relaxed cells — this module *is* the
// benign-racy test subject. The record/replay gate around each access is
// what constrains the interleaving; the atomics only exist to make the C
// idiom expressible without UB, and any added ordering would mask the
// very reorderings the recorder must capture.
use reomp_core::SiteId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Values storable in a racy cell (bit-packable into 64 bits).
pub trait RacyValue: Copy + Send + Sync + 'static {
    /// Pack into the cell's 64-bit payload.
    fn to_bits(self) -> u64;
    /// Unpack from the cell's 64-bit payload.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! racy_int {
    ($($t:ty),*) => {$(
        impl RacyValue for $t {
            #[inline]
            fn to_bits(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
racy_int!(u8, u16, u32, u64, usize);

impl RacyValue for i64 {
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }
}

impl RacyValue for i32 {
    #[inline]
    fn to_bits(self) -> u64 {
        (self as i64) as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        (bits as i64) as i32
    }
}

impl RacyValue for f64 {
    #[inline]
    fn to_bits(self) -> u64 {
        f64::to_bits(self)
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl RacyValue for f32 {
    #[inline]
    fn to_bits(self) -> u64 {
        u64::from(f32::to_bits(self))
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl RacyValue for bool {
    #[inline]
    fn to_bits(self) -> u64 {
        u64::from(self)
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits != 0
    }
}

static NEXT_ADDR: AtomicU64 = AtomicU64::new(1);

fn fresh_addr() -> u64 {
    NEXT_ADDR.fetch_add(1, Ordering::Relaxed)
}

/// A shared cell accessed by intentional data races.
#[derive(Debug)]
pub struct RacyCell<T: RacyValue> {
    bits: AtomicU64,
    site: SiteId,
    addr: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: RacyValue> RacyCell<T> {
    /// New cell whose accesses are instrumented under the site derived from
    /// `label`.
    #[must_use]
    pub fn new(label: &str, initial: T) -> Self {
        RacyCell {
            bits: AtomicU64::new(initial.to_bits()),
            site: SiteId::from_label(label),
            addr: fresh_addr(),
            _marker: std::marker::PhantomData,
        }
    }

    /// The instrumentation site of this cell.
    #[must_use]
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Unique cell identity for race detection.
    #[must_use]
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Ungated raw load (used by the worker inside the gate and by
    /// sequential validation code).
    #[inline]
    #[must_use]
    pub fn raw_load(&self) -> T {
        T::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Ungated raw store.
    #[inline]
    pub fn raw_store(&self, v: T) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// A shared array of racy cells (e.g. a grid updated by scatter writes).
///
/// Each element is a distinct *address* for race detection, but elements
/// share gate sites in `site_groups` buckets: real instrumentation is
/// per-instruction, not per-element, and bucketing keeps the trace's site
/// table meaningful while letting hot elements form epoch runs.
#[derive(Debug)]
pub struct RacyArray<T: RacyValue> {
    cells: Vec<AtomicU64>,
    sites: Vec<SiteId>,
    base_addr: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: RacyValue> RacyArray<T> {
    /// Array of `len` cells initialized to `initial`, gated under
    /// `site_groups` distinct sites derived from `label`.
    #[must_use]
    pub fn new(label: &str, len: usize, site_groups: usize, initial: T) -> Self {
        let groups = site_groups.clamp(1, len.max(1));
        let sites = (0..groups)
            .map(|g| SiteId::from_label_indexed(label, g as u64))
            .collect();
        let base_addr = NEXT_ADDR.fetch_add(len.max(1) as u64, Ordering::Relaxed);
        RacyArray {
            cells: (0..len)
                .map(|_| AtomicU64::new(initial.to_bits()))
                .collect(),
            sites,
            base_addr,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The gate site covering element `i`.
    #[must_use]
    pub fn site_of(&self, i: usize) -> SiteId {
        self.sites[i % self.sites.len()]
    }

    /// All distinct gate sites of the array (for instrumentation plans).
    #[must_use]
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// Race-detection address of element `i`.
    #[must_use]
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base_addr + i as u64
    }

    /// Ungated raw load of element `i`.
    #[inline]
    #[must_use]
    pub fn raw_load(&self, i: usize) -> T {
        T::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Ungated raw store to element `i`.
    #[inline]
    pub fn raw_store(&self, i: usize, v: T) {
        self.cells[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Snapshot all elements (sequential epilogue code).
    #[must_use]
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.raw_load(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_roundtrips_value_types() {
        let f = RacyCell::new("f", -2.5f64);
        assert_eq!(f.raw_load(), -2.5);
        f.raw_store(7.25);
        assert_eq!(f.raw_load(), 7.25);

        let b = RacyCell::new("b", false);
        b.raw_store(true);
        assert!(b.raw_load());

        let i = RacyCell::new("i", -7i32);
        assert_eq!(i.raw_load(), -7);

        let x = RacyCell::new("x", u64::MAX);
        assert_eq!(x.raw_load(), u64::MAX);

        let g = RacyCell::new("g", -1.5f32);
        assert_eq!(g.raw_load(), -1.5f32);
    }

    #[test]
    fn cells_have_distinct_addrs_but_label_stable_sites() {
        let a = RacyCell::new("same", 0u64);
        let b = RacyCell::new("same", 0u64);
        assert_eq!(a.site(), b.site());
        assert_ne!(a.addr(), b.addr());
    }

    #[test]
    fn array_sites_bucket_elements() {
        let arr: RacyArray<f64> = RacyArray::new("grid", 100, 4, 0.0);
        assert_eq!(arr.len(), 100);
        assert_eq!(arr.sites().len(), 4);
        assert_eq!(arr.site_of(0), arr.site_of(4));
        assert_ne!(arr.site_of(0), arr.site_of(1));
        assert_ne!(arr.addr_of(0), arr.addr_of(4));
    }

    #[test]
    fn array_clamps_site_groups() {
        let arr: RacyArray<u64> = RacyArray::new("small", 3, 100, 1);
        assert_eq!(arr.sites().len(), 3);
        let arr: RacyArray<u64> = RacyArray::new("zero-groups", 3, 0, 1);
        assert_eq!(arr.sites().len(), 1);
    }

    #[test]
    fn array_roundtrip_and_snapshot() {
        let arr: RacyArray<i64> = RacyArray::new("v", 5, 2, -1);
        arr.raw_store(3, 42);
        assert_eq!(arr.raw_load(3), 42);
        assert_eq!(arr.to_vec(), vec![-1, -1, -1, 42, -1]);
    }
}
