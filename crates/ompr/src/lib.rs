//! # ompr — an OpenMP-like threaded runtime with record-and-replay gates
//!
//! This crate is the workspace's stand-in for the LLVM OpenMP runtime
//! (`libomp` and its `__kmpc_*` entry points): a fork-join thread-team
//! runtime providing `parallel`, worksharing loops with static / dynamic /
//! guided scheduling, named `critical` sections, `atomic` operations,
//! `reduction`s, `single`/`master`, barriers — and, crucially, **benign
//! data races** via [`RacyCell`]/[`RacyArray`].
//!
//! Where the paper's LLVM IR pass inserts `gate_in`/`gate_out` around
//! `__kmpc_critical`, atomic instructions, and TSan-reported racy
//! load/stores (§III, §V), this runtime calls the [`reomp_core`] gates
//! directly inside each construct — the same dynamic events, instrumented
//! at the same boundaries, without source rewriting (which is the awkward
//! part in Rust).
//!
//! Every construct also emits [`events::Event`]s to an optional
//! [`events::EventSink`], which is how the `racedet` crate observes the
//! execution for happens-before race detection (the TSan step of the
//! toolflow).
//!
//! ## Example: the paper's Fig. 8 synthetic benchmark template
//!
//! ```
//! use ompr::{Runtime, Reduction};
//! use reomp_core::{Session, Scheme};
//!
//! let session = Session::record(Scheme::De, 4);
//! let rt = Runtime::new(session.clone());
//!
//! // #pragma omp parallel for reduction(+:sum)
//! let red = Reduction::sum_f64("fig8:sum");
//! rt.parallel(|w| {
//!     let mut local = 0.0;
//!     w.for_static(0..10_000, |_i| local += 1.0);
//!     w.reduce(&red, local);
//! });
//! assert_eq!(red.load(), 10_000.0);
//!
//! let report = session.finish().unwrap();
//! assert!(report.bundle.is_some());
//! ```

#![warn(missing_docs)]

pub mod atomic;
pub mod barrier;
pub mod critical;
pub mod events;
pub mod racy;
pub mod reduction;
pub mod runtime;
pub mod schedule;
pub mod shared;
pub mod worker;

pub use atomic::AtomicF64;
pub use critical::Critical;
pub use events::{Event, EventSink};
pub use racy::{RacyArray, RacyCell, RacyValue};
pub use reduction::Reduction;
pub use runtime::Runtime;
pub use schedule::Schedule;
pub use shared::SharedVec;
pub use worker::Worker;
