//! Phase-partitioned shared vectors.
//!
//! HPC kernels mutate large shared arrays from many threads with
//! *disjoint* index ownership inside a phase and barriers between phases —
//! deterministic by construction, so no gates are needed (unlike
//! [`crate::RacyCell`]). Rust cannot express the dynamic disjointness with
//! `&mut` slices handed through a shared closure, so [`SharedVec`] stores
//! `f64` bits in relaxed atomics: data-race-free at the language level,
//! with the same per-element cost as a volatile array.

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared `f64` vector for barrier-phased disjoint writes.
#[derive(Debug, Default)]
pub struct SharedVec {
    bits: Vec<AtomicU64>,
}

impl SharedVec {
    /// A vector of `len` elements initialized to `init`.
    #[must_use]
    pub fn new(len: usize, init: f64) -> Self {
        SharedVec {
            bits: (0..len).map(|_| AtomicU64::new(init.to_bits())).collect(),
        }
    }

    /// Copy construction from a slice.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        SharedVec {
            bits: values.iter().map(|v| AtomicU64::new(v.to_bits())).collect(),
        }
    }

    /// Element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Read element `i`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> f64 {
        // ORDERING: phase-disjoint ownership — within a phase each element
        // has one owner, and cross-phase visibility comes from the
        // region's barrier/join, not from the element atomics. Relaxed
        // keeps the benign-race semantics the recorder is meant to gate.
        f64::from_bits(self.bits[i].load(Ordering::Relaxed))
    }

    /// Write element `i` (caller guarantees phase-disjoint ownership).
    #[inline]
    pub fn set(&self, i: usize, v: f64) {
        // ORDERING: as in `get` — ownership and barriers order accesses.
        self.bits[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// `self[i] += v` as a load+store (owner-only within a phase).
    #[inline]
    pub fn add(&self, i: usize, v: f64) {
        self.set(i, self.get(i) + v);
    }

    /// Snapshot to an owned `Vec` (sequential epilogue).
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Overwrite from a slice (sequential prologue between phases).
    pub fn copy_from(&self, values: &[f64]) {
        assert_eq!(values.len(), self.len());
        for (i, v) in values.iter().enumerate() {
            self.set(i, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = SharedVec::new(3, 1.5);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.get(2), 1.5);
        v.set(1, -2.0);
        v.add(1, 0.5);
        assert_eq!(v.to_vec(), vec![1.5, -1.5, 1.5]);
    }

    #[test]
    fn from_slice_and_copy_from() {
        let v = SharedVec::from_slice(&[1.0, 2.0]);
        assert_eq!(v.to_vec(), vec![1.0, 2.0]);
        v.copy_from(&[3.0, 4.0]);
        assert_eq!(v.to_vec(), vec![3.0, 4.0]);
    }

    #[test]
    fn disjoint_parallel_writes_are_exact() {
        let v = SharedVec::new(1000, 0.0);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let v = &v;
                s.spawn(move || {
                    for i in (t * 250)..((t + 1) * 250) {
                        v.set(i, i as f64);
                    }
                });
            }
        });
        assert!((0..1000).all(|i| v.get(i) == i as f64));
    }
}
