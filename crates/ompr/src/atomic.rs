//! Atomic shared variables (`#pragma omp atomic`).
//!
//! Clang lowers `omp atomic` to `atomicrmw`/`cmpxchg` instructions, which
//! the paper instruments directly with `gate_in`/`gate_out` (§V). Here the
//! gated update lives in [`crate::Worker::atomic_add_f64`] and friends;
//! this module supplies the missing primitive: an atomic `f64` built on
//! `AtomicU64` bit transmutation with a compare-exchange loop.

use std::sync::atomic::{AtomicU64, Ordering};

/// An atomic `f64` (OpenMP-style `atomic` reductions on floating point).
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// New cell holding `v`.
    #[must_use]
    pub fn new(v: f64) -> Self {
        AtomicF64 {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Atomic load.
    #[inline]
    #[must_use]
    pub fn load(&self, order: Ordering) -> f64 {
        f64::from_bits(self.bits.load(order))
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: f64, order: Ordering) {
        self.bits.store(v.to_bits(), order);
    }

    /// Atomic `+=` via compare-exchange loop; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: f64, order: Ordering) -> f64 {
        self.fetch_update(order, |x| x + v)
    }

    /// Atomic max; returns the previous value.
    #[inline]
    pub fn fetch_max(&self, v: f64, order: Ordering) -> f64 {
        self.fetch_update(order, |x| x.max(v))
    }

    /// Atomic read-modify-write with an arbitrary pure function; returns
    /// the previous value.
    pub fn fetch_update(&self, order: Ordering, f: impl Fn(f64) -> f64) -> f64 {
        // ORDERING: standard CAS-loop idiom — the Relaxed initial load and
        // Relaxed CAS-failure load are mere hints for the next attempt (a
        // stale value just retries); all synchronization is carried by the
        // caller-chosen `order` on the successful exchange.
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, order, Ordering::Relaxed)
            {
                Ok(prev) => return f64::from_bits(prev),
                Err(observed) => cur = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(Ordering::Relaxed), 1.5);
        a.store(-0.25, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), -0.25);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let a = AtomicF64::new(10.0);
        assert_eq!(a.fetch_add(2.5, Ordering::Relaxed), 10.0);
        assert_eq!(a.load(Ordering::Relaxed), 12.5);
    }

    #[test]
    fn fetch_max_keeps_maximum() {
        let a = AtomicF64::new(3.0);
        a.fetch_max(1.0, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 3.0);
        a.fetch_max(7.5, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 7.5);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let a = AtomicF64::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        a.fetch_add(1.0, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 40_000.0);
    }

    #[test]
    fn special_values_roundtrip_bits() {
        let a = AtomicF64::new(f64::NEG_INFINITY);
        assert_eq!(a.load(Ordering::Relaxed), f64::NEG_INFINITY);
        a.store(f64::NAN, Ordering::Relaxed);
        assert!(a.load(Ordering::Relaxed).is_nan());
    }
}
