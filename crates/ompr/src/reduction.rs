//! Reductions (`reduction(+:var)` and friends).
//!
//! OpenMP reductions compute thread-local partials and combine them once
//! per thread at the end of the loop, which is why the paper measures
//! negligible record-and-replay overhead for `omp_reduction` (§VI-A1): only
//! one gated access per thread. The combine order still affects
//! floating-point results — that is precisely the non-determinism the
//! scientists in §II-A suffered from — so the combine is gated with
//! [`reomp_core::AccessKind::Reduction`] and replays in recorded order.

// ORDERING(file): the relaxed atomics here are thread-private partials
// and diagnostic counters. Partials are only combined inside a gated
// region (the reomp gate's lock provides the ordering); counters are read
// after the parallel region's join barrier.
use crate::atomic::AtomicF64;
use reomp_core::SiteId;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// The combining operation of a reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `+`
    Sum,
    /// `max`
    Max,
    /// `min`
    Min,
}

enum Cell {
    F64(AtomicF64),
    U64(AtomicU64),
    I64(AtomicI64),
}

/// A shared reduction target.
pub struct Reduction {
    site: SiteId,
    op: ReduceOp,
    cell: Cell,
}

impl Reduction {
    /// `reduction(+ : f64)` starting at 0.
    #[must_use]
    pub fn sum_f64(label: &str) -> Self {
        Reduction {
            site: SiteId::from_label(label),
            op: ReduceOp::Sum,
            cell: Cell::F64(AtomicF64::new(0.0)),
        }
    }

    /// `reduction(max : f64)` starting at `-inf`.
    #[must_use]
    pub fn max_f64(label: &str) -> Self {
        Reduction {
            site: SiteId::from_label(label),
            op: ReduceOp::Max,
            cell: Cell::F64(AtomicF64::new(f64::NEG_INFINITY)),
        }
    }

    /// `reduction(min : f64)` starting at `+inf`.
    #[must_use]
    pub fn min_f64(label: &str) -> Self {
        Reduction {
            site: SiteId::from_label(label),
            op: ReduceOp::Min,
            cell: Cell::F64(AtomicF64::new(f64::INFINITY)),
        }
    }

    /// `reduction(+ : u64)` starting at 0.
    #[must_use]
    pub fn sum_u64(label: &str) -> Self {
        Reduction {
            site: SiteId::from_label(label),
            op: ReduceOp::Sum,
            cell: Cell::U64(AtomicU64::new(0)),
        }
    }

    /// `reduction(+ : i64)` starting at 0.
    #[must_use]
    pub fn sum_i64(label: &str) -> Self {
        Reduction {
            site: SiteId::from_label(label),
            op: ReduceOp::Sum,
            cell: Cell::I64(AtomicI64::new(0)),
        }
    }

    /// Gate site of the combine.
    #[must_use]
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The combining operation.
    #[must_use]
    pub fn op(&self) -> ReduceOp {
        self.op
    }

    /// Current f64 value (panics for integer reductions).
    #[must_use]
    pub fn load(&self) -> f64 {
        match &self.cell {
            Cell::F64(c) => c.load(Ordering::Acquire),
            _ => panic!("not an f64 reduction"),
        }
    }

    /// Current u64 value (panics for other reductions).
    #[must_use]
    pub fn load_u64(&self) -> u64 {
        match &self.cell {
            Cell::U64(c) => c.load(Ordering::Acquire),
            _ => panic!("not a u64 reduction"),
        }
    }

    /// Current i64 value (panics for other reductions).
    #[must_use]
    pub fn load_i64(&self) -> i64 {
        match &self.cell {
            Cell::I64(c) => c.load(Ordering::Acquire),
            _ => panic!("not an i64 reduction"),
        }
    }

    /// Reset to the identity element (for reuse across steps).
    pub fn reset(&self) {
        match (&self.cell, self.op) {
            (Cell::F64(c), ReduceOp::Sum) => c.store(0.0, Ordering::Release),
            (Cell::F64(c), ReduceOp::Max) => c.store(f64::NEG_INFINITY, Ordering::Release),
            (Cell::F64(c), ReduceOp::Min) => c.store(f64::INFINITY, Ordering::Release),
            (Cell::U64(c), _) => c.store(0, Ordering::Release),
            (Cell::I64(c), _) => c.store(0, Ordering::Release),
        }
    }

    /// Raw (ungated) combine of an f64 partial — called by the worker
    /// inside the gate.
    pub(crate) fn combine_f64(&self, partial: f64) {
        match (&self.cell, self.op) {
            (Cell::F64(c), ReduceOp::Sum) => {
                // Inside the gate the combine is already serialized, so a
                // plain read-modify-write preserves the *sequential* f64
                // addition order that the recorded order dictates.
                let cur = c.load(Ordering::Relaxed);
                c.store(cur + partial, Ordering::Relaxed);
            }
            (Cell::F64(c), ReduceOp::Max) => {
                let cur = c.load(Ordering::Relaxed);
                c.store(cur.max(partial), Ordering::Relaxed);
            }
            (Cell::F64(c), ReduceOp::Min) => {
                let cur = c.load(Ordering::Relaxed);
                c.store(cur.min(partial), Ordering::Relaxed);
            }
            _ => panic!("combine_f64 on integer reduction"),
        }
    }

    /// Raw (ungated) combine of a u64 partial.
    pub(crate) fn combine_u64(&self, partial: u64) {
        match (&self.cell, self.op) {
            (Cell::U64(c), ReduceOp::Sum) => {
                c.fetch_add(partial, Ordering::Relaxed);
            }
            (Cell::U64(c), ReduceOp::Max) => {
                c.fetch_max(partial, Ordering::Relaxed);
            }
            (Cell::U64(c), ReduceOp::Min) => {
                c.fetch_min(partial, Ordering::Relaxed);
            }
            _ => panic!("combine_u64 on non-u64 reduction"),
        }
    }

    /// Raw (ungated) combine of an i64 partial.
    pub(crate) fn combine_i64(&self, partial: i64) {
        match (&self.cell, self.op) {
            (Cell::I64(c), ReduceOp::Sum) => {
                c.fetch_add(partial, Ordering::Relaxed);
            }
            (Cell::I64(c), ReduceOp::Max) => {
                c.fetch_max(partial, Ordering::Relaxed);
            }
            (Cell::I64(c), ReduceOp::Min) => {
                c.fetch_min(partial, Ordering::Relaxed);
            }
            _ => panic!("combine_i64 on non-i64 reduction"),
        }
    }
}

impl std::fmt::Debug for Reduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reduction")
            .field("site", &self.site)
            .field("op", &self.op)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_f64_combines_and_resets() {
        let r = Reduction::sum_f64("s");
        r.combine_f64(1.5);
        r.combine_f64(2.5);
        assert_eq!(r.load(), 4.0);
        r.reset();
        assert_eq!(r.load(), 0.0);
    }

    #[test]
    fn max_min_identities() {
        let mx = Reduction::max_f64("mx");
        assert_eq!(mx.load(), f64::NEG_INFINITY);
        mx.combine_f64(-3.0);
        mx.combine_f64(-9.0);
        assert_eq!(mx.load(), -3.0);

        let mn = Reduction::min_f64("mn");
        mn.combine_f64(5.0);
        mn.combine_f64(2.0);
        assert_eq!(mn.load(), 2.0);
        mn.reset();
        assert_eq!(mn.load(), f64::INFINITY);
    }

    #[test]
    fn integer_reductions() {
        let u = Reduction::sum_u64("u");
        u.combine_u64(3);
        u.combine_u64(4);
        assert_eq!(u.load_u64(), 7);

        let i = Reduction::sum_i64("i");
        i.combine_i64(-3);
        i.combine_i64(10);
        assert_eq!(i.load_i64(), 7);
    }

    #[test]
    #[should_panic(expected = "not an f64 reduction")]
    fn type_confusion_panics() {
        let u = Reduction::sum_u64("u");
        let _ = u.load();
    }

    #[test]
    fn combine_order_changes_f64_result() {
        // The raison d'être of gating reductions: float addition order
        // matters. Pick values where (a+b)+c != (a+c)+b.
        let a = 1e16f64;
        let b = 1.0f64;
        let c = -1e16f64;
        let r1 = ((a + b) + c).to_bits();
        let r2 = ((a + c) + b).to_bits();
        assert_ne!(r1, r2, "test values must be order-sensitive");

        let red = Reduction::sum_f64("ord");
        red.combine_f64(a);
        red.combine_f64(b);
        red.combine_f64(c);
        let first = red.load();
        red.reset();
        red.combine_f64(a);
        red.combine_f64(c);
        red.combine_f64(b);
        assert_ne!(first.to_bits(), red.load().to_bits());
    }
}
