//! The per-thread [`Worker`] handle: every OpenMP-like construct, with its
//! `gate_in`/`gate_out` instrumentation, lives here.
//!
//! | construct | gate kind | paper instrumentation point (§V) |
//! |-----------|-----------|----------------------------------|
//! | `critical` | `Critical` | around `__kmpc_critical` pairs |
//! | `atomic_*` | `AtomicRmw` | around `atomicrmw`/`cmpxchg` |
//! | `reduce` | `Reduction` | around the `__kmpc_reduce` combine |
//! | `racy_load`/`racy_store` | `Load`/`Store` | TSan-reported racy instructions |
//! | `single`, dynamic/guided chunk claims | `Ordered` | `__kmpc_single` / dispatch (extension) |
//! | `barrier`, `master`, static loops | *ungated* (deterministic) | — |

use crate::atomic::AtomicF64;
use crate::critical::Critical;
use crate::events::Event;
use crate::racy::{RacyArray, RacyCell, RacyValue};
use crate::reduction::Reduction;
use crate::runtime::TeamShared;
use crate::schedule::{guided_chunk, static_block, static_chunks};
use reomp_core::{AccessKind, SiteId, ThreadCtx};
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::Ordering;

/// A team thread inside a parallel region.
pub struct Worker<'t> {
    tid: u32,
    nthreads: u32,
    ctx: ThreadCtx,
    team: &'t TeamShared,
    local_sense: Cell<bool>,
    barrier_count: Cell<u64>,
    construct_seq: Cell<u64>,
}

impl<'t> Worker<'t> {
    pub(crate) fn new(tid: u32, nthreads: u32, ctx: ThreadCtx, team: &'t TeamShared) -> Self {
        Worker {
            tid,
            nthreads,
            ctx,
            team,
            local_sense: Cell::new(false),
            barrier_count: Cell::new(0),
            construct_seq: Cell::new(0),
        }
    }

    /// This thread's 0-based team rank (`omp_get_thread_num`).
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Team size (`omp_get_num_threads`).
    #[must_use]
    pub fn nthreads(&self) -> u32 {
        self.nthreads
    }

    /// The underlying record-and-replay context (for custom gated regions).
    #[must_use]
    pub fn ctx(&self) -> &ThreadCtx {
        &self.ctx
    }

    fn next_construct(&self) -> u64 {
        let seq = self.construct_seq.get();
        self.construct_seq.set(seq + 1);
        seq
    }

    // ------------------------------------------------------------------
    // Synchronization constructs
    // ------------------------------------------------------------------

    /// Team barrier (`#pragma omp barrier`). Deterministic, hence ungated;
    /// emits happens-before events for the race detector, and — in
    /// multi-domain record runs — notes a cross-domain synchronization
    /// point so the order the barrier establishes between gate domains is
    /// stamped into the trace and restored on replay.
    pub fn barrier(&self) {
        let episode = self.barrier_count.get();
        self.barrier_count.set(episode + 1);
        self.team.emit(Event::BarrierArrive {
            tid: self.tid,
            generation: episode,
        });
        let mut sense = self.local_sense.get();
        self.team.barrier.wait(&mut sense);
        self.local_sense.set(sense);
        self.team.emit(Event::BarrierDepart {
            tid: self.tid,
            generation: episode,
        });
        // After everyone arrived: every pre-barrier access in every domain
        // is complete, so the snapshot taken here is the strongest sound
        // edge for this thread's next gated access.
        self.ctx.sync_point();
    }

    /// Named critical section: the gate wraps lock + region, so the
    /// recorded order is the order threads entered the section.
    pub fn critical<R>(&self, cs: &Critical, f: impl FnOnce() -> R) -> R {
        self.ctx.gate(cs.site(), AccessKind::Critical, || {
            let guard = cs.mutex.lock();
            self.team.emit(Event::Acquire {
                tid: self.tid,
                lock: cs.site().raw(),
            });
            let out = f();
            self.team.emit(Event::Release {
                tid: self.tid,
                lock: cs.site().raw(),
            });
            drop(guard);
            out
        })
    }

    /// `#pragma omp single` (nowait): exactly one thread — the first to
    /// arrive in record mode, the recorded one in replay — executes `f`.
    /// The claim itself is gated, so the winner is reproducible.
    pub fn single<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        let seq = self.next_construct();
        let state = self.team.construct(seq);
        let site = SiteId::from_label_indexed("ompr:single", seq);
        let won = self.ctx.gate(site, AccessKind::Ordered, || {
            !state.claimed.swap(true, Ordering::AcqRel)
        });
        won.then(f)
    }

    /// `#pragma omp master`: only the team's rank 0 executes `f`.
    /// Deterministic, hence ungated.
    pub fn master<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        (self.tid == 0).then(f)
    }

    // ------------------------------------------------------------------
    // Atomics and reductions
    // ------------------------------------------------------------------

    /// Gated atomic `f64 +=` (`#pragma omp atomic`).
    pub fn atomic_add_f64(&self, site: SiteId, cell: &AtomicF64, v: f64) {
        self.atomic_region(site, || {
            cell.fetch_add(v, Ordering::AcqRel);
        });
    }

    /// Gated atomic `u64 +=`.
    pub fn atomic_add_u64(&self, site: SiteId, cell: &std::sync::atomic::AtomicU64, v: u64) {
        self.atomic_region(site, || {
            cell.fetch_add(v, Ordering::AcqRel);
        });
    }

    /// Gated atomic `f64` max.
    pub fn atomic_max_f64(&self, site: SiteId, cell: &AtomicF64, v: f64) {
        self.atomic_region(site, || {
            cell.fetch_max(v, Ordering::AcqRel);
        });
    }

    /// A custom gated atomic region (an arbitrary `atomicrmw`).
    pub fn atomic_region<R>(&self, site: SiteId, f: impl FnOnce() -> R) -> R {
        self.ctx.gate(site, AccessKind::AtomicRmw, || {
            self.team.emit(Event::Acquire {
                tid: self.tid,
                lock: site.raw(),
            });
            let out = f();
            self.team.emit(Event::Release {
                tid: self.tid,
                lock: site.raw(),
            });
            out
        })
    }

    /// Combine an `f64` partial into a reduction (`reduction(+:x)` etc.).
    /// One gate per thread per reduction — the reason `omp_reduction`
    /// record-and-replay overhead is negligible (§VI-A1).
    pub fn reduce(&self, red: &Reduction, partial: f64) {
        self.reduce_region(red, || red.combine_f64(partial));
    }

    /// Combine a `u64` partial into a reduction.
    pub fn reduce_u64(&self, red: &Reduction, partial: u64) {
        self.reduce_region(red, || red.combine_u64(partial));
    }

    /// Combine an `i64` partial into a reduction.
    pub fn reduce_i64(&self, red: &Reduction, partial: i64) {
        self.reduce_region(red, || red.combine_i64(partial));
    }

    fn reduce_region(&self, red: &Reduction, f: impl FnOnce()) {
        self.ctx.gate(red.site(), AccessKind::Reduction, || {
            self.team.emit(Event::Acquire {
                tid: self.tid,
                lock: red.site().raw(),
            });
            f();
            self.team.emit(Event::Release {
                tid: self.tid,
                lock: red.site().raw(),
            });
        });
    }

    // ------------------------------------------------------------------
    // Benign data races (the DE-recording sweet spot)
    // ------------------------------------------------------------------

    /// Gated racy load of a shared cell.
    #[must_use]
    pub fn racy_load<T: RacyValue>(&self, cell: &RacyCell<T>) -> T {
        self.ctx
            .gate_at(cell.site(), cell.addr(), AccessKind::Load, || {
                self.team.emit(Event::Read {
                    tid: self.tid,
                    addr: cell.addr(),
                    site: cell.site(),
                });
                cell.raw_load()
            })
    }

    /// Gated racy store to a shared cell.
    pub fn racy_store<T: RacyValue>(&self, cell: &RacyCell<T>, v: T) {
        self.ctx
            .gate_at(cell.site(), cell.addr(), AccessKind::Store, || {
                self.team.emit(Event::Write {
                    tid: self.tid,
                    addr: cell.addr(),
                    site: cell.site(),
                });
                cell.raw_store(v);
            });
    }

    /// Racy read-modify-write (`sum += x` as it compiles: a gated load
    /// followed by a gated store — two instructions, two gates).
    pub fn racy_update<T: RacyValue>(&self, cell: &RacyCell<T>, f: impl FnOnce(T) -> T) {
        let v = self.racy_load(cell);
        self.racy_store(cell, f(v));
    }

    /// Gated racy load of an array element.
    #[must_use]
    pub fn racy_load_at<T: RacyValue>(&self, arr: &RacyArray<T>, i: usize) -> T {
        self.ctx
            .gate_at(arr.site_of(i), arr.addr_of(i), AccessKind::Load, || {
                self.team.emit(Event::Read {
                    tid: self.tid,
                    addr: arr.addr_of(i),
                    site: arr.site_of(i),
                });
                arr.raw_load(i)
            })
    }

    /// Gated racy store to an array element.
    pub fn racy_store_at<T: RacyValue>(&self, arr: &RacyArray<T>, i: usize, v: T) {
        self.ctx
            .gate_at(arr.site_of(i), arr.addr_of(i), AccessKind::Store, || {
                self.team.emit(Event::Write {
                    tid: self.tid,
                    addr: arr.addr_of(i),
                    site: arr.site_of(i),
                });
                arr.raw_store(i, v);
            });
    }

    /// Racy read-modify-write of an array element.
    pub fn racy_update_at<T: RacyValue>(
        &self,
        arr: &RacyArray<T>,
        i: usize,
        f: impl FnOnce(T) -> T,
    ) {
        let v = self.racy_load_at(arr, i);
        self.racy_store_at(arr, i, f(v));
    }

    // ------------------------------------------------------------------
    // Worksharing loops
    // ------------------------------------------------------------------

    /// `schedule(static)`: this thread's contiguous block of `range`.
    /// Deterministic partition — ungated.
    pub fn for_static(&self, range: Range<usize>, mut f: impl FnMut(usize)) {
        for i in static_block(&range, self.tid, self.nthreads) {
            f(i);
        }
    }

    /// `schedule(static, chunk)`: round-robin chunks. Ungated.
    pub fn for_static_chunk(&self, range: Range<usize>, chunk: usize, mut f: impl FnMut(usize)) {
        for i in static_chunks(range, chunk, self.tid, self.nthreads) {
            f(i);
        }
    }

    /// `schedule(dynamic, chunk)`: first-come-first-served chunks. The
    /// chunk *claim* is gated (`Ordered`), so the iteration→thread
    /// assignment — a real source of non-determinism the paper defers to
    /// future work — is itself recorded and replayed.
    pub fn for_dynamic(&self, range: Range<usize>, chunk: usize, mut f: impl FnMut(usize)) {
        let chunk = chunk.max(1);
        let seq = self.next_construct();
        let state = self.team.construct(seq);
        let site = SiteId::from_label_indexed("ompr:dynamic", seq);
        loop {
            let start = self.ctx.gate(site, AccessKind::Ordered, || {
                state.cursor.fetch_add(chunk, Ordering::AcqRel)
            });
            let begin = range.start + start;
            if begin >= range.end {
                break;
            }
            for i in begin..(begin + chunk).min(range.end) {
                f(i);
            }
        }
    }

    /// `schedule(guided, min_chunk)`: exponentially shrinking chunks,
    /// claims gated like [`Worker::for_dynamic`].
    pub fn for_guided(&self, range: Range<usize>, min_chunk: usize, mut f: impl FnMut(usize)) {
        let len = range.end.saturating_sub(range.start);
        let seq = self.next_construct();
        let state = self.team.construct(seq);
        let site = SiteId::from_label_indexed("ompr:guided", seq);
        let n = self.nthreads;
        loop {
            let claim = self.ctx.gate(site, AccessKind::Ordered, || {
                state
                    .cursor
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |done| {
                        if done >= len {
                            None
                        } else {
                            Some(done + guided_chunk(len - done, n, min_chunk))
                        }
                    })
                    .ok()
                    .map(|done| {
                        let size = guided_chunk(len - done, n, min_chunk);
                        (done, size)
                    })
            });
            let Some((done, size)) = claim else { break };
            let begin = range.start + done;
            for i in begin..(begin + size).min(range.end) {
                f(i);
            }
        }
    }
}

impl std::fmt::Debug for Worker<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("tid", &self.tid)
            .field("nthreads", &self.nthreads)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use parking_lot::Mutex;
    use reomp_core::{Scheme, Session, TraceBundle};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn record_then_replay<F>(scheme: Scheme, nthreads: u32, run: F) -> (u64, u64)
    where
        F: Fn(&Runtime) -> u64,
    {
        let session = Session::record(scheme, nthreads);
        let rt = Runtime::new(session.clone());
        let recorded = run(&rt);
        let bundle = session.finish().unwrap().bundle.unwrap();

        let session = Session::replay(bundle).unwrap();
        let rt = Runtime::new(session.clone());
        let replayed = run(&rt);
        let report = session.finish().unwrap();
        assert_eq!(report.failure, None);
        (recorded, replayed)
    }

    #[test]
    fn critical_is_mutually_exclusive_and_replayable() {
        let cs = Critical::new("worker:critical");
        let run = |rt: &Runtime| {
            let shared = Mutex::new(Vec::new());
            rt.parallel(|w| {
                for _ in 0..10 {
                    w.critical(&cs, || shared.lock().push(u64::from(w.tid())));
                }
            });
            // Encode the entry order as a number to compare runs.
            let order = shared.into_inner();
            order
                .iter()
                .fold(0u64, |acc, &t| acc.wrapping_mul(31).wrapping_add(t + 1))
        };
        for scheme in Scheme::ALL {
            let (rec, rep) = record_then_replay(scheme, 4, run);
            assert_eq!(rec, rep, "{scheme:?}: critical entry order must replay");
        }
    }

    #[test]
    fn reduction_replays_float_combine_order() {
        // Order-sensitive partials: replay must reproduce the exact bits.
        let run = |rt: &Runtime| {
            let red = Reduction::sum_f64("worker:red");
            rt.parallel(|w| {
                let partial = match w.tid() {
                    0 => 1e16,
                    1 => 1.0,
                    2 => -1e16,
                    _ => 3.0,
                };
                w.reduce(&red, partial);
            });
            red.load().to_bits()
        };
        for scheme in Scheme::ALL {
            let (rec, rep) = record_then_replay(scheme, 4, run);
            assert_eq!(rec, rep, "{scheme:?}: reduction bits must replay");
        }
    }

    #[test]
    fn racy_counter_replays_final_value() {
        let run = |rt: &Runtime| {
            let cell = RacyCell::new("worker:sum", 0u64);
            rt.parallel(|w| {
                for _ in 0..50 {
                    w.racy_update(&cell, |v| v + 1);
                }
            });
            cell.raw_load()
        };
        for scheme in Scheme::ALL {
            let (rec, rep) = record_then_replay(scheme, 4, run);
            // The racy counter loses updates non-deterministically; replay
            // must reproduce the recorded (possibly "wrong") value exactly.
            assert_eq!(rec, rep, "{scheme:?}");
            assert!(rep <= 200);
        }
    }

    #[test]
    fn single_picks_one_thread_and_replays_the_same_one() {
        let run = |rt: &Runtime| {
            let winner = AtomicU64::new(u64::MAX);
            rt.parallel(|w| {
                w.single(|| winner.store(u64::from(w.tid()), Ordering::SeqCst));
            });
            winner.load(Ordering::SeqCst)
        };
        for scheme in Scheme::ALL {
            let (rec, rep) = record_then_replay(scheme, 4, run);
            assert!(rec < 4, "someone won");
            assert_eq!(rec, rep, "{scheme:?}: same single winner under replay");
        }
    }

    #[test]
    fn dynamic_schedule_assignment_replays() {
        let run = |rt: &Runtime| {
            let assignment: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
            rt.parallel(|w| {
                let tid = u64::from(w.tid());
                w.for_dynamic(0..64, 4, |i| {
                    assignment[i].store(tid + 1, Ordering::SeqCst);
                });
            });
            assignment.iter().fold(0u64, |acc, a| {
                acc.wrapping_mul(7).wrapping_add(a.load(Ordering::SeqCst))
            })
        };
        for scheme in Scheme::ALL {
            let (rec, rep) = record_then_replay(scheme, 3, run);
            assert_eq!(rec, rep, "{scheme:?}: dynamic chunks must replay");
        }
    }

    #[test]
    fn guided_schedule_covers_range_and_replays() {
        let run = |rt: &Runtime| {
            let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            let owner: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            rt.parallel(|w| {
                let tid = u64::from(w.tid());
                w.for_guided(0..100, 2, |i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                    owner[i].store(tid + 1, Ordering::SeqCst);
                });
            });
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
            owner.iter().fold(0u64, |acc, a| {
                acc.wrapping_mul(7).wrapping_add(a.load(Ordering::SeqCst))
            })
        };
        for scheme in [Scheme::Dc, Scheme::De] {
            let (rec, rep) = record_then_replay(scheme, 3, run);
            assert_eq!(rec, rep, "{scheme:?}: guided chunks must replay");
        }
    }

    #[test]
    fn barrier_phases_inside_region() {
        let session = Session::passthrough(4);
        let rt = Runtime::new(session);
        let phase: AtomicU64 = AtomicU64::new(0);
        rt.parallel(|w| {
            phase.fetch_add(1, Ordering::SeqCst);
            w.barrier();
            assert_eq!(phase.load(Ordering::SeqCst), 4);
            w.barrier();
            w.master(|| phase.store(99, Ordering::SeqCst));
            w.barrier();
            assert_eq!(phase.load(Ordering::SeqCst), 99);
        });
    }

    #[test]
    fn racy_array_updates_replay() {
        let run = |rt: &Runtime| {
            let arr: Arc<RacyArray<u64>> = Arc::new(RacyArray::new("worker:arr", 8, 2, 0));
            rt.parallel(|w| {
                for round in 0..10usize {
                    let i = (round + w.tid() as usize) % 8;
                    w.racy_update_at(&arr, i, |v| v + 1);
                }
            });
            arr.to_vec()
                .iter()
                .fold(0u64, |acc, &v| acc.wrapping_mul(131).wrapping_add(v))
        };
        for scheme in Scheme::ALL {
            let (rec, rep) = record_then_replay(scheme, 4, run);
            assert_eq!(rec, rep, "{scheme:?}");
        }
    }

    #[test]
    fn de_epochs_group_racy_loads_across_workers() {
        let session = Session::record(Scheme::De, 4);
        let rt = Runtime::new(session.clone());
        let flag = RacyCell::new("worker:flag", 0u64);
        rt.parallel(|w| {
            for _ in 0..20 {
                let _ = w.racy_load(&flag);
            }
        });
        let report = session.finish().unwrap();
        let hist = report.epoch_histogram().unwrap();
        assert!(hist.max_size() > 1, "{hist}");
    }

    #[test]
    fn trace_roundtrip_through_bundle_replays_in_runtime() {
        // Full path: record via runtime -> bundle -> encode/decode -> replay.
        let session = Session::record(Scheme::De, 2);
        let rt = Runtime::new(session.clone());
        let cell = RacyCell::new("worker:rt", 0u64);
        rt.parallel(|w| {
            for _ in 0..10 {
                w.racy_update(&cell, |v| v + 3);
            }
        });
        let recorded = cell.raw_load();
        let bundle = session.finish().unwrap().bundle.unwrap();
        let store = reomp_core::MemStore::new();
        use reomp_core::TraceStore as _;
        store.save(&bundle).unwrap();
        let (bundle2, _): (TraceBundle, _) = store.load().unwrap();

        let session = Session::replay(bundle2).unwrap();
        let rt = Runtime::new(session.clone());
        let cell2 = RacyCell::new("worker:rt", 0u64);
        rt.parallel(|w| {
            for _ in 0..10 {
                w.racy_update(&cell2, |v| v + 3);
            }
        });
        assert_eq!(session.finish().unwrap().failure, None);
        assert_eq!(cell2.raw_load(), recorded);
    }
}
