//! Execution events for dynamic analysis (the hook the race detector uses).
//!
//! The paper's toolflow step (1) runs the application under ThreadSanitizer
//! to discover racy sites (§III, Fig. 2). Our equivalent: the runtime emits
//! a stream of synchronization and memory events; the `racedet` crate
//! implements [`EventSink`] and runs a FastTrack-style happens-before
//! analysis over them.

use reomp_core::SiteId;

/// Virtual thread ID of the team's forking (master) context.
pub const MAIN_TID: u32 = u32::MAX;

/// One dynamic event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `parent` forked team member `child`.
    Fork {
        /// Forking thread (usually [`MAIN_TID`]).
        parent: u32,
        /// New team member.
        child: u32,
    },
    /// `parent` joined team member `child` at region end.
    Join {
        /// Joining thread.
        parent: u32,
        /// Joined team member.
        child: u32,
    },
    /// `tid` acquired the lock identified by `lock` (critical sections,
    /// atomics — modelled as tiny lock-protected regions, like TSan does).
    Acquire {
        /// Acquiring thread.
        tid: u32,
        /// Lock identity (site hash).
        lock: u64,
    },
    /// `tid` released `lock`.
    Release {
        /// Releasing thread.
        tid: u32,
        /// Lock identity (site hash).
        lock: u64,
    },
    /// Unsynchronized read of the cell `addr` at source site `site`.
    Read {
        /// Reading thread.
        tid: u32,
        /// Distinct memory cell identity.
        addr: u64,
        /// Source site (what would be instrumented).
        site: SiteId,
    },
    /// Unsynchronized write of the cell `addr` at source site `site`.
    Write {
        /// Writing thread.
        tid: u32,
        /// Distinct memory cell identity.
        addr: u64,
        /// Source site (what would be instrumented).
        site: SiteId,
    },
    /// `tid` arrived at team barrier number `generation`.
    BarrierArrive {
        /// Arriving thread.
        tid: u32,
        /// Barrier generation (monotone per team).
        generation: u64,
    },
    /// `tid` left team barrier number `generation`.
    BarrierDepart {
        /// Departing thread.
        tid: u32,
        /// Barrier generation.
        generation: u64,
    },
}

/// Consumer of runtime events. Implementations must be cheap and
/// thread-safe; the runtime calls them inline.
pub trait EventSink: Send + Sync {
    /// Observe one event.
    fn event(&self, e: Event);
}

/// A sink that discards everything (useful default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&self, _e: Event) {}
}

/// A sink that records events into a vector (tests and tooling).
#[derive(Debug, Default)]
pub struct VecSink {
    events: parking_lot::Mutex<Vec<Event>>,
}

impl VecSink {
    /// New empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain all recorded events.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock())
    }
}

impl EventSink for VecSink {
    fn event(&self, e: Event) {
        self.events.lock().push(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_collects_in_order() {
        let sink = VecSink::new();
        sink.event(Event::Fork {
            parent: MAIN_TID,
            child: 0,
        });
        sink.event(Event::Read {
            tid: 0,
            addr: 1,
            site: SiteId(2),
        });
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::Fork { .. }));
        assert!(sink.take().is_empty());
    }

    #[test]
    fn null_sink_is_inert() {
        NullSink.event(Event::Join {
            parent: 0,
            child: 1,
        });
    }
}
