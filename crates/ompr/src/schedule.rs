//! Worksharing-loop schedules (`schedule(static|dynamic|guided)`).
//!
//! Static schedules partition iterations deterministically from the thread
//! ID alone. Dynamic and guided schedules hand out chunks in *arrival
//! order*, which is a genuine source of non-determinism in OpenMP programs;
//! [`crate::Worker::for_dynamic`] therefore gates each chunk claim so the
//! assignment itself is recorded and replayed (an extension beyond the
//! paper, which lists task/loop scheduling as future work).

use std::ops::Range;

/// Loop schedule selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous blocks, one per thread (`schedule(static)`).
    Static,
    /// Round-robin chunks of the given size (`schedule(static, n)`).
    StaticChunk(usize),
    /// First-come-first-served chunks of the given size
    /// (`schedule(dynamic, n)`).
    Dynamic(usize),
    /// Exponentially decreasing chunks with the given minimum
    /// (`schedule(guided, n)`).
    Guided(usize),
}

/// The static block `[begin, end)` of `tid` among `nthreads` over `range`.
///
/// Matches the usual OpenMP static partition: the first `len % nthreads`
/// threads get one extra iteration.
#[must_use]
pub fn static_block(range: &Range<usize>, tid: u32, nthreads: u32) -> Range<usize> {
    let len = range.end.saturating_sub(range.start);
    let n = nthreads as usize;
    let t = tid as usize;
    let base = len / n;
    let extra = len % n;
    let begin = range.start + t * base + t.min(extra);
    let size = base + usize::from(t < extra);
    begin..(begin + size)
}

/// Iterator over the `schedule(static, chunk)` indices of one thread.
pub fn static_chunks(
    range: Range<usize>,
    chunk: usize,
    tid: u32,
    nthreads: u32,
) -> impl Iterator<Item = usize> {
    let chunk = chunk.max(1);
    let stride = chunk * nthreads as usize;
    let start = range.start + tid as usize * chunk;
    let end = range.end;
    (start..end)
        .step_by(stride.max(1))
        .flat_map(move |lo| lo..(lo + chunk).min(end))
}

/// Next guided chunk size given remaining iterations.
#[must_use]
pub fn guided_chunk(remaining: usize, nthreads: u32, min_chunk: usize) -> usize {
    (remaining / (2 * nthreads as usize).max(1))
        .max(min_chunk.max(1))
        .min(remaining)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn static_blocks_cover_range_exactly() {
        for len in [0usize, 1, 7, 64, 100] {
            for n in [1u32, 2, 3, 8] {
                let range = 10..(10 + len);
                let mut seen = HashSet::new();
                for tid in 0..n {
                    for i in static_block(&range, tid, n) {
                        assert!(seen.insert(i), "len={len} n={n} duplicate {i}");
                    }
                }
                assert_eq!(seen.len(), len, "len={len} n={n}");
                assert!(seen.iter().all(|i| range.contains(i)));
            }
        }
    }

    #[test]
    fn static_blocks_balance_within_one() {
        let range = 0..103;
        let sizes: Vec<usize> = (0..4).map(|t| static_block(&range, t, 4).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn static_chunks_cover_range_exactly() {
        for chunk in [1usize, 2, 5, 16] {
            let range = 3..90;
            let n = 3u32;
            let mut seen = HashSet::new();
            for tid in 0..n {
                for i in static_chunks(range.clone(), chunk, tid, n) {
                    assert!(seen.insert(i), "chunk={chunk} duplicate {i}");
                }
            }
            assert_eq!(seen.len(), range.len(), "chunk={chunk}");
        }
    }

    #[test]
    fn static_chunks_are_round_robin() {
        // chunk 2, 2 threads over 0..8: t0 gets 0,1,4,5; t1 gets 2,3,6,7.
        let t0: Vec<usize> = static_chunks(0..8, 2, 0, 2).collect();
        let t1: Vec<usize> = static_chunks(0..8, 2, 1, 2).collect();
        assert_eq!(t0, vec![0, 1, 4, 5]);
        assert_eq!(t1, vec![2, 3, 6, 7]);
    }

    #[test]
    fn guided_chunks_shrink_and_respect_min() {
        let mut remaining = 1000usize;
        let mut last = usize::MAX;
        while remaining > 0 {
            let c = guided_chunk(remaining, 4, 8);
            assert!(c >= 1);
            assert!(c <= remaining);
            assert!(
                c <= last || c == 8.min(remaining),
                "non-increasing until min"
            );
            last = c;
            remaining -= c;
        }
        assert_eq!(guided_chunk(0, 4, 8), 0);
        assert_eq!(guided_chunk(3, 4, 8), 3, "tail smaller than min");
    }

    #[test]
    fn empty_range_yields_nothing() {
        assert_eq!(static_block(&(5..5), 0, 4).len(), 0);
        assert_eq!(static_chunks(5..5, 4, 1, 2).count(), 0);
    }
}
