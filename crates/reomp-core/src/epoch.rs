//! Epoch assignment for DE recording (paper §IV-D, Table V).
//!
//! Concurrency note: the tracker is pure data mutated only under the
//! domain's gate exclusion — the `RawLocked` mutex in `session.rs`, or a
//! served [`TicketGate`](crate::clock::TicketGate) ticket on the
//! lock-free record fast path — so it needs no `crate::shim` seam: the
//! model checker exercises it through the gate engines, where the lock
//! (or ticket word) itself is the scheduling point. DE's *publication*
//! batching ([`crate::SessionConfig::publish_batch`]) mirrors how this
//! module
//! batches runs: the tracker coalesces same-site accesses into one
//! epoch, the gate coalesces their completion-count stores into one
//! `published` release per batch.
//!
//! # The rule
//!
//! Every gated access receives a global clock `c`. DE recording writes
//! `epoch = c − X_C`, where `X_C` is the length of the *run* of immediately
//! preceding accesses the new access may be freely reordered with under
//! Condition 1:
//!
//! * **(i)** consecutive **loads** of the same site commute — a load's
//!   epoch is the clock of the first load of its run;
//! * **(ii)** consecutive **stores** of the same site commute *except the
//!   last one before a non-store*, because the last store determines the
//!   value subsequent loads must observe. Table V encodes this by setting
//!   `X_C = 0` for the final store of a run (`x5` gets epoch 5, not 3).
//!
//! Whether a store is "final" depends on the **next** access, which has not
//! happened yet when the store is recorded. We therefore finalize store
//! epochs with *one-access deferral*: the store's record is held pending
//! inside the tracker (all of this runs under the gate lock, so there is no
//! race) and is emitted when the next access — or the session flush —
//! reveals whether the run continued.
//!
//! # Run-boundary policies and replay safety
//!
//! [`EpochPolicy::Contiguous`] (default) ends a run whenever an access to a
//! *different* site (or of a different kind) intervenes, even though
//! Condition 1 is stated per-address. This buys a safety proof:
//!
//! > **Claim.** Under `Contiguous`, epoch values are non-decreasing in
//! > clock order, and the DE replay rule — admit an access with epoch `e`
//! > once `next_clock ≥ e`, increment `next_clock` at completion — ensures
//! > an access with epoch `e` starts only after *all* accesses with clock
//! > `< e` completed.
//! >
//! > *Proof sketch.* Runs partition the clock sequence into contiguous
//! > blocks `[r, s]`. Loads in a block all carry epoch `r`; stores carry
//! > `r` except the last, which carries its own clock `s`. Hence the epoch
//! > sequence is non-decreasing, and any access with clock ≥ e has epoch
//! > ≥ e′ where e′ is its block's start > previous block's end. When
//! > `next_clock = e`, exactly `e` accesses completed, and only accesses
//! > with epoch ≤ e — all of which have clock < e or are block-mates that
//! > commute with the waiter by Condition 1 — can have been admitted. ∎
//!
//! [`EpochPolicy::PerAddress`] follows the paper's per-address wording
//! literally: a run survives interleaved accesses to other sites. Epochs
//! then are *not* monotone, and the final store of a run can be admitted
//! while an earlier same-site store is still pending, which can mis-replay
//! the final value (demonstrated by `tests/epoch_policy_hazard.rs` in the
//! workspace root). It remains deadlock-free — every access has
//! `epoch ≤ clock`, so the pending access with the smallest clock is always
//! admissible — and yields strictly larger epochs, so it is offered as an
//! opt-in relaxation and an ablation point.

use crate::history::{AccessRecord, HistoryRing};
use crate::site::{AccessKind, SiteId};
use std::collections::HashMap;

/// How run boundaries are determined when computing `X_C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EpochPolicy {
    /// Runs are maximal *globally consecutive* same-site same-kind access
    /// sequences. Replay-safe (see module docs); the default.
    #[default]
    Contiguous,
    /// Runs are per-address and survive interleaved accesses to *other*
    /// addresses — the paper-literal reading of Condition 1. Larger
    /// epochs, weaker replay-fidelity guarantee.
    PerAddress,
}

impl EpochPolicy {
    /// Parse from the `REOMP_EPOCH_POLICY` environment value.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<EpochPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "contiguous" => Some(EpochPolicy::Contiguous),
            "per-address" | "peraddress" | "per_address" | "per-site" | "persite" => {
                Some(EpochPolicy::PerAddress)
            }
            _ => None,
        }
    }

    /// Stable name used in manifests.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EpochPolicy::Contiguous => "contiguous",
            EpochPolicy::PerAddress => "per-address",
        }
    }
}

/// A fully determined trace record: the access at `clock` is to be written
/// to thread `thread`'s record file with value `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finalized {
    /// Owning thread (whose per-thread record file receives this entry).
    pub thread: u32,
    /// Global clock assigned to the access.
    pub clock: u64,
    /// Recorded epoch (`clock − X_C`).
    pub epoch: u64,
    /// Site of the access.
    pub site: SiteId,
    /// Kind of the access.
    pub kind: AccessKind,
}

impl Finalized {
    /// The `X_C` value implied by this record (Table V column 2).
    #[must_use]
    pub fn xc(&self) -> u64 {
        self.clock - self.epoch
    }
}

#[derive(Debug, Clone, Copy)]
struct Run {
    addr: u64,
    kind: AccessKind,
    start: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    thread: u32,
    clock: u64,
    site: SiteId,
    run_start: u64,
}

/// Streaming epoch assigner. One per session; all calls happen under the
/// session's gate lock, in clock order.
#[derive(Debug)]
pub struct EpochTracker {
    policy: EpochPolicy,
    ring: HistoryRing,
    /// Contiguous-policy state: the single current run and pending store.
    cur: Option<Run>,
    pending: Option<Pending>,
    /// PerAddress-policy state.
    addr_runs: HashMap<u64, Run>,
    addr_pending: HashMap<u64, Pending>,
    deferred: u64,
}

/// Result of observing one access: zero, one, or two records become final.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Observed {
    /// A previously pending store finalized by this access (may belong to a
    /// different thread).
    pub prior: Option<Finalized>,
    /// The current access, if it finalized immediately (loads and all
    /// non-eligible kinds do; stores go pending).
    pub current: Option<Finalized>,
}

impl Observed {
    /// Iterate over the finalized records in clock order.
    pub fn iter(&self) -> impl Iterator<Item = Finalized> {
        self.prior.into_iter().chain(self.current)
    }
}

impl EpochTracker {
    /// New tracker with the given policy and history-ring capacity.
    #[must_use]
    pub fn new(policy: EpochPolicy, ring_capacity: usize) -> Self {
        EpochTracker {
            policy,
            ring: HistoryRing::new(ring_capacity),
            cur: None,
            pending: None,
            addr_runs: HashMap::new(),
            addr_pending: HashMap::new(),
            deferred: 0,
        }
    }

    /// Number of store records that were finalized by a *later* access.
    #[must_use]
    pub fn deferred_count(&self) -> u64 {
        self.deferred
    }

    /// Read-only view of the access-history ring (diagnostics).
    #[must_use]
    pub fn history(&self) -> &HistoryRing {
        &self.ring
    }

    /// Smallest clock of any record still pending inside the tracker, or
    /// `None` when every observed access has been finalized. Streaming
    /// recorders use this as the flush watermark: records with clocks below
    /// it are complete in their owners' buffers and safe to persist.
    #[must_use]
    pub fn min_pending_clock(&self) -> Option<u64> {
        let contiguous = self.pending.map(|p| p.clock);
        let per_addr = self.addr_pending.values().map(|p| p.clock).min();
        match (contiguous, per_addr) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Observe the access with the given (already assigned) clock and
    /// compute finalized records. Must be called in strictly increasing
    /// clock order. `addr` identifies the memory location (Condition 1 is
    /// per-address); gates without a distinct address pass the site hash.
    pub fn observe(
        &mut self,
        thread: u32,
        site: SiteId,
        addr: u64,
        kind: AccessKind,
        clock: u64,
    ) -> Observed {
        let out = match self.policy {
            EpochPolicy::Contiguous => self.observe_contiguous(thread, site, addr, kind, clock),
            EpochPolicy::PerAddress => self.observe_per_address(thread, site, addr, kind, clock),
        };
        self.ring.push(AccessRecord {
            clock,
            site,
            kind,
            thread,
        });
        out
    }

    fn observe_contiguous(
        &mut self,
        thread: u32,
        site: SiteId,
        addr: u64,
        kind: AccessKind,
        clock: u64,
    ) -> Observed {
        let joins = matches!(
            self.cur,
            Some(r) if r.addr == addr && r.kind == kind && kind.is_epoch_eligible()
        );

        // Finalize a pending store (the previous access of the current
        // store-run). If the run continues (another same-site store), the
        // pending store keeps the run epoch; otherwise condition (ii) is
        // violated at the boundary and it is serialized at its own clock —
        // Table V's "we set X_C to 0 when a store is followed by a load".
        let prior = self.pending.take().map(|p| {
            let epoch = if joins { p.run_start } else { p.clock };
            if epoch != p.clock {
                self.deferred += 1;
            }
            Finalized {
                thread: p.thread,
                clock: p.clock,
                epoch,
                site: p.site,
                kind: AccessKind::Store,
            }
        });

        let run_start = if joins {
            self.cur.expect("joins implies current run").start
        } else {
            self.cur = kind.is_epoch_eligible().then_some(Run {
                addr,
                kind,
                start: clock,
            });
            clock
        };

        let current = match kind {
            AccessKind::Load => Some(Finalized {
                thread,
                clock,
                epoch: run_start,
                site,
                kind,
            }),
            AccessKind::Store => {
                self.pending = Some(Pending {
                    thread,
                    clock,
                    site,
                    run_start,
                });
                None
            }
            // Non-eligible kinds serialize: epoch == clock, and the run is
            // already broken above (`cur` reset to None).
            _ => Some(Finalized {
                thread,
                clock,
                epoch: clock,
                site,
                kind,
            }),
        };

        Observed { prior, current }
    }

    fn observe_per_address(
        &mut self,
        thread: u32,
        site: SiteId,
        addr: u64,
        kind: AccessKind,
        clock: u64,
    ) -> Observed {
        let joins = matches!(
            self.addr_runs.get(&addr),
            Some(r) if r.kind == kind && kind.is_epoch_eligible()
        );

        // Only a pending store *on this address* can be affected by this
        // access; pending stores on other addresses stay pending.
        let prior = self.addr_pending.remove(&addr).map(|p| {
            let epoch = if joins { p.run_start } else { p.clock };
            if epoch != p.clock {
                self.deferred += 1;
            }
            Finalized {
                thread: p.thread,
                clock: p.clock,
                epoch,
                site: p.site,
                kind: AccessKind::Store,
            }
        });

        let run_start = if joins {
            self.addr_runs.get(&addr).expect("joins implies run").start
        } else {
            if kind.is_epoch_eligible() {
                self.addr_runs.insert(
                    addr,
                    Run {
                        addr,
                        kind,
                        start: clock,
                    },
                );
            } else {
                self.addr_runs.remove(&addr);
            }
            clock
        };

        let current = match kind {
            AccessKind::Load => Some(Finalized {
                thread,
                clock,
                epoch: run_start,
                site,
                kind,
            }),
            AccessKind::Store => {
                self.addr_pending.insert(
                    addr,
                    Pending {
                        thread,
                        clock,
                        site,
                        run_start,
                    },
                );
                None
            }
            _ => Some(Finalized {
                thread,
                clock,
                epoch: clock,
                site,
                kind,
            }),
        };

        Observed { prior, current }
    }

    /// Finalize all still-pending stores at end of recording. A trailing
    /// store has no successor, so grouping it is never justified: it gets
    /// its own clock (serialized), which is always safe.
    pub fn flush(&mut self) -> Vec<Finalized> {
        let mut out: Vec<Finalized> = Vec::new();
        if let Some(p) = self.pending.take() {
            out.push(Finalized {
                thread: p.thread,
                clock: p.clock,
                epoch: p.clock,
                site: p.site,
                kind: AccessKind::Store,
            });
        }
        out.extend(self.addr_pending.drain().map(|(_, p)| Finalized {
            thread: p.thread,
            clock: p.clock,
            epoch: p.clock,
            site: p.site,
            kind: AccessKind::Store,
        }));
        self.cur = None;
        self.addr_runs.clear();
        out.sort_by_key(|f| f.clock);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: SiteId = SiteId(0xaaaa);
    const Y: SiteId = SiteId(0xbbbb);

    /// Drive a tracker over `(thread, site, kind)` accesses with clocks
    /// 0,1,2,… and return finalized records sorted by clock. The site hash
    /// doubles as the address, like plain `ThreadCtx::gate`.
    fn run(policy: EpochPolicy, seq: &[(u32, SiteId, AccessKind)]) -> Vec<Finalized> {
        let mut t = EpochTracker::new(policy, 64);
        let mut out = Vec::new();
        for (clock, &(thread, site, kind)) in seq.iter().enumerate() {
            out.extend(
                t.observe(thread, site, site.raw(), kind, clock as u64)
                    .iter(),
            );
        }
        out.extend(t.flush());
        out.sort_by_key(|f| f.clock);
        out
    }

    #[test]
    fn table_v_exact_reproduction() {
        use AccessKind::{Load, Store};
        // x0..x6 of Table V: L L L S S S L, threads T1 T2 T3 T1 T2 T3 T1.
        let seq = [
            (1, X, Load),
            (2, X, Load),
            (3, X, Load),
            (1, X, Store),
            (2, X, Store),
            (3, X, Store),
            (1, X, Load),
        ];
        let got = run(EpochPolicy::Contiguous, &seq);
        let epochs: Vec<u64> = got.iter().map(|f| f.epoch).collect();
        assert_eq!(epochs, vec![0, 0, 0, 3, 3, 5, 6], "Table V column (3)");
        let xcs: Vec<u64> = got.iter().map(|f| f.xc()).collect();
        assert_eq!(xcs, vec![0, 1, 2, 0, 1, 0, 0], "Table V column (2)");
        // Same address, so PerSite agrees.
        let got_pa = run(EpochPolicy::PerAddress, &seq);
        assert_eq!(got, got_pa);
    }

    #[test]
    fn every_access_is_finalized_exactly_once() {
        use AccessKind::{Load, Store};
        let seq: Vec<(u32, SiteId, AccessKind)> = (0..100)
            .map(|i| {
                let kind = if i % 3 == 0 { Store } else { Load };
                let site = if i % 7 < 4 { X } else { Y };
                (i as u32 % 4, site, kind)
            })
            .collect();
        for policy in [EpochPolicy::Contiguous, EpochPolicy::PerAddress] {
            let got = run(policy, &seq);
            assert_eq!(got.len(), seq.len(), "{policy:?}");
            let clocks: Vec<u64> = got.iter().map(|f| f.clock).collect();
            assert_eq!(clocks, (0..100).collect::<Vec<u64>>(), "{policy:?}");
        }
    }

    #[test]
    fn epoch_never_exceeds_clock() {
        use AccessKind::{Load, Store};
        let seq: Vec<(u32, SiteId, AccessKind)> = (0..200)
            .map(|i| {
                let kind = if (i / 5) % 2 == 0 { Load } else { Store };
                (0, if i % 2 == 0 { X } else { Y }, kind)
            })
            .collect();
        for policy in [EpochPolicy::Contiguous, EpochPolicy::PerAddress] {
            for f in run(policy, &seq) {
                assert!(f.epoch <= f.clock, "{policy:?}: {f:?}");
            }
        }
    }

    #[test]
    fn contiguous_epochs_are_monotone() {
        use AccessKind::{Load, Store};
        // Adversarial interleaving across two sites.
        let seq = [
            (0, X, Load),
            (1, Y, Store),
            (2, X, Load),
            (0, X, Store),
            (1, X, Store),
            (2, Y, Load),
            (0, X, Store),
            (1, X, Load),
        ];
        let got = run(EpochPolicy::Contiguous, &seq);
        for w in got.windows(2) {
            assert!(
                w[0].epoch <= w[1].epoch,
                "monotonicity violated: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn per_address_keeps_runs_alive_across_other_addresses() {
        use AccessKind::Load;
        // X-load, Y-load, X-load: PerAddress groups the two X loads (epoch 0),
        // Contiguous does not (second X load starts a new run at clock 2).
        let seq = [(0, X, Load), (1, Y, Load), (2, X, Load)];
        let contiguous = run(EpochPolicy::Contiguous, &seq);
        let per_addr = run(EpochPolicy::PerAddress, &seq);
        assert_eq!(
            contiguous.iter().map(|f| f.epoch).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(
            per_addr.iter().map(|f| f.epoch).collect::<Vec<_>>(),
            vec![0, 1, 0]
        );
    }

    #[test]
    fn store_run_interrupted_by_other_address_is_serialized_under_contiguous() {
        use AccessKind::{Load, Store};
        let seq = [(0, X, Store), (1, Y, Load), (2, X, Store)];
        let got = run(EpochPolicy::Contiguous, &seq);
        // First X store is finalized at its own clock (run broken by Y).
        assert_eq!(got[0].epoch, 0);
        // Trailing X store flushed at its own clock.
        assert_eq!(got[2].epoch, 2);
    }

    #[test]
    fn trailing_store_flushes_at_own_clock() {
        use AccessKind::Store;
        let seq = [(0, X, Store), (1, X, Store), (2, X, Store)];
        for policy in [EpochPolicy::Contiguous, EpochPolicy::PerAddress] {
            let got = run(policy, &seq);
            // First two share the run epoch; the last is flushed serialized.
            assert_eq!(
                got.iter().map(|f| f.epoch).collect::<Vec<_>>(),
                vec![0, 0, 2]
            );
        }
    }

    #[test]
    fn ineligible_kinds_serialize_and_break_runs() {
        use AccessKind::{Critical, Load};
        let seq = [(0, X, Load), (1, X, Critical), (2, X, Load)];
        let got = run(EpochPolicy::Contiguous, &seq);
        assert_eq!(
            got.iter().map(|f| f.epoch).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let got = run(EpochPolicy::PerAddress, &seq);
        assert_eq!(
            got.iter().map(|f| f.epoch).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn pure_load_run_shares_one_epoch() {
        use AccessKind::Load;
        let seq: Vec<_> = (0..50u32).map(|t| (t, X, Load)).collect();
        for policy in [EpochPolicy::Contiguous, EpochPolicy::PerAddress] {
            let got = run(policy, &seq);
            assert!(got.iter().all(|f| f.epoch == 0), "{policy:?}");
        }
    }

    #[test]
    fn deferred_counter_counts_grouped_stores() {
        use AccessKind::Store;
        let mut t = EpochTracker::new(EpochPolicy::Contiguous, 16);
        t.observe(0, X, X.raw(), Store, 0);
        t.observe(1, X, X.raw(), Store, 1); // finalizes store@0: epoch == clock for the first
        t.observe(2, X, X.raw(), Store, 2); // finalizes store@1 with epoch 0 (deferred group)
        t.flush();
        // store@0: epoch 0 == clock 0, not counted; store@1: epoch 0 != 1.
        assert_eq!(t.deferred_count(), 1);
    }

    #[test]
    fn run_based_epochs_match_ring_xc_audit_for_single_site() {
        use AccessKind::{Load, Store};
        // For a single hot site and a long-enough ring, the run-based epoch
        // must equal clock - lookup_xc for loads (the backward-looking X_C
        // is exact for loads).
        let mut t = EpochTracker::new(EpochPolicy::Contiguous, 128);
        let mut audit = HistoryRing::new(128);
        let mut finals: Vec<Finalized> = Vec::new();
        let pattern = [Load, Load, Store, Store, Store, Load, Store, Load, Load];
        let mut clock = 0u64;
        for _ in 0..6 {
            for &kind in &pattern {
                if kind == Load {
                    let xc = audit.lookup_xc(X, kind).expect("ring long enough");
                    let obs = t.observe(0, X, X.raw(), kind, clock);
                    let cur = obs.current.expect("loads finalize immediately");
                    assert_eq!(cur.epoch, clock - xc, "load at clock {clock}");
                    finals.extend(obs.iter());
                } else {
                    finals.extend(t.observe(0, X, X.raw(), kind, clock).iter());
                }
                audit.push(AccessRecord {
                    clock,
                    site: X,
                    kind,
                    thread: 0,
                });
                clock += 1;
            }
        }
        finals.extend(t.flush());
        assert_eq!(finals.len() as u64, clock);
    }

    #[test]
    fn min_pending_clock_tracks_outstanding_stores() {
        use AccessKind::{Load, Store};
        let mut t = EpochTracker::new(EpochPolicy::Contiguous, 16);
        assert_eq!(t.min_pending_clock(), None);
        t.observe(0, X, X.raw(), Load, 0);
        assert_eq!(t.min_pending_clock(), None, "loads finalize immediately");
        t.observe(0, X, X.raw(), Store, 1);
        assert_eq!(t.min_pending_clock(), Some(1), "store goes pending");
        t.observe(1, X, X.raw(), Store, 2);
        assert_eq!(t.min_pending_clock(), Some(2), "previous store finalized");
        t.flush();
        assert_eq!(t.min_pending_clock(), None);

        // PerAddress: pendings on several addresses, minimum wins.
        let mut t = EpochTracker::new(EpochPolicy::PerAddress, 16);
        t.observe(0, X, X.raw(), Store, 0);
        t.observe(1, Y, Y.raw(), Store, 1);
        assert_eq!(t.min_pending_clock(), Some(0));
        t.observe(0, X, X.raw(), Load, 2); // finalizes the X store
        assert_eq!(t.min_pending_clock(), Some(1));
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(
            EpochPolicy::from_str_opt("contiguous"),
            Some(EpochPolicy::Contiguous)
        );
        assert_eq!(
            EpochPolicy::from_str_opt("per-address"),
            Some(EpochPolicy::PerAddress)
        );
        assert_eq!(
            EpochPolicy::from_str_opt("per-site"),
            Some(EpochPolicy::PerAddress),
            "legacy spelling accepted"
        );
        assert_eq!(EpochPolicy::from_str_opt("bogus"), None);
        assert_eq!(EpochPolicy::Contiguous.name(), "contiguous");
        assert_eq!(EpochPolicy::PerAddress.name(), "per-address");
    }
}
