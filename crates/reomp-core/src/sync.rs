//! Low-level synchronization primitives used by the gate engines.
//!
//! Two pieces here are deliberately *not* ordinary mutexes:
//!
//! * [`BatonLock`] — the lock `L` of the paper's ST replay (Fig. 4). It is
//!   acquired by whichever thread reads the next record from the shared
//!   trace (`test_lock`, line 12) but released by the thread that was
//!   *replayed* (`unset_lock`, line 17), which is in general a different
//!   thread. Standard mutexes forbid cross-thread release, so this is a
//!   plain test-and-test-and-set flag with acquire/release ordering — the
//!   hand-off is exactly the extra inter-thread communication the paper
//!   charges to ST replay (§IV-C2, events ST-3/ST-4 in Fig. 6).
//! * `RawLocked` (crate-private) — a mutex whose critical section *spans* `gate_in` →
//!   `gate_out`, i.e. lock and unlock happen in different function calls
//!   with arbitrary user code in between (the `set_lock(L)` … `unset_lock(L)`
//!   bracket of Figs. 4/5 record modes). It wraps `parking_lot::RawMutex`
//!   plus an `UnsafeCell` for the guarded state.

use crate::error::ReplayError;
use crate::shim::atomic::{AtomicBool, Ordering};
use crate::shim::Instant;
use crate::site::SiteId;
use parking_lot::lock_api::RawMutex as _;
use parking_lot::RawMutex;
use std::cell::UnsafeCell;
use std::time::Duration;

/// A test-and-test-and-set lock that may be released by a thread other than
/// the one that acquired it.
///
/// This models the paper's ST-replay lock hand-off: the *reader* thread
/// acquires the lock to fetch the next thread ID from the record file, and
/// the *replayed* thread releases it after executing the shared-memory
/// access region.
#[derive(Debug, Default)]
pub struct BatonLock {
    locked: AtomicBool,
}

impl BatonLock {
    /// New, unlocked baton.
    #[must_use]
    pub const fn new() -> Self {
        BatonLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Try to take the baton; returns `true` on success. Never blocks —
    /// this is the paper's `test_lock(L)`.
    #[inline]
    pub fn try_acquire(&self) -> bool {
        // Test-and-test-and-set: avoid hammering the cache line with RMWs.
        // ORDERING: the Relaxed pre-check is a pure contention filter — a
        // stale `false` only means we attempt the CAS and lose it; a stale
        // `true` only delays this acquirer by one retry. All
        // synchronization (pairing with the releasing thread's Release
        // swap) rides on the CAS's Acquire success ordering. The CAS
        // failure load is Relaxed for the same reason: a failed acquire
        // publishes nothing and reads nothing protected.
        !self.locked.load(Ordering::Relaxed)
            && self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Release the baton. May be called by any thread (that is the point of
    /// a baton), but the baton must actually be held.
    ///
    /// # Panics
    /// Panics — in **all** build profiles — when the baton is already free.
    /// A double release would silently corrupt the ST replay hand-off (two
    /// threads could both win `try_acquire` and publish conflicting
    /// `next_tid` values), so it is a protocol violation, not a recoverable
    /// condition. The check is a `swap`, not a load-then-store, so two
    /// racing releases cannot both observe "held".
    #[inline]
    pub fn release(&self) {
        assert!(
            self.locked.swap(false, Ordering::Release),
            "BatonLock::release called on a baton that is not held (double release)"
        );
    }

    /// Whether the baton is currently held.
    ///
    /// Diagnostic only: the answer may be stale by the time the caller
    /// looks at it, so no protocol decision may be based on it.
    #[inline]
    #[must_use]
    pub fn is_locked(&self) -> bool {
        // ORDERING: Relaxed is sufficient for a point-in-time diagnostic
        // read; it orders nothing and the gate engines never branch their
        // hand-off protocol on it (they use `try_acquire`'s CAS).
        self.locked.load(Ordering::Relaxed)
    }
}

/// Spin-wait policy for replay gates.
///
/// Replay waits (`while (tid != next_tid)` / `while (clock != next_clock)`)
/// are busy loops in the paper. On machines with fewer cores than replayed
/// threads a pure busy loop livelocks, so waits spin briefly with
/// [`std::hint::spin_loop`] and then yield to the scheduler. A watchdog
/// timeout converts a stuck wait into a structured [`ReplayError::Timeout`]
/// instead of a hang.
#[derive(Debug, Clone, Copy)]
pub struct SpinConfig {
    /// Number of `spin_loop` hints between yields.
    pub spin_hints: u32,
    /// Maximum total wait before declaring the replay stuck. `None`
    /// disables the watchdog.
    pub timeout: Option<Duration>,
}

impl Default for SpinConfig {
    fn default() -> Self {
        SpinConfig {
            spin_hints: 64,
            timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// An in-progress spin wait; tracks iterations and enforces the watchdog.
#[derive(Debug)]
pub struct SpinWait<'a> {
    cfg: &'a SpinConfig,
    iters: u64,
    started: Option<Instant>,
}

impl<'a> SpinWait<'a> {
    /// Begin a wait governed by `cfg`.
    #[must_use]
    pub fn new(cfg: &'a SpinConfig) -> Self {
        SpinWait {
            cfg,
            iters: 0,
            started: None,
        }
    }

    /// Total loop iterations performed so far.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iters
    }

    /// One wait step. Returns an error once the watchdog expires;
    /// `thread`, `site`, `waiting_for` and `observed` feed the diagnostic.
    ///
    /// The yield/watchdog cadence is `spin_hints` clamped to `1..=4096`:
    /// an over-large hint count must degrade throughput, never disable the
    /// watchdog (a `spin_hints: u32::MAX` config used to spin ~4 billion
    /// iterations before the *first* timeout check — and because the
    /// timeout clock also started at the first yield, the watchdog was
    /// effectively unreachable).
    #[inline]
    pub fn step(
        &mut self,
        thread: u32,
        site: SiteId,
        waiting_for: u64,
        observed: impl Fn() -> u64,
    ) -> Result<(), ReplayError> {
        // Start the clock at the first step, not the first yield, so the
        // watchdog measures the whole wait.
        let started = *self.started.get_or_insert_with(Instant::now);
        self.iters += 1;
        if self
            .iters
            .is_multiple_of(u64::from(self.cfg.spin_hints.clamp(1, 4096)))
        {
            crate::shim::yield_now();
            if let Some(limit) = self.cfg.timeout {
                if started.elapsed() > limit {
                    return Err(ReplayError::Timeout {
                        thread,
                        site,
                        waiting_for,
                        observed: observed(),
                    });
                }
            }
        } else {
            crate::shim::spin_loop();
        }
        Ok(())
    }
}

/// Record-side spin policy for the lock-free ticket gate: spin briefly,
/// then yield.
///
/// Unlike replay's [`SpinWait`] this carries **no watchdog** — a record-mode
/// wait ends as soon as the predecessor's region finishes (there is no
/// recorded order to diverge from, hence nothing to time out on), exactly
/// like blocking on the gate mutex has no timeout today. The exponential
/// spin phase keeps the short waits (a neighbor's few-instruction region)
/// off the scheduler; the yield phase keeps oversubscribed hosts live.
#[derive(Debug, Default)]
pub(crate) struct Backoff {
    step: u32,
}

impl Backoff {
    /// Yield to the scheduler once the spin phase exceeds 2^6 hints.
    const YIELD_THRESHOLD: u32 = 6;

    pub(crate) const fn new() -> Self {
        Backoff { step: 0 }
    }

    /// One wait step: `2^step` spin hints while short, a scheduler yield
    /// once the wait is long enough that burning the core stops paying.
    #[inline]
    pub(crate) fn snooze(&mut self) {
        if self.step <= Self::YIELD_THRESHOLD {
            for _ in 0..(1u32 << self.step) {
                crate::shim::spin_loop();
            }
            self.step += 1;
        } else {
            crate::shim::yield_now();
        }
    }
}

/// State guarded by a raw mutex whose lock/unlock calls are split across
/// `gate_in`/`gate_out`.
///
/// # Safety contract
///
/// [`RawLocked::lock`] must be paired with exactly one [`RawLocked::unlock`]
/// on the same thread, and [`RawLocked::get`] may only be called between
/// them — **or**, equivalently, the calling thread is the unique holder of
/// an external exclusion protocol layered over this state. The gate engines
/// uphold this two ways: the locked paths lock at `gate_in` and access +
/// unlock at `gate_out`; the lock-free fast path of
/// [`TicketGate`](crate::clock::TicketGate) sessions instead holds the
/// domain's currently-served ticket (every accessor — fast, slow, or
/// out-of-band pauser — holds a served ticket there, so at most one thread
/// touches the state at a time; see `DomainRecord` in `session.rs`).
pub(crate) struct RawLocked<T> {
    raw: RawMutex,
    /// Model-checker seam: when the lock is created inside a
    /// `shuttle::check` execution, acquire/release route through the model
    /// scheduler (so the gate bracket is explored as a scheduling point)
    /// and `raw` is never touched. Outside a model, `acquire`/`release`
    /// return `false` and the `RawMutex` does its usual job.
    #[cfg(any(reomp_model, feature = "model"))]
    model: shuttle::sync::RawLock,
    cell: UnsafeCell<T>,
}

// SAFETY: access to `cell` is serialized through `raw`, so shared
// references never touch the interior concurrently.
unsafe impl<T: Send> Sync for RawLocked<T> {}
// SAFETY: moving the container moves the `T` with it; `T: Send` is all
// that transfer needs (the raw mutex holds no thread affinity).
unsafe impl<T: Send> Send for RawLocked<T> {}

impl<T> RawLocked<T> {
    pub(crate) fn new(value: T) -> Self {
        RawLocked {
            raw: RawMutex::INIT,
            #[cfg(any(reomp_model, feature = "model"))]
            model: shuttle::sync::RawLock::new(),
            cell: UnsafeCell::new(value),
        }
    }

    /// Acquire the lock (blocking). This is `set_lock(L)` of Figs. 4/5.
    pub(crate) fn lock(&self) {
        #[cfg(any(reomp_model, feature = "model"))]
        if self.model.acquire() {
            return;
        }
        self.raw.lock();
    }

    /// Release the lock. This is `unset_lock(L)`.
    ///
    /// # Safety
    /// The calling thread must currently hold the lock via [`Self::lock`].
    pub(crate) unsafe fn unlock(&self) {
        #[cfg(any(reomp_model, feature = "model"))]
        if self.model.release() {
            return;
        }
        // SAFETY: forwarded contract — caller holds the lock.
        unsafe { self.raw.unlock() }
    }

    /// Access the guarded state.
    ///
    /// # Safety
    /// The calling thread must currently hold the lock.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self) -> &mut T {
        // SAFETY: exclusive access is guaranteed by the held lock.
        unsafe { &mut *self.cell.get() }
    }

    /// Run `f` under the lock (convenience for non-split critical sections).
    ///
    /// Session-level pausers go through `DomainRecord::pause` instead,
    /// which also queues a ghost ticket when a ticket gate is present;
    /// this raw bracket remains for states with no layered protocol.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.lock();
        // SAFETY: lock is held for the duration of `f`.
        let out = f(unsafe { self.get() });
        // SAFETY: we locked above on this thread.
        unsafe { self.unlock() };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn baton_basic_acquire_release() {
        let b = BatonLock::new();
        assert!(!b.is_locked());
        assert!(b.try_acquire());
        assert!(b.is_locked());
        assert!(!b.try_acquire(), "baton is not reentrant");
        b.release();
        assert!(!b.is_locked());
        assert!(b.try_acquire());
        b.release();
    }

    #[test]
    fn baton_double_release_panics_in_all_builds() {
        // Regression: this used to be a `debug_assert!` on a separate load,
        // so release builds silently cleared an already-free baton and ST
        // replay could hand the baton to two readers at once.
        let b = BatonLock::new();
        assert!(b.try_acquire());
        b.release();
        let err = std::panic::catch_unwind(|| b.release());
        assert!(err.is_err(), "double release must panic, not corrupt state");
        // The poisoned release did not re-lock the baton.
        assert!(!b.is_locked());
        assert!(b.try_acquire(), "baton still usable after the panic");
        b.release();
    }

    #[test]
    fn baton_cross_thread_release() {
        let b = Arc::new(BatonLock::new());
        assert!(b.try_acquire());
        let b2 = Arc::clone(&b);
        std::thread::spawn(move || b2.release()).join().unwrap();
        assert!(!b.is_locked());
    }

    #[test]
    fn baton_mutual_exclusion_under_contention() {
        let b = Arc::new(BatonLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = Arc::clone(&b);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    while !b.try_acquire() {
                        std::hint::spin_loop();
                    }
                    // Non-atomic-looking increment under the lock.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    b.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 5_000);
    }

    #[test]
    fn spin_wait_times_out_with_diagnostics() {
        let cfg = SpinConfig {
            spin_hints: 4,
            timeout: Some(Duration::from_millis(20)),
        };
        let mut w = SpinWait::new(&cfg);
        let site = SiteId(0xbeef);
        let err = loop {
            match w.step(7, site, 99, || 3) {
                Ok(()) => continue,
                Err(e) => break e,
            }
        };
        match err {
            ReplayError::Timeout {
                thread,
                waiting_for,
                observed,
                ..
            } => {
                assert_eq!(thread, 7);
                assert_eq!(waiting_for, 99);
                assert_eq!(observed, 3);
            }
            other => panic!("expected timeout, got {other}"),
        }
        assert!(w.iterations() > 0);
    }

    #[test]
    fn spin_wait_watchdog_survives_huge_spin_hints() {
        // Regression: the yield/watchdog cadence used to be the raw
        // `spin_hints`, so `u32::MAX` postponed the first timeout check by
        // ~4 billion iterations — and the timeout clock, started lazily at
        // the first yield, never started at all. The wait below must time
        // out promptly instead of hanging.
        let cfg = SpinConfig {
            spin_hints: u32::MAX,
            timeout: Some(Duration::from_millis(20)),
        };
        let mut w = SpinWait::new(&cfg);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let err = loop {
            assert!(
                std::time::Instant::now() < deadline,
                "watchdog never fired with huge spin_hints"
            );
            match w.step(1, SiteId(2), 7, || 0) {
                Ok(()) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, ReplayError::Timeout { .. }));
    }

    #[test]
    fn spin_wait_no_timeout_when_disabled() {
        let cfg = SpinConfig {
            spin_hints: 2,
            timeout: None,
        };
        let mut w = SpinWait::new(&cfg);
        for _ in 0..10_000 {
            w.step(0, SiteId(1), 0, || 0).unwrap();
        }
    }

    #[test]
    fn raw_locked_with_serializes() {
        let l = Arc::new(RawLocked::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    l.with(|v| *v += 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.with(|v| *v), 40_000);
    }

    #[test]
    fn raw_locked_split_lock_unlock() {
        let l = RawLocked::new(String::from("a"));
        l.lock();
        // SAFETY: locked above.
        unsafe { l.get().push('b') };
        // SAFETY: pairs with the `lock` above; `get` is not used after.
        unsafe { l.unlock() };
        assert_eq!(l.with(|s| s.clone()), "ab");
    }
}
