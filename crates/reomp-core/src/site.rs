//! Shared-memory-access *sites* and access kinds.
//!
//! ReOMP identifies each instrumented shared-memory-access region by a hash
//! derived from its source context (the paper hashes the TSan call-stack of
//! a detected race, §III: *"we generated a unique hash value to create a
//! data race instance. These hash values will serve as the thread lock ID"*).
//! In this reproduction a [`SiteId`] plays that role: runtimes derive it
//! from a stable label such as `"hacc.rs:deposit:cell"` plus an optional
//! index for array-shaped sites.

use std::fmt;

/// Identifier of one shared-memory-access region (the paper's *data race
/// instance hash* / thread-lock ID).
///
/// `SiteId`s are stable across record and replay runs as long as they are
/// derived from the same labels, which is what makes replay validation
/// possible: traces optionally carry the site of every access so that a
/// diverging replay is detected instead of silently replaying the wrong
/// order.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u64);

impl SiteId {
    /// Derive a site ID from a stable textual label using FNV-1a, mirroring
    /// how ReOMP hashes the call-stack information of a race report.
    #[must_use]
    pub fn from_label(label: &str) -> SiteId {
        SiteId(fnv1a(label.as_bytes()))
    }

    /// Derive a site ID from a label plus an index, for families of sites
    /// such as "one site per tally bin" in QuickSilver-style workloads.
    #[must_use]
    pub fn from_label_indexed(label: &str, index: u64) -> SiteId {
        let mut h = fnv1a(label.as_bytes());
        // Mix the index with a splitmix64 round so that consecutive indices
        // do not collide into nearby buckets.
        h ^= splitmix64(index);
        SiteId(h)
    }

    /// The raw 64-bit hash value.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SiteId({:#018x})", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The kind of shared-memory access performed inside a gate.
///
/// The paper's Condition 1 (§IV-D) applies **only** to plain load and store
/// instructions (including atomic loads/stores): runs of loads, and runs of
/// stores except the last one, may be replayed concurrently. Every other
/// kind — critical sections, atomic read-modify-write, reductions, ordered
/// constructs, and MPI operations gated for `MPI_THREAD_MULTIPLE` hybrid
/// replay (§VI-C) — is recorded DC-style (its own clock) even under the DE
/// scheme.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum AccessKind {
    /// A load (read) from shared memory, e.g. one side of a benign race.
    Load = 0,
    /// A store (write) to shared memory.
    Store = 1,
    /// An atomic read-modify-write instruction (`atomicrmw`, `cmpxchg`),
    /// the translation target of `#pragma omp atomic`.
    AtomicRmw = 2,
    /// A critical section (`__kmpc_critical` .. `__kmpc_end_critical`).
    Critical = 3,
    /// The final combine of an OpenMP-style reduction clause.
    Reduction = 4,
    /// Other ordered runtime constructs (`single`, `master`, `ordered`).
    Ordered = 5,
    /// A message-passing operation gated for hybrid MPI+threads replay.
    MpiOp = 6,
}

impl AccessKind {
    /// Whether Condition 1 epoch-sharing may apply to this access kind.
    #[inline]
    #[must_use]
    pub fn is_epoch_eligible(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store)
    }

    /// Stable one-byte code used in trace files.
    #[inline]
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`AccessKind::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<AccessKind> {
        Some(match code {
            0 => AccessKind::Load,
            1 => AccessKind::Store,
            2 => AccessKind::AtomicRmw,
            3 => AccessKind::Critical,
            4 => AccessKind::Reduction,
            5 => AccessKind::Ordered,
            6 => AccessKind::MpiOp,
            _ => return None,
        })
    }

    /// Short human-readable name (used in divergence diagnostics).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::AtomicRmw => "atomic-rmw",
            AccessKind::Critical => "critical",
            AccessKind::Reduction => "reduction",
            AccessKind::Ordered => "ordered",
            AccessKind::MpiOp => "mpi-op",
        }
    }

    /// All access kinds, in code order.
    pub const ALL: [AccessKind; 7] = [
        AccessKind::Load,
        AccessKind::Store,
        AccessKind::AtomicRmw,
        AccessKind::Critical,
        AccessKind::Reduction,
        AccessKind::Ordered,
        AccessKind::MpiOp,
    ];
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let a = SiteId::from_label("app.rs:12:sum");
        let b = SiteId::from_label("app.rs:12:sum");
        let c = SiteId::from_label("app.rs:13:sum");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn indexed_labels_distinct_from_each_other_and_base() {
        let base = SiteId::from_label("tally");
        let i0 = SiteId::from_label_indexed("tally", 0);
        let i1 = SiteId::from_label_indexed("tally", 1);
        assert_ne!(i0, i1);
        assert_ne!(i0, base);
        // Same derivation is deterministic.
        assert_eq!(i1, SiteId::from_label_indexed("tally", 1));
    }

    #[test]
    fn consecutive_indices_do_not_collide_in_bulk() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(SiteId::from_label_indexed("grid", i)));
        }
    }

    #[test]
    fn kind_codes_roundtrip() {
        for kind in AccessKind::ALL {
            assert_eq!(AccessKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(AccessKind::from_code(200), None);
    }

    #[test]
    fn epoch_eligibility_matches_condition_1() {
        assert!(AccessKind::Load.is_epoch_eligible());
        assert!(AccessKind::Store.is_epoch_eligible());
        for kind in [
            AccessKind::AtomicRmw,
            AccessKind::Critical,
            AccessKind::Reduction,
            AccessKind::Ordered,
            AccessKind::MpiOp,
        ] {
            assert!(!kind.is_epoch_eligible(), "{kind} must serialize");
        }
    }

    #[test]
    fn display_formats() {
        let s = SiteId(0xabcd);
        assert_eq!(format!("{s}"), "0x000000000000abcd");
        assert_eq!(format!("{}", AccessKind::AtomicRmw), "atomic-rmw");
    }
}
