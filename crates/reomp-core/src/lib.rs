//! # reomp-core — distributed order recording for record-and-replay
//!
//! This crate implements the three shared-memory order-recording schemes of
//! the CLUSTER 2024 paper *"Distributed Order Recording Techniques for
//! Efficient Record-and-Replay of Multi-threaded Programs"*:
//!
//! * **ST** — *serialized thread-ID recording* (the traditional baseline,
//!   paper §IV-A): the order of thread IDs entering shared-memory-access
//!   regions is appended to a single shared trace; replay hands a baton from
//!   thread to thread.
//! * **DC** — *distributed clock recording* (§IV-B): every gate passage is
//!   stamped with a global logical clock and written to a **per-thread**
//!   trace, enabling parallel trace I/O and I/O overlap; replay admits the
//!   thread whose clock equals a shared `next_clock` turnstile.
//! * **DE** — *distributed epoch recording* (§IV-D): accesses that may be
//!   reordered without changing program results (Condition 1: runs of loads,
//!   or runs of stores except the last) share an *epoch* = `clock − X_C`;
//!   replay admits every access whose epoch is ≤ the number of completed
//!   accesses, so same-epoch accesses execute **concurrently**.
//!
//! The crate is runtime-agnostic: a threading runtime (such as the `ompr`
//! crate in this workspace) wraps each shared-memory access region in
//! [`ThreadCtx::gate`], which corresponds exactly to the paper's
//! `gate_in`/`gate_out` instrumentation functions (Figure 1).
//!
//! ## Quick example
//!
//! ```
//! use reomp_core::{Session, Scheme, SiteId, AccessKind};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let site = SiteId::from_label("examples.rs:counter");
//! let shared = Arc::new(AtomicU64::new(0));
//!
//! // Record a two-thread run.
//! let session = Session::record(Scheme::De, 2);
//! std::thread::scope(|s| {
//!     for tid in 0..2u32 {
//!         let ctx = session.register_thread(tid);
//!         let shared = Arc::clone(&shared);
//!         s.spawn(move || {
//!             for _ in 0..4 {
//!                 // A benign racy increment: a gated load then a gated store.
//!                 let v = ctx.gate(site, AccessKind::Load, || {
//!                     shared.load(Ordering::Relaxed)
//!                 });
//!                 ctx.gate(site, AccessKind::Store, || {
//!                     shared.store(v + 1, Ordering::Relaxed)
//!                 });
//!             }
//!         });
//!     }
//! });
//! let report = session.finish().unwrap();
//! let bundle = report.bundle.expect("record mode produces a trace bundle");
//!
//! // Replay it: the interleaving of gated accesses is reproduced.
//! let replay = Session::replay(bundle).unwrap();
//! # let shared2 = Arc::new(AtomicU64::new(0));
//! std::thread::scope(|s| {
//!     for tid in 0..2u32 {
//!         let ctx = replay.register_thread(tid);
//!         # let shared2 = Arc::clone(&shared2);
//!         s.spawn(move || {
//!             for _ in 0..4 {
//!                 let v = ctx.gate(site, AccessKind::Load, || {
//!                     shared2.load(Ordering::Relaxed)
//!                 });
//!                 ctx.gate(site, AccessKind::Store, || {
//!                     shared2.store(v + 1, Ordering::Relaxed)
//!                 });
//!             }
//!         });
//!     }
//! });
//! replay.finish().unwrap();
//! ```
//!
//! ## Module map
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`site`] | race-instance hashes used as thread lock IDs (§III) |
//! | [`sync`] | the baton lock of ST replay (Fig. 4/6) and spin-wait policy |
//! | [`clock`] | `global_clock` and the `next_clock` turnstile (Fig. 5) |
//! | [`history`] | the access-history ring buffer used to compute `X_C` (§IV-D) |
//! | [`epoch`] | epoch assignment incl. the deferred-store rule of Table V |
//! | [`plan`] | race-report-driven site → gate-domain assignment ([`DomainPlan`]) |
//! | [`trace`] | per-thread and shared trace representations (Fig. 3) |
//! | [`codec`] | varint/delta binary encoding of record files, incl. the streaming chunk frame |
//! | [`store`] | record-file storage: in-memory and one-file-per-thread dir, one-shot and streaming |
//! | [`flight`] | bounded in-situ recording: ring-retained streams, checkpointed windowed dumps |
//! | [`gate`] | `gate_in`/`gate_out` engines for all scheme × mode pairs |
//! | [`session`] | run orchestration, env-var mode switching (§V) |
//! | [`stats`] | counters behind Table VI and the Fig. 20 epoch histogram |
//! | [`analysis`] | trace summaries, timelines, and diffing (debug tooling) |
//! | [`verify`] | static trace verification: tiered soundness diagnostics + replayability certificates |

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod analysis;
pub mod clock;
pub mod codec;
pub mod epoch;
pub mod error;
pub mod flight;
pub mod gate;
pub mod history;
pub mod plan;
pub mod session;
pub(crate) mod shim;
pub mod site;
pub mod stats;
pub mod store;
pub mod sync;
pub mod trace;
pub mod verify;

pub use epoch::EpochPolicy;
pub use error::{Divergence, ReplayError, TraceError};
pub use flight::{FlightRecorder, FlightSink};
pub use plan::DomainPlan;
pub use session::{
    install_panic_dump, Mode, Scheme, Session, SessionConfig, SessionReport, ThreadCtx,
};
pub use site::{AccessKind, SiteId};
pub use stats::{EpochHistogram, StatsSnapshot};
pub use store::{
    DirStore, IoReport, MemStore, RecordOptions, RecordSink, StreamingTraceStore, TraceStore,
    TraceWriter,
};
pub use trace::{Checkpoint, CrossDomainEdge, DumpTrigger, TraceBundle};
pub use verify::{Certificate, Diagnostic, Severity, Tier, Verifier, VerifyReport};
