//! Static trace verification: prove — from the trace artifacts alone, no
//! user code executed — that a [`TraceBundle`] is replayable.
//!
//! The [`Verifier`] reconstructs the happens-before structure a replay
//! would enforce (per-domain clocks, [`CrossDomainEdge`](crate::CrossDomainEdge) waits,
//! [`Checkpoint`](crate::trace::Checkpoint) bases) and emits a
//! [`VerifyReport`] of tiered [`Diagnostic`]s:
//!
//! * **Structural** — the shape of the bundle: stream arity, column
//!   lengths, kind codes, DC clock contiguity, checkpoint arity, edge
//!   target existence. This tier is *exactly* what
//!   [`TraceBundle::validate`] checks — `validate()` is a thin wrapper
//!   over it, so the two checkers cannot drift.
//! * **Ordering** — whether replay can actually drive the recorded order
//!   to completion: per-thread DC clock monotonicity, DE epoch
//!   reachability, ST baton-stream purity, edge-graph acyclicity,
//!   flight-window well-formedness, and DE epoch-floor consistency.
//! * **Plan** — whether the stamped site → domain partition agrees with
//!   where accesses were actually recorded. (The deeper plan-soundness
//!   check — every *racing* site pair co-located or edge-connected — needs
//!   a race report and lives in `racedet::offline`; its diagnostics fold
//!   into the same report via [`VerifyReport::absorb`].)
//!
//! A bundle with no error diagnostics earns a [`Certificate`]: a
//! deterministic digest over every verified invariant (and the full trace
//! content), printable by `reomp-inspect --verify` and diffable by CI —
//! two identical recordings always produce the identical certificate.
//!
//! All checks are panic-free and allocate at most O(trace) — adversarial
//! input yields diagnostics, never a crash. Diagnostics within one check
//! family are capped at [`MAX_DIAGS_PER_CHECK`] (with a summary line) so a
//! hostile bundle cannot balloon the report.

use crate::error::TraceError;
use crate::plan::DomainPlan;
use crate::session::Scheme;
use crate::site::SiteId;
use crate::trace::TraceBundle;

/// Upper bound on diagnostics emitted by one check family; the overflow is
/// summarized in a final diagnostic instead of enumerated.
pub const MAX_DIAGS_PER_CHECK: usize = 8;

/// Which analysis tier produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Bundle shape: arity, column lengths, codes, contiguity.
    Structural,
    /// Replay-order soundness: monotonicity, reachability, acyclicity.
    Ordering,
    /// Site → domain partition agreement.
    Plan,
}

impl Tier {
    /// Lower-case tier name, as printed in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Structural => "structural",
            Tier::Ordering => "ordering",
            Tier::Plan => "plan",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but replayable.
    Warning,
    /// The bundle will not replay soundly (or is corrupt).
    Error,
}

impl Severity {
    /// Lower-case severity name, as printed in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One verification finding: tier + severity + where + what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Analysis tier that found it.
    pub tier: Tier,
    /// Error or warning.
    pub severity: Severity,
    /// Where in the bundle ("bundle", "domain 2 thread 1", "edge #3", …).
    pub location: String,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl Diagnostic {
    fn error(tier: Tier, location: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            tier,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}/{}] {}: {}",
            self.tier.name(),
            self.severity.name(),
            self.location,
            self.message
        )
    }
}

/// Replayability certificate: a deterministic digest over the verified
/// invariants and the full trace content. Two identical recordings verify
/// to the identical certificate; any content or metadata change moves the
/// digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// FNV-1a digest over the canonical bundle serialization.
    pub digest: u64,
    /// Human-readable summary of what was certified
    /// (`scheme=… threads=… domains=… records=… edges=…`).
    pub detail: String,
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reomp-cert-v1 {:016x} {}", self.digest, self.detail)
    }
}

/// The structured outcome of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Every finding, in check order.
    pub diagnostics: Vec<Diagnostic>,
    /// Present iff no error-severity diagnostic was found.
    pub certificate: Option<Certificate>,
    /// Number of invariant families evaluated.
    pub checks: u32,
}

impl VerifyReport {
    /// Whether the bundle verified with no errors (warnings permitted).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Error-severity diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The most severe tier an *error* was found in (`None` when clean).
    /// Structural outranks Ordering outranks Plan for exit-code purposes:
    /// a corrupt bundle is reported as corrupt even if later tiers also
    /// ran.
    #[must_use]
    pub fn worst_tier(&self) -> Option<Tier> {
        self.errors().map(|d| d.tier).min()
    }

    /// Fold externally produced diagnostics (e.g. `racedet::offline`'s
    /// plan-soundness findings) into this report. Any absorbed error
    /// revokes the certificate.
    pub fn absorb(&mut self, diags: impl IntoIterator<Item = Diagnostic>) {
        for d in diags {
            if d.severity == Severity::Error {
                self.certificate = None;
            }
            self.diagnostics.push(d);
        }
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let errors = self.errors().count();
        let warnings = self.diagnostics.len() - errors;
        if self.is_clean() {
            writeln!(
                f,
                "verify: clean — {} checks, {warnings} warning(s)",
                self.checks
            )?;
        } else {
            writeln!(
                f,
                "verify: {errors} error(s), {warnings} warning(s) — worst tier: {}",
                self.worst_tier().map_or("none", Tier::name)
            )?;
        }
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        if let Some(cert) = &self.certificate {
            writeln!(f, "certificate: {cert}")?;
        }
        Ok(())
    }
}

/// Incremental FNV-1a hasher for certificate digests (the same function
/// [`SiteId::from_label`] uses for site hashes; deterministic and
/// dependency-free). Public so sibling verifiers (e.g. `rmpi`'s) mint
/// certificates from the identical digest function.
#[derive(Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    /// Mix one byte.
    pub fn u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    /// Mix a u64, little-endian byte order.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// The static trace verifier. Stateless; one instance can verify any
/// number of bundles.
#[derive(Debug, Default)]
pub struct Verifier;

impl Verifier {
    /// A verifier with default settings.
    #[must_use]
    pub fn new() -> Verifier {
        Verifier
    }

    /// Run every tier over `bundle` and produce the report. Never panics;
    /// structural corruption short-circuits the deeper tiers (their
    /// invariants are meaningless on a malformed shape).
    #[must_use]
    pub fn verify(&self, bundle: &TraceBundle) -> VerifyReport {
        let mut report = VerifyReport {
            diagnostics: Vec::new(),
            certificate: None,
            checks: 0,
        };

        // Tier 1: structural — identical to `TraceBundle::validate()`.
        report.checks += 1;
        if let Err(e) = structural(bundle) {
            let message = match e {
                TraceError::Corrupt(msg) => msg,
                other => other.to_string(),
            };
            report
                .diagnostics
                .push(Diagnostic::error(Tier::Structural, "bundle", message));
            return report;
        }

        // Tier 2: ordering.
        ordering(bundle, &mut report);

        // Tier 3: plan agreement.
        plan_agreement(bundle, &mut report);

        if report.is_clean() {
            report.certificate = Some(certificate(bundle));
        }
        report
    }
}

/// The Structural tier as a single `Result`, preserving the exact error
/// text [`TraceBundle::validate`] has always returned — `validate()` calls
/// this directly.
pub(crate) fn structural(bundle: &TraceBundle) -> Result<(), TraceError> {
    if bundle.nthreads == 0 {
        return Err(TraceError::Corrupt("zero threads".into()));
    }
    if bundle.domains == 0 {
        return Err(TraceError::Corrupt("zero domains".into()));
    }
    let expect = bundle.domains as usize * bundle.nthreads as usize;
    if bundle.threads.len() != expect {
        return Err(TraceError::Corrupt(format!(
            "{} thread traces for {} threads × {} domains",
            bundle.threads.len(),
            bundle.nthreads,
            bundle.domains
        )));
    }
    match (bundle.scheme, bundle.st.len()) {
        (Scheme::St, n) if n != bundle.domains as usize => {
            return Err(TraceError::Corrupt(format!(
                "ST bundle with {n} st streams for {} domains",
                bundle.domains
            )))
        }
        (Scheme::St, _) => {
            for st in &bundle.st {
                st.check(bundle.nthreads)?;
            }
        }
        (_, 0) => {}
        (_, _) => return Err(TraceError::Corrupt("non-ST bundle with st stream".into())),
    }
    for (i, t) in bundle.threads.iter().enumerate() {
        let (dom, tid) = (i / bundle.nthreads as usize, i % bundle.nthreads as usize);
        t.check(&format!("domain {dom} thread {tid}"))?;
    }
    if let Some(cp) = &bundle.checkpoint {
        cp.check(bundle.domains)?;
    }
    if bundle.scheme == Scheme::Dc {
        // DC clocks are per-domain: within each domain, the clocks across
        // all threads must be a permutation of base..base+n_d (clock
        // contiguity is a *domain* property — domains tick independently;
        // base is 0 unless a flight-recorder checkpoint shifted the
        // window's start).
        for (dom, chunk) in bundle.threads.chunks(bundle.nthreads as usize).enumerate() {
            let base = bundle.clock_base(dom as u32);
            let mut clocks: Vec<u64> = chunk
                .iter()
                .flat_map(|t| t.values.iter().copied())
                .collect();
            clocks.sort_unstable();
            for (expect, got) in clocks.iter().enumerate() {
                if *got != base + expect as u64 {
                    return Err(TraceError::Corrupt(format!(
                        "domain {dom}: DC clocks are not a permutation of {base}..{} \
                         (found {got} at rank {expect})",
                        base + clocks.len() as u64
                    )));
                }
            }
        }
    }
    if let Some(plan) = &bundle.plan {
        if plan.domains() != bundle.domains {
            return Err(TraceError::Corrupt(format!(
                "plan partitions {} domains but the bundle has {}",
                plan.domains(),
                bundle.domains
            )));
        }
    }
    check_edges(bundle)
}

/// Structural consistency of the cross-domain edges: anchors must name
/// recorded accesses, waits must name *other* existing domains, and no
/// wait may demand more accesses than its domain recorded.
fn check_edges(bundle: &TraceBundle) -> Result<(), TraceError> {
    if bundle.edges.is_empty() {
        return Ok(());
    }
    if bundle.domains <= 1 {
        return Err(TraceError::Corrupt(
            "cross-domain edges in a single-domain bundle".into(),
        ));
    }
    for (i, e) in bundle.edges.iter().enumerate() {
        if e.domain >= bundle.domains {
            return Err(TraceError::Corrupt(format!(
                "edge #{i} anchors in domain {} of {}",
                e.domain, bundle.domains
            )));
        }
        let anchor_len = if bundle.is_st() {
            bundle.st[e.domain as usize].len() as u64
        } else {
            if e.thread >= bundle.nthreads {
                return Err(TraceError::Corrupt(format!(
                    "edge #{i} anchors on thread {} of {}",
                    e.thread, bundle.nthreads
                )));
            }
            bundle.thread(e.domain, e.thread).len() as u64
        };
        if e.seq >= anchor_len {
            return Err(TraceError::Corrupt(format!(
                "edge #{i} anchors at access {} but its stream holds {anchor_len}",
                e.seq
            )));
        }
        for &(dom, count) in &e.waits {
            if dom >= bundle.domains || dom == e.domain {
                return Err(TraceError::Corrupt(format!(
                    "edge #{i} waits on domain {dom} (anchor domain {})",
                    e.domain
                )));
            }
            // A windowed bundle's domains completed `clock_base` more
            // accesses than the window retains; waits are absolute.
            let available = bundle.clock_base(dom) + bundle.domain_records(dom);
            if count == 0 || count > available {
                return Err(TraceError::Corrupt(format!(
                    "edge #{i} waits for {count} accesses in domain {dom} \
                     which recorded {available}"
                )));
            }
        }
    }
    Ok(())
}

/// Push `diag` unless the family already hit its cap; returns whether the
/// cap was just reached (the caller then emits one summary line).
fn push_capped(out: &mut VerifyReport, count: &mut usize, diag: Diagnostic) {
    *count += 1;
    match (*count).cmp(&(MAX_DIAGS_PER_CHECK + 1)) {
        std::cmp::Ordering::Less => out.diagnostics.push(diag),
        std::cmp::Ordering::Equal => out.diagnostics.push(Diagnostic {
            message: "further findings of this kind suppressed".into(),
            ..diag
        }),
        std::cmp::Ordering::Greater => {}
    }
}

/// The Ordering tier: would replay actually drive this order to
/// completion? Runs only on structurally sound bundles.
fn ordering(bundle: &TraceBundle, out: &mut VerifyReport) {
    // ST baton-stream purity: an ST bundle's order lives in the shared
    // streams; per-thread clock values mean the bundle was stitched from
    // mismatched recordings. The shared streams' kind bytes must also
    // decode (the legacy structural surface never checked them — adding
    // it there would change `validate()`'s behaviour).
    out.checks += 1;
    if bundle.scheme == Scheme::St {
        let mut n = 0usize;
        for (i, t) in bundle.threads.iter().enumerate() {
            if !t.values.is_empty() {
                let (dom, tid) = (i / bundle.nthreads as usize, i % bundle.nthreads as usize);
                push_capped(
                    out,
                    &mut n,
                    Diagnostic::error(
                        Tier::Ordering,
                        format!("domain {dom} thread {tid}"),
                        format!(
                            "ST bundle carries {} per-thread clock records \
                             (the baton stream is the only order source)",
                            t.values.len()
                        ),
                    ),
                );
            }
        }
        for (dom, st) in bundle.st.iter().enumerate() {
            let Some(kinds) = &st.kinds else { continue };
            if let Some(pos) = kinds
                .iter()
                .position(|&k| crate::site::AccessKind::from_code(k).is_none())
            {
                push_capped(
                    out,
                    &mut n,
                    Diagnostic::error(
                        Tier::Ordering,
                        format!("domain {dom}"),
                        format!(
                            "st stream kind byte {} at access {pos} decodes to no \
                             access kind",
                            kinds[pos]
                        ),
                    ),
                );
            }
        }
    }

    // DC per-thread clock monotonicity: the permutation check cannot see a
    // permuted *stream* (same multiset); replay would deadlock on the
    // first out-of-order value (the thread waits for a clock it itself
    // owes later).
    out.checks += 1;
    if bundle.scheme == Scheme::Dc {
        let mut n = 0usize;
        for (i, t) in bundle.threads.iter().enumerate() {
            if let Some(w) = t.values.windows(2).position(|w| w[0] >= w[1]) {
                let (dom, tid) = (i / bundle.nthreads as usize, i % bundle.nthreads as usize);
                push_capped(
                    out,
                    &mut n,
                    Diagnostic::error(
                        Tier::Ordering,
                        format!("domain {dom} thread {tid}"),
                        format!(
                            "DC clocks must be strictly increasing in program order \
                             ({} then {} at access {w}) — replay would deadlock",
                            t.values[w],
                            t.values[w + 1]
                        ),
                    ),
                );
            }
        }
    }

    // DE epoch reachability: replay admits an access once the domain
    // turnstile has completed `value` accesses; a value beyond
    // base + records − 1 can never be reached.
    out.checks += 1;
    if bundle.scheme == Scheme::De {
        let mut n = 0usize;
        for dom in 0..bundle.domains {
            let records = bundle.domain_records(dom);
            if records == 0 {
                continue;
            }
            let ceiling = bundle.clock_base(dom) + records - 1;
            for tid in 0..bundle.nthreads {
                let t = bundle.thread(dom, tid);
                if let Some(pos) = t.values.iter().position(|&v| v > ceiling) {
                    push_capped(
                        out,
                        &mut n,
                        Diagnostic::error(
                            Tier::Ordering,
                            format!("domain {dom} thread {tid}"),
                            format!(
                                "epoch {} at access {pos} is unreachable: the domain \
                                 completes at most {ceiling} accesses before it",
                                t.values[pos]
                            ),
                        ),
                    );
                }
            }
        }
    }

    // Edge-graph acyclicity: a genuine recording snapshots other domains'
    // clocks strictly before publishing its own, so the edge constraints
    // always admit the recorded interleaving. A wait cycle means the
    // edges were tampered with — replay would deadlock.
    out.checks += 1;
    if !bundle.edges.is_empty() && !bundle.edges_consistent() {
        out.diagnostics.push(Diagnostic::error(
            Tier::Ordering,
            "edges",
            "cross-domain edge waits form a cycle: no interleaving satisfies them \
             (replay would deadlock)",
        ));
    }

    // Flight-window well-formedness + DE epoch-floor consistency.
    out.checks += 1;
    if let Some(cp) = &bundle.checkpoint {
        if cp.window == 0 {
            out.diagnostics.push(Diagnostic::error(
                Tier::Ordering,
                "checkpoint",
                "flight window is 0 chunks/stream — a dump always retains at least one",
            ));
        }
        if !cp.floors.is_empty() && bundle.scheme != Scheme::De {
            out.diagnostics.push(Diagnostic::error(
                Tier::Ordering,
                "checkpoint",
                format!(
                    "epoch floors are DE provenance but the scheme is {}",
                    bundle.scheme
                ),
            ));
        }
        if bundle.scheme == Scheme::De && !cp.floors.is_empty() {
            let mut n = 0usize;
            for dom in 0..bundle.domains {
                let floor = cp.floors[dom as usize];
                let base = cp.base_of(dom);
                if floor < base + bundle.domain_records(dom) {
                    push_capped(
                        out,
                        &mut n,
                        Diagnostic::error(
                            Tier::Ordering,
                            format!("domain {dom}"),
                            format!(
                                "epoch floor {floor} below the window's last clock \
                                 ({base} evicted + {} retained): the trackers cannot \
                                 have flushed past records they had not seen",
                                bundle.domain_records(dom)
                            ),
                        ),
                    );
                }
                for tid in 0..bundle.nthreads {
                    let t = bundle.thread(dom, tid);
                    if let Some(pos) = t.values.iter().position(|&v| v >= floor) {
                        push_capped(
                            out,
                            &mut n,
                            Diagnostic::error(
                                Tier::Ordering,
                                format!("domain {dom} thread {tid}"),
                                format!(
                                    "epoch {} at access {pos} is not below the \
                                     domain's dump-time clock floor {floor}",
                                    t.values[pos]
                                ),
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The Plan tier: every access must have been recorded in the domain the
/// bundle's partition routes its site to (the stamped [`DomainPlan`], or
/// the legacy `site % D` modulo for plan-less bundles). A mismatched plan
/// stamp silently reroutes replay's gates — the access would wait on the
/// wrong turnstile.
fn plan_agreement(bundle: &TraceBundle, out: &mut VerifyReport) {
    out.checks += 1;
    if bundle.domains <= 1 || !bundle.has_validation() {
        return;
    }
    let route = |site: SiteId| -> u32 {
        match &bundle.plan {
            Some(plan) => plan.domain_of(site),
            None => DomainPlan::legacy_modulo(bundle.domains, site),
        }
    };
    let label = if bundle.plan.is_some() {
        "stamped plan"
    } else {
        "legacy-modulo partition"
    };
    let mut n = 0usize;
    let mut check_stream = |dom: u32, who: String, sites: &[u64], out: &mut VerifyReport| {
        for (i, &raw) in sites.iter().enumerate() {
            let want = route(SiteId(raw));
            if want != dom {
                push_capped(
                    out,
                    &mut n,
                    Diagnostic::error(
                        Tier::Plan,
                        format!("{who} access {i}"),
                        format!(
                            "site {raw:#x} recorded in domain {dom} but the {label} \
                             routes it to domain {want}"
                        ),
                    ),
                );
            }
        }
    };
    if bundle.is_st() {
        for (dom, st) in bundle.st.iter().enumerate() {
            if let Some(sites) = &st.sites {
                check_stream(dom as u32, format!("domain {dom}"), sites, out);
            }
        }
    } else {
        for dom in 0..bundle.domains {
            for tid in 0..bundle.nthreads {
                if let Some(sites) = &bundle.thread(dom, tid).sites {
                    check_stream(dom, format!("domain {dom} thread {tid}"), sites, out);
                }
            }
        }
    }
}

/// Deterministic digest over the bundle: header, every stream (values,
/// sites, kinds), the plan's sorted assignments, every edge, and the
/// checkpoint. Canonical and allocation-free beyond the hasher itself.
fn certificate(bundle: &TraceBundle) -> Certificate {
    let mut h = Fnv::new();
    h.u8(bundle.scheme.code());
    h.u64(u64::from(bundle.nthreads));
    h.u64(u64::from(bundle.domains));
    for t in &bundle.threads {
        h.u64(t.values.len() as u64);
        for &v in &t.values {
            h.u64(v);
        }
        hash_columns(&mut h, &t.sites, &t.kinds);
    }
    for st in &bundle.st {
        h.u64(st.tids.len() as u64);
        for &tid in &st.tids {
            h.u64(u64::from(tid));
        }
        hash_columns(&mut h, &st.sites, &st.kinds);
    }
    match &bundle.plan {
        Some(plan) => {
            h.u8(1);
            h.u64(u64::from(plan.domains()));
            for (site, dom) in plan.sorted_assignments() {
                h.u64(site);
                h.u64(u64::from(dom));
            }
        }
        None => h.u8(0),
    }
    h.u64(bundle.edges.len() as u64);
    for e in &bundle.edges {
        h.u64(u64::from(e.domain));
        h.u64(u64::from(e.thread));
        h.u64(e.seq);
        h.u64(e.waits.len() as u64);
        for &(dom, count) in &e.waits {
            h.u64(u64::from(dom));
            h.u64(count);
        }
    }
    match &bundle.checkpoint {
        Some(cp) => {
            h.u8(1);
            h.u8(cp.trigger.code());
            h.u64(u64::from(cp.window));
            for &b in cp.base.iter().chain(&cp.floors) {
                h.u64(b);
            }
        }
        None => h.u8(0),
    }
    Certificate {
        digest: h.finish(),
        detail: format!(
            "scheme={} threads={} domains={} records={} edges={}{}",
            bundle.scheme,
            bundle.nthreads,
            bundle.domains,
            bundle.total_records(),
            bundle.edges.len(),
            if bundle.checkpoint.is_some() {
                " windowed"
            } else {
                ""
            }
        ),
    }
}

fn hash_columns(h: &mut Fnv, sites: &Option<Vec<u64>>, kinds: &Option<Vec<u8>>) {
    match sites {
        Some(s) => {
            h.u8(1);
            for &v in s {
                h.u64(v);
            }
        }
        None => h.u8(0),
    }
    match kinds {
        Some(k) => {
            h.u8(1);
            for &v in k {
                h.u8(v);
            }
        }
        None => h.u8(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::AccessKind;
    use crate::trace::{Checkpoint, CrossDomainEdge, DumpTrigger, ThreadTrace};

    fn dc_bundle() -> TraceBundle {
        TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 1,
            threads: vec![
                ThreadTrace {
                    values: vec![0, 3],
                    sites: Some(vec![1, 1]),
                    kinds: Some(vec![0, 1]),
                },
                ThreadTrace {
                    values: vec![1, 2],
                    sites: Some(vec![1, 1]),
                    kinds: Some(vec![0, 0]),
                },
            ],
            st: vec![],
        }
    }

    #[test]
    fn clean_bundle_gets_a_stable_certificate() {
        let v = Verifier::new();
        let a = v.verify(&dc_bundle());
        let b = v.verify(&dc_bundle());
        assert!(a.is_clean(), "{a}");
        assert_eq!(a.certificate, b.certificate);
        assert!(a.certificate.is_some());
        // Any content change moves the digest.
        let mut tweaked = dc_bundle();
        tweaked.threads[0].sites = Some(vec![1, 2]);
        let c = v.verify(&tweaked);
        assert!(c.is_clean());
        assert_ne!(a.certificate, c.certificate);
    }

    #[test]
    fn structural_matches_validate() {
        let mut b = dc_bundle();
        b.threads.pop();
        let verr = b.validate().unwrap_err().to_string();
        let report = Verifier::new().verify(&b);
        assert_eq!(report.worst_tier(), Some(Tier::Structural));
        assert!(
            verr.contains(&report.diagnostics[0].message),
            "{verr} vs {}",
            report.diagnostics[0].message
        );
        assert!(report.certificate.is_none());
    }

    #[test]
    fn permuted_dc_stream_is_an_ordering_error() {
        // Swap one thread's values: same multiset per domain (structural
        // passes) but the stream is no longer monotone.
        let mut b = dc_bundle();
        b.threads[1].values = vec![2, 1];
        b.validate().unwrap();
        let report = Verifier::new().verify(&b);
        assert_eq!(report.worst_tier(), Some(Tier::Ordering), "{report}");
        assert!(report.certificate.is_none());
    }

    #[test]
    fn st_bundle_with_thread_values_is_an_ordering_error() {
        let mut b = dc_bundle();
        b.scheme = Scheme::St;
        b.st = vec![crate::trace::StTrace {
            tids: vec![0, 1, 0, 1],
            sites: Some(vec![1; 4]),
            kinds: Some(vec![0; 4]),
        }];
        // Leave the (now bogus) per-thread clock values in place.
        let report = Verifier::new().verify(&b);
        assert_eq!(report.worst_tier(), Some(Tier::Ordering), "{report}");
    }

    #[test]
    fn unreachable_de_epoch_is_an_ordering_error() {
        let mut b = dc_bundle();
        b.scheme = Scheme::De;
        // 4 records; epoch 9 can never be admitted.
        b.threads[0].values = vec![0, 9];
        let report = Verifier::new().verify(&b);
        assert_eq!(report.worst_tier(), Some(Tier::Ordering), "{report}");
    }

    #[test]
    fn cyclic_edges_are_an_ordering_error() {
        let mut b = TraceBundle {
            domains: 2,
            threads: vec![
                ThreadTrace {
                    values: vec![0, 1],
                    sites: None,
                    kinds: None,
                },
                ThreadTrace::default(),
                ThreadTrace {
                    values: vec![0, 1],
                    sites: None,
                    kinds: None,
                },
                ThreadTrace::default(),
            ],
            ..dc_bundle()
        };
        b.edges = vec![
            CrossDomainEdge {
                domain: 0,
                thread: 0,
                seq: 0,
                waits: vec![(1, 2)],
            },
            CrossDomainEdge {
                domain: 1,
                thread: 0,
                seq: 0,
                waits: vec![(0, 2)],
            },
        ];
        b.validate().unwrap();
        let report = Verifier::new().verify(&b);
        assert_eq!(report.worst_tier(), Some(Tier::Ordering), "{report}");
    }

    #[test]
    fn zero_window_checkpoint_is_an_ordering_error() {
        let mut b = dc_bundle();
        b.checkpoint = Some(Checkpoint {
            base: vec![0],
            floors: vec![],
            window: 0,
            trigger: DumpTrigger::Manual,
        });
        let report = Verifier::new().verify(&b);
        assert_eq!(report.worst_tier(), Some(Tier::Ordering), "{report}");
    }

    #[test]
    fn mismatched_plan_stamp_is_a_plan_error() {
        // Two domains, validation columns present, every access's site
        // routed by the stamped plan to domain 0 — but one access was
        // recorded in domain 1.
        let mut plan = DomainPlan::new(2);
        plan.set(SiteId(1), 0);
        plan.set(SiteId(2), 1);
        let b = TraceBundle {
            plan: Some(plan),
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 1,
            domains: 2,
            threads: vec![
                ThreadTrace {
                    values: vec![0],
                    sites: Some(vec![1]),
                    kinds: Some(vec![AccessKind::Store.code()]),
                },
                ThreadTrace {
                    values: vec![0],
                    sites: Some(vec![1]), // site 1 belongs in domain 0!
                    kinds: Some(vec![AccessKind::Store.code()]),
                },
            ],
            st: vec![],
        };
        b.validate().unwrap();
        let report = Verifier::new().verify(&b);
        assert_eq!(report.worst_tier(), Some(Tier::Plan), "{report}");
        let diag = report.errors().next().unwrap();
        assert_eq!(diag.tier, Tier::Plan);
        assert!(diag.message.contains("domain 0"), "{diag}");
    }

    #[test]
    fn diagnostics_are_capped_per_check() {
        // 100 mismatched accesses must not yield 100 diagnostics.
        let sites: Vec<u64> = vec![2; 100]; // site 2 → domain 0 under %2
        let values: Vec<u64> = (0..100).collect();
        let kinds = vec![AccessKind::Store.code(); 100];
        let b = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 1,
            domains: 2,
            threads: vec![
                ThreadTrace {
                    values: vec![],
                    sites: Some(vec![]),
                    kinds: Some(vec![]),
                },
                ThreadTrace {
                    values,
                    sites: Some(sites),
                    kinds: Some(kinds),
                },
            ],
            st: vec![],
        };
        b.validate().unwrap();
        let report = Verifier::new().verify(&b);
        assert_eq!(report.worst_tier(), Some(Tier::Plan));
        assert!(
            report.diagnostics.len() <= MAX_DIAGS_PER_CHECK + 1,
            "{} diagnostics",
            report.diagnostics.len()
        );
    }

    #[test]
    fn tier_ordering_for_exit_codes() {
        assert!(Tier::Structural < Tier::Ordering);
        assert!(Tier::Ordering < Tier::Plan);
    }
}
