//! Error types for recording, trace handling, and replay.

use crate::history::AccessRecord;
use crate::site::{AccessKind, SiteId};
use std::fmt;
use std::io;

/// Errors raised while encoding, decoding, or persisting traces.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure while reading or writing a record file.
    Io(io::Error),
    /// A record file did not start with the expected magic bytes.
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// Unsupported format version.
    BadVersion(u8),
    /// A field in a header or manifest had an invalid value.
    Corrupt(String),
    /// The store holds no trace bundle to load.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic { found } => {
                write!(f, "not a reomp trace file (magic {found:?})")
            }
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            TraceError::Empty => write!(f, "trace store is empty"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A replay run diverged from the recorded run.
///
/// With `validate_sites` enabled (the default), traces carry the site and
/// kind of every access, so a replay executing a *different* access than
/// recorded is caught at the gate instead of silently replaying a wrong
/// order — the failure mode the paper attributes to Chimera's timeout-based
/// *weak locks* (§VII).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Thread on which the divergence was observed.
    pub thread: u32,
    /// Gate domain in which the divergence was observed (0 for
    /// single-domain sessions).
    pub domain: u32,
    /// Zero-based index of the access in that thread's gate sequence
    /// (within `domain` for multi-domain sessions).
    pub seq: u64,
    /// Site recorded at this position, if the trace carries sites.
    pub recorded_site: Option<SiteId>,
    /// Site the replaying program actually reached.
    pub actual_site: SiteId,
    /// Kind recorded at this position, if the trace carries kinds.
    pub recorded_kind: Option<AccessKind>,
    /// Kind the replaying program actually executed.
    pub actual_kind: AccessKind,
    /// The last N accesses this domain admitted before the divergence,
    /// newest first — the post-mortem context the
    /// [`HistoryRing`](crate::history::HistoryRing) exists for. Empty when
    /// the session was configured with
    /// [`ring_capacity`](crate::session::SessionConfig::ring_capacity) 0.
    pub history: Vec<AccessRecord>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay divergence on thread {} (domain {}) at access #{}: recorded ",
            self.thread, self.domain, self.seq
        )?;
        match (self.recorded_site, self.recorded_kind) {
            (Some(s), Some(k)) => write!(f, "{k} at {s}")?,
            (Some(s), None) => write!(f, "access at {s}")?,
            _ => write!(f, "<unvalidated>")?,
        }
        write!(
            f,
            ", but program executed {} at {}",
            self.actual_kind, self.actual_site
        )?;
        if !self.history.is_empty() {
            write!(
                f,
                "; last {} accesses admitted in domain {} (newest first):",
                self.history.len(),
                self.domain
            )?;
            for rec in &self.history {
                write!(
                    f,
                    "\n  #{:<6} thread {} {} at {}",
                    rec.clock, rec.thread, rec.kind, rec.site
                )?;
            }
        }
        Ok(())
    }
}

/// Errors raised while replaying a recorded run.
#[derive(Debug)]
pub enum ReplayError {
    /// The replayed program executed a different access than recorded.
    Divergence(Divergence),
    /// A thread performed more gated accesses than were recorded for it.
    TraceExhausted {
        /// The thread whose per-thread trace (or the shared ST trace) ran out.
        thread: u32,
        /// Number of records that were available.
        available: u64,
    },
    /// A gate waited longer than the configured watchdog timeout; the
    /// recorded order can no longer be produced (e.g. the program under
    /// replay took a different control flow and a predecessor access never
    /// happens).
    Timeout {
        /// The waiting thread.
        thread: u32,
        /// The site it was trying to enter.
        site: SiteId,
        /// The clock or epoch it was waiting for.
        waiting_for: u64,
        /// The turnstile value observed when giving up.
        observed: u64,
    },
    /// Another thread already failed; this thread was released so the
    /// process can shut down instead of spinning forever.
    Aborted,
    /// The replay session was created from a trace recorded with a
    /// different number of threads.
    ThreadCountMismatch {
        /// Threads in the trace bundle.
        recorded: u32,
        /// Threads registered with the session.
        registered: u32,
    },
    /// Trace data could not be interpreted.
    Trace(TraceError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Divergence(d) => write!(f, "{d}"),
            ReplayError::TraceExhausted { thread, available } => write!(
                f,
                "thread {thread} performed more gated accesses than the {available} recorded"
            ),
            ReplayError::Timeout {
                thread,
                site,
                waiting_for,
                observed,
            } => write!(
                f,
                "replay watchdog timeout: thread {thread} at site {site} waited for turnstile \
                 value {waiting_for} but it is stuck at {observed}"
            ),
            ReplayError::Aborted => write!(f, "replay aborted because another thread failed"),
            ReplayError::ThreadCountMismatch {
                recorded,
                registered,
            } => write!(
                f,
                "trace was recorded with {recorded} threads but {registered} were registered"
            ),
            ReplayError::Trace(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        ReplayError::Trace(e)
    }
}

impl From<Divergence> for ReplayError {
    fn from(d: Divergence) -> Self {
        ReplayError::Divergence(d)
    }
}

/// Errors from [`crate::Session::finish`].
#[derive(Debug)]
pub enum FinishError {
    /// `finish` was called while thread contexts are still alive.
    ThreadsActive(u32),
    /// `finish` was already called on this session.
    AlreadyFinished,
    /// A streaming record run failed to flush or commit its trace; the
    /// store was left without a loadable (possibly corrupt) bundle.
    Stream(TraceError),
}

impl fmt::Display for FinishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinishError::ThreadsActive(n) => {
                write!(
                    f,
                    "cannot finish session: {n} thread context(s) still registered"
                )
            }
            FinishError::AlreadyFinished => write!(f, "session already finished"),
            FinishError::Stream(e) => write!(f, "streaming trace persistence failed: {e}"),
        }
    }
}

impl std::error::Error for FinishError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FinishError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_message_is_actionable() {
        let d = Divergence {
            thread: 3,
            domain: 0,
            seq: 17,
            recorded_site: Some(SiteId(0x10)),
            actual_site: SiteId(0x20),
            recorded_kind: Some(AccessKind::Store),
            actual_kind: AccessKind::Load,
            history: vec![],
        };
        let msg = d.to_string();
        assert!(msg.contains("thread 3"), "{msg}");
        assert!(msg.contains("#17"), "{msg}");
        assert!(msg.contains("store"), "{msg}");
        assert!(msg.contains("load"), "{msg}");
    }

    #[test]
    fn divergence_message_includes_history_context() {
        let d = Divergence {
            thread: 1,
            domain: 2,
            seq: 4,
            recorded_site: Some(SiteId(0x10)),
            actual_site: SiteId(0x20),
            recorded_kind: Some(AccessKind::Store),
            actual_kind: AccessKind::Load,
            history: vec![
                AccessRecord {
                    clock: 9,
                    site: SiteId(0x30),
                    kind: AccessKind::Load,
                    thread: 0,
                },
                AccessRecord {
                    clock: 8,
                    site: SiteId(0x10),
                    kind: AccessKind::Store,
                    thread: 1,
                },
            ],
        };
        let msg = d.to_string();
        assert!(msg.contains("domain 2"), "{msg}");
        assert!(msg.contains("last 2 accesses"), "{msg}");
        assert!(msg.contains("#9"), "{msg}");
        assert!(msg.contains("thread 0 load"), "{msg}");
    }

    #[test]
    fn errors_convert_and_display() {
        let e: ReplayError = TraceError::Empty.into();
        assert!(e.to_string().contains("empty"));
        let e = ReplayError::Timeout {
            thread: 1,
            site: SiteId(7),
            waiting_for: 42,
            observed: 40,
        };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("40"));
    }
}
