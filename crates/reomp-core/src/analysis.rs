//! Post-hoc trace analysis: summaries, global interleavings, ASCII
//! timelines, and trace *diffing*.
//!
//! Record-and-replay earns its keep during debugging, and debugging needs
//! to *look at* traces: which thread did what when, and — when a replay
//! diverges or two recordings differ — where exactly the first difference
//! sits. The `reomp-inspect` binary in the workspace root wraps this
//! module for the command line.

use crate::session::Scheme;
use crate::site::{AccessKind, SiteId};
use crate::trace::TraceBundle;
use std::collections::BTreeMap;
use std::fmt;

/// One access in a reconstructed global order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Gate domain the access was recorded in (0 for single-domain runs).
    pub domain: u32,
    /// Recorded value (clock for DC, epoch for DE, sequence index for ST).
    pub value: u64,
    /// Executing thread.
    pub thread: u32,
    /// Site, when the trace carries validation columns.
    pub site: Option<SiteId>,
    /// Kind, when the trace carries validation columns.
    pub kind: Option<AccessKind>,
}

/// Reconstruct the access order of a bundle, domain by domain.
///
/// * ST: the shared stream *is* the order.
/// * DC: clocks are a total order.
/// * DE: epochs are a partial order; entries sharing a value were
///   concurrent in replay (ties are broken by thread ID for determinism).
///
/// Multi-domain bundles have **no** recorded cross-domain order; the
/// timeline lists each domain's order in turn.
#[must_use]
pub fn timeline(bundle: &TraceBundle) -> Vec<TimelineEntry> {
    let mut out = Vec::with_capacity(bundle.total_records() as usize);
    if bundle.is_st() {
        for (dom, st) in bundle.st.iter().enumerate() {
            for (i, &tid) in st.tids.iter().enumerate() {
                out.push(TimelineEntry {
                    domain: dom as u32,
                    value: i as u64,
                    thread: tid,
                    site: st.sites.as_ref().map(|s| SiteId(s[i])),
                    kind: st.kinds.as_ref().and_then(|k| AccessKind::from_code(k[i])),
                });
            }
        }
        return out;
    }
    let nthreads = bundle.nthreads.max(1) as usize;
    for (idx, t) in bundle.threads.iter().enumerate() {
        let (dom, tid) = (idx / nthreads, idx % nthreads);
        for i in 0..t.len() {
            out.push(TimelineEntry {
                domain: dom as u32,
                value: t.values[i],
                thread: tid as u32,
                site: t.site_at(i),
                kind: t.kind_at(i),
            });
        }
    }
    out.sort_by_key(|e| (e.domain, e.value, e.thread));
    out
}

/// Aggregate facts about one bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Recording scheme.
    pub scheme: Scheme,
    /// Thread count.
    pub nthreads: u32,
    /// Gate-domain count (1 = classic single-gate recording).
    pub domains: u32,
    /// Records per thread across all domains (ST: per-thread share of the
    /// shared streams).
    pub per_thread: Vec<u64>,
    /// Access counts per kind (only when the trace carries kinds).
    pub kinds: BTreeMap<&'static str, u64>,
    /// Distinct sites touched (only when the trace carries sites).
    pub distinct_sites: Option<u64>,
    /// Explicitly planned sites (`None`: recorded without a domain plan).
    pub planned_sites: Option<u64>,
    /// Cross-domain happens-before edges in the trace.
    pub edges: u64,
    /// Whether the edges admit a full interleaving (always true for
    /// genuinely recorded traces; `false` flags corrupt/cyclic edges).
    pub edges_consistent: bool,
}

impl TraceSummary {
    /// Total records.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_thread.iter().sum()
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheme {} · {} threads · {} records",
            self.scheme.name(),
            self.nthreads,
            self.total()
        )?;
        if self.domains > 1 {
            write!(f, " · {} gate domains", self.domains)?;
        }
        writeln!(f)?;
        for (tid, n) in self.per_thread.iter().enumerate() {
            writeln!(f, "  thread {tid}: {n} records")?;
        }
        if let Some(sites) = self.distinct_sites {
            writeln!(f, "  distinct sites: {sites}")?;
        }
        if let Some(n) = self.planned_sites {
            writeln!(f, "  domain plan: {n} pinned site(s)")?;
        }
        if self.edges > 0 {
            writeln!(
                f,
                "  cross-domain edges: {}{}",
                self.edges,
                if self.edges_consistent {
                    ""
                } else {
                    " (INCONSISTENT)"
                }
            )?;
        }
        for (kind, n) in &self.kinds {
            writeln!(f, "  {kind}: {n}")?;
        }
        Ok(())
    }
}

/// Summarize a bundle.
#[must_use]
pub fn summarize(bundle: &TraceBundle) -> TraceSummary {
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut sites = std::collections::HashSet::new();
    let mut per_thread = vec![0u64; bundle.nthreads as usize];
    for e in timeline(bundle) {
        per_thread[e.thread as usize] += 1;
        if let Some(kind) = e.kind {
            *kinds.entry(kind.name()).or_insert(0) += 1;
        }
        if let Some(site) = e.site {
            sites.insert(site);
        }
    }
    TraceSummary {
        scheme: bundle.scheme,
        nthreads: bundle.nthreads,
        domains: bundle.domains,
        per_thread,
        distinct_sites: bundle.has_validation().then_some(sites.len() as u64),
        kinds,
        planned_sites: bundle.plan.as_ref().map(|p| p.assigned() as u64),
        edges: bundle.edges.len() as u64,
        edges_consistent: bundle.edges.is_empty() || bundle.edges_consistent(),
    }
}

/// Reconstruct one interleaved cross-domain timeline using the bundle's
/// happens-before edges: each domain's internal order is preserved, and an
/// edge's anchor never precedes the foreign accesses it waited on. For
/// edge-less multi-domain bundles this is `None` — there is no recorded
/// basis for interleaving them.
#[must_use]
pub fn interleaved_timeline(bundle: &TraceBundle) -> Option<Vec<TimelineEntry>> {
    if bundle.domains <= 1 || bundle.edges.is_empty() {
        return None;
    }
    let merged = bundle.merged_order();
    let mut out = Vec::with_capacity(merged.len());
    for (domain, value, thread, seq) in merged {
        let (site, kind) = if bundle.is_st() {
            let st = &bundle.st[domain as usize];
            (
                st.sites.as_ref().map(|s| SiteId(s[seq as usize])),
                st.kinds
                    .as_ref()
                    .and_then(|k| AccessKind::from_code(k[seq as usize])),
            )
        } else {
            let t = bundle.thread(domain, thread);
            (t.site_at(seq as usize), t.kind_at(seq as usize))
        };
        out.push(TimelineEntry {
            domain,
            value,
            thread,
            site,
            kind,
        });
    }
    Some(out)
}

/// Render the first `max_events` accesses as per-thread lanes:
///
/// ```text
/// value    T0 T1 T2
///     0    L  .  .
///     1    .  S  .
/// ```
#[must_use]
pub fn ascii_timeline(bundle: &TraceBundle, max_events: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let events = timeline(bundle);
    let _ = write!(out, "{:>8} ", "value");
    for tid in 0..bundle.nthreads {
        let _ = write!(out, " T{tid:<2}");
    }
    out.push('\n');
    for e in events.iter().take(max_events) {
        if bundle.domains > 1 {
            let _ = write!(out, "{:>8} ", format!("d{}:{}", e.domain, e.value));
        } else {
            let _ = write!(out, "{:>8} ", e.value);
        }
        for tid in 0..bundle.nthreads {
            if tid == e.thread {
                let mark = match e.kind {
                    Some(AccessKind::Load) => 'L',
                    Some(AccessKind::Store) => 'S',
                    Some(AccessKind::AtomicRmw) => 'A',
                    Some(AccessKind::Critical) => 'C',
                    Some(AccessKind::Reduction) => 'R',
                    Some(AccessKind::Ordered) => 'O',
                    Some(AccessKind::MpiOp) => 'M',
                    None => '*',
                };
                let _ = write!(out, " {mark}  ");
            } else {
                let _ = write!(out, " .  ");
            }
        }
        out.push('\n');
    }
    if events.len() > max_events {
        let _ = writeln!(out, "… {} more", events.len() - max_events);
    }
    out
}

/// The first place two traces differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDiff {
    /// Structurally incomparable (scheme or thread count differ).
    Shape {
        /// Description of the mismatch.
        what: String,
    },
    /// Identical.
    Equal,
    /// First differing access on some thread.
    FirstDivergence {
        /// Gate domain whose streams differ (0 for single-domain traces).
        domain: u32,
        /// Thread whose streams differ.
        thread: u32,
        /// Index of the first differing access in that thread's stream.
        index: u64,
        /// `(value, site, kind)` in the left trace, if present.
        left: Option<(u64, Option<SiteId>, Option<AccessKind>)>,
        /// Same for the right trace.
        right: Option<(u64, Option<SiteId>, Option<AccessKind>)>,
    },
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDiff::Shape { what } => write!(f, "traces are incomparable: {what}"),
            TraceDiff::Equal => write!(f, "traces are identical"),
            TraceDiff::FirstDivergence {
                domain,
                thread,
                index,
                left,
                right,
            } => {
                write!(
                    f,
                    "first divergence on thread {thread} (domain {domain}) at access #{index}: "
                )?;
                let side = |s: &Option<(u64, Option<SiteId>, Option<AccessKind>)>| match s {
                    None => "<stream ends>".to_string(),
                    Some((v, site, kind)) => {
                        let mut txt = format!("value {v}");
                        if let Some(k) = kind {
                            txt.push_str(&format!(" {k}"));
                        }
                        if let Some(site) = site {
                            txt.push_str(&format!(" at {site}"));
                        }
                        txt
                    }
                };
                write!(f, "{} vs {}", side(left), side(right))
            }
        }
    }
}

/// Locate the first difference between two traces of the same program —
/// e.g. two recordings of a flaky run, to see where schedules departed.
#[must_use]
pub fn diff(a: &TraceBundle, b: &TraceBundle) -> TraceDiff {
    if a.scheme != b.scheme {
        return TraceDiff::Shape {
            what: format!("schemes {} vs {}", a.scheme.name(), b.scheme.name()),
        };
    }
    if a.nthreads != b.nthreads {
        return TraceDiff::Shape {
            what: format!("{} vs {} threads", a.nthreads, b.nthreads),
        };
    }
    if a.domains != b.domains {
        return TraceDiff::Shape {
            what: format!("{} vs {} gate domains", a.domains, b.domains),
        };
    }
    // ST: compare the shared streams as thread 0-attributed events.
    if a.is_st() && b.is_st() {
        for (dom, (sa, sb)) in a.st.iter().zip(&b.st).enumerate() {
            let n = sa.len().max(sb.len());
            for i in 0..n {
                let la = sa.tids.get(i).map(|&t| {
                    (
                        u64::from(t),
                        sa.sites.as_ref().map(|s| SiteId(s[i])),
                        sa.kinds.as_ref().and_then(|k| AccessKind::from_code(k[i])),
                    )
                });
                let rb = sb.tids.get(i).map(|&t| {
                    (
                        u64::from(t),
                        sb.sites.as_ref().map(|s| SiteId(s[i])),
                        sb.kinds.as_ref().and_then(|k| AccessKind::from_code(k[i])),
                    )
                });
                if la != rb {
                    return TraceDiff::FirstDivergence {
                        domain: dom as u32,
                        thread: 0,
                        index: i as u64,
                        left: la,
                        right: rb,
                    };
                }
            }
        }
        return TraceDiff::Equal;
    }
    let nthreads = a.nthreads.max(1) as usize;
    for (idx, (ta, tb)) in a.threads.iter().zip(&b.threads).enumerate() {
        let (dom, tid) = (idx / nthreads, idx % nthreads);
        let n = ta.len().max(tb.len());
        for i in 0..n {
            let la = ta.values.get(i).map(|&v| (v, ta.site_at(i), ta.kind_at(i)));
            let rb = tb.values.get(i).map(|&v| (v, tb.site_at(i), tb.kind_at(i)));
            if la != rb {
                return TraceDiff::FirstDivergence {
                    domain: dom as u32,
                    thread: tid as u32,
                    index: i as u64,
                    left: la,
                    right: rb,
                };
            }
        }
    }
    TraceDiff::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{StTrace, ThreadTrace};

    fn dc_bundle() -> TraceBundle {
        TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 1,
            threads: vec![
                ThreadTrace {
                    values: vec![0, 3],
                    sites: Some(vec![7, 8]),
                    kinds: Some(vec![0, 1]),
                },
                ThreadTrace {
                    values: vec![1, 2],
                    sites: Some(vec![7, 7]),
                    kinds: Some(vec![0, 0]),
                },
            ],
            st: vec![],
        }
    }

    #[test]
    fn timeline_orders_dc_by_clock() {
        let tl = timeline(&dc_bundle());
        let threads: Vec<u32> = tl.iter().map(|e| e.thread).collect();
        assert_eq!(threads, vec![0, 1, 1, 0]);
        assert_eq!(tl[0].kind, Some(AccessKind::Load));
        assert_eq!(tl[3].kind, Some(AccessKind::Store));
    }

    #[test]
    fn timeline_uses_st_stream_order() {
        let b = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::St,
            nthreads: 2,
            domains: 1,
            threads: vec![ThreadTrace::default(), ThreadTrace::default()],
            st: vec![StTrace {
                tids: vec![1, 0, 1],
                sites: None,
                kinds: None,
            }],
        };
        let tl = timeline(&b);
        assert_eq!(
            tl.iter().map(|e| e.thread).collect::<Vec<_>>(),
            vec![1, 0, 1]
        );
        assert_eq!(tl[2].value, 2);
    }

    #[test]
    fn timeline_and_diff_are_domain_aware() {
        // Two domains: threads[0..2] are domain 0, threads[2..4] domain 1.
        let b = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 2,
            threads: vec![
                ThreadTrace {
                    values: vec![0],
                    sites: None,
                    kinds: None,
                },
                ThreadTrace {
                    values: vec![1],
                    sites: None,
                    kinds: None,
                },
                ThreadTrace {
                    values: vec![1],
                    sites: None,
                    kinds: None,
                },
                ThreadTrace {
                    values: vec![0],
                    sites: None,
                    kinds: None,
                },
            ],
            st: vec![],
        };
        let tl = timeline(&b);
        // Domain-major order; thread ids recovered modulo nthreads.
        assert_eq!(
            tl.iter()
                .map(|e| (e.domain, e.value, e.thread))
                .collect::<Vec<_>>(),
            vec![(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)]
        );
        let s = summarize(&b);
        assert_eq!(s.domains, 2);
        assert_eq!(s.per_thread, vec![2, 2]);
        assert!(s.to_string().contains("2 gate domains"));

        // Diff reports the domain of the first difference.
        let mut c = b.clone();
        c.threads[3].values = vec![9];
        match diff(&b, &c) {
            TraceDiff::FirstDivergence { domain, thread, .. } => {
                assert_eq!((domain, thread), (1, 1));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        // Domain-count mismatch is a shape error.
        let mut d = b.clone();
        d.domains = 1;
        d.threads.truncate(2);
        assert!(matches!(diff(&b, &d), TraceDiff::Shape { .. }));
    }

    #[test]
    fn interleaved_timeline_respects_edges() {
        use crate::trace::CrossDomainEdge;
        // Two domains: d0 holds t0's clocks [0,1], d1 holds t1's clock
        // [0]. The edge forces d1's access after both of d0's.
        let mut b = TraceBundle {
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 2,
            threads: vec![
                ThreadTrace {
                    values: vec![0, 1],
                    sites: Some(vec![7, 8]),
                    kinds: Some(vec![0, 1]),
                },
                ThreadTrace::default(),
                ThreadTrace::default(),
                ThreadTrace {
                    values: vec![0],
                    sites: Some(vec![9]),
                    kinds: Some(vec![3]),
                },
            ],
            st: vec![],
            plan: None,
            edges: vec![CrossDomainEdge {
                domain: 1,
                thread: 1,
                seq: 0,
                waits: vec![(0, 2)],
            }],
            checkpoint: None,
        };
        b.validate().unwrap();
        let tl = interleaved_timeline(&b).expect("edges present");
        assert_eq!(
            tl.iter()
                .map(|e| (e.domain, e.thread, e.value))
                .collect::<Vec<_>>(),
            vec![(0, 0, 0), (0, 0, 1), (1, 1, 0)],
            "the d1 anchor must come after both d0 accesses"
        );
        assert_eq!(tl[2].site, Some(SiteId(9)));
        assert_eq!(tl[2].kind, Some(AccessKind::Critical));
        // Edge-less multi-domain bundles have no interleaving basis.
        b.edges.clear();
        assert!(interleaved_timeline(&b).is_none());

        // ST bundle: the anchor is the shared-stream index.
        let st = TraceBundle {
            scheme: Scheme::St,
            nthreads: 2,
            domains: 2,
            threads: vec![ThreadTrace::default(); 4],
            st: vec![
                StTrace {
                    tids: vec![0, 0],
                    sites: Some(vec![1, 2]),
                    kinds: Some(vec![0, 0]),
                },
                StTrace {
                    tids: vec![1],
                    sites: Some(vec![3]),
                    kinds: Some(vec![3]),
                },
            ],
            plan: None,
            edges: vec![CrossDomainEdge {
                domain: 1,
                thread: 1,
                seq: 0,
                waits: vec![(0, 2)],
            }],
            checkpoint: None,
        };
        st.validate().unwrap();
        let tl = interleaved_timeline(&st).expect("edges present");
        assert_eq!(
            tl.iter().map(|e| (e.domain, e.thread)).collect::<Vec<_>>(),
            vec![(0, 0), (0, 0), (1, 1)]
        );
        assert_eq!(tl[2].site, Some(SiteId(3)));
    }

    #[test]
    fn summary_counts_threads_kinds_sites() {
        let s = summarize(&dc_bundle());
        assert_eq!(s.total(), 4);
        assert_eq!(s.per_thread, vec![2, 2]);
        assert_eq!(s.kinds.get("load"), Some(&3));
        assert_eq!(s.kinds.get("store"), Some(&1));
        assert_eq!(s.distinct_sites, Some(2));
        assert!(s.to_string().contains("thread 1: 2 records"));
    }

    #[test]
    fn ascii_timeline_renders_lanes() {
        let art = ascii_timeline(&dc_bundle(), 10);
        assert!(art.contains("T0"), "{art}");
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5, "{art}");
        assert!(lines[1].contains('L'));
        assert!(lines[4].contains('S'));
    }

    #[test]
    fn ascii_timeline_truncates() {
        let art = ascii_timeline(&dc_bundle(), 2);
        assert!(art.contains("… 2 more"), "{art}");
    }

    #[test]
    fn diff_equal_and_shape() {
        assert_eq!(diff(&dc_bundle(), &dc_bundle()), TraceDiff::Equal);
        let mut other = dc_bundle();
        other.scheme = Scheme::De;
        assert!(matches!(
            diff(&dc_bundle(), &other),
            TraceDiff::Shape { .. }
        ));
    }

    #[test]
    fn diff_finds_first_divergence() {
        let a = dc_bundle();
        let mut b = dc_bundle();
        b.threads[1].values[1] = 5;
        match diff(&a, &b) {
            TraceDiff::FirstDivergence {
                thread,
                index,
                left,
                right,
                ..
            } => {
                assert_eq!(thread, 1);
                assert_eq!(index, 1);
                assert_eq!(left.unwrap().0, 2);
                assert_eq!(right.unwrap().0, 5);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        // Length mismatch: one side ends.
        let mut c = dc_bundle();
        c.threads[0].values.pop();
        c.threads[0].sites.as_mut().unwrap().pop();
        c.threads[0].kinds.as_mut().unwrap().pop();
        match diff(&a, &c) {
            TraceDiff::FirstDivergence {
                thread,
                index,
                right,
                ..
            } => {
                assert_eq!((thread, index), (0, 1));
                assert_eq!(right, None);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        let text = diff(&a, &b).to_string();
        assert!(text.contains("thread 1"), "{text}");
    }
}
