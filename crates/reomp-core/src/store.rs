//! Record-file storage.
//!
//! DC/DE recording owes much of its advantage to the record-file *layout*:
//! one file per thread, written and read independently (§IV-C1), versus
//! ST's single shared file. [`DirStore`] reproduces that layout on a
//! directory (the paper uses tmpfs; `std::env::temp_dir()` is tmpfs on the
//! evaluation platform) and performs per-thread file I/O in parallel.
//! [`MemStore`] is an in-memory stand-in for tests and microbenches.
//!
//! # Gate domains on disk
//!
//! A recording made with `D > 1` gate domains (see
//! [`SessionConfig::domains`](crate::session::SessionConfig::domains))
//! stores one record file per thread **per domain** —
//! `thread_<tid>.d<dom>.rtrc`, plus `st.d<dom>.rtrc` for ST — and the
//! manifest carries a `domains D` line. Single-domain recordings keep the
//! classic names (`thread_<tid>.rtrc`, `st.rtrc`) and manifest, byte for
//! byte, so traces from before gate domains existed load unchanged. On
//! load, every file's header domain id is cross-checked against its name
//! and the manifest.
//!
//! # Crash-safe persistence
//!
//! [`DirStore::save`] is atomic at the file level: every record file and
//! the manifest are written to a `*.tmp` sibling, fsynced, and `rename`d
//! into place (with a best-effort directory fsync after the manifest), and
//! the manifest — the one file [`DirStore::load`] keys on — is removed
//! first and re-written **last**. A crash at any point mid-save therefore
//! leaves either the directory unloadable ([`TraceError::Empty`]) or a
//! fully consistent bundle; it can never pair a new manifest with old
//! record files. On load, the manifest's record count is cross-checked
//! against the decoded files, so even a chunked file that lost its tail at
//! an exact chunk boundary is rejected as corrupt rather than silently
//! shortened. Saving also scrubs *stale* files from earlier runs
//! (per-thread files beyond the new thread count, domain files beyond the
//! new domain count, an `st.rtrc` when the new bundle has no ST stream,
//! leftover temp files), so a directory reused across schemes, thread
//! counts, or domain counts cannot mix runs.
//!
//! # Streaming (chunked) recording
//!
//! The paper warns that record-and-replay scalability is ultimately
//! bounded by file-system usage (§II-B); rr and iReplayer both stream
//! records incrementally for this reason. [`StreamingTraceStore`] is the
//! incremental counterpart of [`TraceStore`]: [`begin_record`] opens one
//! chunked stream per thread per domain (see the [`crate::codec`] chunk
//! frame), the returned [`RecordSink`] appends encoded chunks as the
//! session records — so a trace can grow past RAM — and
//! [`RecordSink::commit`] publishes the directory atomically (manifest
//! last, like `save`). A recording that is dropped without `commit` leaves
//! only temp files and no manifest: the directory stays unloadable rather
//! than corrupt.
//!
//! [`begin_record`]: StreamingTraceStore::begin_record

use crate::codec;
use crate::error::TraceError;
use crate::plan::DomainPlan;
use crate::session::Scheme;
use crate::trace::{Checkpoint, CrossDomainEdge, StTrace, ThreadTrace, TraceBundle};
use parking_lot::Mutex;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes/files touched by one save or load, for the session's I/O stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoReport {
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Number of record files involved.
    pub files: u64,
    /// Number of stream chunks written or read (0 for one-shot layouts).
    pub chunks: u64,
    /// Peak number of chunks any single (thread, domain) stream retained
    /// at once. Only a bounded (flight-recorder) sink tracks this — it is
    /// the witness that retention never exceeded the configured window —
    /// and it stays 0 for unbounded stores.
    pub retained_peak: u64,
    /// Records evicted from the retained window over the recording's
    /// lifetime (0 for unbounded stores).
    pub evicted: u64,
}

/// Parameters of one streaming recording, threaded through
/// [`StreamingTraceStore::begin_record`] to every sink stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordOptions {
    /// Recording scheme (decides stream layout: per-thread vs shared ST).
    pub scheme: Scheme,
    /// Number of recording threads.
    pub nthreads: u32,
    /// Number of gate domains (1 = classic single-gate layout).
    pub domains: u32,
    /// Whether chunks will carry site/kind columns; every appended chunk
    /// must match.
    pub validated: bool,
    /// Run the per-chunk RLE compression stage
    /// ([`codec::FLAG_COMPRESSED`]) on every stream.
    pub compress: bool,
}

impl RecordOptions {
    /// Options for an uncompressed recording (the default pipeline).
    #[must_use]
    pub fn new(scheme: Scheme, nthreads: u32, domains: u32, validated: bool) -> Self {
        RecordOptions {
            scheme,
            nthreads,
            domains,
            validated,
            compress: false,
        }
    }

    /// Toggle the per-chunk compression stage.
    #[must_use]
    pub fn with_compression(mut self, compress: bool) -> Self {
        self.compress = compress;
        self
    }

    fn check(&self) -> Result<(), TraceError> {
        if self.nthreads == 0 {
            return Err(TraceError::Corrupt("zero threads".into()));
        }
        if self.domains == 0 {
            return Err(TraceError::Corrupt("zero domains".into()));
        }
        Ok(())
    }
}

/// The on-disk/in-header domain tag: multi-domain recordings stamp every
/// file with its domain; single-domain recordings stay in the legacy
/// domain-less format.
fn dom_tag(domains: u32, dom: u32) -> Option<u32> {
    (domains > 1).then_some(dom)
}

/// Abstract trace persistence.
pub trait TraceStore: Send + Sync {
    /// Persist a bundle, replacing any previous contents.
    fn save(&self, bundle: &TraceBundle) -> Result<IoReport, TraceError>;
    /// Load the stored bundle.
    fn load(&self) -> Result<(TraceBundle, IoReport), TraceError>;
}

/// Incremental trace persistence: streams per-thread chunks during a
/// record run instead of buffering the whole trace and saving once.
pub trait StreamingTraceStore: TraceStore {
    /// Start a streaming recording, replacing any stored trace. Returns a
    /// sink with one chunked stream per thread per domain (plus one shared
    /// ST stream per domain for [`Scheme::St`]). The recording becomes
    /// loadable only after [`RecordSink::commit`]; dropping the sink
    /// aborts it.
    fn begin_record(&self, opts: RecordOptions) -> Result<Box<dyn RecordSink>, TraceError>;

    /// Stream an already-assembled bundle through the chunked writer path
    /// in slices of `records_per_chunk` records. Produces the same loaded
    /// bundle as [`TraceStore::save`] while bounding the encoder's working
    /// set to one chunk.
    fn save_chunked(
        &self,
        bundle: &TraceBundle,
        records_per_chunk: usize,
    ) -> Result<IoReport, TraceError> {
        self.save_chunked_opt(bundle, records_per_chunk, false)
    }

    /// [`save_chunked`](StreamingTraceStore::save_chunked) with the
    /// per-chunk compression stage toggled by `compress`.
    fn save_chunked_opt(
        &self,
        bundle: &TraceBundle,
        records_per_chunk: usize,
        compress: bool,
    ) -> Result<IoReport, TraceError> {
        bundle.validate()?;
        let opts = RecordOptions::new(
            bundle.scheme,
            bundle.nthreads,
            bundle.domains,
            bundle.has_validation(),
        )
        .with_compression(compress);
        let sink = self.begin_record(opts)?;
        for (i, trace) in bundle.threads.iter().enumerate() {
            let (dom, tid) = split_stream_index(i, bundle.nthreads);
            stream_thread_trace(&*sink, dom, tid, trace, records_per_chunk)?;
        }
        for (dom, st) in bundle.st.iter().enumerate() {
            stream_st_trace(&*sink, dom as u32, st, records_per_chunk)?;
        }
        if let Some(plan) = &bundle.plan {
            sink.put_plan(plan)?;
        }
        if !bundle.edges.is_empty() {
            sink.append_edges(&bundle.edges)?;
        }
        if let Some(cp) = &bundle.checkpoint {
            sink.put_checkpoint(cp)?;
        }
        sink.commit(bundle.total_records())
    }
}

/// Recover `(dom, tid)` from a flat domain-major stream index.
fn split_stream_index(i: usize, nthreads: u32) -> (u32, u32) {
    let n = nthreads.max(1) as usize;
    ((i / n) as u32, (i % n) as u32)
}

/// Append one thread trace to a sink in `records_per_chunk`-sized chunks.
fn stream_thread_trace(
    sink: &dyn RecordSink,
    dom: u32,
    tid: u32,
    trace: &ThreadTrace,
    records_per_chunk: usize,
) -> Result<u64, TraceError> {
    let step = records_per_chunk.max(1);
    let mut bytes = 0;
    let mut at = 0;
    while at < trace.values.len() {
        let end = (at + step).min(trace.values.len());
        bytes += sink.append_thread_chunk(
            dom,
            tid,
            &trace.values[at..end],
            trace.sites.as_ref().map(|s| &s[at..end]),
            trace.kinds.as_ref().map(|k| &k[at..end]),
        )?;
        at = end;
    }
    Ok(bytes)
}

/// Append one domain's shared ST trace to a sink in chunks.
fn stream_st_trace(
    sink: &dyn RecordSink,
    dom: u32,
    st: &StTrace,
    records_per_chunk: usize,
) -> Result<u64, TraceError> {
    let step = records_per_chunk.max(1);
    let mut bytes = 0;
    let mut at = 0;
    while at < st.tids.len() {
        let end = (at + step).min(st.tids.len());
        bytes += sink.append_st_chunk(
            dom,
            &st.tids[at..end],
            st.sites.as_ref().map(|s| &s[at..end]),
            st.kinds.as_ref().map(|k| &k[at..end]),
        )?;
        at = end;
    }
    Ok(bytes)
}

/// Handle for one in-progress streaming recording. All methods are
/// callable concurrently; each stream serializes its own appends.
pub trait RecordSink: Send + Sync {
    /// Append one chunk of records to thread `tid`'s stream in domain
    /// `dom` (0 for single-domain recordings). Returns the encoded bytes
    /// appended.
    fn append_thread_chunk(
        &self,
        dom: u32,
        tid: u32,
        values: &[u64],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError>;

    /// Append one chunk to domain `dom`'s shared ST stream (ST recordings
    /// only).
    fn append_st_chunk(
        &self,
        dom: u32,
        tids: &[u32],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError>;

    /// Attach the recording's [`DomainPlan`]; it is persisted at commit
    /// (`plan` manifest line + plan section). Calling it again replaces
    /// the previous plan.
    fn put_plan(&self, plan: &DomainPlan) -> Result<(), TraceError>;

    /// Append cross-domain happens-before edges; they accumulate and are
    /// persisted at commit (`edges` manifest line + edge section).
    fn append_edges(&self, edges: &[CrossDomainEdge]) -> Result<(), TraceError>;

    /// Attach the flight-recorder [`Checkpoint`] of a bounded (windowed)
    /// recording; it is persisted at commit (`checkpoint` manifest line +
    /// `RTCP` section). Calling it again replaces the previous checkpoint.
    fn put_checkpoint(&self, checkpoint: &Checkpoint) -> Result<(), TraceError>;

    /// Finalize the recording: flush every stream and atomically publish
    /// it (the manifest is written last). Until commit returns, the store
    /// has no loadable trace.
    fn commit(self: Box<Self>, total_records: u64) -> Result<IoReport, TraceError>;
}

impl<'s> dyn RecordSink + 's {
    /// A borrowing writer handle for thread `tid`'s stream in domain
    /// `dom` — the per-thread view a recording thread holds onto.
    #[must_use]
    pub fn thread_writer(&self, dom: u32, tid: u32) -> TraceWriter<'_> {
        TraceWriter {
            sink: self,
            dom,
            tid: Some(tid),
        }
    }

    /// A borrowing writer handle for domain `dom`'s shared ST stream.
    #[must_use]
    pub fn st_writer(&self, dom: u32) -> TraceWriter<'_> {
        TraceWriter {
            sink: self,
            dom,
            tid: None,
        }
    }
}

/// Per-stream writer handle over a [`RecordSink`]: a thread's own record
/// file, or the shared ST stream (where values are thread IDs).
#[derive(Clone, Copy)]
pub struct TraceWriter<'s> {
    sink: &'s dyn RecordSink,
    /// Gate domain the stream belongs to (0 for single-domain runs).
    dom: u32,
    /// `None` addresses the shared ST stream.
    tid: Option<u32>,
}

impl TraceWriter<'_> {
    /// Append one chunk of records. For the ST stream the values are
    /// thread IDs and must fit `u32`.
    pub fn append(
        &self,
        values: &[u64],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError> {
        match self.tid {
            Some(tid) => self
                .sink
                .append_thread_chunk(self.dom, tid, values, sites, kinds),
            None => {
                let mut tids = Vec::with_capacity(values.len());
                for &v in values {
                    tids.push(u32::try_from(v).map_err(|_| {
                        TraceError::Corrupt(format!("st stream tid {v} out of range"))
                    })?);
                }
                self.sink.append_st_chunk(self.dom, &tids, sites, kinds)
            }
        }
    }
}

impl std::fmt::Debug for TraceWriter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("dom", &self.dom)
            .field("tid", &self.tid)
            .finish()
    }
}

pub(crate) fn check_columns(
    validated: bool,
    sites: Option<&[u64]>,
    kinds: Option<&[u8]>,
) -> Result<(), TraceError> {
    if sites.is_some() != validated || kinds.is_some() != validated {
        return Err(TraceError::Corrupt(
            "chunk columns do not match the recording's validation mode".into(),
        ));
    }
    Ok(())
}

/// In-memory store (still goes through the binary codec, so it exercises
/// the same encode/decode path as [`DirStore`]).
#[derive(Debug, Default)]
pub struct MemStore {
    files: Arc<Mutex<Option<EncodedBundle>>>,
}

#[derive(Debug, Clone)]
struct EncodedBundle {
    scheme: Scheme,
    nthreads: u32,
    domains: u32,
    /// Flat, domain-major encoded per-thread files.
    threads: Vec<Vec<u8>>,
    /// Per-domain encoded ST streams (empty for non-ST).
    st: Vec<Vec<u8>>,
    /// Encoded domain-plan section, when the recording carried one.
    plan: Option<Vec<u8>>,
    /// Encoded cross-domain edge section, when edges were recorded.
    edges: Option<Vec<u8>>,
    /// Encoded checkpoint section of a flight-recorder dump.
    checkpoint: Option<Vec<u8>>,
}

impl MemStore {
    /// New empty store.
    #[must_use]
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl TraceStore for MemStore {
    fn save(&self, bundle: &TraceBundle) -> Result<IoReport, TraceError> {
        // An inconsistent bundle must fail here, not map streams onto the
        // wrong slots (the flat index is interpreted modulo nthreads).
        bundle.validate()?;
        let mut report = IoReport::default();
        let threads: Vec<Vec<u8>> = bundle
            .threads
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (dom, tid) = split_stream_index(i, bundle.nthreads);
                let b = codec::encode_thread_trace_opt(
                    t,
                    bundle.scheme,
                    tid,
                    dom_tag(bundle.domains, dom),
                )
                .to_vec();
                report.bytes += b.len() as u64;
                report.files += 1;
                b
            })
            .collect();
        let st: Vec<Vec<u8>> = bundle
            .st
            .iter()
            .enumerate()
            .map(|(dom, st)| {
                let b =
                    codec::encode_st_trace_opt(st, dom_tag(bundle.domains, dom as u32)).to_vec();
                report.bytes += b.len() as u64;
                report.files += 1;
                b
            })
            .collect();
        let plan = bundle.plan.as_ref().map(|p| {
            let b = codec::encode_plan(p).to_vec();
            report.bytes += b.len() as u64;
            report.files += 1;
            b
        });
        let edges = (!bundle.edges.is_empty()).then(|| {
            let b = codec::encode_edges(&bundle.edges).to_vec();
            report.bytes += b.len() as u64;
            report.files += 1;
            b
        });
        let checkpoint = bundle.checkpoint.as_ref().map(|cp| {
            let b = codec::encode_checkpoint(cp).to_vec();
            report.bytes += b.len() as u64;
            report.files += 1;
            b
        });
        *self.files.lock() = Some(EncodedBundle {
            scheme: bundle.scheme,
            nthreads: bundle.nthreads,
            domains: bundle.domains,
            threads,
            st,
            plan,
            edges,
            checkpoint,
        });
        Ok(report)
    }

    fn load(&self) -> Result<(TraceBundle, IoReport), TraceError> {
        let encoded = self.files.lock().clone().ok_or(TraceError::Empty)?;
        let mut report = IoReport::default();
        let mut threads = Vec::with_capacity(encoded.threads.len());
        for (i, bytes) in encoded.threads.iter().enumerate() {
            let (dom, tid) = split_stream_index(i, encoded.nthreads);
            report.bytes += bytes.len() as u64;
            report.files += 1;
            let decoded = codec::decode_thread_records(bytes)?;
            if decoded.scheme != encoded.scheme
                || decoded.tid != tid
                || decoded.domain != dom_tag(encoded.domains, dom)
            {
                return Err(TraceError::Corrupt("trace header mismatch".into()));
            }
            report.chunks += decoded.chunks;
            threads.push(decoded.trace);
        }
        let mut st = Vec::with_capacity(encoded.st.len());
        for (dom, bytes) in encoded.st.iter().enumerate() {
            report.bytes += bytes.len() as u64;
            report.files += 1;
            let decoded = codec::decode_st_records(bytes)?;
            if decoded.domain != dom_tag(encoded.domains, dom as u32) {
                return Err(TraceError::Corrupt("st stream header mismatch".into()));
            }
            report.chunks += decoded.chunks;
            st.push(decoded.trace);
        }
        let plan = match &encoded.plan {
            Some(bytes) => {
                report.bytes += bytes.len() as u64;
                report.files += 1;
                Some(codec::decode_plan(bytes)?)
            }
            None => None,
        };
        let edges = match &encoded.edges {
            Some(bytes) => {
                report.bytes += bytes.len() as u64;
                report.files += 1;
                codec::decode_edges(bytes)?
            }
            None => Vec::new(),
        };
        let checkpoint = match &encoded.checkpoint {
            Some(bytes) => {
                report.bytes += bytes.len() as u64;
                report.files += 1;
                Some(codec::decode_checkpoint(bytes)?)
            }
            None => None,
        };
        let bundle = TraceBundle {
            scheme: encoded.scheme,
            nthreads: encoded.nthreads,
            domains: encoded.domains,
            threads,
            st,
            plan,
            edges,
            checkpoint,
        };
        bundle.validate()?;
        Ok((bundle, report))
    }
}

impl StreamingTraceStore for MemStore {
    fn begin_record(&self, opts: RecordOptions) -> Result<Box<dyn RecordSink>, TraceError> {
        opts.check()?;
        let RecordOptions {
            scheme,
            nthreads,
            domains,
            validated,
            compress,
        } = opts;
        // Match DirStore semantics: beginning a recording replaces any
        // stored trace immediately, so an aborted recording reads as Empty
        // instead of resurrecting the previous bundle.
        *self.files.lock() = None;
        let mut streams = Vec::with_capacity(domains as usize * nthreads as usize);
        for dom in 0..domains {
            for tid in 0..nthreads {
                let header = codec::encode_thread_stream_header_opt(
                    scheme,
                    tid,
                    dom_tag(domains, dom),
                    validated,
                    validated,
                    compress,
                );
                streams.push(Mutex::new(header.to_vec()));
            }
        }
        let st = if scheme == Scheme::St {
            (0..domains)
                .map(|dom| {
                    let header = codec::encode_st_stream_header_opt(
                        dom_tag(domains, dom),
                        validated,
                        validated,
                        compress,
                    );
                    Mutex::new(header.to_vec())
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(Box::new(MemRecordSink {
            files: Arc::clone(&self.files),
            opts,
            streams,
            st,
            plan: Mutex::new(None),
            edges: Mutex::new(Vec::new()),
            checkpoint: Mutex::new(None),
            chunks: AtomicU64::new(0),
        }))
    }
}

struct MemRecordSink {
    files: Arc<Mutex<Option<EncodedBundle>>>,
    opts: RecordOptions,
    /// Flat, domain-major streams.
    streams: Vec<Mutex<Vec<u8>>>,
    st: Vec<Mutex<Vec<u8>>>,
    /// Attached domain plan, persisted at commit.
    plan: Mutex<Option<DomainPlan>>,
    /// Accumulated cross-domain edges, persisted at commit.
    edges: Mutex<Vec<CrossDomainEdge>>,
    /// Attached flight-recorder checkpoint, persisted at commit.
    checkpoint: Mutex<Option<Checkpoint>>,
    /// Chunks appended so far (mirrors StreamFile's counter; commit must
    /// not have to re-decode everything it just encoded).
    chunks: AtomicU64,
}

impl MemRecordSink {
    fn stream_index(&self, dom: u32, tid: u32) -> Result<usize, TraceError> {
        if dom >= self.opts.domains || tid >= self.opts.nthreads {
            return Err(TraceError::Corrupt(format!(
                "no stream for domain {dom} thread {tid}"
            )));
        }
        Ok((dom * self.opts.nthreads + tid) as usize)
    }
}

impl RecordSink for MemRecordSink {
    fn append_thread_chunk(
        &self,
        dom: u32,
        tid: u32,
        values: &[u64],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError> {
        check_columns(self.opts.validated, sites, kinds)?;
        let stream = &self.streams[self.stream_index(dom, tid)?];
        let chunk = codec::encode_thread_chunk_opt(values, sites, kinds, self.opts.compress);
        stream.lock().extend_from_slice(&chunk);
        // ORDERING: diagnostic chunk counter; readers only consume it in
        // the commit report after all appenders are done (joined threads),
        // so no ordering is carried through it.
        self.chunks.fetch_add(1, Ordering::Relaxed);
        Ok(chunk.len() as u64)
    }

    fn append_st_chunk(
        &self,
        dom: u32,
        tids: &[u32],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError> {
        check_columns(self.opts.validated, sites, kinds)?;
        let stream = self
            .st
            .get(dom as usize)
            .ok_or_else(|| TraceError::Corrupt(format!("no st stream for domain {dom}")))?;
        let chunk = codec::encode_st_chunk_opt(tids, sites, kinds, self.opts.compress);
        stream.lock().extend_from_slice(&chunk);
        // ORDERING: diagnostic chunk counter (see `append_thread_chunk`).
        self.chunks.fetch_add(1, Ordering::Relaxed);
        Ok(chunk.len() as u64)
    }

    fn put_plan(&self, plan: &DomainPlan) -> Result<(), TraceError> {
        if plan.domains() != self.opts.domains {
            return Err(TraceError::Corrupt(format!(
                "plan partitions {} domains but the recording has {}",
                plan.domains(),
                self.opts.domains
            )));
        }
        *self.plan.lock() = Some(plan.clone());
        Ok(())
    }

    fn append_edges(&self, edges: &[CrossDomainEdge]) -> Result<(), TraceError> {
        self.edges.lock().extend_from_slice(edges);
        Ok(())
    }

    fn put_checkpoint(&self, checkpoint: &Checkpoint) -> Result<(), TraceError> {
        checkpoint.check(self.opts.domains)?;
        *self.checkpoint.lock() = Some(checkpoint.clone());
        Ok(())
    }

    fn commit(self: Box<Self>, _total_records: u64) -> Result<IoReport, TraceError> {
        let mut report = IoReport::default();
        let threads: Vec<Vec<u8>> = self
            .streams
            .into_iter()
            .map(|s| {
                let b = s.into_inner();
                report.bytes += b.len() as u64;
                report.files += 1;
                b
            })
            .collect();
        let st: Vec<Vec<u8>> = self
            .st
            .into_iter()
            .map(|s| {
                let b = s.into_inner();
                report.bytes += b.len() as u64;
                report.files += 1;
                b
            })
            .collect();
        // ORDERING: read after every appending thread has been joined
        // (commit consumes `self`); the join is the synchronization.
        report.chunks = self.chunks.load(Ordering::Relaxed);
        let plan = self.plan.into_inner().map(|p| {
            let b = codec::encode_plan(&p).to_vec();
            report.bytes += b.len() as u64;
            report.files += 1;
            b
        });
        let edges = {
            let edges = self.edges.into_inner();
            (!edges.is_empty()).then(|| {
                let b = codec::encode_edges(&edges).to_vec();
                report.bytes += b.len() as u64;
                report.files += 1;
                b
            })
        };
        let checkpoint = self.checkpoint.into_inner().map(|cp| {
            let b = codec::encode_checkpoint(&cp).to_vec();
            report.bytes += b.len() as u64;
            report.files += 1;
            b
        });
        *self.files.lock() = Some(EncodedBundle {
            scheme: self.opts.scheme,
            nthreads: self.opts.nthreads,
            domains: self.opts.domains,
            threads,
            st,
            plan,
            edges,
            checkpoint,
        });
        Ok(report)
    }
}

/// One-record-file-per-thread directory store (the paper's layout).
///
/// Layout: `manifest.txt`, `thread_<tid>.rtrc`, and `st.rtrc` for ST
/// bundles — with a `.d<dom>` infix before the extension for multi-domain
/// recordings. Per-thread files are written/read by concurrent worker
/// threads when `parallel_io` is enabled (default), mirroring the
/// parallel-I/O property §IV-C1 credits to DC/DE recording. See the module
/// docs for the crash-safety protocol (`*.tmp` + rename, manifest last).
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
    parallel_io: bool,
}

fn thread_file(dir: &Path, tid: u32, dom: Option<u32>) -> PathBuf {
    match dom {
        Some(dom) => dir.join(format!("thread_{tid}.d{dom}.rtrc")),
        None => dir.join(format!("thread_{tid}.rtrc")),
    }
}

fn st_file(dir: &Path, dom: Option<u32>) -> PathBuf {
    match dom {
        Some(dom) => dir.join(format!("st.d{dom}.rtrc")),
        None => dir.join("st.rtrc"),
    }
}

fn plan_file(dir: &Path) -> PathBuf {
    dir.join("plan.rtrc")
}

fn edges_file(dir: &Path) -> PathBuf {
    dir.join("edges.rtrc")
}

fn checkpoint_file(dir: &Path) -> PathBuf {
    dir.join("checkpoint.rtrc")
}

fn manifest_file(dir: &Path) -> PathBuf {
    dir.join("manifest.txt")
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn remove_if_present(path: &Path) -> Result<(), TraceError> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Write `bytes` to a `*.tmp` sibling, fsync it, and rename it into
/// place, so `path` only ever holds a complete, durable file.
fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<u64, TraceError> {
    let tmp = tmp_sibling(path);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(bytes.len() as u64)
}

/// Fsync the directory so completed renames survive a power loss.
/// Best-effort: some platforms cannot open a directory for syncing.
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

fn read_file(path: &Path) -> Result<Vec<u8>, TraceError> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// A parsed record-file name.
enum RecordFileName {
    /// `thread_<tid>.rtrc` / `thread_<tid>.d<dom>.rtrc`.
    Thread { tid: u32, dom: Option<u32> },
    /// `st.rtrc` / `st.d<dom>.rtrc`.
    St { dom: Option<u32> },
    /// `plan.rtrc` — the domain-plan section of a planned recording.
    Plan,
    /// `edges.rtrc` — the cross-domain happens-before edges.
    Edges,
    /// `checkpoint.rtrc` — the flight-recorder checkpoint of a windowed dump.
    Checkpoint,
}

fn parse_record_name(name: &str) -> Option<RecordFileName> {
    let stem = name.strip_suffix(".rtrc")?;
    if stem == "plan" {
        return Some(RecordFileName::Plan);
    }
    if stem == "edges" {
        return Some(RecordFileName::Edges);
    }
    if stem == "checkpoint" {
        return Some(RecordFileName::Checkpoint);
    }
    let (stem, dom) = match stem.rsplit_once(".d") {
        Some((pre, d)) => match d.parse::<u32>() {
            Ok(d) => (pre, Some(d)),
            Err(_) => (stem, None),
        },
        None => (stem, None),
    };
    if stem == "st" {
        return Some(RecordFileName::St { dom });
    }
    let tid = stem.strip_prefix("thread_")?.parse::<u32>().ok()?;
    Some(RecordFileName::Thread { tid, dom })
}

/// Remove everything a completed save must not leave behind: the manifest
/// first (concurrent readers now see [`TraceError::Empty`] instead of a
/// half-replaced directory), then record files that the new layout —
/// `keep_threads` threads × `keep_domains` domains, ST iff `keep_st` —
/// will not overwrite, and leftover `*.tmp` files from an interrupted
/// earlier save.
fn scrub_before_save(
    dir: &Path,
    keep_threads: u32,
    keep_domains: u32,
    keep_st: bool,
) -> Result<(), TraceError> {
    remove_if_present(&manifest_file(dir))?;
    // Single-domain layouts use domain-less names; multi-domain layouts
    // tag every file. A file survives only if the new save will replace it.
    let keeps = |dom: Option<u32>| match dom {
        None => keep_domains == 1,
        Some(d) => keep_domains > 1 && d < keep_domains,
    };
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = if name.ends_with(".tmp") {
            true
        } else {
            match parse_record_name(name) {
                Some(RecordFileName::St { dom }) => !(keep_st && keeps(dom)),
                Some(RecordFileName::Thread { tid, dom }) => !(tid < keep_threads && keeps(dom)),
                // Plan/edge/checkpoint sections are always rewritten by the
                // save that owns them; a stale one from an earlier run must go.
                Some(RecordFileName::Plan | RecordFileName::Edges | RecordFileName::Checkpoint) => {
                    true
                }
                None => false,
            }
        };
        if stale {
            remove_if_present(&entry.path())?;
        }
    }
    Ok(())
}

impl DirStore {
    /// Store rooted at `dir` (created on first save), parallel I/O enabled.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DirStore {
            dir: dir.into(),
            parallel_io: true,
        }
    }

    /// Toggle parallel per-thread file I/O (serial I/O is the ablation
    /// baseline corresponding to ST's single-file bottleneck).
    #[must_use]
    pub fn with_parallel_io(mut self, parallel: bool) -> Self {
        self.parallel_io = parallel;
        self
    }

    /// Root directory of the store.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        manifest_file(&self.dir)
    }

    #[allow(clippy::fn_params_excessive_bools)]
    fn render_manifest(
        scheme: Scheme,
        nthreads: u32,
        domains: u32,
        records: u64,
        plan_sites: Option<u64>,
        edges: Option<u64>,
        checkpoint: bool,
    ) -> String {
        // `domains` is only written for multi-domain recordings — and
        // `plan`/`edges`/`checkpoint` only for recordings that carry them —
        // so that manifests without the new features stay byte-identical to
        // the earlier formats.
        let mut text = format!(
            "reomp-trace v1\nscheme {}\nthreads {nthreads}\n",
            scheme.name()
        );
        if domains > 1 {
            text.push_str(&format!("domains {domains}\n"));
        }
        if let Some(n) = plan_sites {
            text.push_str(&format!("plan {n}\n"));
        }
        if let Some(n) = edges {
            text.push_str(&format!("edges {n}\n"));
        }
        if checkpoint {
            text.push_str("checkpoint 1\n");
        }
        text.push_str(&format!("records {records}\n"));
        text
    }

    #[allow(clippy::too_many_arguments)]
    fn save_manifest(
        &self,
        scheme: Scheme,
        nthreads: u32,
        domains: u32,
        records: u64,
        plan_sites: Option<u64>,
        edges: Option<u64>,
        checkpoint: bool,
    ) -> Result<u64, TraceError> {
        let text = Self::render_manifest(
            scheme, nthreads, domains, records, plan_sites, edges, checkpoint,
        );
        write_file_atomic(&self.manifest_path(), text.as_bytes())
    }

    fn load_manifest(&self) -> Result<Manifest, TraceError> {
        let bytes = read_file(&self.manifest_path()).map_err(|e| match e {
            TraceError::Io(ref io) if io.kind() == std::io::ErrorKind::NotFound => {
                TraceError::Empty
            }
            other => other,
        })?;
        let text = String::from_utf8(bytes)
            .map_err(|_| TraceError::Corrupt("manifest is not UTF-8".into()))?;
        let mut scheme = None;
        let mut threads = None;
        let mut domains = None;
        let mut records = None;
        let mut plan_sites = None;
        let mut edges = None;
        let mut checkpoint = false;
        for (i, line) in text.lines().enumerate() {
            if i == 0 {
                if line != "reomp-trace v1" {
                    return Err(TraceError::Corrupt(format!("manifest header: {line:?}")));
                }
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("scheme"), Some(s)) => {
                    scheme = Scheme::parse(s);
                    if scheme.is_none() {
                        return Err(TraceError::Corrupt(format!("bad scheme {s:?}")));
                    }
                }
                (Some("threads"), Some(n)) => {
                    threads = n.parse::<u32>().ok();
                    if threads.is_none() {
                        return Err(TraceError::Corrupt(format!("bad thread count {n:?}")));
                    }
                }
                (Some("domains"), Some(n)) => {
                    domains = n.parse::<u32>().ok().filter(|&d| d > 0);
                    if domains.is_none() {
                        return Err(TraceError::Corrupt(format!("bad domain count {n:?}")));
                    }
                }
                (Some("plan"), Some(n)) => {
                    plan_sites = n.parse::<u64>().ok();
                    if plan_sites.is_none() {
                        return Err(TraceError::Corrupt(format!("bad plan site count {n:?}")));
                    }
                }
                (Some("edges"), Some(n)) => {
                    edges = n.parse::<u64>().ok();
                    if edges.is_none() {
                        return Err(TraceError::Corrupt(format!("bad edge count {n:?}")));
                    }
                }
                (Some("checkpoint"), Some(n)) => {
                    if n != "1" {
                        return Err(TraceError::Corrupt(format!("bad checkpoint flag {n:?}")));
                    }
                    checkpoint = true;
                }
                (Some("records"), Some(n)) => {
                    records = n.parse::<u64>().ok();
                    if records.is_none() {
                        return Err(TraceError::Corrupt(format!("bad record count {n:?}")));
                    }
                }
                (Some("records"), None) | (None, _) => {}
                (Some(k), _) => {
                    return Err(TraceError::Corrupt(format!("unknown manifest key {k:?}")))
                }
            }
        }
        match (scheme, threads) {
            (Some(s), Some(t)) => Ok(Manifest {
                scheme: s,
                nthreads: t,
                domains: domains.unwrap_or(1),
                records,
                plan_sites,
                edges,
                checkpoint,
            }),
            _ => Err(TraceError::Corrupt(
                "manifest missing scheme/threads".into(),
            )),
        }
    }
}

/// Parsed `manifest.txt` contents.
struct Manifest {
    scheme: Scheme,
    nthreads: u32,
    domains: u32,
    records: Option<u64>,
    /// Explicit site count of the stamped plan (`None`: no plan section —
    /// the recording partitioned with the legacy modulo).
    plan_sites: Option<u64>,
    /// Cross-domain edge count (`None`: no edge section).
    edges: Option<u64>,
    /// Whether the bundle carries a flight-recorder checkpoint section.
    checkpoint: bool,
}

impl TraceStore for DirStore {
    fn save(&self, bundle: &TraceBundle) -> Result<IoReport, TraceError> {
        // An inconsistent bundle must fail here, not clobber other
        // threads' files (the flat index is interpreted modulo nthreads).
        bundle.validate()?;
        fs::create_dir_all(&self.dir)?;
        // Invalidate the directory before touching record files; rebuild,
        // then publish the manifest last (see module docs).
        scrub_before_save(&self.dir, bundle.nthreads, bundle.domains, bundle.is_st())?;
        let mut report = IoReport::default();

        let encode_one = |i: usize, t: &ThreadTrace| -> (PathBuf, bytes::Bytes) {
            let (dom, tid) = split_stream_index(i, bundle.nthreads);
            let tag = dom_tag(bundle.domains, dom);
            let path = thread_file(&self.dir, tid, tag);
            (
                path,
                codec::encode_thread_trace_opt(t, bundle.scheme, tid, tag),
            )
        };

        if self.parallel_io {
            // One writer per stream — the per-thread parallel I/O the
            // paper credits to DC/DE recording (§IV-C1).
            let results: Vec<Result<u64, TraceError>> = std::thread::scope(|s| {
                let handles: Vec<_> = bundle
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let encode_one = &encode_one;
                        s.spawn(move || {
                            let (path, bytes) = encode_one(i, t);
                            write_file_atomic(&path, &bytes)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trace writer panicked"))
                    .collect()
            });
            for r in results {
                report.bytes += r?;
                report.files += 1;
            }
        } else {
            for (i, t) in bundle.threads.iter().enumerate() {
                let (path, bytes) = encode_one(i, t);
                report.bytes += write_file_atomic(&path, &bytes)?;
                report.files += 1;
            }
        }

        for (dom, st) in bundle.st.iter().enumerate() {
            let tag = dom_tag(bundle.domains, dom as u32);
            let bytes = codec::encode_st_trace_opt(st, tag);
            report.bytes += write_file_atomic(&st_file(&self.dir, tag), &bytes)?;
            report.files += 1;
        }

        if let Some(plan) = &bundle.plan {
            let bytes = codec::encode_plan(plan);
            report.bytes += write_file_atomic(&plan_file(&self.dir), &bytes)?;
            report.files += 1;
        }
        if !bundle.edges.is_empty() {
            let bytes = codec::encode_edges(&bundle.edges);
            report.bytes += write_file_atomic(&edges_file(&self.dir), &bytes)?;
            report.files += 1;
        }
        if let Some(cp) = &bundle.checkpoint {
            let bytes = codec::encode_checkpoint(cp);
            report.bytes += write_file_atomic(&checkpoint_file(&self.dir), &bytes)?;
            report.files += 1;
        }

        report.bytes += self.save_manifest(
            bundle.scheme,
            bundle.nthreads,
            bundle.domains,
            bundle.total_records(),
            bundle.plan.as_ref().map(|p| p.assigned() as u64),
            (!bundle.edges.is_empty()).then_some(bundle.edges.len() as u64),
            bundle.checkpoint.is_some(),
        )?;
        report.files += 1;
        sync_dir(&self.dir);
        Ok(report)
    }

    fn load(&self) -> Result<(TraceBundle, IoReport), TraceError> {
        let Manifest {
            scheme,
            nthreads,
            domains,
            records,
            plan_sites,
            edges: edge_count,
            checkpoint: has_checkpoint,
        } = self.load_manifest()?;
        let mut report = IoReport {
            files: 1,
            ..IoReport::default()
        };

        let load_one = |dom: u32, tid: u32| -> Result<(ThreadTrace, u64, u64), TraceError> {
            let tag = dom_tag(domains, dom);
            let bytes = read_file(&thread_file(&self.dir, tid, tag))?;
            let n = bytes.len() as u64;
            let decoded = codec::decode_thread_records(&bytes)?;
            if decoded.scheme != scheme || decoded.tid != tid || decoded.domain != tag {
                return Err(TraceError::Corrupt(format!(
                    "thread file {tid} (domain {dom}): header says scheme {} tid {} domain {:?}",
                    decoded.scheme.name(),
                    decoded.tid,
                    decoded.domain
                )));
            }
            Ok((decoded.trace, n, decoded.chunks))
        };

        let streams: Vec<(u32, u32)> = (0..domains)
            .flat_map(|dom| (0..nthreads).map(move |tid| (dom, tid)))
            .collect();
        let mut threads = Vec::with_capacity(streams.len());
        if self.parallel_io {
            let results: Vec<Result<(ThreadTrace, u64, u64), TraceError>> =
                std::thread::scope(|s| {
                    let handles: Vec<_> = streams
                        .iter()
                        .map(|&(dom, tid)| s.spawn(move || load_one(dom, tid)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("trace reader panicked"))
                        .collect()
                });
            for r in results {
                let (t, n, c) = r?;
                report.bytes += n;
                report.files += 1;
                report.chunks += c;
                threads.push(t);
            }
        } else {
            for &(dom, tid) in &streams {
                let (t, n, c) = load_one(dom, tid)?;
                report.bytes += n;
                report.files += 1;
                report.chunks += c;
                threads.push(t);
            }
        }

        let mut st = Vec::new();
        if scheme == Scheme::St {
            for dom in 0..domains {
                let tag = dom_tag(domains, dom);
                let bytes = read_file(&st_file(&self.dir, tag))?;
                report.bytes += bytes.len() as u64;
                report.files += 1;
                let decoded = codec::decode_st_records(&bytes)?;
                if decoded.domain != tag {
                    return Err(TraceError::Corrupt(format!(
                        "st stream (domain {dom}): header says domain {:?}",
                        decoded.domain
                    )));
                }
                report.chunks += decoded.chunks;
                st.push(decoded.trace);
            }
        }

        // Plan and edge sections, cross-checked against the manifest's
        // counts the same way record files are.
        let plan = match plan_sites {
            Some(expected) => {
                let bytes = read_file(&plan_file(&self.dir))?;
                report.bytes += bytes.len() as u64;
                report.files += 1;
                let plan = codec::decode_plan(&bytes)?;
                if plan.assigned() as u64 != expected {
                    return Err(TraceError::Corrupt(format!(
                        "manifest promises {expected} planned sites but the plan holds {}",
                        plan.assigned()
                    )));
                }
                Some(plan)
            }
            None => None,
        };
        let edges = match edge_count {
            Some(expected) => {
                let bytes = read_file(&edges_file(&self.dir))?;
                report.bytes += bytes.len() as u64;
                report.files += 1;
                let edges = codec::decode_edges(&bytes)?;
                if edges.len() as u64 != expected {
                    return Err(TraceError::Corrupt(format!(
                        "manifest promises {expected} edges but the section holds {}",
                        edges.len()
                    )));
                }
                edges
            }
            None => Vec::new(),
        };
        let checkpoint = if has_checkpoint {
            let bytes = read_file(&checkpoint_file(&self.dir))?;
            report.bytes += bytes.len() as u64;
            report.files += 1;
            Some(codec::decode_checkpoint(&bytes)?)
        } else {
            None
        };

        let bundle = TraceBundle {
            scheme,
            nthreads,
            domains,
            threads,
            st,
            plan,
            edges,
            checkpoint,
        };
        bundle.validate()?;
        // Cross-check the manifest's record count: a chunked file truncated
        // exactly on a chunk boundary decodes cleanly, and this is what
        // catches the missing tail.
        if let Some(expected) = records {
            let got = bundle.total_records();
            if got != expected {
                return Err(TraceError::Corrupt(format!(
                    "manifest promises {expected} records but the files hold {got}"
                )));
            }
        }
        Ok((bundle, report))
    }
}

impl StreamingTraceStore for DirStore {
    fn begin_record(&self, opts: RecordOptions) -> Result<Box<dyn RecordSink>, TraceError> {
        opts.check()?;
        let RecordOptions {
            scheme,
            nthreads,
            domains,
            validated,
            compress,
        } = opts;
        fs::create_dir_all(&self.dir)?;
        scrub_before_save(&self.dir, nthreads, domains, scheme == Scheme::St)?;
        let mut threads = Vec::with_capacity(domains as usize * nthreads as usize);
        for dom in 0..domains {
            for tid in 0..nthreads {
                let tag = dom_tag(domains, dom);
                let header = codec::encode_thread_stream_header_opt(
                    scheme, tid, tag, validated, validated, compress,
                );
                threads.push(Mutex::new(StreamFile::create(
                    &thread_file(&self.dir, tid, tag),
                    &header,
                )?));
            }
        }
        let st = if scheme == Scheme::St {
            let mut st = Vec::with_capacity(domains as usize);
            for dom in 0..domains {
                let tag = dom_tag(domains, dom);
                let header =
                    codec::encode_st_stream_header_opt(tag, validated, validated, compress);
                st.push(Mutex::new(StreamFile::create(
                    &st_file(&self.dir, tag),
                    &header,
                )?));
            }
            st
        } else {
            Vec::new()
        };
        Ok(Box::new(DirRecordSink {
            dir: self.dir.clone(),
            opts,
            threads,
            st,
            plan: Mutex::new(None),
            edges: Mutex::new(Vec::new()),
            checkpoint: Mutex::new(None),
            committed: AtomicBool::new(false),
        }))
    }

    fn save_chunked_opt(
        &self,
        bundle: &TraceBundle,
        records_per_chunk: usize,
        compress: bool,
    ) -> Result<IoReport, TraceError> {
        bundle.validate()?;
        let sink = self.begin_record(
            RecordOptions::new(
                bundle.scheme,
                bundle.nthreads,
                bundle.domains,
                bundle.has_validation(),
            )
            .with_compression(compress),
        )?;
        if self.parallel_io {
            // Same per-thread I/O parallelism as the one-shot save: every
            // stream has its own lock, so appenders do not contend.
            let results: Vec<Result<u64, TraceError>> = std::thread::scope(|s| {
                let sink = &*sink;
                let handles: Vec<_> = bundle
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let (dom, tid) = split_stream_index(i, bundle.nthreads);
                        s.spawn(move || stream_thread_trace(sink, dom, tid, t, records_per_chunk))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chunk writer panicked"))
                    .collect()
            });
            for r in results {
                r?;
            }
        } else {
            for (i, t) in bundle.threads.iter().enumerate() {
                let (dom, tid) = split_stream_index(i, bundle.nthreads);
                stream_thread_trace(&*sink, dom, tid, t, records_per_chunk)?;
            }
        }
        for (dom, st) in bundle.st.iter().enumerate() {
            stream_st_trace(&*sink, dom as u32, st, records_per_chunk)?;
        }
        if let Some(plan) = &bundle.plan {
            sink.put_plan(plan)?;
        }
        if !bundle.edges.is_empty() {
            sink.append_edges(&bundle.edges)?;
        }
        if let Some(cp) = &bundle.checkpoint {
            sink.put_checkpoint(cp)?;
        }
        sink.commit(bundle.total_records())
    }
}

/// One open chunked stream: writes go to the `*.tmp` sibling of `path`
/// until the sink commits and renames it into place.
struct StreamFile {
    path: PathBuf,
    writer: Option<std::io::BufWriter<fs::File>>,
    bytes: u64,
    chunks: u64,
}

impl StreamFile {
    fn create(path: &Path, header: &[u8]) -> Result<StreamFile, TraceError> {
        let tmp = tmp_sibling(path);
        let mut writer = std::io::BufWriter::new(fs::File::create(&tmp)?);
        writer.write_all(header)?;
        Ok(StreamFile {
            path: path.to_path_buf(),
            writer: Some(writer),
            bytes: header.len() as u64,
            chunks: 0,
        })
    }

    fn append(&mut self, chunk: &[u8]) -> Result<u64, TraceError> {
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| TraceError::Corrupt("stream already closed".into()))?;
        writer.write_all(chunk)?;
        self.bytes += chunk.len() as u64;
        self.chunks += 1;
        Ok(chunk.len() as u64)
    }

    /// Flush, fsync, and close the temp file, then rename it to its final
    /// name.
    fn publish(&mut self) -> Result<(), TraceError> {
        let mut writer = self
            .writer
            .take()
            .ok_or_else(|| TraceError::Corrupt("stream already closed".into()))?;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        drop(writer);
        fs::rename(tmp_sibling(&self.path), &self.path)?;
        Ok(())
    }
}

struct DirRecordSink {
    dir: PathBuf,
    opts: RecordOptions,
    /// Flat, domain-major streams.
    threads: Vec<Mutex<StreamFile>>,
    /// Per-domain ST streams (empty for non-ST).
    st: Vec<Mutex<StreamFile>>,
    /// Attached domain plan, written (atomically) at commit.
    plan: Mutex<Option<DomainPlan>>,
    /// Accumulated cross-domain edges, written at commit.
    edges: Mutex<Vec<CrossDomainEdge>>,
    /// Attached flight-recorder checkpoint, written (atomically) at commit.
    checkpoint: Mutex<Option<Checkpoint>>,
    committed: AtomicBool,
}

impl RecordSink for DirRecordSink {
    fn append_thread_chunk(
        &self,
        dom: u32,
        tid: u32,
        values: &[u64],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError> {
        check_columns(self.opts.validated, sites, kinds)?;
        if dom >= self.opts.domains || tid >= self.opts.nthreads {
            return Err(TraceError::Corrupt(format!(
                "no stream for domain {dom} thread {tid}"
            )));
        }
        let stream = &self.threads[(dom * self.opts.nthreads + tid) as usize];
        let chunk = codec::encode_thread_chunk_opt(values, sites, kinds, self.opts.compress);
        stream.lock().append(&chunk)
    }

    fn append_st_chunk(
        &self,
        dom: u32,
        tids: &[u32],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError> {
        check_columns(self.opts.validated, sites, kinds)?;
        let stream = self
            .st
            .get(dom as usize)
            .ok_or_else(|| TraceError::Corrupt(format!("no st stream for domain {dom}")))?;
        let chunk = codec::encode_st_chunk_opt(tids, sites, kinds, self.opts.compress);
        stream.lock().append(&chunk)
    }

    fn put_plan(&self, plan: &DomainPlan) -> Result<(), TraceError> {
        if plan.domains() != self.opts.domains {
            return Err(TraceError::Corrupt(format!(
                "plan partitions {} domains but the recording has {}",
                plan.domains(),
                self.opts.domains
            )));
        }
        *self.plan.lock() = Some(plan.clone());
        Ok(())
    }

    fn append_edges(&self, edges: &[CrossDomainEdge]) -> Result<(), TraceError> {
        self.edges.lock().extend_from_slice(edges);
        Ok(())
    }

    fn put_checkpoint(&self, checkpoint: &Checkpoint) -> Result<(), TraceError> {
        checkpoint.check(self.opts.domains)?;
        *self.checkpoint.lock() = Some(checkpoint.clone());
        Ok(())
    }

    fn commit(self: Box<Self>, total_records: u64) -> Result<IoReport, TraceError> {
        let mut report = IoReport::default();
        for stream in self.threads.iter().chain(self.st.iter()) {
            let mut s = stream.lock();
            s.publish()?;
            report.bytes += s.bytes;
            report.chunks += s.chunks;
            report.files += 1;
        }
        let plan = self.plan.lock().take();
        let plan_sites = match &plan {
            Some(plan) => {
                let bytes = codec::encode_plan(plan);
                report.bytes += write_file_atomic(&plan_file(&self.dir), &bytes)?;
                report.files += 1;
                Some(plan.assigned() as u64)
            }
            None => None,
        };
        let edges = std::mem::take(&mut *self.edges.lock());
        let edge_count = if edges.is_empty() {
            None
        } else {
            let bytes = codec::encode_edges(&edges);
            report.bytes += write_file_atomic(&edges_file(&self.dir), &bytes)?;
            report.files += 1;
            Some(edges.len() as u64)
        };
        let checkpoint = self.checkpoint.lock().take();
        let has_checkpoint = match &checkpoint {
            Some(cp) => {
                let bytes = codec::encode_checkpoint(cp);
                report.bytes += write_file_atomic(&checkpoint_file(&self.dir), &bytes)?;
                report.files += 1;
                true
            }
            None => false,
        };
        // Manifest last: only now does the directory become loadable.
        let text = DirStore::render_manifest(
            self.opts.scheme,
            self.opts.nthreads,
            self.opts.domains,
            total_records,
            plan_sites,
            edge_count,
            has_checkpoint,
        );
        report.bytes += write_file_atomic(&manifest_file(&self.dir), text.as_bytes())?;
        report.files += 1;
        sync_dir(&self.dir);
        self.committed.store(true, Ordering::Release);
        Ok(report)
    }
}

impl Drop for DirRecordSink {
    fn drop(&mut self) {
        if self.committed.load(Ordering::Acquire) {
            return;
        }
        // Aborted recording: sweep the temp files so only committed data
        // remains on disk (the directory has no manifest, so it already
        // reads as Empty).
        for stream in self.threads.iter().chain(self.st.iter()) {
            let mut s = stream.lock();
            s.writer = None;
            let _ = fs::remove_file(tmp_sibling(&s.path));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle(scheme: Scheme) -> TraceBundle {
        let threads = vec![
            ThreadTrace {
                values: vec![0, 2, 5],
                sites: Some(vec![10, 11, 10]),
                kinds: Some(vec![0, 1, 0]),
            },
            ThreadTrace {
                values: vec![1, 3, 4],
                sites: Some(vec![10, 10, 11]),
                kinds: Some(vec![0, 0, 1]),
            },
        ];
        let st = if scheme == Scheme::St {
            vec![StTrace {
                tids: vec![0, 1, 0, 1, 1, 0],
                sites: Some(vec![10; 6]),
                kinds: Some(vec![3; 6]),
            }]
        } else {
            vec![]
        };
        // ST bundles keep empty per-thread traces; like session-assembled
        // bundles, their validation columns are present-but-empty.
        let threads = if scheme == Scheme::St {
            let empty = ThreadTrace {
                values: vec![],
                sites: Some(vec![]),
                kinds: Some(vec![]),
            };
            vec![empty.clone(), empty]
        } else {
            threads
        };
        TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme,
            nthreads: 2,
            domains: 1,
            threads,
            st,
        }
    }

    /// A 2-thread × 2-domain bundle for every scheme.
    fn sample_multi_domain(scheme: Scheme) -> TraceBundle {
        let mk = |values: Vec<u64>| ThreadTrace {
            sites: Some(vec![10; values.len()]),
            kinds: Some(vec![0; values.len()]),
            values,
        };
        if scheme == Scheme::St {
            let empty = ThreadTrace {
                values: vec![],
                sites: Some(vec![]),
                kinds: Some(vec![]),
            };
            TraceBundle {
                plan: None,
                edges: vec![],
                checkpoint: None,
                scheme,
                nthreads: 2,
                domains: 2,
                threads: vec![empty.clone(), empty.clone(), empty.clone(), empty],
                st: vec![
                    StTrace {
                        tids: vec![0, 1, 0],
                        sites: Some(vec![10; 3]),
                        kinds: Some(vec![3; 3]),
                    },
                    StTrace {
                        tids: vec![1, 1],
                        sites: Some(vec![11; 2]),
                        kinds: Some(vec![3; 2]),
                    },
                ],
            }
        } else {
            TraceBundle {
                plan: None,
                edges: vec![],
                checkpoint: None,
                scheme,
                nthreads: 2,
                domains: 2,
                threads: vec![mk(vec![0, 2]), mk(vec![1]), mk(vec![1, 2]), mk(vec![0])],
                st: vec![],
            }
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "reomp-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memstore_roundtrip_all_schemes() {
        for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
            let store = MemStore::new();
            let bundle = sample_bundle(scheme);
            let saved = store.save(&bundle).unwrap();
            assert!(saved.bytes > 0);
            let (back, loaded) = store.load().unwrap();
            assert_eq!(back, bundle, "{scheme:?}");
            assert_eq!(loaded.bytes, saved.bytes);
            assert_eq!(loaded.chunks, 0, "one-shot layout has no chunks");
        }
    }

    #[test]
    fn memstore_multi_domain_roundtrip() {
        for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
            let store = MemStore::new();
            let bundle = sample_multi_domain(scheme);
            bundle.validate().unwrap();
            store.save(&bundle).unwrap();
            let (back, _) = store.load().unwrap();
            assert_eq!(back, bundle, "{scheme:?}");
            // And the chunked path too.
            let report = store.save_chunked(&bundle, 2).unwrap();
            assert!(report.chunks > 0, "{scheme:?}");
            let (back, _) = store.load().unwrap();
            assert_eq!(back, bundle, "{scheme:?} chunked");
        }
    }

    #[test]
    fn memstore_empty_load_fails() {
        assert!(matches!(MemStore::new().load(), Err(TraceError::Empty)));
    }

    #[test]
    fn save_rejects_inconsistent_bundles() {
        // A bundle whose thread count lies about its stream vector must be
        // rejected up front: the flat stream index is interpreted modulo
        // nthreads, so writing it out would silently clobber another
        // thread's file instead of leaving an orphan.
        let mut bad = sample_bundle(Scheme::Dc);
        bad.threads.push(ThreadTrace {
            values: vec![6],
            sites: Some(vec![1]),
            kinds: Some(vec![0]),
        });
        assert!(MemStore::new().save(&bad).is_err());
        let dir = tempdir("badsave");
        assert!(DirStore::new(&dir).save(&bad).is_err());
        assert!(
            !dir.join("manifest.txt").exists(),
            "nothing may be published for a rejected bundle"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memstore_streaming_roundtrip() {
        for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
            let store = MemStore::new();
            let bundle = sample_bundle(scheme);
            let report = store.save_chunked(&bundle, 2).unwrap();
            assert!(report.chunks > 0, "{scheme:?}");
            let (back, loaded) = store.load().unwrap();
            assert_eq!(back, bundle, "{scheme:?}");
            assert_eq!(loaded.chunks, report.chunks);
        }
    }

    #[test]
    fn dirstore_roundtrip_parallel_and_serial() {
        for parallel in [true, false] {
            for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
                let dir = tempdir(&format!("rt-{parallel}-{}", scheme.name()));
                let store = DirStore::new(&dir).with_parallel_io(parallel);
                let bundle = sample_bundle(scheme);
                store.save(&bundle).unwrap();
                let (back, _) = store.load().unwrap();
                assert_eq!(back, bundle);
                // Per-thread layout on disk, no temp leftovers.
                assert!(dir.join("thread_0.rtrc").exists());
                assert!(dir.join("thread_1.rtrc").exists());
                assert_eq!(dir.join("st.rtrc").exists(), scheme == Scheme::St);
                assert!(fs::read_dir(&dir).unwrap().all(|e| !e
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")));
                fs::remove_dir_all(&dir).unwrap();
            }
        }
    }

    #[test]
    fn dirstore_multi_domain_layout_and_roundtrip() {
        for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
            let dir = tempdir(&format!("md-{}", scheme.name()));
            let store = DirStore::new(&dir);
            let bundle = sample_multi_domain(scheme);
            store.save(&bundle).unwrap();
            // Domain-tagged files on disk, no legacy names.
            assert!(dir.join("thread_0.d0.rtrc").exists());
            assert!(dir.join("thread_1.d1.rtrc").exists());
            assert!(!dir.join("thread_0.rtrc").exists());
            assert_eq!(dir.join("st.d0.rtrc").exists(), scheme == Scheme::St);
            assert_eq!(dir.join("st.d1.rtrc").exists(), scheme == Scheme::St);
            let manifest = fs::read_to_string(dir.join("manifest.txt")).unwrap();
            assert!(manifest.contains("domains 2"), "{manifest}");
            let (back, _) = store.load().unwrap();
            assert_eq!(back, bundle, "{scheme:?}");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn dirstore_multi_domain_chunked_roundtrip() {
        for parallel in [true, false] {
            for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
                let dir = tempdir(&format!("mdc-{parallel}-{}", scheme.name()));
                let store = DirStore::new(&dir).with_parallel_io(parallel);
                let bundle = sample_multi_domain(scheme);
                let report = store.save_chunked(&bundle, 1).unwrap();
                assert!(report.chunks > 0);
                let (back, _) = store.load().unwrap();
                assert_eq!(back, bundle, "{scheme:?}");
                fs::remove_dir_all(&dir).unwrap();
            }
        }
    }

    /// A planned multi-domain bundle with cross-domain edges.
    fn sample_planned(scheme: Scheme) -> TraceBundle {
        let mut bundle = sample_multi_domain(scheme);
        bundle.plan = Some(DomainPlan::with_assignments(
            2,
            [(crate::site::SiteId(10), 0), (crate::site::SiteId(11), 1)],
        ));
        bundle.edges = vec![CrossDomainEdge {
            domain: 1,
            thread: if scheme == Scheme::St { 1 } else { 0 },
            seq: 0,
            waits: vec![(0, 2)],
        }];
        bundle.validate().unwrap();
        bundle
    }

    #[test]
    fn plan_and_edges_roundtrip_on_disk() {
        for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
            let dir = tempdir(&format!("plan-{}", scheme.name()));
            let store = DirStore::new(&dir);
            let bundle = sample_planned(scheme);
            store.save(&bundle).unwrap();
            assert!(dir.join("plan.rtrc").exists());
            assert!(dir.join("edges.rtrc").exists());
            let manifest = fs::read_to_string(dir.join("manifest.txt")).unwrap();
            assert!(manifest.contains("plan 2"), "{manifest}");
            assert!(manifest.contains("edges 1"), "{manifest}");
            let (back, _) = store.load().unwrap();
            assert_eq!(back, bundle, "{scheme:?}");
            // The chunked (streaming) path persists them too.
            let report = store.save_chunked(&bundle, 1).unwrap();
            assert!(report.chunks > 0);
            let (back, _) = store.load().unwrap();
            assert_eq!(back, bundle, "{scheme:?} chunked");
            // MemStore agrees.
            let mem = MemStore::new();
            mem.save(&bundle).unwrap();
            assert_eq!(mem.load().unwrap().0, bundle, "{scheme:?} mem");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn planless_multi_domain_layout_matches_pr3_format() {
        // A multi-domain bundle with no plan and no edges must produce
        // exactly the PR 3 directory: no plan/edges files, no new manifest
        // lines — and such directories load with `plan: None` (the legacy
        // modulo partition) and no edges.
        let dir = tempdir("pr3compat");
        let store = DirStore::new(&dir);
        let bundle = sample_multi_domain(Scheme::Dc);
        assert!(bundle.plan.is_none() && bundle.edges.is_empty());
        store.save(&bundle).unwrap();
        assert!(!dir.join("plan.rtrc").exists());
        assert!(!dir.join("edges.rtrc").exists());
        let manifest = fs::read_to_string(dir.join("manifest.txt")).unwrap();
        assert_eq!(
            manifest,
            "reomp-trace v1\nscheme dc\nthreads 2\ndomains 2\nrecords 6\n"
        );
        let (back, _) = store.load().unwrap();
        assert_eq!(back.plan, None);
        assert!(back.edges.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_plan_and_edges_scrubbed_on_reuse() {
        let dir = tempdir("planscrub");
        let store = DirStore::new(&dir);
        store.save(&sample_planned(Scheme::Dc)).unwrap();
        assert!(dir.join("plan.rtrc").exists());
        // Re-save a plan-less single-domain bundle into the same dir: the
        // stale plan/edges sections must not survive to pair with it.
        store.save(&sample_bundle(Scheme::Dc)).unwrap();
        assert!(!dir.join("plan.rtrc").exists());
        assert!(!dir.join("edges.rtrc").exists());
        let (back, _) = store.load().unwrap();
        assert_eq!(back.plan, None);
        assert!(back.edges.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_plan_count_cross_checked() {
        let dir = tempdir("planxcheck");
        let store = DirStore::new(&dir);
        store.save(&sample_planned(Scheme::Dc)).unwrap();
        // Corrupt the plan file (drop an entry) without touching the
        // manifest: the load must notice the count mismatch.
        let plan = DomainPlan::with_assignments(2, [(crate::site::SiteId(10), 0)]);
        fs::write(dir.join("plan.rtrc"), codec::encode_plan(&plan)).unwrap();
        assert!(matches!(store.load(), Err(TraceError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_domain_save_is_byte_identical_to_legacy_layout() {
        // The D = 1 on-disk format must not change: domain-less file
        // names, no FLAG_DOMAINS headers, no `domains` manifest line.
        let dir = tempdir("legacy");
        let store = DirStore::new(&dir);
        let bundle = sample_bundle(Scheme::Dc);
        store.save(&bundle).unwrap();
        let manifest = fs::read_to_string(dir.join("manifest.txt")).unwrap();
        assert_eq!(
            manifest,
            "reomp-trace v1\nscheme dc\nthreads 2\nrecords 6\n"
        );
        for tid in 0..2u32 {
            let on_disk = fs::read(dir.join(format!("thread_{tid}.rtrc"))).unwrap();
            let expect = codec::encode_thread_trace(&bundle.threads[tid as usize], Scheme::Dc, tid);
            assert_eq!(on_disk, expect.to_vec(), "thread {tid} bytes");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_directory_without_domains_line_loads_as_one_domain() {
        // Simulate a pre-domain trace directory written by an old version:
        // legacy file names + a manifest without the domains key.
        let dir = tempdir("olddir");
        fs::create_dir_all(&dir).unwrap();
        let bundle = sample_bundle(Scheme::De);
        for (tid, t) in bundle.threads.iter().enumerate() {
            let bytes = codec::encode_thread_trace(t, Scheme::De, tid as u32);
            fs::write(dir.join(format!("thread_{tid}.rtrc")), &bytes).unwrap();
        }
        fs::write(
            dir.join("manifest.txt"),
            "reomp-trace v1\nscheme de\nthreads 2\nrecords 6\n",
        )
        .unwrap();
        let (back, _) = DirStore::new(&dir).load().unwrap();
        assert_eq!(back.domains, 1);
        assert_eq!(back, bundle);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirstore_missing_dir_is_empty() {
        let store = DirStore::new(tempdir("missing"));
        assert!(matches!(store.load(), Err(TraceError::Empty)));
    }

    #[test]
    fn dirstore_detects_header_mismatch() {
        let dir = tempdir("swap");
        let store = DirStore::new(&dir);
        store.save(&sample_bundle(Scheme::Dc)).unwrap();
        // Swap the two thread files: tids in headers no longer match names.
        let a = dir.join("thread_0.rtrc");
        let b = dir.join("thread_1.rtrc");
        let tmp = dir.join("tmp");
        fs::rename(&a, &tmp).unwrap();
        fs::rename(&b, &a).unwrap();
        fs::rename(&tmp, &b).unwrap();
        assert!(store.load().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirstore_detects_domain_header_mismatch() {
        let dir = tempdir("domswap");
        let store = DirStore::new(&dir);
        store.save(&sample_multi_domain(Scheme::Dc)).unwrap();
        // Swap thread 0's two domain files: headers no longer match names.
        let a = dir.join("thread_0.d0.rtrc");
        let b = dir.join("thread_0.d1.rtrc");
        let tmp = dir.join("tmp");
        fs::rename(&a, &tmp).unwrap();
        fs::rename(&b, &a).unwrap();
        fs::rename(&tmp, &b).unwrap();
        let err = store.load().unwrap_err();
        assert!(err.to_string().contains("domain"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirstore_rejects_corrupt_manifest() {
        let dir = tempdir("manifest");
        let store = DirStore::new(&dir);
        store.save(&sample_bundle(Scheme::De)).unwrap();
        fs::write(dir.join("manifest.txt"), "something else\n").unwrap();
        assert!(store.load().is_err());
        fs::write(
            dir.join("manifest.txt"),
            "reomp-trace v1\nscheme xx\nthreads 2\n",
        )
        .unwrap();
        assert!(store.load().is_err());
        fs::write(
            dir.join("manifest.txt"),
            "reomp-trace v1\nscheme de\nthreads 2\ndomains 0\n",
        )
        .unwrap();
        assert!(store.load().is_err(), "zero domains is corrupt");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_overwrites_previous_contents() {
        let dir = tempdir("overwrite");
        let store = DirStore::new(&dir);
        store.save(&sample_bundle(Scheme::Dc)).unwrap();
        let second = sample_bundle(Scheme::De);
        store.save(&second).unwrap();
        let (back, _) = store.load().unwrap();
        assert_eq!(back.scheme, Scheme::De);
        assert_eq!(back, second);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_scrubs_stale_thread_and_st_files() {
        let dir = tempdir("scrub");
        let store = DirStore::new(&dir);

        // First run: 4 threads.
        let wide = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 4,
            domains: 1,
            threads: (0..4u64)
                .map(|t| ThreadTrace {
                    values: vec![t],
                    sites: None,
                    kinds: None,
                })
                .collect(),
            st: vec![],
        };
        store.save(&wide).unwrap();
        assert!(dir.join("thread_3.rtrc").exists());

        // Second run reuses the directory with 2 threads and an ST stream.
        store.save(&sample_bundle(Scheme::St)).unwrap();
        assert!(!dir.join("thread_2.rtrc").exists(), "stale file removed");
        assert!(!dir.join("thread_3.rtrc").exists(), "stale file removed");
        assert!(dir.join("st.rtrc").exists());

        // Third run has no ST stream: st.rtrc must go away.
        store.save(&sample_bundle(Scheme::De)).unwrap();
        assert!(!dir.join("st.rtrc").exists(), "stale st stream removed");
        let (back, _) = store.load().unwrap();
        assert_eq!(back, sample_bundle(Scheme::De));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_scrubs_stale_domain_files_across_layout_changes() {
        let dir = tempdir("domscrub");
        let store = DirStore::new(&dir);

        // Multi-domain run first.
        store.save(&sample_multi_domain(Scheme::Dc)).unwrap();
        assert!(dir.join("thread_0.d1.rtrc").exists());

        // Single-domain run reusing the directory: every domain-tagged
        // file must be scrubbed, otherwise a later multi-domain load could
        // mix runs.
        store.save(&sample_bundle(Scheme::Dc)).unwrap();
        assert!(!dir.join("thread_0.d0.rtrc").exists(), "stale domain file");
        assert!(!dir.join("thread_0.d1.rtrc").exists(), "stale domain file");
        assert!(dir.join("thread_0.rtrc").exists());
        store.load().unwrap();

        // And back to multi-domain: legacy names must be scrubbed.
        store.save(&sample_multi_domain(Scheme::St)).unwrap();
        assert!(!dir.join("thread_0.rtrc").exists(), "stale legacy file");
        assert!(dir.join("st.d1.rtrc").exists());
        store.load().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_scrubs_leftover_tmp_files() {
        let dir = tempdir("tmpjunk");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("thread_0.rtrc.tmp"), b"junk").unwrap();
        fs::write(dir.join("manifest.txt.tmp"), b"junk").unwrap();
        let store = DirStore::new(&dir);
        store.save(&sample_bundle(Scheme::Dc)).unwrap();
        assert!(!dir.join("thread_0.rtrc.tmp").exists());
        assert!(!dir.join("manifest.txt.tmp").exists());
        store.load().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_without_manifest_reads_as_empty() {
        // The crash window of a save: record files present, manifest not
        // yet published. The store must report Empty, never a bundle.
        let dir = tempdir("nomanifest");
        let store = DirStore::new(&dir);
        store.save(&sample_bundle(Scheme::Dc)).unwrap();
        fs::remove_file(dir.join("manifest.txt")).unwrap();
        assert!(matches!(store.load(), Err(TraceError::Empty)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_streaming_recording_is_not_loadable() {
        let dir = tempdir("abort");
        let store = DirStore::new(&dir);
        // A committed first recording, then an aborted second one.
        store.save_chunked(&sample_bundle(Scheme::Dc), 2).unwrap();
        {
            let sink = store
                .begin_record(RecordOptions::new(Scheme::Dc, 2, 1, true))
                .unwrap();
            sink.append_thread_chunk(0, 0, &[7], Some(&[1]), Some(&[0]))
                .unwrap();
            // Dropped without commit: simulated kill mid-recording.
        }
        assert!(
            matches!(store.load(), Err(TraceError::Empty)),
            "aborted recording must not resurrect the previous manifest"
        );
        // Temp files were swept.
        assert!(fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aborted_memstore_recording_reads_empty() {
        // begin_record must match DirStore semantics: the previous trace is
        // replaced immediately, so an abort cannot resurrect it.
        let store = MemStore::new();
        store.save(&sample_bundle(Scheme::Dc)).unwrap();
        {
            let sink = store
                .begin_record(RecordOptions::new(Scheme::Dc, 2, 1, true))
                .unwrap();
            sink.append_thread_chunk(0, 0, &[7], Some(&[1]), Some(&[0]))
                .unwrap();
            // Dropped without commit.
        }
        assert!(matches!(store.load(), Err(TraceError::Empty)));
    }

    #[test]
    fn chunk_boundary_truncation_is_detected_via_manifest() {
        // A chunked file cut exactly on a chunk boundary decodes cleanly at
        // the codec level; the manifest's record count must catch it.
        let dir = tempdir("chunkcut");
        let store = DirStore::new(&dir);
        let bundle = sample_bundle(Scheme::Dc);
        store.save_chunked(&bundle, 1).unwrap();
        store.load().unwrap();

        // Rewrite thread_0.rtrc with its last chunk dropped.
        let forged = {
            let t = &bundle.threads[0];
            let mut bytes = codec::encode_thread_stream_header(Scheme::Dc, 0, true, true).to_vec();
            for i in 0..t.values.len() - 1 {
                bytes.extend_from_slice(&codec::encode_thread_chunk(
                    &t.values[i..=i],
                    t.sites.as_ref().map(|s| &s[i..=i]),
                    t.kinds.as_ref().map(|k| &k[i..=i]),
                ));
            }
            bytes
        };
        fs::write(dir.join("thread_0.rtrc"), &forged).unwrap();
        let err = store.load().unwrap_err();
        assert!(
            matches!(&err, TraceError::Corrupt(msg) if msg.contains("records")),
            "expected a record-count mismatch, got {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_writer_handles_roundtrip() {
        let dir = tempdir("writers");
        let store = DirStore::new(&dir);
        let sink = store
            .begin_record(RecordOptions::new(Scheme::Dc, 2, 1, false))
            .unwrap();
        let w0 = sink.thread_writer(0, 0);
        let w1 = sink.thread_writer(0, 1);
        w0.append(&[0, 2], None, None).unwrap();
        w1.append(&[1], None, None).unwrap();
        w1.append(&[3], None, None).unwrap();
        sink.commit(4).unwrap();
        let (bundle, io) = store.load().unwrap();
        assert_eq!(bundle.threads[0].values, vec![0, 2]);
        assert_eq!(bundle.threads[1].values, vec![1, 3]);
        assert_eq!(io.chunks, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_rejects_mismatched_columns_and_bad_streams() {
        let store = MemStore::new();
        let sink = store
            .begin_record(RecordOptions::new(Scheme::Dc, 1, 1, true))
            .unwrap();
        assert!(sink.append_thread_chunk(0, 0, &[1], None, None).is_err());
        let sink = store
            .begin_record(RecordOptions::new(Scheme::Dc, 1, 2, false))
            .unwrap();
        assert!(sink
            .append_thread_chunk(0, 0, &[1], Some(&[1]), Some(&[0]))
            .is_err());
        // Out-of-range domain/thread is an error, not a panic.
        assert!(sink.append_thread_chunk(2, 0, &[1], None, None).is_err());
        assert!(sink.append_thread_chunk(0, 1, &[1], None, None).is_err());
        assert!(sink.append_st_chunk(0, &[0], None, None).is_err());
    }

    #[test]
    fn truncated_record_file_is_corrupt_not_panic() {
        let dir = tempdir("truncate");
        let store = DirStore::new(&dir);
        store.save(&sample_bundle(Scheme::Dc)).unwrap();
        let path = dir.join("thread_0.rtrc");
        let full = fs::read(&path).unwrap();
        for cut in [6, 7, 10, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(store.load().is_err(), "cut at {cut} must fail cleanly");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
