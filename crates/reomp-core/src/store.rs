//! Record-file storage.
//!
//! DC/DE recording owes much of its advantage to the record-file *layout*:
//! one file per thread, written and read independently (§IV-C1), versus
//! ST's single shared file. [`DirStore`] reproduces that layout on a
//! directory (the paper uses tmpfs; `std::env::temp_dir()` is tmpfs on the
//! evaluation platform) and performs per-thread file I/O in parallel.
//! [`MemStore`] is an in-memory stand-in for tests and microbenches.

use crate::codec;
use crate::error::TraceError;
use crate::session::Scheme;
use crate::trace::{StTrace, ThreadTrace, TraceBundle};
use parking_lot::Mutex;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Bytes/files touched by one save or load, for the session's I/O stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoReport {
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Number of record files involved.
    pub files: u64,
}

/// Abstract trace persistence.
pub trait TraceStore: Send + Sync {
    /// Persist a bundle, replacing any previous contents.
    fn save(&self, bundle: &TraceBundle) -> Result<IoReport, TraceError>;
    /// Load the stored bundle.
    fn load(&self) -> Result<(TraceBundle, IoReport), TraceError>;
}

/// In-memory store (still goes through the binary codec, so it exercises
/// the same encode/decode path as [`DirStore`]).
#[derive(Debug, Default)]
pub struct MemStore {
    files: Mutex<Option<EncodedBundle>>,
}

#[derive(Debug, Clone)]
struct EncodedBundle {
    scheme: Scheme,
    nthreads: u32,
    threads: Vec<Vec<u8>>,
    st: Option<Vec<u8>>,
}

impl MemStore {
    /// New empty store.
    #[must_use]
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl TraceStore for MemStore {
    fn save(&self, bundle: &TraceBundle) -> Result<IoReport, TraceError> {
        let mut report = IoReport::default();
        let threads: Vec<Vec<u8>> = bundle
            .threads
            .iter()
            .enumerate()
            .map(|(tid, t)| {
                let b = codec::encode_thread_trace(t, bundle.scheme, tid as u32).to_vec();
                report.bytes += b.len() as u64;
                report.files += 1;
                b
            })
            .collect();
        let st = bundle.st.as_ref().map(|st| {
            let b = codec::encode_st_trace(st).to_vec();
            report.bytes += b.len() as u64;
            report.files += 1;
            b
        });
        *self.files.lock() = Some(EncodedBundle {
            scheme: bundle.scheme,
            nthreads: bundle.nthreads,
            threads,
            st,
        });
        Ok(report)
    }

    fn load(&self) -> Result<(TraceBundle, IoReport), TraceError> {
        let encoded = self.files.lock().clone().ok_or(TraceError::Empty)?;
        let mut report = IoReport::default();
        let mut threads = Vec::with_capacity(encoded.threads.len());
        for (expect_tid, bytes) in encoded.threads.iter().enumerate() {
            report.bytes += bytes.len() as u64;
            report.files += 1;
            let (trace, scheme, tid) = codec::decode_thread_trace(bytes)?;
            if scheme != encoded.scheme || tid != expect_tid as u32 {
                return Err(TraceError::Corrupt("trace header mismatch".into()));
            }
            threads.push(trace);
        }
        let st = match &encoded.st {
            Some(bytes) => {
                report.bytes += bytes.len() as u64;
                report.files += 1;
                Some(codec::decode_st_trace(bytes)?)
            }
            None => None,
        };
        let bundle = TraceBundle {
            scheme: encoded.scheme,
            nthreads: encoded.nthreads,
            threads,
            st,
        };
        bundle.validate()?;
        Ok((bundle, report))
    }
}

/// One-record-file-per-thread directory store (the paper's layout).
///
/// Layout: `manifest.txt`, `thread_<tid>.rtrc`, and `st.rtrc` for ST
/// bundles. Per-thread files are written/read by concurrent worker threads
/// when `parallel_io` is enabled (default), mirroring the parallel-I/O
/// property §IV-C1 credits to DC/DE recording.
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
    parallel_io: bool,
}

impl DirStore {
    /// Store rooted at `dir` (created on first save), parallel I/O enabled.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DirStore {
            dir: dir.into(),
            parallel_io: true,
        }
    }

    /// Toggle parallel per-thread file I/O (serial I/O is the ablation
    /// baseline corresponding to ST's single-file bottleneck).
    #[must_use]
    pub fn with_parallel_io(mut self, parallel: bool) -> Self {
        self.parallel_io = parallel;
        self
    }

    /// Root directory of the store.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn thread_path(&self, tid: u32) -> PathBuf {
        self.dir.join(format!("thread_{tid}.rtrc"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.txt")
    }

    fn write_file(path: &Path, bytes: &[u8]) -> Result<u64, TraceError> {
        let file = fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(bytes)?;
        w.flush()?;
        Ok(bytes.len() as u64)
    }

    fn read_file(path: &Path) -> Result<Vec<u8>, TraceError> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn save_manifest(&self, bundle: &TraceBundle) -> Result<u64, TraceError> {
        let text = format!(
            "reomp-trace v1\nscheme {}\nthreads {}\nrecords {}\n",
            bundle.scheme.name(),
            bundle.nthreads,
            bundle.total_records(),
        );
        Self::write_file(&self.manifest_path(), text.as_bytes())
    }

    fn load_manifest(&self) -> Result<(Scheme, u32), TraceError> {
        let bytes = Self::read_file(&self.manifest_path()).map_err(|e| match e {
            TraceError::Io(ref io) if io.kind() == std::io::ErrorKind::NotFound => {
                TraceError::Empty
            }
            other => other,
        })?;
        let text = String::from_utf8(bytes)
            .map_err(|_| TraceError::Corrupt("manifest is not UTF-8".into()))?;
        let mut scheme = None;
        let mut threads = None;
        for (i, line) in text.lines().enumerate() {
            if i == 0 {
                if line != "reomp-trace v1" {
                    return Err(TraceError::Corrupt(format!("manifest header: {line:?}")));
                }
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("scheme"), Some(s)) => {
                    scheme = Scheme::parse(s);
                    if scheme.is_none() {
                        return Err(TraceError::Corrupt(format!("bad scheme {s:?}")));
                    }
                }
                (Some("threads"), Some(n)) => {
                    threads = n.parse::<u32>().ok();
                    if threads.is_none() {
                        return Err(TraceError::Corrupt(format!("bad thread count {n:?}")));
                    }
                }
                (Some("records"), Some(_)) | (None, _) => {}
                (Some(k), _) => {
                    return Err(TraceError::Corrupt(format!("unknown manifest key {k:?}")))
                }
            }
        }
        match (scheme, threads) {
            (Some(s), Some(t)) => Ok((s, t)),
            _ => Err(TraceError::Corrupt(
                "manifest missing scheme/threads".into(),
            )),
        }
    }
}

impl TraceStore for DirStore {
    fn save(&self, bundle: &TraceBundle) -> Result<IoReport, TraceError> {
        fs::create_dir_all(&self.dir)?;
        let mut report = IoReport::default();
        report.bytes += self.save_manifest(bundle)?;
        report.files += 1;

        if self.parallel_io {
            // One writer per thread trace — the per-thread parallel I/O the
            // paper credits to DC/DE (§IV-C1).
            let results: Vec<Result<u64, TraceError>> = std::thread::scope(|s| {
                let handles: Vec<_> = bundle
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(tid, t)| {
                        let path = self.thread_path(tid as u32);
                        s.spawn(move || {
                            let bytes = codec::encode_thread_trace(t, bundle.scheme, tid as u32);
                            Self::write_file(&path, &bytes)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trace writer panicked"))
                    .collect()
            });
            for r in results {
                report.bytes += r?;
                report.files += 1;
            }
        } else {
            for (tid, t) in bundle.threads.iter().enumerate() {
                let bytes = codec::encode_thread_trace(t, bundle.scheme, tid as u32);
                report.bytes += Self::write_file(&self.thread_path(tid as u32), &bytes)?;
                report.files += 1;
            }
        }

        if let Some(st) = &bundle.st {
            let bytes = codec::encode_st_trace(st);
            report.bytes += Self::write_file(&self.dir.join("st.rtrc"), &bytes)?;
            report.files += 1;
        }
        Ok(report)
    }

    fn load(&self) -> Result<(TraceBundle, IoReport), TraceError> {
        let (scheme, nthreads) = self.load_manifest()?;
        let mut report = IoReport { bytes: 0, files: 1 };

        let load_one = |tid: u32| -> Result<(ThreadTrace, u64), TraceError> {
            let bytes = Self::read_file(&self.thread_path(tid))?;
            let n = bytes.len() as u64;
            let (trace, file_scheme, file_tid) = codec::decode_thread_trace(&bytes)?;
            if file_scheme != scheme || file_tid != tid {
                return Err(TraceError::Corrupt(format!(
                    "thread file {tid}: header says scheme {} tid {file_tid}",
                    file_scheme.name()
                )));
            }
            Ok((trace, n))
        };

        let mut threads = Vec::with_capacity(nthreads as usize);
        if self.parallel_io {
            let results: Vec<Result<(ThreadTrace, u64), TraceError>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..nthreads)
                    .map(|tid| s.spawn(move || load_one(tid)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trace reader panicked"))
                    .collect()
            });
            for r in results {
                let (t, n) = r?;
                report.bytes += n;
                report.files += 1;
                threads.push(t);
            }
        } else {
            for tid in 0..nthreads {
                let (t, n) = load_one(tid)?;
                report.bytes += n;
                report.files += 1;
                threads.push(t);
            }
        }

        let st = if scheme == Scheme::St {
            let bytes = Self::read_file(&self.dir.join("st.rtrc"))?;
            report.bytes += bytes.len() as u64;
            report.files += 1;
            Some(decode_st(&bytes)?)
        } else {
            None
        };

        let bundle = TraceBundle {
            scheme,
            nthreads,
            threads,
            st,
        };
        bundle.validate()?;
        Ok((bundle, report))
    }
}

fn decode_st(bytes: &[u8]) -> Result<StTrace, TraceError> {
    codec::decode_st_trace(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle(scheme: Scheme) -> TraceBundle {
        let threads = vec![
            ThreadTrace {
                values: vec![0, 2, 5],
                sites: Some(vec![10, 11, 10]),
                kinds: Some(vec![0, 1, 0]),
            },
            ThreadTrace {
                values: vec![1, 3, 4],
                sites: Some(vec![10, 10, 11]),
                kinds: Some(vec![0, 0, 1]),
            },
        ];
        let st = (scheme == Scheme::St).then(|| StTrace {
            tids: vec![0, 1, 0, 1, 1, 0],
            sites: Some(vec![10; 6]),
            kinds: Some(vec![3; 6]),
        });
        let threads = if scheme == Scheme::St {
            vec![ThreadTrace::default(), ThreadTrace::default()]
        } else {
            threads
        };
        TraceBundle {
            scheme,
            nthreads: 2,
            threads,
            st,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "reomp-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memstore_roundtrip_all_schemes() {
        for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
            let store = MemStore::new();
            let bundle = sample_bundle(scheme);
            let saved = store.save(&bundle).unwrap();
            assert!(saved.bytes > 0);
            let (back, loaded) = store.load().unwrap();
            assert_eq!(back, bundle, "{scheme:?}");
            assert_eq!(loaded.bytes, saved.bytes);
        }
    }

    #[test]
    fn memstore_empty_load_fails() {
        assert!(matches!(MemStore::new().load(), Err(TraceError::Empty)));
    }

    #[test]
    fn dirstore_roundtrip_parallel_and_serial() {
        for parallel in [true, false] {
            for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
                let dir = tempdir(&format!("rt-{parallel}-{}", scheme.name()));
                let store = DirStore::new(&dir).with_parallel_io(parallel);
                let bundle = sample_bundle(scheme);
                store.save(&bundle).unwrap();
                let (back, _) = store.load().unwrap();
                assert_eq!(back, bundle);
                // Per-thread layout on disk.
                assert!(dir.join("thread_0.rtrc").exists());
                assert!(dir.join("thread_1.rtrc").exists());
                assert_eq!(dir.join("st.rtrc").exists(), scheme == Scheme::St);
                fs::remove_dir_all(&dir).unwrap();
            }
        }
    }

    #[test]
    fn dirstore_missing_dir_is_empty() {
        let store = DirStore::new(tempdir("missing"));
        assert!(matches!(store.load(), Err(TraceError::Empty)));
    }

    #[test]
    fn dirstore_detects_header_mismatch() {
        let dir = tempdir("swap");
        let store = DirStore::new(&dir);
        store.save(&sample_bundle(Scheme::Dc)).unwrap();
        // Swap the two thread files: tids in headers no longer match names.
        let a = dir.join("thread_0.rtrc");
        let b = dir.join("thread_1.rtrc");
        let tmp = dir.join("tmp");
        fs::rename(&a, &tmp).unwrap();
        fs::rename(&b, &a).unwrap();
        fs::rename(&tmp, &b).unwrap();
        assert!(store.load().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirstore_rejects_corrupt_manifest() {
        let dir = tempdir("manifest");
        let store = DirStore::new(&dir);
        store.save(&sample_bundle(Scheme::De)).unwrap();
        fs::write(dir.join("manifest.txt"), "something else\n").unwrap();
        assert!(store.load().is_err());
        fs::write(
            dir.join("manifest.txt"),
            "reomp-trace v1\nscheme xx\nthreads 2\n",
        )
        .unwrap();
        assert!(store.load().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_overwrites_previous_contents() {
        let dir = tempdir("overwrite");
        let store = DirStore::new(&dir);
        store.save(&sample_bundle(Scheme::Dc)).unwrap();
        let second = sample_bundle(Scheme::De);
        store.save(&second).unwrap();
        let (back, _) = store.load().unwrap();
        assert_eq!(back.scheme, Scheme::De);
        assert_eq!(back, second);
        fs::remove_dir_all(&dir).unwrap();
    }
}
