//! The `gate_in`/`gate_out` engines for every scheme × mode pair.
//!
//! Each function body is annotated with the pseudo-code lines of the
//! paper's Figure 4 (ST) and Figure 5 (DC/DE) it implements.
//!
//! Every engine operates on one **gate domain** (see
//! [`SessionConfig::domains`](crate::session::SessionConfig::domains)):
//! the caller resolves the site to its domain once, and all state below —
//! lock `L`, `global_clock`, the epoch tracker, the replay turnstile and
//! baton — is that domain's instance. With the default single domain this
//! is exactly the paper's global gate.
//!
//! Record-mode summary (all schemes serialize the region — the paper does
//! it under the domain's lock `L`; DC/DE plain loads and stores instead
//! enter through the lock-free [`TicketGate`](crate::clock::TicketGate)
//! unless [`SessionConfig::ticket_gate`](crate::session::SessionConfig)
//! turns the fast path off):
//!
//! ```text
//! ST  (Fig. 4 l.1-8):  lock; <region>; append tid to shared log; unlock
//! DC  (Fig. 5 l.20-24, X=0):   enter; <region>; clock=global_clock++;
//!                              exit; write clock to own file
//! DE  (Fig. 5 l.20-24, X=X_C): enter; <region>; clock=global_clock++;
//!                              epoch=clock-X_C (store epochs deferred one
//!                              access); exit; route finalized records to
//!                              their owners' buffers
//! ```
//!
//! The two admission protocols compose seqlock-style: slow-path accesses
//! (ST, critical sections, cross-domain edge anchors, streaming DE) and
//! out-of-band pausers take the raw lock **and** a ghost ticket, so they
//! exclude lock-free entrants too; a `RecordToken` carries which protocol
//! a gate entered through from `record_in` to its `record_out`.
//!
//! Replay-mode summary:
//!
//! ```text
//! ST  (Fig. 4 l.10-17): spin on next_tid; the thread that wins the baton
//!                       reads the next record and publishes it; the
//!                       matching thread runs the region and releases the
//!                       baton (possibly acquired by another thread).
//! DC  (Fig. 5 l.30-34): clock = own-file next; spin while clock != next_clock;
//!                       <region>; next_clock++
//! DE  (same, §IV-D):    epoch = own-file next; spin while next_clock < epoch;
//!                       <region>; next_clock++   — same-epoch accesses overlap
//! ```

use crate::error::{Divergence, ReplayError};
use crate::history::AccessRecord;
use crate::session::{RecEntry, Session, TID_EXHAUSTED, TID_NONE};
use crate::shim::atomic::Ordering;
use crate::site::{AccessKind, SiteId};
use crate::sync::SpinWait;
use crate::Scheme;

/// How a record gate was admitted; returned by [`record_in`], consumed by
/// the matching [`record_out`] to release the same way.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RecordToken {
    /// Classic mutex bracket — the session has no ticket gate (ST,
    /// streaming DE, or `ticket_gate: false`).
    Locked,
    /// Slow path of a ticket-gate session: the raw lock **plus** a ghost
    /// ticket, so lock-free entrants are excluded too.
    LockedTicket(u32),
    /// Lock-free fast path: the served ticket is the whole exclusion.
    Ticket(u32),
}

/// Record-mode `gate_in` (`set_lock(L)`, Fig. 4 line 1 / Fig. 5 line 20).
///
/// Plain DC/DE loads and stores of a ticket-gate session enter through the
/// domain's [`TicketGate`](crate::clock::TicketGate) — one `fetch_add`
/// when the gate is idle — instead of the mutex. Accesses that need the
/// heavier shared bookkeeping route to the locked path: every ST access
/// (the shared log), critical-section gates and pending-sync edge anchors
/// (cross-domain edge stamping), and streaming-DE sessions (the flush
/// floor) — the latter two never construct a ticket gate at all. The
/// routing predicate is stable between `record_in` and `record_out`
/// because only the gating thread itself mutates its pending-sync slot.
pub(crate) fn record_in(session: &Session, dom: u32, tid: u32, kind: AccessKind) -> RecordToken {
    let rec = session.rec.as_ref().expect("record mode");
    let drec = &rec.domains[dom as usize];
    let Some(ticket) = &drec.ticket else {
        drec.gate.lock();
        session.stats.bump_lock();
        session.stats.bump_domain_lock(dom);
        return RecordToken::Locked;
    };
    let multi = session.domains() > 1;
    if multi && (kind == AccessKind::Critical || session.has_pending_sync(tid)) {
        // Edge-stamping access: lock first, then queue the ghost ticket
        // (the one lock→ticket order every two-protocol entrant uses, so
        // the two admission paths cannot deadlock against each other).
        drec.gate.lock();
        session.stats.bump_lock();
        session.stats.bump_domain_lock(dom);
        return RecordToken::LockedTicket(ticket.enter());
    }
    RecordToken::Ticket(ticket.enter())
}

/// Record-mode `gate_out`. `addr` is the memory location used for DE run
/// grouping (Condition 1 is per-address). `token` must be the value the
/// matching [`record_in`] returned.
pub(crate) fn record_out(
    session: &Session,
    dom: u32,
    tid: u32,
    site: SiteId,
    addr: u64,
    kind: AccessKind,
    token: RecordToken,
) {
    let rec = session.rec.as_ref().expect("record mode");
    let drec = &rec.domains[dom as usize];
    let streaming = rec.stream.is_some();
    let multi = session.domains() > 1;
    // Release the admission `record_in` granted, in reverse acquisition
    // order. After this call the gate core must not be touched.
    let release = || match token {
        // SAFETY: `record_in` locked on this thread for this token.
        RecordToken::Locked => unsafe { drec.gate.unlock() },
        RecordToken::LockedTicket(t) => {
            drec.ticket
                .as_ref()
                .expect("token implies ticket gate")
                .exit(t);
            // SAFETY: `record_in` locked on this thread for this token.
            unsafe { drec.gate.unlock() }
        }
        RecordToken::Ticket(t) => drec
            .ticket
            .as_ref()
            .expect("token implies ticket gate")
            .exit(t),
    };
    // Cross-domain edge sources: a pending barrier snapshot taken at this
    // thread's last sync point, or — for critical-section gates — a fresh
    // snapshot taken below. The snapshot MUST be read before this access
    // publishes its own completion (see `edge_waits` below): two accesses
    // in different domains can then never both observe each other, which
    // is what makes replaying the edges deadlock-free.
    let pending = if multi {
        session.take_pending_sync(tid)
    } else {
        None
    };
    let wants_edge = multi && (kind == AccessKind::Critical || pending.is_some());
    // `Some((seq, counts))` once the anchor position is known: the edge is
    // appended after the gate lock is released.
    let mut edge: Option<(u64, Vec<u64>)> = None;
    // Resolve the wait set now for critical gates (a fresh snapshot
    // dominates any pending one — counts are monotone), else the barrier
    // snapshot.
    let edge_counts = |session: &Session| -> Option<Vec<u64>> {
        if kind == AccessKind::Critical {
            session.snapshot_domain_counts()
        } else {
            pending.clone()
        }
    };
    // DC/DE shared completion bookkeeping, run under the domain's gate
    // exclusion right after the clock assignment. The snapshot is read
    // strictly BEFORE `published` advances past this access: two accesses
    // in different domains can then never both observe each other's
    // completion, which keeps the recorded edge set acyclic — the
    // invariant that makes replaying the edges deadlock-free. Returns the
    // pending edge as `(anchor seq, wait snapshot)`.
    let stamp_clocked = |clock: u64| -> Option<(u64, Vec<u64>)> {
        let counts = wants_edge.then(|| edge_counts(session)).flatten();
        // ORDERING: `seqs[tid]` is only ever advanced by its owning thread
        // (it is that thread's record count); cross-thread readers observe
        // it through the `published` Release store below, so the RMW
        // itself needs no ordering.
        let seq = drec.seqs[tid as usize].fetch_add(1, Ordering::Relaxed);
        // DE publish batching (`SessionConfig::publish_batch`): plain
        // accesses release the completion count once per full batch,
        // mirroring how the epoch tracker batches runs. Edge-anchored and
        // critical accesses (`wants_edge`) always publish, so sync-point
        // traffic is counted exactly; skipped publishes only let foreign
        // snapshots run behind, which weakens — never breaks — the
        // recorded edges (still a lower bound, still snapshot-before-
        // publish, hence still acyclic).
        let publish = session.scheme() != Scheme::De
            || wants_edge
            || (clock + 1).is_multiple_of(u64::from(session.cfg.publish_batch));
        if publish {
            drec.published.store(clock + 1, Ordering::Release);
        }
        counts.map(|c| (seq, c))
    };
    match session.scheme() {
        Scheme::St => {
            // Fig. 4 lines 6-8: record the thread ID to the domain's shared
            // log *before* releasing the lock, so the logged order is the
            // execution order.
            // SAFETY: ST sessions have no ticket gate, so the token is
            // always `Locked`; the lock was acquired in `record_in` on
            // this thread.
            let core = unsafe { drec.gate.get() };
            let builder = core.st.as_mut().expect("st builder");
            builder.push(tid, site, kind);
            session.stats.bump_record_written();
            if multi {
                // Snapshot (for the edge) strictly before self-publish.
                let counts = wants_edge.then(|| edge_counts(session)).flatten();
                let count = drec.published.fetch_add(1, Ordering::AcqRel) + 1;
                if let Some(counts) = counts {
                    // ST anchors at the access's shared-stream index.
                    edge = Some((count - 1, counts));
                }
            }
            // Streaming: steal a full shared log under the lock (the order
            // is already captured); encode and write it after unlock.
            // `flush_records` is clamped to >= 1 once in `Session::build`.
            let stolen = if streaming && builder.tids.len() >= session.cfg.flush_records {
                Some((
                    std::mem::take(&mut builder.tids),
                    std::mem::take(&mut builder.sites),
                    std::mem::take(&mut builder.kinds),
                ))
            } else {
                None
            };
            // Acquire the chunk-order lock *before* releasing the gate
            // lock: steal order is execution order, and holding st_order
            // across the append keeps two stolen batches from reaching the
            // domain's stream file out of order.
            let order_guard = stolen.is_some().then(|| {
                rec.stream.as_ref().expect("streaming state").st_order[dom as usize].lock()
            });
            release();
            if let Some((tids, sites, kinds)) = stolen {
                session.flush_st_records(dom, &tids, &sites, &kinds);
            }
            drop(order_guard);
        }
        Scheme::Dc => {
            // Fig. 5 lines 22-24 with X = 0.
            let clock = {
                // SAFETY: `token` grants exclusive core access — the gate
                // lock and/or the currently-served ticket (see RecordToken).
                let core = unsafe { drec.gate.get() };
                let c = core.clock;
                core.clock += 1;
                if multi {
                    edge = stamp_clocked(c);
                }
                c
            };
            release();
            // Line 24 happens *after* unlock: the write to the thread's own
            // record file overlaps other threads' region execution (§IV-C3).
            drec.bufs[tid as usize].lock().push(RecEntry {
                clock,
                value: clock,
                site: site.raw(),
                kind: kind.code(),
            });
            session.stats.bump_record_written();
            if streaming {
                // Only this thread appends to its buffer, so everything in
                // it is stable (the DC floor stays at u64::MAX).
                session.maybe_flush_thread(dom, tid);
            }
        }
        Scheme::De => {
            // Fig. 5 lines 22-24 with X = X_C: assign the clock and let the
            // epoch tracker decide which records become final. A store's
            // epoch is deferred until the next access (Table V); the
            // finalized record may therefore belong to *another* thread and
            // is routed to that thread's buffer.
            if streaming {
                // Streaming needs a race-free flush watermark: route the
                // finalized records and refresh the domain's floor while
                // still holding the gate lock, so a concurrent flusher that
                // reads floor F is guaranteed every record with clock < F
                // already sits in its owner's buffer.
                let mut touched: Vec<u32> = Vec::with_capacity(2);
                {
                    // SAFETY: streaming DE always takes the locked path;
                    // the lock was acquired in `record_in` on this thread.
                    let core = unsafe { drec.gate.get() };
                    let clock = core.clock;
                    core.clock += 1;
                    if multi {
                        edge = stamp_clocked(clock);
                    }
                    let tracker = core.tracker.as_mut().expect("de tracker");
                    let observed = tracker.observe(tid, site, addr, kind, clock);
                    // Push every finalized record (like the non-streaming
                    // branch) — the flush targets are derived from the same
                    // loop so a record can never be routed but not flushed.
                    for f in observed.iter() {
                        push_de_record(session, drec, &f);
                        if !touched.contains(&f.thread) {
                            touched.push(f.thread);
                        }
                    }
                    let floor = tracker.min_pending_clock().unwrap_or(clock + 1);
                    rec.stream.as_ref().expect("streaming state").floors[dom as usize]
                        .store(floor, Ordering::Release);
                }
                release();
                for t in touched {
                    session.maybe_flush_thread(dom, t);
                }
            } else {
                let observed = {
                    // SAFETY: `token` grants exclusive core access — the
                    // gate lock and/or the currently-served ticket (see
                    // RecordToken).
                    let core = unsafe { drec.gate.get() };
                    let clock = core.clock;
                    core.clock += 1;
                    if multi {
                        edge = stamp_clocked(clock);
                    }
                    core.tracker
                        .as_mut()
                        .expect("de tracker")
                        .observe(tid, site, addr, kind, clock)
                };
                release();
                for f in observed.iter() {
                    push_de_record(session, drec, &f);
                }
            }
        }
    }
    if let Some((seq, counts)) = edge {
        session.push_edge(dom, tid, seq, &counts);
    }
}

/// Route one finalized DE record to its owner's buffer in the same domain
/// and bump counters.
fn push_de_record(
    session: &Session,
    drec: &crate::session::DomainRecord,
    f: &crate::epoch::Finalized,
) {
    drec.bufs[f.thread as usize].lock().push(RecEntry {
        clock: f.clock,
        value: f.epoch,
        site: f.site.raw(),
        kind: f.kind.code(),
    });
    session.stats.bump_record_written();
    if f.epoch != f.clock && f.kind == AccessKind::Store {
        session.stats.bump_deferred();
    }
}

/// Replay-mode `gate_in`. Blocks until the recorded order of domain `dom`
/// admits this access; validates site/kind when the trace carries them.
pub(crate) fn replay_in(
    session: &Session,
    dom: u32,
    tid: u32,
    site: SiteId,
    kind: AccessKind,
) -> Result<(), ReplayError> {
    match session.scheme() {
        Scheme::St => replay_in_st(session, dom, tid, site, kind),
        Scheme::Dc | Scheme::De => replay_in_distributed(session, dom, tid, site, kind),
    }
}

/// Replay-mode `gate_out`.
pub(crate) fn replay_out(session: &Session, dom: u32, _tid: u32) {
    let rep = session.rep.as_ref().expect("replay mode");
    let drep = &rep.domains[dom as usize];
    match session.scheme() {
        Scheme::St => {
            // Fig. 4 line 17 (`unset_lock(L)`): invalidate `next_tid` so a
            // stale match cannot re-admit this thread, then release the
            // baton — one inter-thread communication (ST-3/ST-4 in Fig. 6).
            drep.next_tid.store(TID_NONE, Ordering::Release);
            session.stats.bump_comms(1);
            if session.domains() > 1 {
                // Mirror the completion count so other domains'
                // cross-domain edges can wait on this domain (not a paper
                // communication — the baton hand-off above is ST's).
                drep.turnstile.complete();
            }
            drep.baton.release();
        }
        Scheme::Dc | Scheme::De => {
            // Fig. 5 line 34: `next_clock++` — the single inter-thread
            // communication of DC/DE replay (DC-1 in Fig. 7).
            drep.turnstile.advance(&session.stats);
        }
    }
}

fn replay_in_st(
    session: &Session,
    dom: u32,
    tid: u32,
    site: SiteId,
    kind: AccessKind,
) -> Result<(), ReplayError> {
    let rep = session.rep.as_ref().expect("replay mode");
    let drep = &rep.domains[dom as usize];
    let st = rep.bundle.st_stream(dom).expect("st trace");
    let mut spin = SpinWait::new(&session.cfg.spin);

    // Fig. 4 lines 10-15.
    loop {
        if drep.turnstile.is_aborted() {
            return Err(ReplayError::Aborted);
        }
        let next = drep.next_tid.load(Ordering::Acquire);
        if next == TID_EXHAUSTED {
            return Err(ReplayError::TraceExhausted {
                thread: tid,
                available: st.len() as u64,
            });
        }
        if next == tid {
            // ORDERING: the reader stored `st_pos` (and site/kind below)
            // before publishing `next_tid` with Release; the Acquire load
            // of `next_tid` above already ordered those writes before us,
            // so these follow-up loads can be Relaxed.
            let seq = drep.st_pos.load(Ordering::Relaxed).saturating_sub(1) as u64;
            // Enforce any cross-domain edge anchored at this stream
            // position before entering the region.
            session.wait_edges(dom, tid, seq, site)?;
            // Line 11 exit: it is this thread's turn. Validate against the
            // published record before entering the region.
            if session.cfg.validate_sites && st.sites.is_some() {
                session.stats.bump_validate();
                // ORDERING: covered by the `next_tid` Acquire above
                // (see the `st_pos` justification).
                let recorded_site = SiteId(drep.next_site.load(Ordering::Relaxed));
                let recorded_kind =
                    AccessKind::from_code(drep.next_kind.load(Ordering::Relaxed) as u8);
                if recorded_site != site || recorded_kind != Some(kind) {
                    return Err(Divergence {
                        thread: tid,
                        domain: dom,
                        seq,
                        recorded_site: Some(recorded_site),
                        actual_site: site,
                        recorded_kind,
                        actual_kind: kind,
                        history: session.replay_history(dom),
                    }
                    .into());
                }
            }
            session.push_replay_history(
                dom,
                AccessRecord {
                    clock: seq,
                    site,
                    kind,
                    thread: tid,
                },
            );
            return Ok(());
        }
        // Lines 12-13: any thread may become the reader by winning the
        // baton; it stays locked until the *replayed* thread's gate_out.
        if drep.baton.try_acquire() {
            session.stats.bump_lock();
            // ORDERING: `st_pos` is only written while holding the baton;
            // winning `try_acquire` (Acquire CAS) synchronized with the
            // previous holder's Release, so this Relaxed load sees the
            // latest position.
            let pos = drep.st_pos.load(Ordering::Relaxed);
            if pos >= st.len() {
                // More accesses are being attempted than were recorded.
                drep.next_tid.store(TID_EXHAUSTED, Ordering::Release);
                drep.baton.release();
                return Err(ReplayError::TraceExhausted {
                    thread: tid,
                    available: st.len() as u64,
                });
            }
            let next_tid = st.tids[pos];
            // ORDERING: these stores are published to other threads by the
            // `next_tid` Release store below ("publish last"); until then
            // only the baton holder touches them, so they can be Relaxed.
            if let Some(sites) = &st.sites {
                drep.next_site.store(sites[pos], Ordering::Relaxed);
            }
            if let Some(kinds) = &st.kinds {
                drep.next_kind
                    .store(u32::from(kinds[pos]), Ordering::Relaxed);
            }
            drep.st_pos.store(pos + 1, Ordering::Relaxed);
            // Publish last, with Release, so the matching thread sees the
            // site/kind written above.
            drep.next_tid.store(next_tid, Ordering::Release);
            session.stats.bump_record_read();
            if next_tid != tid {
                // ST-2 in Fig. 6: `next_tid` must travel from the reader to
                // the replayed thread — the second communication that DC
                // replay does not pay (§IV-C2).
                session.stats.bump_comms(1);
            }
            continue;
        }
        spin.step(tid, site, u64::from(tid), || {
            u64::from(drep.next_tid.load(Ordering::Acquire))
        })?;
    }
}

fn replay_in_distributed(
    session: &Session,
    dom: u32,
    tid: u32,
    site: SiteId,
    kind: AccessKind,
) -> Result<(), ReplayError> {
    let rep = session.rep.as_ref().expect("replay mode");
    let drep = &rep.domains[dom as usize];
    let trace = rep.bundle.thread(dom, tid);

    // Fig. 5 line 31: read the next clock/epoch from the thread's own file
    // for this domain. The cursor is only advanced on *successful*
    // admission (at the bottom), so a failed attempt — exhaustion,
    // divergence, edge-wait or turnstile timeout — leaves the record in
    // place for a retry instead of silently consuming it.
    // ORDERING: `cursors[tid]` is the thread's private position in its own
    // per-thread trace; no other thread reads or writes it.
    let pos = drep.cursors[tid as usize].load(Ordering::Relaxed);
    if pos >= trace.len() {
        return Err(ReplayError::TraceExhausted {
            thread: tid,
            available: trace.len() as u64,
        });
    }
    let value = trace.values[pos];
    session.stats.bump_record_read();

    // Validate before waiting: a divergence is certain regardless of the
    // turnstile, and failing early avoids a guaranteed watchdog timeout.
    if session.cfg.validate_sites {
        if let (Some(recorded_site), recorded_kind) = (trace.site_at(pos), trace.kind_at(pos)) {
            session.stats.bump_validate();
            if recorded_site != site || recorded_kind != Some(kind) {
                return Err(Divergence {
                    thread: tid,
                    domain: dom,
                    seq: pos as u64,
                    recorded_site: Some(recorded_site),
                    actual_site: site,
                    recorded_kind,
                    actual_kind: kind,
                    history: session.replay_history(dom),
                }
                .into());
            }
        }
    }

    // Cross-domain edges: wait for the stamped foreign-domain counts
    // before taking this domain's own turn.
    session.wait_edges(dom, tid, pos as u64, site)?;

    // Fig. 5 line 32.
    match session.scheme() {
        Scheme::Dc => {
            drep.turnstile
                .wait_exact(value, tid, site, &session.cfg.spin, &session.stats)?;
        }
        Scheme::De => {
            drep.turnstile
                .wait_at_least(value, tid, site, &session.cfg.spin, &session.stats)?;
        }
        Scheme::St => unreachable!("st handled separately"),
    }
    // Admission succeeded: consume the record now. A timed-out `try_gate`
    // above returned without touching the cursor, so a retry re-reads the
    // same position (pinned by the retry regression test).
    // ORDERING: thread-private cursor, see the load above.
    drep.cursors[tid as usize].store(pos + 1, Ordering::Relaxed);
    session.push_replay_history(
        dom,
        AccessRecord {
            clock: value,
            site,
            kind,
            thread: tid,
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    //! Scheme-level record/replay tests exercising the full gate paths.
    //! Cross-crate integration tests live in the workspace `tests/` tree.

    use crate::error::ReplayError;
    use crate::session::{Scheme, Session, SessionConfig};
    use crate::site::{AccessKind, SiteId};
    use crate::sync::SpinConfig;
    use crate::trace::TraceBundle;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    const SITE: SiteId = SiteId(0x5157_e001);

    /// A racy shared counter: each increment is a gated load followed by a
    /// gated store, like a `sum += 1` data race compiled to instructions.
    fn racy_workload(session: &Arc<Session>, nthreads: u32, iters: usize) -> (u64, Vec<u64>) {
        let shared = AtomicU64::new(0);
        let order = parking_lot::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for tid in 0..nthreads {
                let ctx = session.register_thread(tid);
                let shared = &shared;
                let order = &order;
                s.spawn(move || {
                    for _ in 0..iters {
                        let v = ctx.gate(SITE, AccessKind::Load, || shared.load(Ordering::Relaxed));
                        ctx.gate(SITE, AccessKind::Store, || {
                            order.lock().push(u64::from(ctx.tid()));
                            shared.store(v + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        (shared.load(Ordering::Relaxed), order.into_inner())
    }

    fn record_racy(scheme: Scheme, nthreads: u32, iters: usize) -> (u64, Vec<u64>, TraceBundle) {
        let session = Session::record(scheme, nthreads);
        let (sum, order) = racy_workload(&session, nthreads, iters);
        let report = session.finish().unwrap();
        assert_eq!(
            report.stats.records_written,
            u64::from(nthreads) * iters as u64 * 2
        );
        (sum, order, report.bundle.unwrap())
    }

    #[test]
    fn record_replay_preserves_result_all_schemes() {
        for scheme in Scheme::ALL {
            let (sum, store_order, bundle) = record_racy(scheme, 4, 25);
            assert_eq!(bundle.total_records(), 4 * 25 * 2);

            let replay = Session::replay(bundle).unwrap();
            let (replay_sum, replay_order) = racy_workload(&replay, 4, 25);
            let report = replay.finish().unwrap();
            assert_eq!(report.failure, None, "{scheme:?}");
            assert_eq!(report.fully_consumed, Some(true), "{scheme:?}");
            assert_eq!(
                replay_sum, sum,
                "{scheme:?}: replay must reproduce the racy final value"
            );
            // ST and DC reproduce the exact store interleaving. DE may
            // permute *within* an epoch, but stores that change the final
            // value are serialized, so the value check above is the
            // contract; for ST/DC also check the order verbatim.
            if scheme != Scheme::De {
                assert_eq!(replay_order, store_order, "{scheme:?}");
            }
        }
    }

    #[test]
    fn dc_replay_reproduces_exact_global_order() {
        let (_, _, bundle) = record_racy(Scheme::Dc, 3, 40);
        // Check the bundle is a dense clock permutation (validated) and the
        // global order interleaves all threads.
        bundle.validate().unwrap();
        let order = bundle.global_order();
        assert_eq!(order.len(), 3 * 40 * 2);
        assert_eq!(order.first().unwrap().0, 0);
    }

    #[test]
    fn de_trace_contains_shared_epochs_for_load_runs() {
        // Loads-only workload: every concurrent load run shares an epoch.
        let session = Session::record(Scheme::De, 4);
        std::thread::scope(|s| {
            for tid in 0..4 {
                let ctx = session.register_thread(tid);
                s.spawn(move || {
                    for _ in 0..10 {
                        ctx.gate(SITE, AccessKind::Load, || ());
                    }
                });
            }
        });
        let report = session.finish().unwrap();
        let hist = report.epoch_histogram().unwrap();
        assert!(
            hist.max_size() > 1,
            "pure load traffic must produce shared epochs, got {hist}"
        );
        // Everything is a load: a single run -> a single epoch of size 40.
        assert_eq!(hist.total_accesses(), 40);
        assert_eq!(hist.counts.get(&40), Some(&1), "{hist}");
    }

    #[test]
    fn st_uses_single_stream_dc_uses_per_thread_files() {
        let (_, _, st_bundle) = record_racy(Scheme::St, 2, 5);
        assert!(st_bundle.is_st());
        assert!(st_bundle.threads.iter().all(|t| t.is_empty()));

        let (_, _, dc_bundle) = record_racy(Scheme::Dc, 2, 5);
        assert!(!dc_bundle.is_st());
        assert!(dc_bundle.threads.iter().all(|t| !t.is_empty()));
    }

    /// Sites 0..domains map to distinct domains (raw % domains), so every
    /// thread touching "its own" site gives a perfectly disjoint workload.
    fn disjoint_workload(session: &Arc<Session>, nthreads: u32, iters: usize) -> Vec<u64> {
        let cells: Vec<AtomicU64> = (0..nthreads).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..nthreads {
                let ctx = session.register_thread(tid);
                let cell = &cells[tid as usize];
                s.spawn(move || {
                    let site = SiteId(u64::from(tid));
                    for _ in 0..iters {
                        let v = ctx.gate(site, AccessKind::Load, || cell.load(Ordering::Relaxed));
                        ctx.gate(site, AccessKind::Store, || {
                            cell.store(v + 1, Ordering::Relaxed)
                        });
                    }
                });
            }
        });
        cells.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    #[test]
    fn multi_domain_record_replay_is_divergence_free_all_schemes() {
        for scheme in Scheme::ALL {
            for domains in [1u32, 2, 4] {
                let cfg = SessionConfig {
                    domains,
                    ..Default::default()
                };
                let session = Session::record_with(scheme, 4, cfg.clone());
                let recorded = disjoint_workload(&session, 4, 20);
                let report = session.finish().unwrap();
                let bundle = report.bundle.unwrap();
                assert_eq!(bundle.domains, domains, "{scheme:?}");
                bundle.validate().unwrap();

                let replay = Session::replay(bundle).unwrap();
                assert_eq!(replay.domains(), domains);
                let replayed = disjoint_workload(&replay, 4, 20);
                let report = replay.finish().unwrap();
                assert_eq!(report.failure, None, "{scheme:?} D={domains}");
                assert_eq!(report.fully_consumed, Some(true), "{scheme:?} D={domains}");
                assert_eq!(replayed, recorded, "{scheme:?} D={domains}");
            }
        }
    }

    #[test]
    fn domains_replay_independently() {
        // Two threads in two different domains: thread 1 must be able to
        // finish its entire replay before thread 0 even starts — the
        // cross-domain concurrency the sharding exists for. With D = 1 the
        // same trace interleaving would force thread 1 to wait.
        let cfg = SessionConfig {
            domains: 2,
            ..Default::default()
        };
        let session = Session::record_with(Scheme::Dc, 2, cfg);
        {
            let c0 = session.register_thread(0);
            let c1 = session.register_thread(1);
            // Interleave strictly so with one domain thread 1's later
            // accesses would depend on thread 0's.
            for _ in 0..10 {
                c0.gate(SiteId(2), AccessKind::Store, || ()); // domain 0
                c1.gate(SiteId(3), AccessKind::Store, || ()); // domain 1
            }
        }
        let bundle = session.finish().unwrap().bundle.unwrap();

        // Replay thread 1 to completion on this thread *before* thread 0
        // performs any access. A shared turnstile would deadlock (watchdog)
        // here; per-domain turnstiles admit thread 1 immediately.
        let replay = Session::replay_with(
            bundle,
            SessionConfig {
                spin: SpinConfig {
                    spin_hints: 8,
                    timeout: Some(Duration::from_secs(5)),
                },
                ..Default::default()
            },
        )
        .unwrap();
        {
            let c1 = replay.register_thread(1);
            for _ in 0..10 {
                c1.try_gate(SiteId(3), AccessKind::Store, || ())
                    .expect("domain 1 must not wait on domain 0");
            }
            let c0 = replay.register_thread(0);
            for _ in 0..10 {
                c0.try_gate(SiteId(2), AccessKind::Store, || ()).unwrap();
            }
        }
        let report = replay.finish().unwrap();
        assert_eq!(report.failure, None);
        assert_eq!(report.fully_consumed, Some(true));
    }

    /// Two-domain plan pinning site A in domain 0 and site B in domain 1.
    fn two_domain_plan() -> (crate::plan::DomainPlan, SiteId, SiteId) {
        let a = SiteId(0xaaaa);
        let b = SiteId(0xbbbb);
        let plan = crate::plan::DomainPlan::with_assignments(2, [(a, 0), (b, 1)]);
        (plan, a, b)
    }

    #[test]
    fn critical_gates_emit_and_enforce_cross_domain_edges() {
        for scheme in Scheme::ALL {
            let (plan, a, b) = two_domain_plan();
            let cfg = SessionConfig {
                plan: Some(plan),
                ..Default::default()
            };
            // Record deterministically from one driver thread: thread 0
            // takes three criticals in domain 0, then thread 1 takes one
            // critical in domain 1. The domain-1 gate must stamp an edge
            // "domain 0 reached 3".
            let session = Session::record_with(scheme, 2, cfg.clone());
            {
                let c0 = session.register_thread(0);
                let c1 = session.register_thread(1);
                for _ in 0..3 {
                    c0.gate(a, AccessKind::Critical, || ());
                }
                c1.gate(b, AccessKind::Critical, || ());
            }
            let report = session.finish().unwrap();
            assert!(report.stats.sync_edges >= 1, "{scheme:?}");
            let bundle = report.bundle.unwrap();
            bundle.validate().unwrap();
            assert!(bundle.plan.is_some(), "{scheme:?}: plan stamped");
            let edge = bundle
                .edges
                .iter()
                .find(|e| e.domain == 1)
                .unwrap_or_else(|| panic!("{scheme:?}: domain-1 edge missing: {:?}", bundle.edges));
            assert_eq!(edge.seq, 0, "{scheme:?}");
            assert_eq!(edge.waits, vec![(0, 3)], "{scheme:?}");

            // Replay with real threads: thread 1 starts first, but its
            // critical must not complete until thread 0 finished all
            // three domain-0 criticals — the edge restores the
            // cross-domain order the blind sharding would lose.
            let replay = Session::replay_with(
                bundle,
                SessionConfig {
                    spin: SpinConfig {
                        spin_hints: 16,
                        timeout: Some(Duration::from_secs(30)),
                    },
                    ..cfg
                },
            )
            .unwrap();
            let order = parking_lot::Mutex::new(Vec::new());
            std::thread::scope(|s| {
                let c1 = replay.register_thread(1);
                let c0 = replay.register_thread(0);
                let order = &order;
                s.spawn(move || {
                    c1.gate(b, AccessKind::Critical, || order.lock().push(1u32));
                });
                s.spawn(move || {
                    // Give thread 1 a head start so an unenforced replay
                    // would demonstrably run it first.
                    std::thread::sleep(Duration::from_millis(30));
                    for _ in 0..3 {
                        c0.gate(a, AccessKind::Critical, || order.lock().push(0u32));
                    }
                });
            });
            let report = replay.finish().unwrap();
            assert_eq!(report.failure, None, "{scheme:?}");
            assert_eq!(report.fully_consumed, Some(true), "{scheme:?}");
            assert!(report.stats.edge_waits >= 1, "{scheme:?}");
            assert_eq!(
                *order.lock(),
                vec![0, 0, 0, 1],
                "{scheme:?}: edge must order domain 1 after domain 0"
            );
        }
    }

    #[test]
    fn sync_point_stamps_edge_on_next_access() {
        let (plan, a, b) = two_domain_plan();
        let cfg = SessionConfig {
            plan: Some(plan),
            ..Default::default()
        };
        let session = Session::record_with(Scheme::Dc, 2, cfg);
        {
            let c0 = session.register_thread(0);
            let c1 = session.register_thread(1);
            c0.gate(a, AccessKind::Store, || ());
            c0.gate(a, AccessKind::Store, || ());
            // Thread 1 passes a barrier, then stores in domain 1: the
            // store anchors an edge carrying the barrier-time snapshot.
            c1.sync_point();
            c1.gate(b, AccessKind::Store, || ());
        }
        let bundle = session.finish().unwrap().bundle.unwrap();
        assert_eq!(bundle.edges.len(), 1, "{:?}", bundle.edges);
        let e = &bundle.edges[0];
        assert_eq!((e.domain, e.thread, e.seq), (1, 1, 0));
        assert_eq!(e.waits, vec![(0, 2)]);
    }

    #[test]
    fn plain_stores_in_single_domain_record_no_edges() {
        // D = 1 must never pay for edges — the golden-bytes compatibility
        // depends on it.
        let session = Session::record(Scheme::Dc, 2);
        {
            let c0 = session.register_thread(0);
            c0.gate(SITE, AccessKind::Critical, || ());
            c0.sync_point(); // no-op at D = 1
            c0.gate(SITE, AccessKind::Store, || ());
            let c1 = session.register_thread(1);
            c1.gate(SITE, AccessKind::Critical, || ());
        }
        let report = session.finish().unwrap();
        assert_eq!(report.stats.sync_edges, 0);
        let bundle = report.bundle.unwrap();
        assert!(bundle.edges.is_empty());
        assert!(bundle.plan.is_none());
    }

    #[test]
    fn replay_detects_site_divergence() {
        for scheme in Scheme::ALL {
            let (_, _, bundle) = record_racy(scheme, 2, 5);
            let replay = Session::replay(bundle).unwrap();
            let wrong = SiteId(0xbad);
            let err = std::thread::scope(|s| {
                let h0 = {
                    let ctx = replay.register_thread(0);
                    s.spawn(move || {
                        let mut first_err = None;
                        for _ in 0..5 {
                            let r = ctx.try_gate(wrong, AccessKind::Load, || ());
                            if let Err(e) = r {
                                first_err = Some(e);
                                break;
                            }
                            let _ = ctx.try_gate(SITE, AccessKind::Store, || ());
                        }
                        first_err
                    })
                };
                let h1 = {
                    let ctx = replay.register_thread(1);
                    s.spawn(move || {
                        let mut first_err = None;
                        for _ in 0..5 {
                            if let Err(e) = ctx.try_gate(SITE, AccessKind::Load, || ()) {
                                first_err = Some(e);
                                break;
                            }
                            if let Err(e) = ctx.try_gate(SITE, AccessKind::Store, || ()) {
                                first_err = Some(e);
                                break;
                            }
                        }
                        first_err
                    })
                };
                let e0 = h0.join().unwrap();
                let e1 = h1.join().unwrap();
                e0.or(e1)
            });
            let err = err.expect("some thread must observe a failure");
            match err {
                ReplayError::Divergence(d) => {
                    assert_eq!(d.actual_site, wrong, "{scheme:?}");
                }
                ReplayError::Aborted => { /* the other thread diverged first */ }
                other => panic!("{scheme:?}: unexpected error {other}"),
            }
            assert!(replay.failure().is_some(), "{scheme:?}");
            let _ = replay.finish().unwrap();
        }
    }

    #[test]
    fn divergence_report_carries_admitted_history() {
        // Deterministic single-thread DC run: 5 good accesses, then the
        // replay takes a wrong turn. The report must show the accesses the
        // domain admitted before the divergence, newest first.
        let session = Session::record(Scheme::Dc, 1);
        {
            let ctx = session.register_thread(0);
            for _ in 0..5 {
                ctx.gate(SITE, AccessKind::Load, || ());
            }
            ctx.gate(SITE, AccessKind::Store, || ());
        }
        let bundle = session.finish().unwrap().bundle.unwrap();

        let replay = Session::replay(bundle).unwrap();
        let err = {
            let ctx = replay.register_thread(0);
            for _ in 0..5 {
                ctx.try_gate(SITE, AccessKind::Load, || ()).unwrap();
            }
            // Recorded a store at SITE; the program does a load elsewhere.
            ctx.try_gate(SiteId(0xbad), AccessKind::Load, || ())
                .unwrap_err()
        };
        match err {
            ReplayError::Divergence(d) => {
                assert_eq!(d.domain, 0);
                assert_eq!(d.history.len(), 5, "all admitted accesses retained");
                // Newest first; every entry is one of the good loads.
                assert!(d
                    .history
                    .iter()
                    .all(|r| r.site == SITE && r.kind == AccessKind::Load && r.thread == 0));
                assert!(d.history[0].clock > d.history[4].clock);
                let msg = d.to_string();
                assert!(msg.contains("last 5 accesses"), "{msg}");
            }
            other => panic!("expected divergence, got {other}"),
        }
        let _ = replay.finish().unwrap();
    }

    #[test]
    fn zero_ring_capacity_disables_divergence_history() {
        let session = Session::record(Scheme::Dc, 1);
        {
            let ctx = session.register_thread(0);
            ctx.gate(SITE, AccessKind::Load, || ());
            ctx.gate(SITE, AccessKind::Store, || ());
        }
        let bundle = session.finish().unwrap().bundle.unwrap();
        let cfg = SessionConfig {
            ring_capacity: 0,
            ..Default::default()
        };
        let replay = Session::replay_with(bundle, cfg).unwrap();
        let err = {
            let ctx = replay.register_thread(0);
            ctx.try_gate(SITE, AccessKind::Load, || ()).unwrap();
            ctx.try_gate(SiteId(0xbad), AccessKind::Load, || ())
                .unwrap_err()
        };
        match err {
            ReplayError::Divergence(d) => assert!(d.history.is_empty()),
            other => panic!("expected divergence, got {other}"),
        }
        let _ = replay.finish().unwrap();
    }

    #[test]
    fn replay_detects_trace_exhaustion() {
        for scheme in Scheme::ALL {
            let (_, _, bundle) = record_racy(scheme, 2, 3);
            let replay = Session::replay(bundle).unwrap();
            // Thread 0 performs one extra gated access beyond its recording.
            let errs = std::thread::scope(|s| {
                let mut handles = Vec::new();
                for tid in 0..2u32 {
                    let ctx = replay.register_thread(tid);
                    handles.push(s.spawn(move || {
                        let extra = if ctx.tid() == 0 { 1 } else { 0 };
                        let mut first_err = None;
                        for _ in 0..(3 + extra) {
                            for kind in [AccessKind::Load, AccessKind::Store] {
                                if let Err(e) = ctx.try_gate(SITE, kind, || ()) {
                                    first_err.get_or_insert(e);
                                }
                            }
                        }
                        first_err
                    }));
                }
                handles
                    .into_iter()
                    .filter_map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            });
            assert!(
                errs.iter().any(|e| matches!(
                    e,
                    ReplayError::TraceExhausted { .. } | ReplayError::Aborted
                )),
                "{scheme:?}: got {errs:?}"
            );
            let _ = replay.finish().unwrap();
        }
    }

    #[test]
    fn replay_watchdog_times_out_when_predecessor_never_arrives() {
        // A DC trace where thread 0's second access (clock 2) follows an
        // access of thread 1 (clock 1). Replay with thread 1 never gating:
        // thread 0 must time out (not hang) waiting for clock 1.
        let mk_thread = |values: Vec<u64>, kinds: Vec<u8>| crate::trace::ThreadTrace {
            sites: Some(vec![SITE.raw(); values.len()]),
            kinds: Some(kinds),
            values,
        };
        let bundle = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 1,
            threads: vec![
                mk_thread(
                    vec![0, 2],
                    vec![AccessKind::Load.code(), AccessKind::Store.code()],
                ),
                mk_thread(
                    vec![1, 3],
                    vec![AccessKind::Load.code(), AccessKind::Store.code()],
                ),
            ],
            st: vec![],
        };
        let cfg = SessionConfig {
            spin: SpinConfig {
                spin_hints: 8,
                timeout: Some(Duration::from_millis(100)),
            },
            ..Default::default()
        };
        let replay = Session::replay_with(bundle, cfg).unwrap();
        let err = std::thread::scope(|s| {
            let ctx0 = replay.register_thread(0);
            let ctx1 = replay.register_thread(1);
            let h = s.spawn(move || {
                let mut first_err = None;
                for kind in [AccessKind::Load, AccessKind::Store] {
                    if let Err(e) = ctx0.try_gate(SITE, kind, || ()) {
                        first_err.get_or_insert(e);
                    }
                }
                first_err
            });
            drop(ctx1); // thread 1 exits without gating
            h.join().unwrap()
        });
        match err {
            Some(ReplayError::Timeout { .. }) => {}
            other => panic!("expected watchdog timeout, got {other:?}"),
        }
        let report = replay.finish().unwrap();
        assert_eq!(report.fully_consumed, Some(false));
        assert!(report.failure.unwrap().contains("watchdog"));
    }

    #[test]
    fn ticket_gate_traces_identical_to_locked_gate() {
        // The lock-free fast path must be trace-invisible: a deterministic
        // (sequentially driven) workload recorded with the ticket gate and
        // with the legacy mutex must produce *equal* bundles, for every
        // scheme — `TraceBundle: Eq` makes this the D=1 byte-identity pin.
        for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
            let bundles = [true, false].map(|ticket_gate| {
                let session = Session::record_with(
                    scheme,
                    2,
                    SessionConfig {
                        ticket_gate,
                        ..Default::default()
                    },
                );
                let ctx0 = session.register_thread(0);
                let ctx1 = session.register_thread(1);
                // A fixed interleaving, driven from this one test thread.
                ctx0.gate(SITE, AccessKind::Load, || ());
                ctx1.gate(SITE, AccessKind::Store, || ());
                ctx1.gate(SiteId(9), AccessKind::Store, || ());
                ctx0.gate(SiteId(9), AccessKind::Load, || ());
                drop(ctx0);
                drop(ctx1);
                session.finish().unwrap().bundle.unwrap()
            });
            assert_eq!(bundles[0], bundles[1], "trace diverged for {scheme:?}");
        }
        // Publish batching is record-side communication elision only — at
        // D=1 it must leave the DE trace untouched as well.
        let bundles = [1u32, 4].map(|publish_batch| {
            let session = Session::record_with(
                Scheme::De,
                1,
                SessionConfig {
                    publish_batch,
                    ..Default::default()
                },
            );
            let ctx = session.register_thread(0);
            for _ in 0..3 {
                ctx.gate(SITE, AccessKind::Store, || ());
            }
            drop(ctx);
            session.finish().unwrap().bundle.unwrap()
        });
        assert_eq!(bundles[0], bundles[1], "publish batching changed the trace");
    }

    #[test]
    fn timed_out_gate_retries_without_consuming_records() {
        // Regression: the replay cursor used to advance with `fetch_add`
        // *before* the turnstile wait could fail, so a timed-out try_gate
        // permanently consumed the record and a retry silently skipped it.
        // Same trace shape as the watchdog test — thread 0 owns clocks
        // {0, 2}, thread 1 owns {1, 3} — but driven to completion from one
        // test thread: the timed-out access is retried after the
        // predecessor arrives and must replay the *same* record.
        let mk_thread = |values: Vec<u64>| crate::trace::ThreadTrace {
            sites: Some(vec![SITE.raw(); values.len()]),
            kinds: Some(vec![AccessKind::Load.code(), AccessKind::Store.code()]),
            values,
        };
        let bundle = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 1,
            threads: vec![mk_thread(vec![0, 2]), mk_thread(vec![1, 3])],
            st: vec![],
        };
        let cfg = SessionConfig {
            spin: SpinConfig {
                spin_hints: 8,
                timeout: Some(Duration::from_millis(50)),
            },
            ..Default::default()
        };
        let replay = Session::replay_with(bundle, cfg).unwrap();
        let ctx0 = replay.register_thread(0);
        let ctx1 = replay.register_thread(1);
        // Clock 0: thread 0's load is first in the recorded order.
        ctx0.try_gate(SITE, AccessKind::Load, || ()).unwrap();
        // Thread 0's store needs clock 2, but clock 1 (thread 1's load)
        // has not replayed yet — the watchdog must fire...
        match ctx0.try_gate(SITE, AccessKind::Store, || ()) {
            Err(ReplayError::Timeout { .. }) => {}
            other => panic!("expected watchdog timeout, got {other:?}"),
        }
        // ...without consuming the record or aborting the other waiters.
        ctx1.try_gate(SITE, AccessKind::Load, || ()).unwrap();
        // Retry replays the same record (clock 2) exactly once.
        ctx0.try_gate(SITE, AccessKind::Store, || ()).unwrap();
        ctx1.try_gate(SITE, AccessKind::Store, || ()).unwrap();
        drop(ctx0);
        drop(ctx1);
        let report = replay.finish().unwrap();
        // Every record consumed exactly once despite the failed attempt.
        assert_eq!(report.fully_consumed, Some(true));
        // The transient timeout is still surfaced as the first failure.
        assert!(report.failure.unwrap().contains("watchdog"));
    }

    #[test]
    fn critical_kind_serializes_under_de() {
        // Critical sections must not share epochs even under DE.
        let session = Session::record(Scheme::De, 3);
        std::thread::scope(|s| {
            for tid in 0..3 {
                let ctx = session.register_thread(tid);
                s.spawn(move || {
                    for _ in 0..5 {
                        ctx.gate(SITE, AccessKind::Critical, || ());
                    }
                });
            }
        });
        let report = session.finish().unwrap();
        let hist = report.epoch_histogram().unwrap();
        assert_eq!(hist.max_size(), 1, "criticals serialize: {hist}");
        assert_eq!(hist.total_accesses(), 15);
    }

    #[test]
    fn de_record_stats_count_deferred_stores() {
        let session = Session::record(Scheme::De, 2);
        std::thread::scope(|s| {
            for tid in 0..2 {
                let ctx = session.register_thread(tid);
                s.spawn(move || {
                    for _ in 0..20 {
                        ctx.gate(SITE, AccessKind::Store, || ());
                    }
                });
            }
        });
        let report = session.finish().unwrap();
        assert!(
            report.stats.deferred_finalizations > 0,
            "store runs must produce deferred finalizations"
        );
    }

    #[test]
    fn st_replay_comms_exceed_dc_replay_comms() {
        // §IV-C2: ST replay needs up to 2 inter-thread comms per region
        // (next_tid hand-off + lock release), DC/DE exactly 1. A recorded
        // run on few cores can have long same-thread runs where reader ==
        // replayed thread (the paper's 1-comm special case), so replay a
        // *synthetic round-robin* ST trace where the reader is almost never
        // the replayed thread.
        let nthreads = 4u32;
        let iters = 30usize;

        // DC: comms per gate is exactly 1 by construction.
        let (sum, _, dc_bundle) = record_racy(Scheme::Dc, nthreads, iters);
        let replay = Session::replay(dc_bundle).unwrap();
        let (rsum, _) = racy_workload(&replay, nthreads, iters);
        assert_eq!(rsum, sum);
        let report = replay.finish().unwrap();
        assert_eq!(report.failure, None);
        let dc = report.stats.comms_per_gate();
        assert!(
            (dc - 1.0).abs() < 1e-9,
            "DC replay is 1 comm/gate, got {dc}"
        );

        // ST: round-robin recorded order L0 L1 L2 L3 S0 S1 S2 S3 ...
        let mut tids = Vec::new();
        let mut kinds = Vec::new();
        for _ in 0..iters {
            for kind in [AccessKind::Load, AccessKind::Store] {
                for t in 0..nthreads {
                    tids.push(t);
                    kinds.push(kind.code());
                }
            }
        }
        let n = tids.len();
        let st_bundle = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::St,
            nthreads,
            domains: 1,
            threads: vec![Default::default(); nthreads as usize],
            st: vec![crate::trace::StTrace {
                tids,
                sites: Some(vec![SITE.raw(); n]),
                kinds: Some(kinds),
            }],
        };
        let replay = Session::replay(st_bundle).unwrap();
        let (_, order) = racy_workload(&replay, nthreads, iters);
        let report = replay.finish().unwrap();
        assert_eq!(report.failure, None);
        assert_eq!(report.fully_consumed, Some(true));
        // The enforced store order is the round-robin one.
        let expect: Vec<u64> = (0..iters).flat_map(|_| 0..u64::from(nthreads)).collect();
        assert_eq!(order, expect);
        let st = report.stats.comms_per_gate();
        assert!(
            st > dc,
            "ST replay ({st}) must communicate more than DC ({dc})"
        );
        assert!(st <= 2.0 + 1e-9, "at most 2 comms/gate, got {st}");
    }
}
