//! The global logical clock (record side) and the `next_clock` turnstile
//! (replay side) of DC/DE recording (paper Fig. 5).

use crate::error::ReplayError;
use crate::shim::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::site::SiteId;
use crate::stats::Stats;
use crate::sync::{SpinConfig, SpinWait};

/// The record-side `global_clock` of Fig. 5 line 22.
///
/// The clock is only ever advanced while the gate lock is held, so a plain
/// `fetch_add` with relaxed ordering would suffice; `AcqRel` is used so the
/// value is also safely readable by diagnostics outside the lock.
#[derive(Debug, Default)]
pub struct GlobalClock {
    value: AtomicU64,
}

impl GlobalClock {
    /// A clock starting at zero.
    #[must_use]
    pub const fn new() -> Self {
        GlobalClock {
            value: AtomicU64::new(0),
        }
    }

    /// `clock = global_clock++` — returns the pre-increment value.
    #[inline]
    pub fn tick(&self) -> u64 {
        self.value.fetch_add(1, Ordering::AcqRel)
    }

    /// Current value (number of clock assignments so far).
    #[inline]
    #[must_use]
    pub fn now(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

/// The replay-side `next_clock` counter of Fig. 5 lines 30–34.
///
/// * DC replay: a thread whose next recorded clock is `c` waits until the
///   turnstile equals `c` exactly ([`Turnstile::wait_exact`]).
/// * DE replay: a thread whose next recorded epoch is `e` waits until the
///   turnstile is **at least** `e` ([`Turnstile::wait_at_least`]) — all
///   accesses sharing an epoch are admitted together, which is precisely the
///   concurrency DE recording buys (§IV-D).
///
/// Every gate-out advances the turnstile by one, so its value always equals
/// the number of *completed* gated accesses. Under the contiguous-run epoch
/// policy the admission rule is safe; see `epoch.rs` for the argument.
#[derive(Debug, Default)]
pub struct Turnstile {
    next: AtomicU64,
    aborted: AtomicBool,
}

impl Turnstile {
    /// A turnstile starting at zero completed accesses.
    #[must_use]
    pub const fn new() -> Self {
        Turnstile::starting_at(0)
    }

    /// A turnstile that starts as if `base` accesses had already
    /// completed — the replay entry point for flight-recorder windows,
    /// whose checkpoint records how many accesses each domain completed
    /// before the retained history begins.
    #[must_use]
    pub const fn starting_at(base: u64) -> Self {
        Turnstile {
            next: AtomicU64::new(base),
            aborted: AtomicBool::new(false),
        }
    }

    /// Current number of completed accesses.
    #[inline]
    #[must_use]
    pub fn current(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }

    /// Mark the whole replay as failed, releasing all waiters with
    /// [`ReplayError::Aborted`]. Idempotent.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// Whether [`Turnstile::abort`] has been called.
    #[must_use]
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// DC wait: block until the turnstile equals `clock`.
    ///
    /// Returns the number of spin iterations (a proxy for the wait cost
    /// reported in §VI-A).
    pub fn wait_exact(
        &self,
        clock: u64,
        thread: u32,
        site: SiteId,
        cfg: &SpinConfig,
        stats: &Stats,
    ) -> Result<u64, ReplayError> {
        self.wait_impl(clock, thread, site, cfg, stats, |cur| cur == clock)
    }

    /// DE wait: block until the turnstile is at least `epoch`.
    pub fn wait_at_least(
        &self,
        epoch: u64,
        thread: u32,
        site: SiteId,
        cfg: &SpinConfig,
        stats: &Stats,
    ) -> Result<u64, ReplayError> {
        self.wait_impl(epoch, thread, site, cfg, stats, |cur| cur >= epoch)
    }

    fn wait_impl(
        &self,
        target: u64,
        thread: u32,
        site: SiteId,
        cfg: &SpinConfig,
        stats: &Stats,
        admitted: impl Fn(u64) -> bool,
    ) -> Result<u64, ReplayError> {
        if admitted(self.next.load(Ordering::Acquire)) {
            return Ok(0);
        }
        stats.bump_waits();
        let mut spin = SpinWait::new(cfg);
        loop {
            if self.is_aborted() {
                return Err(ReplayError::Aborted);
            }
            let cur = self.next.load(Ordering::Acquire);
            if admitted(cur) {
                stats.add_spin_iters(spin.iterations());
                return Ok(spin.iterations());
            }
            spin.step(thread, site, target, || self.next.load(Ordering::Acquire))?;
        }
    }

    /// `next_clock++` at gate-out (Fig. 5 line 34). Counts one inter-thread
    /// communication: the new value is what wakes the next waiter (DC-1 in
    /// Fig. 7).
    #[inline]
    pub fn advance(&self, stats: &Stats) -> u64 {
        stats.bump_comms(1);
        self.next.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Advance the completed-access count *without* counting a paper
    /// communication. ST replay uses this in multi-domain sessions: the
    /// baton hand-off is ST's real communication; the turnstile only
    /// mirrors the completion count so other domains' cross-domain edges
    /// have something to wait on.
    #[inline]
    pub fn complete(&self) -> u64 {
        self.next.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn clock_ticks_sequentially() {
        let c = GlobalClock::new();
        assert_eq!(c.tick(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn turnstile_exact_admits_in_order() {
        let t = Arc::new(Turnstile::new());
        let stats = Arc::new(Stats::new());
        let cfg = SpinConfig::default();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));

        std::thread::scope(|s| {
            // Three waiters with clocks 2, 1, 0 — they must complete 0,1,2.
            for clock in [2u64, 1, 0] {
                let t = Arc::clone(&t);
                let stats = Arc::clone(&stats);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    t.wait_exact(clock, clock as u32, SiteId(1), &cfg, &stats)
                        .unwrap();
                    order.lock().push(clock);
                    t.advance(&stats);
                });
            }
        });
        assert_eq!(*order.lock(), vec![0, 1, 2]);
        assert_eq!(t.current(), 3);
    }

    #[test]
    fn turnstile_at_least_admits_epoch_group_concurrently() {
        let t = Arc::new(Turnstile::new());
        let stats = Arc::new(Stats::new());
        let cfg = SpinConfig::default();
        // Epochs 0,0,0 then 3: first three admitted immediately in any order.
        let concurrent = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for tid in 0..3u32 {
                let t = Arc::clone(&t);
                let stats = Arc::clone(&stats);
                let concurrent = Arc::clone(&concurrent);
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    t.wait_at_least(0, tid, SiteId(1), &cfg, &stats).unwrap();
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    // Linger long enough for overlap to be observable.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                    t.advance(&stats);
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "same-epoch accesses should overlap (peak {})",
            peak.load(Ordering::SeqCst)
        );
        // The epoch-3 access is admitted only after all three completed.
        t.wait_at_least(3, 9, SiteId(1), &cfg, &stats).unwrap();
    }

    #[test]
    fn abort_releases_waiters() {
        let t = Arc::new(Turnstile::new());
        let stats = Arc::new(Stats::new());
        let cfg = SpinConfig {
            spin_hints: 4,
            timeout: None,
        };
        std::thread::scope(|s| {
            let t2 = Arc::clone(&t);
            let stats2 = Arc::clone(&stats);
            let waiter = s.spawn(move || t2.wait_exact(100, 0, SiteId(1), &cfg, &stats2));
            std::thread::sleep(std::time::Duration::from_millis(10));
            t.abort();
            match waiter.join().unwrap() {
                Err(ReplayError::Aborted) => {}
                other => panic!("expected abort, got {other:?}"),
            }
        });
    }

    #[test]
    fn timeout_reports_observed_value() {
        let t = Turnstile::new();
        let stats = Stats::new();
        let cfg = SpinConfig {
            spin_hints: 4,
            timeout: Some(std::time::Duration::from_millis(15)),
        };
        match t.wait_exact(5, 2, SiteId(9), &cfg, &stats) {
            Err(ReplayError::Timeout {
                observed, thread, ..
            }) => {
                assert_eq!(observed, 0);
                assert_eq!(thread, 2);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}
