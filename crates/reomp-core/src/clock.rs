//! The global logical clock (record side) and the `next_clock` turnstile
//! (replay side) of DC/DE recording (paper Fig. 5), plus the lock-free
//! [`TicketGate`] that replaces the gate mutex on the record hot path.

use crate::error::ReplayError;
use crate::shim::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::site::SiteId;
use crate::stats::Stats;
use crate::sync::{Backoff, SpinConfig, SpinWait};

/// The record-side `global_clock` of Fig. 5 line 22.
///
/// The clock is only ever advanced while the gate lock is held, so a plain
/// `fetch_add` with relaxed ordering would suffice; `AcqRel` is used so the
/// value is also safely readable by diagnostics outside the lock.
#[derive(Debug, Default)]
pub struct GlobalClock {
    value: AtomicU64,
}

impl GlobalClock {
    /// A clock starting at zero.
    #[must_use]
    pub const fn new() -> Self {
        GlobalClock {
            value: AtomicU64::new(0),
        }
    }

    /// `clock = global_clock++` — returns the pre-increment value.
    #[inline]
    pub fn tick(&self) -> u64 {
        self.value.fetch_add(1, Ordering::AcqRel)
    }

    /// Current value (number of clock assignments so far).
    #[inline]
    #[must_use]
    pub fn now(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

/// A lock-free FIFO ticket gate: the record-side fast path of a gate
/// domain (the record mode's counterpart of the replay [`Turnstile`]).
///
/// The paper serializes every gated region under the gate mutex `L`
/// (Fig. 5 lines 20–24). This gate keeps the *serialization* — regions
/// still execute one at a time, in ticket order, which is what makes the
/// recorded clocks a faithful execution order — but replaces the mutex
/// with one word of atomics: `enter` is a single `fetch_add` when the gate
/// is idle (the common, uncontended case), `exit` a single `fetch_add`.
/// No parking, no lock-owner bookkeeping, no `RawLocked` bracket.
///
/// # Protocol
///
/// Both halves live in one `AtomicU64`: the **ticket** counter in the high
/// 32 bits (bumped by `enter`), the **serving** counter in the low 32 bits
/// (bumped by `exit`). A thread enters by taking the next ticket; it holds
/// the gate when `serving == ticket`, and releases it by bumping `serving`.
/// Packing both counters into one word makes the ticket-grab itself the
/// synchronizing read: the `enter` RMW returns the serving count of the
/// moment the ticket was issued, so the idle-gate case enters with exactly
/// one atomic instruction and zero extra loads.
///
/// # Capacity
///
/// 32-bit halves bound a domain to `u32::MAX` gated accesses per record
/// run (≈ 4.3 billion; the `exit` of access 2³²−1 would carry into the
/// ticket half). `enter` panics on exhaustion instead of corrupting the
/// order — long runs shard across domains or stream in windows well before
/// that.
#[derive(Debug, Default)]
pub struct TicketGate {
    /// `ticket` (high 32 bits) | `serving` (low 32 bits).
    word: AtomicU64,
}

impl TicketGate {
    const TICKET_ONE: u64 = 1 << 32;

    /// An idle gate: next ticket 0, serving 0.
    #[must_use]
    pub const fn new() -> Self {
        TicketGate {
            word: AtomicU64::new(0),
        }
    }

    /// Take the next ticket and wait until it is served; returns the
    /// ticket for the matching [`TicketGate::exit`].
    ///
    /// The fetch_add's `Acquire` success ordering is load-bearing on the
    /// **immediate-entry** path: when the RMW observes `serving == ticket`
    /// it is reading the previous holder's `Release` exit, and that
    /// acquire/release pairing is what publishes the predecessor's gate
    /// state (clock, tracker) to us. Weakening it to `Relaxed` would let
    /// this thread enter on a stale view — the exact mutant the model
    /// sweep proves caught.
    #[inline]
    pub fn enter(&self) -> u32 {
        let w = self.word.fetch_add(Self::TICKET_ONE, Ordering::Acquire);
        let ticket = (w >> 32) as u32;
        assert!(
            ticket != u32::MAX,
            "ticket gate exhausted: 2^32 gated accesses in one domain \
             (shard across more domains or record in windows)"
        );
        if w as u32 == ticket {
            return ticket;
        }
        let mut backoff = Backoff::new();
        loop {
            backoff.snooze();
            // ORDERING: Acquire pairs with the predecessor's Release
            // `exit`, publishing the gate state it wrote before leaving.
            if self.word.load(Ordering::Acquire) as u32 == ticket {
                return ticket;
            }
        }
    }

    /// Release the gate to the next ticket holder. `ticket` must be the
    /// value the matching [`TicketGate::enter`] returned (it is unused at
    /// runtime but keeps the pairing explicit in the callers).
    #[inline]
    pub fn exit(&self, ticket: u32) {
        let _ = ticket;
        // ORDERING: Release publishes everything written inside the served
        // section to the successor's Acquire entry (RMW or spin load).
        self.word.fetch_add(1, Ordering::Release);
    }
}

/// The replay-side `next_clock` counter of Fig. 5 lines 30–34.
///
/// * DC replay: a thread whose next recorded clock is `c` waits until the
///   turnstile equals `c` exactly ([`Turnstile::wait_exact`]).
/// * DE replay: a thread whose next recorded epoch is `e` waits until the
///   turnstile is **at least** `e` ([`Turnstile::wait_at_least`]) — all
///   accesses sharing an epoch are admitted together, which is precisely the
///   concurrency DE recording buys (§IV-D).
///
/// Every gate-out advances the turnstile by one, so its value always equals
/// the number of *completed* gated accesses. Under the contiguous-run epoch
/// policy the admission rule is safe; see `epoch.rs` for the argument.
#[derive(Debug, Default)]
pub struct Turnstile {
    next: AtomicU64,
    aborted: AtomicBool,
}

impl Turnstile {
    /// A turnstile starting at zero completed accesses.
    #[must_use]
    pub const fn new() -> Self {
        Turnstile::starting_at(0)
    }

    /// A turnstile that starts as if `base` accesses had already
    /// completed — the replay entry point for flight-recorder windows,
    /// whose checkpoint records how many accesses each domain completed
    /// before the retained history begins.
    #[must_use]
    pub const fn starting_at(base: u64) -> Self {
        Turnstile {
            next: AtomicU64::new(base),
            aborted: AtomicBool::new(false),
        }
    }

    /// Current number of completed accesses.
    #[inline]
    #[must_use]
    pub fn current(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }

    /// Mark the whole replay as failed, releasing all waiters with
    /// [`ReplayError::Aborted`]. Idempotent.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// Whether [`Turnstile::abort`] has been called.
    #[must_use]
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// DC wait: block until the turnstile equals `clock`.
    ///
    /// Returns the number of spin iterations (a proxy for the wait cost
    /// reported in §VI-A).
    pub fn wait_exact(
        &self,
        clock: u64,
        thread: u32,
        site: SiteId,
        cfg: &SpinConfig,
        stats: &Stats,
    ) -> Result<u64, ReplayError> {
        self.wait_impl(clock, thread, site, cfg, stats, |cur| cur == clock)
    }

    /// DE wait: block until the turnstile is at least `epoch`.
    pub fn wait_at_least(
        &self,
        epoch: u64,
        thread: u32,
        site: SiteId,
        cfg: &SpinConfig,
        stats: &Stats,
    ) -> Result<u64, ReplayError> {
        self.wait_impl(epoch, thread, site, cfg, stats, |cur| cur >= epoch)
    }

    fn wait_impl(
        &self,
        target: u64,
        thread: u32,
        site: SiteId,
        cfg: &SpinConfig,
        stats: &Stats,
        admitted: impl Fn(u64) -> bool,
    ) -> Result<u64, ReplayError> {
        if admitted(self.next.load(Ordering::Acquire)) {
            return Ok(0);
        }
        stats.bump_waits();
        let mut spin = SpinWait::new(cfg);
        loop {
            if self.is_aborted() {
                return Err(ReplayError::Aborted);
            }
            let cur = self.next.load(Ordering::Acquire);
            if admitted(cur) {
                stats.add_spin_iters(spin.iterations());
                return Ok(spin.iterations());
            }
            spin.step(thread, site, target, || self.next.load(Ordering::Acquire))?;
        }
    }

    /// `next_clock++` at gate-out (Fig. 5 line 34). Counts one inter-thread
    /// communication: the new value is what wakes the next waiter (DC-1 in
    /// Fig. 7).
    #[inline]
    pub fn advance(&self, stats: &Stats) -> u64 {
        stats.bump_comms(1);
        self.next.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Advance the completed-access count *without* counting a paper
    /// communication. ST replay uses this in multi-domain sessions: the
    /// baton hand-off is ST's real communication; the turnstile only
    /// mirrors the completion count so other domains' cross-domain edges
    /// have something to wait on.
    #[inline]
    pub fn complete(&self) -> u64 {
        self.next.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn clock_ticks_sequentially() {
        let c = GlobalClock::new();
        assert_eq!(c.tick(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn turnstile_exact_admits_in_order() {
        let t = Arc::new(Turnstile::new());
        let stats = Arc::new(Stats::new());
        let cfg = SpinConfig::default();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));

        std::thread::scope(|s| {
            // Three waiters with clocks 2, 1, 0 — they must complete 0,1,2.
            for clock in [2u64, 1, 0] {
                let t = Arc::clone(&t);
                let stats = Arc::clone(&stats);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    t.wait_exact(clock, clock as u32, SiteId(1), &cfg, &stats)
                        .unwrap();
                    order.lock().push(clock);
                    t.advance(&stats);
                });
            }
        });
        assert_eq!(*order.lock(), vec![0, 1, 2]);
        assert_eq!(t.current(), 3);
    }

    #[test]
    fn turnstile_at_least_admits_epoch_group_concurrently() {
        let t = Arc::new(Turnstile::new());
        let stats = Arc::new(Stats::new());
        let cfg = SpinConfig::default();
        // Epochs 0,0,0 then 3: first three admitted immediately in any order.
        let concurrent = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for tid in 0..3u32 {
                let t = Arc::clone(&t);
                let stats = Arc::clone(&stats);
                let concurrent = Arc::clone(&concurrent);
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    t.wait_at_least(0, tid, SiteId(1), &cfg, &stats).unwrap();
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    // Linger long enough for overlap to be observable.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                    t.advance(&stats);
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "same-epoch accesses should overlap (peak {})",
            peak.load(Ordering::SeqCst)
        );
        // The epoch-3 access is admitted only after all three completed.
        t.wait_at_least(3, 9, SiteId(1), &cfg, &stats).unwrap();
    }

    #[test]
    fn abort_releases_waiters() {
        let t = Arc::new(Turnstile::new());
        let stats = Arc::new(Stats::new());
        let cfg = SpinConfig {
            spin_hints: 4,
            timeout: None,
        };
        std::thread::scope(|s| {
            let t2 = Arc::clone(&t);
            let stats2 = Arc::clone(&stats);
            let waiter = s.spawn(move || t2.wait_exact(100, 0, SiteId(1), &cfg, &stats2));
            std::thread::sleep(std::time::Duration::from_millis(10));
            t.abort();
            match waiter.join().unwrap() {
                Err(ReplayError::Aborted) => {}
                other => panic!("expected abort, got {other:?}"),
            }
        });
    }

    #[test]
    fn ticket_gate_single_thread_is_sequential() {
        let g = TicketGate::new();
        for expect in 0..100u32 {
            let t = g.enter();
            assert_eq!(t, expect, "tickets are issued in order");
            g.exit(t);
        }
    }

    #[test]
    fn ticket_gate_mutual_exclusion_under_contention() {
        let g = Arc::new(TicketGate::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = Arc::clone(&g);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    let t = g.enter();
                    // Non-atomic-looking increment inside the served section:
                    // lost updates would betray broken exclusion.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    g.exit(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 10_000);
    }

    #[test]
    fn ticket_gate_serves_in_fifo_order() {
        // One holder parks the gate; two queued threads must be admitted
        // in the order they entered, not by who spins hardest.
        let g = Arc::new(TicketGate::new());
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let t0 = g.enter();
        std::thread::scope(|s| {
            let mut waiters = Vec::new();
            for _ in 0..2 {
                let g = Arc::clone(&g);
                let order = Arc::clone(&order);
                waiters.push(s.spawn(move || {
                    let t = g.enter();
                    order.lock().push(t);
                    g.exit(t);
                }));
                // Let each waiter take its ticket before the next spawns.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            g.exit(t0);
        });
        assert_eq!(*order.lock(), vec![1, 2], "FIFO admission by ticket");
    }

    #[test]
    fn timeout_reports_observed_value() {
        let t = Turnstile::new();
        let stats = Stats::new();
        let cfg = SpinConfig {
            spin_hints: 4,
            timeout: Some(std::time::Duration::from_millis(15)),
        };
        match t.wait_exact(5, 2, SiteId(9), &cfg, &stats) {
            Err(ReplayError::Timeout {
                observed, thread, ..
            }) => {
                assert_eq!(observed, 0);
                assert_eq!(thread, 2);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}
