//! Backend seam for the crate's synchronization primitives.
//!
//! Every sync type the gate primitives are built from — atomics, the
//! guard-style mutex, `Instant`, `yield_now`, `spin_loop` — is imported
//! through this module instead of `std::sync`/`parking_lot` directly;
//! that includes the lock-free record fast path
//! ([`TicketGate`](crate::clock::TicketGate) and its `Backoff` spin,
//! whose `spin_loop`/`yield_now` hints become scheduling points
//! in-model). A
//! normal build re-exports the real types, so there is zero overhead and
//! no behaviour change. Building with the `model` cargo feature (or
//! loom-style with `RUSTFLAGS="--cfg reomp_model"`) swaps in the vendored
//! `shuttle` model checker's instrumented shims, which dispatch at
//! runtime: outside a `shuttle::check` execution they forward to the same
//! `std` types; inside one, every operation becomes a scheduling point
//! against shuttle's store-buffer memory model. That runtime dispatch is
//! what makes the feature safe to unify workspace-wide — `reomp-model`
//! turning it on does not perturb the tier-1 test suite.
//!
//! Deliberately **not** routed through the seam:
//!
//! * [`crate::stats`] counters — monotonic diagnostics that never feed
//!   back into control flow; shimming them would only blow up the model's
//!   state space.
//! * [`crate::store`] internals and the session's sink `RwLock` — only
//!   ever contended by the single dumping/finishing thread in the
//!   harnesses, so they cannot block a controlled thread against a parked
//!   one (the one hazard an un-shimmed lock poses inside the model).

#[cfg(not(any(reomp_model, feature = "model")))]
mod backend {
    pub use parking_lot::Mutex;
    pub use std::hint::spin_loop;
    pub use std::sync::atomic;
    pub use std::thread::yield_now;
    pub use std::time::Instant;
}

#[cfg(any(reomp_model, feature = "model"))]
mod backend {
    pub use shuttle::hint::spin_loop;
    pub use shuttle::sync::atomic;
    pub use shuttle::sync::Mutex;
    pub use shuttle::thread::yield_now;
    pub use shuttle::time::Instant;
}

pub(crate) use backend::*;
