//! In-memory trace representations (the contents of record files).
//!
//! * DC/DE produce one [`ThreadTrace`] per thread (Fig. 3-(b)): the
//!   sequence of clock/epoch values at which that thread passed gates, in
//!   the thread's program order.
//! * ST produces a single shared [`StTrace`] (Fig. 3-(a)): the global
//!   sequence of thread IDs in gate-passage order.
//!
//! Traces optionally carry the [`SiteId`] and [`AccessKind`] of every
//! access ("validated" traces) so replay divergence can be detected.
//!
//! # Gate domains
//!
//! A bundle recorded with `D` *gate domains* (see
//! [`SessionConfig::domains`](crate::session::SessionConfig::domains))
//! holds one independent order stream **per domain**: sites are statically
//! partitioned across domains, each domain runs its own gate lock and
//! clock, and ordering is only recorded *within* a domain. The layout is
//! flat and domain-major: `threads[dom * nthreads + tid]` is thread `tid`'s
//! stream in domain `dom`, and `st[dom]` is domain `dom`'s shared ST
//! stream. With `D = 1` (the default) this degenerates to exactly the
//! classic single-gate layout — `threads[tid]` indexes as before.
//!
//! Multi-domain bundles additionally carry:
//!
//! * [`TraceBundle::plan`] — the [`DomainPlan`] the recording partitioned
//!   sites with, so replay reconstructs the identical assignment (`None`
//!   means the legacy `site.raw() % D` partition of plan-less recordings);
//! * [`TraceBundle::edges`] — sparse **cross-domain happens-before
//!   edges** ([`CrossDomainEdge`]) stamped at barrier and critical-section
//!   gates. Each edge anchors at one recorded access and lists the minimum
//!   number of completed accesses the recording observed in *other*
//!   domains at that point; replay's per-domain turnstiles wait for those
//!   counts before admitting the anchor, restoring inter-domain order at
//!   synchronization points.

use crate::error::TraceError;
use crate::plan::DomainPlan;
use crate::session::Scheme;
use crate::site::{AccessKind, SiteId};
use std::collections::HashMap;

/// Per-thread record stream (DC/DE).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Clock (DC) or epoch (DE) of each gate passage, in program order.
    pub values: Vec<u64>,
    /// Raw site hash per access, when recorded with validation.
    pub sites: Option<Vec<u64>>,
    /// Kind code per access, when recorded with validation.
    pub kinds: Option<Vec<u8>>,
}

impl ThreadTrace {
    /// Number of recorded accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no accesses were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Site of access `i`, if validation data is present.
    #[must_use]
    pub fn site_at(&self, i: usize) -> Option<SiteId> {
        self.sites
            .as_ref()
            .and_then(|s| s.get(i))
            .map(|&raw| SiteId(raw))
    }

    /// Kind of access `i`, if validation data is present.
    #[must_use]
    pub fn kind_at(&self, i: usize) -> Option<AccessKind> {
        self.kinds
            .as_ref()
            .and_then(|k| k.get(i))
            .and_then(|&code| AccessKind::from_code(code))
    }

    pub(crate) fn check(&self, who: &str) -> Result<(), TraceError> {
        if let Some(sites) = &self.sites {
            if sites.len() != self.values.len() {
                return Err(TraceError::Corrupt(format!(
                    "{who}: {} sites for {} values",
                    sites.len(),
                    self.values.len()
                )));
            }
        }
        if let Some(kinds) = &self.kinds {
            if kinds.len() != self.values.len() {
                return Err(TraceError::Corrupt(format!(
                    "{who}: {} kinds for {} values",
                    kinds.len(),
                    self.values.len()
                )));
            }
            if let Some(bad) = kinds.iter().find(|&&c| AccessKind::from_code(c).is_none()) {
                return Err(TraceError::Corrupt(format!("{who}: bad kind code {bad}")));
            }
        }
        Ok(())
    }
}

/// The single shared record stream of ST recording.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StTrace {
    /// Thread IDs in the order threads passed gates.
    pub tids: Vec<u32>,
    /// Raw site hash per access, when recorded with validation.
    pub sites: Option<Vec<u64>>,
    /// Kind code per access, when recorded with validation.
    pub kinds: Option<Vec<u8>>,
}

impl StTrace {
    /// Number of recorded accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// Whether no accesses were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    pub(crate) fn check(&self, nthreads: u32) -> Result<(), TraceError> {
        if let Some(bad) = self.tids.iter().find(|&&t| t >= nthreads) {
            return Err(TraceError::Corrupt(format!(
                "st trace references thread {bad} but only {nthreads} threads recorded"
            )));
        }
        if let Some(sites) = &self.sites {
            if sites.len() != self.tids.len() {
                return Err(TraceError::Corrupt("st trace site column length".into()));
            }
        }
        if let Some(kinds) = &self.kinds {
            if kinds.len() != self.tids.len() {
                return Err(TraceError::Corrupt("st trace kind column length".into()));
            }
        }
        Ok(())
    }
}

/// One cross-domain happens-before edge.
///
/// Recorded at a barrier or critical-section gate of a multi-domain
/// session: *before* the anchor access (identified by its domain plus its
/// position) may run in replay, every listed domain's turnstile must have
/// completed at least the listed number of accesses. The counts are
/// snapshots of the other domains' record-side clocks taken under the
/// anchor's gate lock, so the recorded execution itself always satisfies
/// its own edges — replay enforcing them can never deadlock on a genuine
/// trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossDomainEdge {
    /// Gate domain of the anchor access.
    pub domain: u32,
    /// Thread that performed the anchor access (diagnostic for DC/DE,
    /// where it also keys the anchor; informational for ST).
    pub thread: u32,
    /// Position of the anchor: the access's index in `thread`'s per-domain
    /// stream (DC/DE), or its index in the domain's shared stream (ST).
    pub seq: u64,
    /// Sparse per-domain clock stamps: `(other domain, minimum completed
    /// access count)`. Never names the anchor's own domain.
    pub waits: Vec<(u32, u64)>,
}

/// Why a flight-recorder window was materialized into a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DumpTrigger {
    /// Explicit [`Session::dump`](crate::session::Session::dump) call.
    #[default]
    Manual,
    /// The process panic hook fired while recording.
    Panic,
    /// A linked replay session reported a divergence.
    Divergence,
    /// The race detector reported a race.
    Race,
}

impl DumpTrigger {
    /// Every trigger, for sweeps in tests and docs.
    pub const ALL: [DumpTrigger; 4] = [
        DumpTrigger::Manual,
        DumpTrigger::Panic,
        DumpTrigger::Divergence,
        DumpTrigger::Race,
    ];

    /// Stable on-disk code (checkpoint section byte).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            DumpTrigger::Manual => 0,
            DumpTrigger::Panic => 1,
            DumpTrigger::Divergence => 2,
            DumpTrigger::Race => 3,
        }
    }

    /// Inverse of [`DumpTrigger::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => DumpTrigger::Manual,
            1 => DumpTrigger::Panic,
            2 => DumpTrigger::Divergence,
            3 => DumpTrigger::Race,
            _ => return None,
        })
    }

    /// Human-readable trigger name (used by `reomp-inspect`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DumpTrigger::Manual => "manual",
            DumpTrigger::Panic => "panic",
            DumpTrigger::Divergence => "divergence",
            DumpTrigger::Race => "race",
        }
    }
}

impl std::fmt::Display for DumpTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Checkpoint of a bounded (flight-recorder) recording: the state replay
/// needs to start *mid-run*, at the front of the retained window, instead
/// of at clock 0.
///
/// A flight recorder retains only the last N chunks per (thread, domain)
/// stream; everything older is evicted. Eviction is domain-prefix-shaped
/// (all records with clock `< base[d]` are gone, nothing newer is), so a
/// single per-domain count captures the whole discarded history: replay
/// seeds domain `d`'s turnstile at `base[d]` and the retained records —
/// whose clocks all are `>= base[d]` — admit exactly as they did live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Per-domain count of records evicted before the retained window —
    /// the clock value the window starts at (`0`: nothing evicted there).
    pub base: Vec<u64>,
    /// DE only: per-domain clock floor at dump time (the epoch trackers
    /// were flushed down to these). Empty for ST/DC. Provenance for
    /// inspection; replay derives everything it needs from `base`.
    pub floors: Vec<u64>,
    /// Retained-window size the recorder ran with (chunks per stream).
    pub window: u32,
    /// What caused the window to be materialized.
    pub trigger: DumpTrigger,
}

impl Checkpoint {
    /// Clock base of domain `dom` (0 when out of range, matching the
    /// unbounded default).
    #[must_use]
    pub fn base_of(&self, dom: u32) -> u64 {
        self.base.get(dom as usize).copied().unwrap_or(0)
    }

    /// Structural consistency against the owning bundle's domain count.
    pub fn check(&self, domains: u32) -> Result<(), TraceError> {
        if self.base.len() != domains as usize {
            return Err(TraceError::Corrupt(format!(
                "checkpoint has {} clock bases for {domains} domains",
                self.base.len()
            )));
        }
        if !self.floors.is_empty() && self.floors.len() != domains as usize {
            return Err(TraceError::Corrupt(format!(
                "checkpoint has {} epoch floors for {domains} domains",
                self.floors.len()
            )));
        }
        Ok(())
    }
}

/// A complete recording: everything needed to replay one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBundle {
    /// Recording scheme that produced (and must replay) this bundle.
    pub scheme: Scheme,
    /// Number of threads in the recorded run.
    pub nthreads: u32,
    /// Number of gate domains (`1` = classic single-gate recording).
    pub domains: u32,
    /// Per-domain per-thread streams, flat and domain-major: index
    /// `dom * nthreads + tid`. Empty traces for ST, which uses `st`.
    pub threads: Vec<ThreadTrace>,
    /// Shared ST streams, one per domain (non-empty iff
    /// `scheme == Scheme::St`).
    pub st: Vec<StTrace>,
    /// The site → domain plan the recording was partitioned with; `None`
    /// for single-domain bundles and for plan-less (legacy modulo)
    /// multi-domain recordings.
    pub plan: Option<DomainPlan>,
    /// Cross-domain happens-before edges (empty for single-domain
    /// bundles and for traces from before edges existed).
    pub edges: Vec<CrossDomainEdge>,
    /// Flight-recorder checkpoint of a bounded (windowed) recording:
    /// clocks start at [`Checkpoint::base`] instead of 0. `None` for
    /// classic unbounded bundles.
    pub checkpoint: Option<Checkpoint>,
}

impl TraceBundle {
    /// Thread `tid`'s stream in domain `dom`.
    ///
    /// # Panics
    /// Panics when `dom >= domains` or `tid >= nthreads`.
    #[must_use]
    pub fn thread(&self, dom: u32, tid: u32) -> &ThreadTrace {
        assert!(dom < self.domains && tid < self.nthreads);
        &self.threads[(dom * self.nthreads + tid) as usize]
    }

    /// Domain `dom`'s shared ST stream, if this is an ST bundle.
    #[must_use]
    pub fn st_stream(&self, dom: u32) -> Option<&StTrace> {
        self.st.get(dom as usize)
    }

    /// Whether this bundle uses the shared-stream (ST) layout.
    #[must_use]
    pub fn is_st(&self) -> bool {
        !self.st.is_empty()
    }

    /// The clock value domain `dom`'s record streams start at: the number
    /// of records the flight recorder evicted before the retained window,
    /// or 0 for unbounded bundles.
    #[must_use]
    pub fn clock_base(&self, dom: u32) -> u64 {
        self.checkpoint.as_ref().map_or(0, |cp| cp.base_of(dom))
    }

    /// Structural consistency check; run after decoding and before replay.
    ///
    /// This is a thin wrapper over the [`verify`](crate::verify) module's
    /// Structural tier — the single implementation both this method and
    /// [`Verifier::verify`](crate::verify::Verifier::verify) run, so the
    /// two checkers cannot drift. The error surface is unchanged: the
    /// first violated invariant comes back as [`TraceError::Corrupt`].
    pub fn validate(&self) -> Result<(), TraceError> {
        crate::verify::structural(self)
    }

    /// Number of recorded accesses in one domain.
    #[must_use]
    pub fn domain_records(&self, dom: u32) -> u64 {
        if self.is_st() {
            self.st
                .get(dom as usize)
                .map(|st| st.len() as u64)
                .unwrap_or(0)
        } else {
            let n = self.nthreads.max(1) as usize;
            self.threads
                .iter()
                .skip(dom as usize * n)
                .take(n)
                .map(|t| t.len() as u64)
                .sum()
        }
    }

    /// Merged edge-wait index keyed by anchor. For ST bundles the key is
    /// `(domain, 0, stream index)`; for DC/DE it is
    /// `(domain, thread, per-thread index)`. Multiple edges on one anchor
    /// merge by taking the maximum wait per foreign domain.
    #[must_use]
    pub fn edge_index(&self) -> HashMap<(u32, u32, u64), Vec<(u32, u64)>> {
        let mut map: HashMap<(u32, u32, u64), Vec<(u32, u64)>> = HashMap::new();
        let st = self.is_st();
        for e in &self.edges {
            let key = if st {
                (e.domain, 0, e.seq)
            } else {
                (e.domain, e.thread, e.seq)
            };
            let waits = map.entry(key).or_default();
            for &(dom, count) in &e.waits {
                match waits.iter_mut().find(|(d, _)| *d == dom) {
                    Some((_, c)) => *c = (*c).max(count),
                    None => waits.push((dom, count)),
                }
            }
        }
        map
    }

    /// Total recorded accesses across all streams and domains.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        if self.is_st() {
            self.st.iter().map(|st| st.len() as u64).sum()
        } else {
            self.threads.iter().map(|t| t.len() as u64).sum()
        }
    }

    /// Whether the bundle carries per-access validation columns.
    #[must_use]
    pub fn has_validation(&self) -> bool {
        if self.is_st() {
            self.st.iter().all(|st| st.sites.is_some())
        } else {
            self.threads.iter().all(|t| t.sites.is_some())
        }
    }

    /// Reconstruct the global access order as `(clock, thread)` pairs
    /// (DC/DE bundles only; DE orders ties by epoch then arbitrarily).
    /// Used by analysis tooling and tests.
    ///
    /// Multi-domain bundles **with cross-domain edges** are merged into one
    /// interleaved view that respects every domain's internal order *and*
    /// every edge (an anchor is only emitted once its foreign wait counts
    /// are satisfied), so the result is a linearization the recorded run
    /// could actually have taken at sync granularity. Edge-less
    /// multi-domain bundles fall back to sorting by raw clock value, which
    /// is only meaningful per domain.
    #[must_use]
    pub fn global_order(&self) -> Vec<(u64, u32)> {
        if self.domains > 1 && !self.edges.is_empty() {
            return self
                .merged_order()
                .into_iter()
                .map(|(_, v, tid, _)| (v, tid))
                .collect();
        }
        let mut out: Vec<(u64, u32)> = Vec::with_capacity(self.total_records() as usize);
        let nthreads = self.nthreads.max(1) as usize;
        for (i, t) in self.threads.iter().enumerate() {
            // The thread index is recovered modulo `nthreads`, never by a
            // raw `as u32` narrowing: the flat index can exceed u32 range
            // before validation, and the modulus is what the layout means.
            let tid = (i % nthreads) as u32;
            for &v in &t.values {
                out.push((v, tid));
            }
        }
        out.sort_unstable();
        out
    }

    /// Each domain's internal order as `(value, thread, per-anchor seq)`
    /// triples: ST stream order, or DC/DE clock order (DE epoch ties broken
    /// by thread id for determinism).
    fn domain_sequences(&self) -> Vec<Vec<(u64, u32, u64)>> {
        let mut out = Vec::with_capacity(self.domains as usize);
        if self.is_st() {
            for st in &self.st {
                out.push(
                    st.tids
                        .iter()
                        .enumerate()
                        .map(|(i, &tid)| (i as u64, tid, i as u64))
                        .collect(),
                );
            }
            return out;
        }
        let n = self.nthreads.max(1) as usize;
        for chunk in self.threads.chunks(n) {
            let mut seq: Vec<(u64, u32, u64)> = chunk
                .iter()
                .enumerate()
                .flat_map(|(tid, t)| {
                    t.values
                        .iter()
                        .enumerate()
                        .map(move |(i, &v)| (v, tid as u32, i as u64))
                })
                .collect();
            seq.sort_unstable();
            out.push(seq);
        }
        out
    }

    /// Topologically merge all domains into one order respecting the
    /// cross-domain edges: `(domain, value, thread, seq)` per access. If
    /// the edges are cyclic (corrupt input), the un-mergeable remainder is
    /// appended in domain-major order; [`TraceBundle::edges_consistent`]
    /// reports whether that happened.
    #[must_use]
    pub fn merged_order(&self) -> Vec<(u32, u64, u32, u64)> {
        self.merge_domains().0
    }

    /// Whether the cross-domain edges admit a full interleaving (no cycle
    /// among edge constraints — always true for genuinely recorded
    /// traces).
    #[must_use]
    pub fn edges_consistent(&self) -> bool {
        self.merge_domains().1
    }

    fn merge_domains(&self) -> (Vec<(u32, u64, u32, u64)>, bool) {
        let seqs = self.domain_sequences();
        let index = self.edge_index();
        let d = self.domains as usize;
        let mut ptr = vec![0usize; d];
        // Edge waits are absolute completed-access counts; a windowed
        // bundle's domains already completed `clock_base` accesses before
        // the retained window starts.
        let mut emitted: Vec<u64> = (0..d).map(|dom| self.clock_base(dom as u32)).collect();
        let mut out = Vec::with_capacity(self.total_records() as usize);
        loop {
            let mut progressed = false;
            for dom in 0..d {
                let Some(&(value, tid, seq)) = seqs[dom].get(ptr[dom]) else {
                    continue;
                };
                let ready = index
                    .get(&(dom as u32, if self.is_st() { 0 } else { tid }, seq))
                    .map(|waits| waits.iter().all(|&(j, c)| emitted[j as usize] >= c))
                    .unwrap_or(true);
                if ready {
                    out.push((dom as u32, value, tid, seq));
                    ptr[dom] += 1;
                    emitted[dom] += 1;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                let stuck = (0..d).any(|dom| ptr[dom] < seqs[dom].len());
                if stuck {
                    // Cyclic (corrupt) edges: emit the rest domain-major so
                    // callers still see every access.
                    for (dom, seq) in seqs.iter().enumerate() {
                        for &(value, tid, s) in &seq[ptr[dom]..] {
                            out.push((dom as u32, value, tid, s));
                        }
                    }
                }
                return (out, !stuck);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc_bundle() -> TraceBundle {
        TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 1,
            threads: vec![
                ThreadTrace {
                    values: vec![0, 3],
                    sites: Some(vec![1, 1]),
                    kinds: Some(vec![0, 1]),
                },
                ThreadTrace {
                    values: vec![1, 2],
                    sites: Some(vec![1, 1]),
                    kinds: Some(vec![0, 0]),
                },
            ],
            st: vec![],
        }
    }

    /// Two domains, each an independent DC clock permutation.
    fn dc_bundle_two_domains() -> TraceBundle {
        TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 2,
            threads: vec![
                // domain 0
                ThreadTrace {
                    values: vec![0, 2],
                    sites: None,
                    kinds: None,
                },
                ThreadTrace {
                    values: vec![1],
                    sites: None,
                    kinds: None,
                },
                // domain 1
                ThreadTrace {
                    values: vec![1],
                    sites: None,
                    kinds: None,
                },
                ThreadTrace {
                    values: vec![0],
                    sites: None,
                    kinds: None,
                },
            ],
            st: vec![],
        }
    }

    #[test]
    fn valid_dc_bundle_passes() {
        dc_bundle().validate().unwrap();
        assert_eq!(dc_bundle().total_records(), 4);
        assert!(dc_bundle().has_validation());
    }

    #[test]
    fn dc_clock_permutation_enforced() {
        let mut b = dc_bundle();
        b.threads[0].values = vec![0, 5];
        b.threads[0].sites = Some(vec![1, 1]);
        assert!(b.validate().is_err());
    }

    #[test]
    fn multi_domain_dc_clocks_are_checked_per_domain() {
        let b = dc_bundle_two_domains();
        b.validate().unwrap();
        assert_eq!(b.total_records(), 5);
        assert_eq!(b.thread(0, 0).values, vec![0, 2]);
        assert_eq!(b.thread(1, 1).values, vec![0]);

        // Clock 1 appearing twice in *one* domain is corrupt even though
        // the multiset over all domains would still look like a run.
        let mut bad = dc_bundle_two_domains();
        bad.threads[3].values = vec![1];
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("domain 1"), "{err}");
    }

    #[test]
    fn domain_thread_count_mismatch_detected() {
        let mut b = dc_bundle_two_domains();
        b.threads.pop();
        assert!(b.validate().is_err());
        let mut b = dc_bundle();
        b.domains = 0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn st_bundle_requires_stream_and_valid_tids() {
        let b = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::St,
            nthreads: 2,
            domains: 1,
            threads: vec![ThreadTrace::default(), ThreadTrace::default()],
            st: vec![],
        };
        assert!(b.validate().is_err());

        let b = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::St,
            nthreads: 2,
            domains: 1,
            threads: vec![ThreadTrace::default(), ThreadTrace::default()],
            st: vec![StTrace {
                tids: vec![0, 1, 5],
                sites: None,
                kinds: None,
            }],
        };
        assert!(b.validate().is_err());
    }

    #[test]
    fn st_bundle_needs_one_stream_per_domain() {
        let b = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::St,
            nthreads: 1,
            domains: 2,
            threads: vec![ThreadTrace::default(), ThreadTrace::default()],
            st: vec![StTrace {
                tids: vec![0],
                sites: None,
                kinds: None,
            }],
        };
        let err = b.validate().unwrap_err();
        assert!(err.to_string().contains("st streams"), "{err}");
    }

    #[test]
    fn column_length_mismatch_detected() {
        let mut b = dc_bundle();
        b.threads[1].sites = Some(vec![1]);
        assert!(b.validate().is_err());
        let mut b = dc_bundle();
        b.threads[1].kinds = Some(vec![0, 200]);
        assert!(b.validate().is_err(), "bad kind code");
    }

    #[test]
    fn global_order_sorts_clocks() {
        let order = dc_bundle().global_order();
        assert_eq!(order, vec![(0, 0), (1, 1), (2, 1), (3, 0)]);
    }

    #[test]
    fn global_order_recovers_tid_modulo_nthreads() {
        // Regression: the thread index used to be a raw `as u32` narrowing
        // of the flat vector index, which for multi-domain bundles is the
        // *stream* index, not the thread id.
        let order = dc_bundle_two_domains().global_order();
        assert!(order.iter().all(|&(_, tid)| tid < 2), "{order:?}");
    }

    fn edge(domain: u32, thread: u32, seq: u64, waits: Vec<(u32, u64)>) -> CrossDomainEdge {
        CrossDomainEdge {
            domain,
            thread,
            seq,
            waits,
        }
    }

    #[test]
    fn edges_validate_structurally() {
        let mut b = dc_bundle_two_domains();
        // Valid: thread 0's access #1 in domain 0 waits for 1 access in
        // domain 1.
        b.edges = vec![edge(0, 0, 1, vec![(1, 1)])];
        b.validate().unwrap();

        // Anchor beyond the stream.
        let mut bad = dc_bundle_two_domains();
        bad.edges = vec![edge(0, 0, 9, vec![(1, 1)])];
        assert!(bad.validate().is_err());
        // Wait on own domain.
        let mut bad = dc_bundle_two_domains();
        bad.edges = vec![edge(0, 0, 0, vec![(0, 1)])];
        assert!(bad.validate().is_err());
        // Wait count exceeds the domain's records (domain 1 has 2).
        let mut bad = dc_bundle_two_domains();
        bad.edges = vec![edge(0, 0, 0, vec![(1, 3)])];
        assert!(bad.validate().is_err());
        // Edges in a single-domain bundle.
        let mut bad = dc_bundle();
        bad.edges = vec![edge(0, 0, 0, vec![(1, 1)])];
        assert!(bad.validate().is_err());
        // Plan domain count must match the bundle.
        let mut bad = dc_bundle_two_domains();
        bad.plan = Some(crate::plan::DomainPlan::new(3));
        assert!(bad.validate().is_err());
        let mut ok = dc_bundle_two_domains();
        ok.plan = Some(crate::plan::DomainPlan::new(2));
        ok.validate().unwrap();
    }

    #[test]
    fn edge_index_merges_by_max() {
        let mut b = dc_bundle_two_domains();
        b.edges = vec![edge(0, 0, 1, vec![(1, 1)]), edge(0, 0, 1, vec![(1, 2)])];
        let idx = b.edge_index();
        assert_eq!(idx.get(&(0, 0, 1)), Some(&vec![(1u32, 2u64)]));
    }

    #[test]
    fn merged_order_respects_edges() {
        // Domain 0: t0 clocks [0,2], t1 clock [1]; domain 1: t1 [1], t0 [0].
        // Edge: domain 0's access at clock 2 (t0, seq 1) must come after
        // BOTH of domain 1's accesses.
        let mut b = dc_bundle_two_domains();
        b.edges = vec![edge(0, 0, 1, vec![(1, 2)])];
        b.validate().unwrap();
        assert!(b.edges_consistent());
        let order = b.merged_order();
        assert_eq!(order.len(), 5);
        let pos_anchor = order
            .iter()
            .position(|&(d, v, t, _)| (d, v, t) == (0, 2, 0))
            .unwrap();
        let pos_last_d1 = order
            .iter()
            .position(|&(d, v, _, _)| (d, v) == (1, 1))
            .unwrap();
        assert!(
            pos_anchor > pos_last_d1,
            "anchor must follow domain 1's accesses: {order:?}"
        );
        // Per-domain internal order preserved.
        let d0: Vec<u64> = order
            .iter()
            .filter(|&&(d, ..)| d == 0)
            .map(|&(_, v, ..)| v)
            .collect();
        assert_eq!(d0, vec![0, 1, 2]);
        // global_order reflects the merged view when edges exist.
        assert_eq!(b.global_order().len(), 5);
    }

    #[test]
    fn cyclic_edges_detected_as_inconsistent() {
        // Two edges forming a wait cycle: domain 0's first access needs
        // all of domain 1, and domain 1's first access needs all of
        // domain 0. A genuine recording can never produce this.
        let mut b = dc_bundle_two_domains();
        b.edges = vec![edge(0, 0, 0, vec![(1, 2)]), edge(1, 1, 0, vec![(0, 3)])];
        // Structurally valid…
        b.validate().unwrap();
        // …but not mergeable; every access is still emitted exactly once.
        assert!(!b.edges_consistent());
        assert_eq!(b.merged_order().len(), 5);
    }

    #[test]
    fn accessors() {
        let b = dc_bundle();
        assert_eq!(b.threads[0].site_at(0), Some(SiteId(1)));
        assert_eq!(b.threads[0].kind_at(1), Some(AccessKind::Store));
        assert_eq!(b.threads[0].kind_at(99), None);
        assert!(!b.threads[0].is_empty());
        assert_eq!(b.thread(0, 1), &b.threads[1]);
        assert_eq!(b.st_stream(0), None);
        assert!(!b.is_st());
    }

    /// A flight-recorder window of `dc_bundle`: the first 10 records were
    /// evicted, so the retained clocks are 10..14.
    fn windowed_dc_bundle() -> TraceBundle {
        let mut b = dc_bundle();
        for t in &mut b.threads {
            for v in &mut t.values {
                *v += 10;
            }
        }
        b.checkpoint = Some(Checkpoint {
            base: vec![10],
            floors: vec![],
            window: 2,
            trigger: DumpTrigger::Panic,
        });
        b
    }

    #[test]
    fn checkpoint_shifts_the_dc_permutation_base() {
        let b = windowed_dc_bundle();
        b.validate().unwrap();
        assert_eq!(b.clock_base(0), 10);
        assert_eq!(b.clock_base(7), 0, "out-of-range domain defaults to 0");

        // Without the checkpoint the shifted clocks are corrupt…
        let mut bad = windowed_dc_bundle();
        bad.checkpoint = None;
        assert!(bad.validate().is_err());
        // …and with the wrong base they are too.
        let mut bad = windowed_dc_bundle();
        bad.checkpoint.as_mut().unwrap().base = vec![9];
        assert!(bad.validate().is_err());
    }

    #[test]
    fn checkpoint_domain_arity_is_checked() {
        let mut b = dc_bundle_two_domains();
        b.checkpoint = Some(Checkpoint {
            base: vec![0],
            ..Checkpoint::default()
        });
        let err = b.validate().unwrap_err();
        assert!(err.to_string().contains("clock bases"), "{err}");

        let mut b = dc_bundle_two_domains();
        b.checkpoint = Some(Checkpoint {
            base: vec![0, 0],
            floors: vec![1, 2, 3],
            ..Checkpoint::default()
        });
        let err = b.validate().unwrap_err();
        assert!(err.to_string().contains("epoch floors"), "{err}");

        let mut b = dc_bundle_two_domains();
        b.checkpoint = Some(Checkpoint {
            base: vec![0, 0],
            floors: vec![2, 1],
            ..Checkpoint::default()
        });
        b.validate().unwrap();
    }

    #[test]
    fn edge_waits_measure_against_the_checkpoint_base() {
        // Domain 1 retains 2 records on top of 5 evicted ones: an absolute
        // wait of 7 is satisfiable, 8 is not.
        let mut b = dc_bundle_two_domains();
        for t in &mut b.threads[2..] {
            for v in &mut t.values {
                *v += 5;
            }
        }
        b.checkpoint = Some(Checkpoint {
            base: vec![0, 5],
            ..Checkpoint::default()
        });
        b.edges = vec![edge(0, 0, 1, vec![(1, 7)])];
        b.validate().unwrap();
        // The merged view seeds domain 1's emitted count at its base, so
        // the anchor is admitted once both retained records are out.
        assert!(b.edges_consistent());
        b.edges = vec![edge(0, 0, 1, vec![(1, 8)])];
        assert!(b.validate().is_err());
    }

    #[test]
    fn dump_trigger_codes_roundtrip() {
        for t in DumpTrigger::ALL {
            assert_eq!(DumpTrigger::from_code(t.code()), Some(t));
            assert!(!t.name().is_empty());
        }
        assert_eq!(DumpTrigger::from_code(9), None);
    }
}
