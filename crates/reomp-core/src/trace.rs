//! In-memory trace representations (the contents of record files).
//!
//! * DC/DE produce one [`ThreadTrace`] per thread (Fig. 3-(b)): the
//!   sequence of clock/epoch values at which that thread passed gates, in
//!   the thread's program order.
//! * ST produces a single shared [`StTrace`] (Fig. 3-(a)): the global
//!   sequence of thread IDs in gate-passage order.
//!
//! Traces optionally carry the [`SiteId`] and [`AccessKind`] of every
//! access ("validated" traces) so replay divergence can be detected.

use crate::error::TraceError;
use crate::session::Scheme;
use crate::site::{AccessKind, SiteId};

/// Per-thread record stream (DC/DE).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Clock (DC) or epoch (DE) of each gate passage, in program order.
    pub values: Vec<u64>,
    /// Raw site hash per access, when recorded with validation.
    pub sites: Option<Vec<u64>>,
    /// Kind code per access, when recorded with validation.
    pub kinds: Option<Vec<u8>>,
}

impl ThreadTrace {
    /// Number of recorded accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no accesses were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Site of access `i`, if validation data is present.
    #[must_use]
    pub fn site_at(&self, i: usize) -> Option<SiteId> {
        self.sites
            .as_ref()
            .and_then(|s| s.get(i))
            .map(|&raw| SiteId(raw))
    }

    /// Kind of access `i`, if validation data is present.
    #[must_use]
    pub fn kind_at(&self, i: usize) -> Option<AccessKind> {
        self.kinds
            .as_ref()
            .and_then(|k| k.get(i))
            .and_then(|&code| AccessKind::from_code(code))
    }

    fn check(&self, who: &str) -> Result<(), TraceError> {
        if let Some(sites) = &self.sites {
            if sites.len() != self.values.len() {
                return Err(TraceError::Corrupt(format!(
                    "{who}: {} sites for {} values",
                    sites.len(),
                    self.values.len()
                )));
            }
        }
        if let Some(kinds) = &self.kinds {
            if kinds.len() != self.values.len() {
                return Err(TraceError::Corrupt(format!(
                    "{who}: {} kinds for {} values",
                    kinds.len(),
                    self.values.len()
                )));
            }
            if let Some(bad) = kinds.iter().find(|&&c| AccessKind::from_code(c).is_none()) {
                return Err(TraceError::Corrupt(format!("{who}: bad kind code {bad}")));
            }
        }
        Ok(())
    }
}

/// The single shared record stream of ST recording.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StTrace {
    /// Thread IDs in the order threads passed gates.
    pub tids: Vec<u32>,
    /// Raw site hash per access, when recorded with validation.
    pub sites: Option<Vec<u64>>,
    /// Kind code per access, when recorded with validation.
    pub kinds: Option<Vec<u8>>,
}

impl StTrace {
    /// Number of recorded accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// Whether no accesses were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    fn check(&self, nthreads: u32) -> Result<(), TraceError> {
        if let Some(bad) = self.tids.iter().find(|&&t| t >= nthreads) {
            return Err(TraceError::Corrupt(format!(
                "st trace references thread {bad} but only {nthreads} threads recorded"
            )));
        }
        if let Some(sites) = &self.sites {
            if sites.len() != self.tids.len() {
                return Err(TraceError::Corrupt("st trace site column length".into()));
            }
        }
        if let Some(kinds) = &self.kinds {
            if kinds.len() != self.tids.len() {
                return Err(TraceError::Corrupt("st trace kind column length".into()));
            }
        }
        Ok(())
    }
}

/// A complete recording: everything needed to replay one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBundle {
    /// Recording scheme that produced (and must replay) this bundle.
    pub scheme: Scheme,
    /// Number of threads in the recorded run.
    pub nthreads: u32,
    /// Per-thread streams (empty traces for ST, which uses `st`).
    pub threads: Vec<ThreadTrace>,
    /// The shared ST stream (present iff `scheme == Scheme::St`).
    pub st: Option<StTrace>,
}

impl TraceBundle {
    /// Structural consistency check; run after decoding and before replay.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.nthreads == 0 {
            return Err(TraceError::Corrupt("zero threads".into()));
        }
        if self.threads.len() != self.nthreads as usize {
            return Err(TraceError::Corrupt(format!(
                "{} thread traces for {} threads",
                self.threads.len(),
                self.nthreads
            )));
        }
        match (self.scheme, &self.st) {
            (Scheme::St, None) => {
                return Err(TraceError::Corrupt("ST bundle without st stream".into()))
            }
            (Scheme::St, Some(st)) => st.check(self.nthreads)?,
            (_, Some(_)) => return Err(TraceError::Corrupt("non-ST bundle with st stream".into())),
            (_, None) => {}
        }
        for (i, t) in self.threads.iter().enumerate() {
            t.check(&format!("thread {i}"))?;
        }
        if self.scheme == Scheme::Dc {
            // DC clocks across all threads must be a permutation of 0..n.
            let mut clocks: Vec<u64> = self
                .threads
                .iter()
                .flat_map(|t| t.values.iter().copied())
                .collect();
            clocks.sort_unstable();
            for (expect, got) in clocks.iter().enumerate() {
                if *got != expect as u64 {
                    return Err(TraceError::Corrupt(format!(
                        "DC clocks are not a permutation of 0..{} (found {got} at rank {expect})",
                        clocks.len()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Total recorded accesses across all streams.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        match &self.st {
            Some(st) => st.len() as u64,
            None => self.threads.iter().map(|t| t.len() as u64).sum(),
        }
    }

    /// Whether the bundle carries per-access validation columns.
    #[must_use]
    pub fn has_validation(&self) -> bool {
        match &self.st {
            Some(st) => st.sites.is_some(),
            None => self.threads.iter().all(|t| t.sites.is_some()),
        }
    }

    /// Reconstruct the global access order as `(clock, thread)` pairs
    /// (DC/DE bundles only; DE orders ties by epoch then arbitrarily).
    /// Used by analysis tooling and tests.
    #[must_use]
    pub fn global_order(&self) -> Vec<(u64, u32)> {
        let mut out: Vec<(u64, u32)> = Vec::with_capacity(self.total_records() as usize);
        for (tid, t) in self.threads.iter().enumerate() {
            for &v in &t.values {
                out.push((v, tid as u32));
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc_bundle() -> TraceBundle {
        TraceBundle {
            scheme: Scheme::Dc,
            nthreads: 2,
            threads: vec![
                ThreadTrace {
                    values: vec![0, 3],
                    sites: Some(vec![1, 1]),
                    kinds: Some(vec![0, 1]),
                },
                ThreadTrace {
                    values: vec![1, 2],
                    sites: Some(vec![1, 1]),
                    kinds: Some(vec![0, 0]),
                },
            ],
            st: None,
        }
    }

    #[test]
    fn valid_dc_bundle_passes() {
        dc_bundle().validate().unwrap();
        assert_eq!(dc_bundle().total_records(), 4);
        assert!(dc_bundle().has_validation());
    }

    #[test]
    fn dc_clock_permutation_enforced() {
        let mut b = dc_bundle();
        b.threads[0].values = vec![0, 5];
        b.threads[0].sites = Some(vec![1, 1]);
        assert!(b.validate().is_err());
    }

    #[test]
    fn st_bundle_requires_stream_and_valid_tids() {
        let b = TraceBundle {
            scheme: Scheme::St,
            nthreads: 2,
            threads: vec![ThreadTrace::default(), ThreadTrace::default()],
            st: None,
        };
        assert!(b.validate().is_err());

        let b = TraceBundle {
            scheme: Scheme::St,
            nthreads: 2,
            threads: vec![ThreadTrace::default(), ThreadTrace::default()],
            st: Some(StTrace {
                tids: vec![0, 1, 5],
                sites: None,
                kinds: None,
            }),
        };
        assert!(b.validate().is_err());
    }

    #[test]
    fn column_length_mismatch_detected() {
        let mut b = dc_bundle();
        b.threads[1].sites = Some(vec![1]);
        assert!(b.validate().is_err());
        let mut b = dc_bundle();
        b.threads[1].kinds = Some(vec![0, 200]);
        assert!(b.validate().is_err(), "bad kind code");
    }

    #[test]
    fn global_order_sorts_clocks() {
        let order = dc_bundle().global_order();
        assert_eq!(order, vec![(0, 0), (1, 1), (2, 1), (3, 0)]);
    }

    #[test]
    fn accessors() {
        let b = dc_bundle();
        assert_eq!(b.threads[0].site_at(0), Some(SiteId(1)));
        assert_eq!(b.threads[0].kind_at(1), Some(AccessKind::Store));
        assert_eq!(b.threads[0].kind_at(99), None);
        assert!(!b.threads[0].is_empty());
    }
}
