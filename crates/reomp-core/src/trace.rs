//! In-memory trace representations (the contents of record files).
//!
//! * DC/DE produce one [`ThreadTrace`] per thread (Fig. 3-(b)): the
//!   sequence of clock/epoch values at which that thread passed gates, in
//!   the thread's program order.
//! * ST produces a single shared [`StTrace`] (Fig. 3-(a)): the global
//!   sequence of thread IDs in gate-passage order.
//!
//! Traces optionally carry the [`SiteId`] and [`AccessKind`] of every
//! access ("validated" traces) so replay divergence can be detected.
//!
//! # Gate domains
//!
//! A bundle recorded with `D` *gate domains* (see
//! [`SessionConfig::domains`](crate::session::SessionConfig::domains))
//! holds one independent order stream **per domain**: sites are statically
//! partitioned across domains, each domain runs its own gate lock and
//! clock, and ordering is only recorded *within* a domain. The layout is
//! flat and domain-major: `threads[dom * nthreads + tid]` is thread `tid`'s
//! stream in domain `dom`, and `st[dom]` is domain `dom`'s shared ST
//! stream. With `D = 1` (the default) this degenerates to exactly the
//! classic single-gate layout — `threads[tid]` indexes as before.

use crate::error::TraceError;
use crate::session::Scheme;
use crate::site::{AccessKind, SiteId};

/// Per-thread record stream (DC/DE).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Clock (DC) or epoch (DE) of each gate passage, in program order.
    pub values: Vec<u64>,
    /// Raw site hash per access, when recorded with validation.
    pub sites: Option<Vec<u64>>,
    /// Kind code per access, when recorded with validation.
    pub kinds: Option<Vec<u8>>,
}

impl ThreadTrace {
    /// Number of recorded accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no accesses were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Site of access `i`, if validation data is present.
    #[must_use]
    pub fn site_at(&self, i: usize) -> Option<SiteId> {
        self.sites
            .as_ref()
            .and_then(|s| s.get(i))
            .map(|&raw| SiteId(raw))
    }

    /// Kind of access `i`, if validation data is present.
    #[must_use]
    pub fn kind_at(&self, i: usize) -> Option<AccessKind> {
        self.kinds
            .as_ref()
            .and_then(|k| k.get(i))
            .and_then(|&code| AccessKind::from_code(code))
    }

    fn check(&self, who: &str) -> Result<(), TraceError> {
        if let Some(sites) = &self.sites {
            if sites.len() != self.values.len() {
                return Err(TraceError::Corrupt(format!(
                    "{who}: {} sites for {} values",
                    sites.len(),
                    self.values.len()
                )));
            }
        }
        if let Some(kinds) = &self.kinds {
            if kinds.len() != self.values.len() {
                return Err(TraceError::Corrupt(format!(
                    "{who}: {} kinds for {} values",
                    kinds.len(),
                    self.values.len()
                )));
            }
            if let Some(bad) = kinds.iter().find(|&&c| AccessKind::from_code(c).is_none()) {
                return Err(TraceError::Corrupt(format!("{who}: bad kind code {bad}")));
            }
        }
        Ok(())
    }
}

/// The single shared record stream of ST recording.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StTrace {
    /// Thread IDs in the order threads passed gates.
    pub tids: Vec<u32>,
    /// Raw site hash per access, when recorded with validation.
    pub sites: Option<Vec<u64>>,
    /// Kind code per access, when recorded with validation.
    pub kinds: Option<Vec<u8>>,
}

impl StTrace {
    /// Number of recorded accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// Whether no accesses were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    fn check(&self, nthreads: u32) -> Result<(), TraceError> {
        if let Some(bad) = self.tids.iter().find(|&&t| t >= nthreads) {
            return Err(TraceError::Corrupt(format!(
                "st trace references thread {bad} but only {nthreads} threads recorded"
            )));
        }
        if let Some(sites) = &self.sites {
            if sites.len() != self.tids.len() {
                return Err(TraceError::Corrupt("st trace site column length".into()));
            }
        }
        if let Some(kinds) = &self.kinds {
            if kinds.len() != self.tids.len() {
                return Err(TraceError::Corrupt("st trace kind column length".into()));
            }
        }
        Ok(())
    }
}

/// A complete recording: everything needed to replay one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBundle {
    /// Recording scheme that produced (and must replay) this bundle.
    pub scheme: Scheme,
    /// Number of threads in the recorded run.
    pub nthreads: u32,
    /// Number of gate domains (`1` = classic single-gate recording).
    pub domains: u32,
    /// Per-domain per-thread streams, flat and domain-major: index
    /// `dom * nthreads + tid`. Empty traces for ST, which uses `st`.
    pub threads: Vec<ThreadTrace>,
    /// Shared ST streams, one per domain (non-empty iff
    /// `scheme == Scheme::St`).
    pub st: Vec<StTrace>,
}

impl TraceBundle {
    /// Thread `tid`'s stream in domain `dom`.
    ///
    /// # Panics
    /// Panics when `dom >= domains` or `tid >= nthreads`.
    #[must_use]
    pub fn thread(&self, dom: u32, tid: u32) -> &ThreadTrace {
        assert!(dom < self.domains && tid < self.nthreads);
        &self.threads[(dom * self.nthreads + tid) as usize]
    }

    /// Domain `dom`'s shared ST stream, if this is an ST bundle.
    #[must_use]
    pub fn st_stream(&self, dom: u32) -> Option<&StTrace> {
        self.st.get(dom as usize)
    }

    /// Whether this bundle uses the shared-stream (ST) layout.
    #[must_use]
    pub fn is_st(&self) -> bool {
        !self.st.is_empty()
    }

    /// Structural consistency check; run after decoding and before replay.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.nthreads == 0 {
            return Err(TraceError::Corrupt("zero threads".into()));
        }
        if self.domains == 0 {
            return Err(TraceError::Corrupt("zero domains".into()));
        }
        let expect = self.domains as usize * self.nthreads as usize;
        if self.threads.len() != expect {
            return Err(TraceError::Corrupt(format!(
                "{} thread traces for {} threads × {} domains",
                self.threads.len(),
                self.nthreads,
                self.domains
            )));
        }
        match (self.scheme, self.st.len()) {
            (Scheme::St, n) if n != self.domains as usize => {
                return Err(TraceError::Corrupt(format!(
                    "ST bundle with {n} st streams for {} domains",
                    self.domains
                )))
            }
            (Scheme::St, _) => {
                for st in &self.st {
                    st.check(self.nthreads)?;
                }
            }
            (_, 0) => {}
            (_, _) => return Err(TraceError::Corrupt("non-ST bundle with st stream".into())),
        }
        for (i, t) in self.threads.iter().enumerate() {
            let (dom, tid) = (i / self.nthreads as usize, i % self.nthreads as usize);
            t.check(&format!("domain {dom} thread {tid}"))?;
        }
        if self.scheme == Scheme::Dc {
            // DC clocks are per-domain: within each domain, the clocks
            // across all threads must be a permutation of 0..n_d (clock
            // contiguity is a *domain* property — domains tick
            // independently).
            for (dom, chunk) in self.threads.chunks(self.nthreads as usize).enumerate() {
                let mut clocks: Vec<u64> = chunk
                    .iter()
                    .flat_map(|t| t.values.iter().copied())
                    .collect();
                clocks.sort_unstable();
                for (expect, got) in clocks.iter().enumerate() {
                    if *got != expect as u64 {
                        return Err(TraceError::Corrupt(format!(
                            "domain {dom}: DC clocks are not a permutation of 0..{} \
                             (found {got} at rank {expect})",
                            clocks.len()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total recorded accesses across all streams and domains.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        if self.is_st() {
            self.st.iter().map(|st| st.len() as u64).sum()
        } else {
            self.threads.iter().map(|t| t.len() as u64).sum()
        }
    }

    /// Whether the bundle carries per-access validation columns.
    #[must_use]
    pub fn has_validation(&self) -> bool {
        if self.is_st() {
            self.st.iter().all(|st| st.sites.is_some())
        } else {
            self.threads.iter().all(|t| t.sites.is_some())
        }
    }

    /// Reconstruct the global access order as `(clock, thread)` pairs
    /// (DC/DE bundles only; DE orders ties by epoch then arbitrarily).
    /// Used by analysis tooling and tests.
    ///
    /// For multi-domain bundles the result interleaves all domains by raw
    /// clock value; clocks in *different* domains are independent counters,
    /// so the interleaving is only meaningful per domain.
    #[must_use]
    pub fn global_order(&self) -> Vec<(u64, u32)> {
        let mut out: Vec<(u64, u32)> = Vec::with_capacity(self.total_records() as usize);
        let nthreads = self.nthreads.max(1) as usize;
        for (i, t) in self.threads.iter().enumerate() {
            // The thread index is recovered modulo `nthreads`, never by a
            // raw `as u32` narrowing: the flat index can exceed u32 range
            // before validation, and the modulus is what the layout means.
            let tid = (i % nthreads) as u32;
            for &v in &t.values {
                out.push((v, tid));
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc_bundle() -> TraceBundle {
        TraceBundle {
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 1,
            threads: vec![
                ThreadTrace {
                    values: vec![0, 3],
                    sites: Some(vec![1, 1]),
                    kinds: Some(vec![0, 1]),
                },
                ThreadTrace {
                    values: vec![1, 2],
                    sites: Some(vec![1, 1]),
                    kinds: Some(vec![0, 0]),
                },
            ],
            st: vec![],
        }
    }

    /// Two domains, each an independent DC clock permutation.
    fn dc_bundle_two_domains() -> TraceBundle {
        TraceBundle {
            scheme: Scheme::Dc,
            nthreads: 2,
            domains: 2,
            threads: vec![
                // domain 0
                ThreadTrace {
                    values: vec![0, 2],
                    sites: None,
                    kinds: None,
                },
                ThreadTrace {
                    values: vec![1],
                    sites: None,
                    kinds: None,
                },
                // domain 1
                ThreadTrace {
                    values: vec![1],
                    sites: None,
                    kinds: None,
                },
                ThreadTrace {
                    values: vec![0],
                    sites: None,
                    kinds: None,
                },
            ],
            st: vec![],
        }
    }

    #[test]
    fn valid_dc_bundle_passes() {
        dc_bundle().validate().unwrap();
        assert_eq!(dc_bundle().total_records(), 4);
        assert!(dc_bundle().has_validation());
    }

    #[test]
    fn dc_clock_permutation_enforced() {
        let mut b = dc_bundle();
        b.threads[0].values = vec![0, 5];
        b.threads[0].sites = Some(vec![1, 1]);
        assert!(b.validate().is_err());
    }

    #[test]
    fn multi_domain_dc_clocks_are_checked_per_domain() {
        let b = dc_bundle_two_domains();
        b.validate().unwrap();
        assert_eq!(b.total_records(), 5);
        assert_eq!(b.thread(0, 0).values, vec![0, 2]);
        assert_eq!(b.thread(1, 1).values, vec![0]);

        // Clock 1 appearing twice in *one* domain is corrupt even though
        // the multiset over all domains would still look like a run.
        let mut bad = dc_bundle_two_domains();
        bad.threads[3].values = vec![1];
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("domain 1"), "{err}");
    }

    #[test]
    fn domain_thread_count_mismatch_detected() {
        let mut b = dc_bundle_two_domains();
        b.threads.pop();
        assert!(b.validate().is_err());
        let mut b = dc_bundle();
        b.domains = 0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn st_bundle_requires_stream_and_valid_tids() {
        let b = TraceBundle {
            scheme: Scheme::St,
            nthreads: 2,
            domains: 1,
            threads: vec![ThreadTrace::default(), ThreadTrace::default()],
            st: vec![],
        };
        assert!(b.validate().is_err());

        let b = TraceBundle {
            scheme: Scheme::St,
            nthreads: 2,
            domains: 1,
            threads: vec![ThreadTrace::default(), ThreadTrace::default()],
            st: vec![StTrace {
                tids: vec![0, 1, 5],
                sites: None,
                kinds: None,
            }],
        };
        assert!(b.validate().is_err());
    }

    #[test]
    fn st_bundle_needs_one_stream_per_domain() {
        let b = TraceBundle {
            scheme: Scheme::St,
            nthreads: 1,
            domains: 2,
            threads: vec![ThreadTrace::default(), ThreadTrace::default()],
            st: vec![StTrace {
                tids: vec![0],
                sites: None,
                kinds: None,
            }],
        };
        let err = b.validate().unwrap_err();
        assert!(err.to_string().contains("st streams"), "{err}");
    }

    #[test]
    fn column_length_mismatch_detected() {
        let mut b = dc_bundle();
        b.threads[1].sites = Some(vec![1]);
        assert!(b.validate().is_err());
        let mut b = dc_bundle();
        b.threads[1].kinds = Some(vec![0, 200]);
        assert!(b.validate().is_err(), "bad kind code");
    }

    #[test]
    fn global_order_sorts_clocks() {
        let order = dc_bundle().global_order();
        assert_eq!(order, vec![(0, 0), (1, 1), (2, 1), (3, 0)]);
    }

    #[test]
    fn global_order_recovers_tid_modulo_nthreads() {
        // Regression: the thread index used to be a raw `as u32` narrowing
        // of the flat vector index, which for multi-domain bundles is the
        // *stream* index, not the thread id.
        let order = dc_bundle_two_domains().global_order();
        assert!(order.iter().all(|&(_, tid)| tid < 2), "{order:?}");
    }

    #[test]
    fn accessors() {
        let b = dc_bundle();
        assert_eq!(b.threads[0].site_at(0), Some(SiteId(1)));
        assert_eq!(b.threads[0].kind_at(1), Some(AccessKind::Store));
        assert_eq!(b.threads[0].kind_at(99), None);
        assert!(!b.threads[0].is_empty());
        assert_eq!(b.thread(0, 1), &b.threads[1]);
        assert_eq!(b.st_stream(0), None);
        assert!(!b.is_st());
    }
}
