//! Runtime counters and post-hoc trace analysis.
//!
//! The counters quantify exactly the overhead sources the paper analyses in
//! §IV-C and Table VI: gate-lock acquisitions (serialized clock/thread-ID
//! assignment), inter-thread communications in replay (2 per region for ST,
//! 1 for DC/DE), waits and spin iterations, and trace I/O volume.
//! [`EpochHistogram`] reproduces the Fig. 20 analysis (number of occurrences
//! of each epoch size and the fraction of epochs with size > 1).

// ORDERING(file): every atomic in this module is a monotonic diagnostic
// counter. Counters are bumped with relaxed RMWs (atomicity is all they
// need — nothing is published through them) and read by `snapshot` after
// the run's threads have been joined, which is the synchronization edge.
use crate::site::AccessKind;
use crate::trace::TraceBundle;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared by all gates of a session. All methods are cheap
/// relaxed atomics; snapshot with [`Stats::snapshot`].
#[derive(Debug, Default)]
pub struct Stats {
    gates: AtomicU64,
    gates_by_kind: [AtomicU64; 7],
    lock_acquires: AtomicU64,
    comms: AtomicU64,
    waits: AtomicU64,
    spin_iters: AtomicU64,
    records_written: AtomicU64,
    records_read: AtomicU64,
    deferred_finalizations: AtomicU64,
    chunk_flushes: AtomicU64,
    io_bytes_written: AtomicU64,
    io_bytes_read: AtomicU64,
    io_files: AtomicU64,
    validate_checks: AtomicU64,
    sync_edges: AtomicU64,
    edge_waits: AtomicU64,
    /// Gate passages per gate domain (empty for single-domain sessions —
    /// there the breakdown is just `gates`).
    domain_gates: Vec<AtomicU64>,
    /// Gate-lock acquisitions per gate domain.
    domain_locks: Vec<AtomicU64>,
}

impl Stats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Stats::default()
    }

    /// Fresh counters that additionally keep a per-domain breakdown of
    /// gate passages and lock acquisitions for `domains` gate domains.
    /// With `domains <= 1` the breakdown is omitted (it would equal the
    /// totals).
    #[must_use]
    pub fn with_domains(domains: u32) -> Self {
        let n = if domains > 1 { domains as usize } else { 0 };
        Stats {
            domain_gates: (0..n).map(|_| AtomicU64::new(0)).collect(),
            domain_locks: (0..n).map(|_| AtomicU64::new(0)).collect(),
            ..Stats::default()
        }
    }

    /// Count one gate passage of the given kind.
    #[inline]
    pub fn bump_gate(&self, kind: AccessKind) {
        self.gates.fetch_add(1, Ordering::Relaxed);
        self.gates_by_kind[kind.code() as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one acquisition of the serializing gate lock.
    #[inline]
    pub fn bump_lock(&self) {
        self.lock_acquires.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one gate passage in gate domain `dom` (no-op unless the stats
    /// were created with [`Stats::with_domains`]).
    #[inline]
    pub fn bump_domain_gate(&self, dom: u32) {
        if let Some(c) = self.domain_gates.get(dom as usize) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one gate-lock acquisition in gate domain `dom`.
    #[inline]
    pub fn bump_domain_lock(&self, dom: u32) {
        if let Some(c) = self.domain_locks.get(dom as usize) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-domain gate-passage counts (empty for single-domain sessions).
    /// For multi-domain record/replay sessions the vector sums to `gates`;
    /// passthrough gates are counted only in the total.
    #[must_use]
    pub fn domain_gates(&self) -> Vec<u64> {
        self.domain_gates
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-domain gate-lock acquisition counts (empty for single-domain
    /// sessions).
    #[must_use]
    pub fn domain_locks(&self) -> Vec<u64> {
        self.domain_locks
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Count `n` inter-thread communication events (§IV-C2).
    #[inline]
    pub fn bump_comms(&self, n: u64) {
        self.comms.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one replay wait (a gate that did not pass immediately).
    #[inline]
    pub fn bump_waits(&self) {
        self.waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Add spin-loop iterations burned while waiting.
    #[inline]
    pub fn add_spin_iters(&self, n: u64) {
        self.spin_iters.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one trace record produced (record mode).
    #[inline]
    pub fn bump_record_written(&self) {
        self.records_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one trace record consumed (replay mode).
    #[inline]
    pub fn bump_record_read(&self) {
        self.records_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one store record whose epoch was finalized by a later access
    /// (the deferred-store rule of Table V).
    #[inline]
    pub fn bump_deferred(&self) {
        self.deferred_finalizations.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one streaming chunk flushed to a record stream.
    #[inline]
    pub fn bump_chunk_flush(&self) {
        self.chunk_flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Account bytes written to a record file.
    #[inline]
    pub fn add_io_written(&self, bytes: u64) {
        self.io_bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account bytes read from a record file.
    #[inline]
    pub fn add_io_read(&self, bytes: u64) {
        self.io_bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Count one record file touched.
    #[inline]
    pub fn bump_io_files(&self) {
        self.io_files.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one replay-validation comparison.
    #[inline]
    pub fn bump_validate(&self) {
        self.validate_checks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one cross-domain happens-before edge recorded.
    #[inline]
    pub fn bump_sync_edge(&self) {
        self.sync_edges.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one replay wait on a *foreign* domain's turnstile (a
    /// cross-domain edge being enforced).
    #[inline]
    pub fn bump_edge_wait(&self) {
        self.edge_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy all counters into an immutable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut by_kind = [0u64; 7];
        for (dst, src) in by_kind.iter_mut().zip(&self.gates_by_kind) {
            *dst = src.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            gates: self.gates.load(Ordering::Relaxed),
            gates_by_kind: by_kind,
            lock_acquires: self.lock_acquires.load(Ordering::Relaxed),
            comms: self.comms.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            spin_iters: self.spin_iters.load(Ordering::Relaxed),
            records_written: self.records_written.load(Ordering::Relaxed),
            records_read: self.records_read.load(Ordering::Relaxed),
            deferred_finalizations: self.deferred_finalizations.load(Ordering::Relaxed),
            chunk_flushes: self.chunk_flushes.load(Ordering::Relaxed),
            io_bytes_written: self.io_bytes_written.load(Ordering::Relaxed),
            io_bytes_read: self.io_bytes_read.load(Ordering::Relaxed),
            io_files: self.io_files.load(Ordering::Relaxed),
            validate_checks: self.validate_checks.load(Ordering::Relaxed),
            sync_edges: self.sync_edges.load(Ordering::Relaxed),
            edge_waits: self.edge_waits.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a session's [`Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Total gate passages.
    pub gates: u64,
    /// Gate passages per [`AccessKind`] (indexed by `AccessKind::code()`).
    pub gates_by_kind: [u64; 7],
    /// Gate-lock acquisitions (serialization events).
    pub lock_acquires: u64,
    /// Inter-thread communication events during replay (§IV-C2).
    pub comms: u64,
    /// Gates that had to wait in replay.
    pub waits: u64,
    /// Total spin iterations across all waits.
    pub spin_iters: u64,
    /// Trace records produced.
    pub records_written: u64,
    /// Trace records consumed.
    pub records_read: u64,
    /// Stores whose epoch was deferred to the next access (DE).
    pub deferred_finalizations: u64,
    /// Streaming chunks flushed to record streams during the run.
    pub chunk_flushes: u64,
    /// Bytes written to record files.
    pub io_bytes_written: u64,
    /// Bytes read from record files.
    pub io_bytes_read: u64,
    /// Record files touched.
    pub io_files: u64,
    /// Replay-validation comparisons performed.
    pub validate_checks: u64,
    /// Cross-domain happens-before edges recorded (record mode, D > 1).
    pub sync_edges: u64,
    /// Replay waits on foreign domains' turnstiles (edges enforced).
    pub edge_waits: u64,
}

impl StatsSnapshot {
    /// Gate count for one kind.
    #[must_use]
    pub fn gates_of(&self, kind: AccessKind) -> u64 {
        self.gates_by_kind[kind.code() as usize]
    }

    /// Mean inter-thread communications per gated access — the paper's
    /// headline difference between ST (≈2) and DC/DE (1) replay (§IV-C2).
    #[must_use]
    pub fn comms_per_gate(&self) -> f64 {
        if self.gates == 0 {
            0.0
        } else {
            self.comms as f64 / self.gates as f64
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "gates:              {}", self.gates)?;
        for kind in AccessKind::ALL {
            let n = self.gates_of(kind);
            if n > 0 {
                writeln!(f, "  {:<12} {}", format!("{kind}:"), n)?;
            }
        }
        writeln!(f, "lock acquires:      {}", self.lock_acquires)?;
        writeln!(
            f,
            "comms:              {} ({:.2}/gate)",
            self.comms,
            self.comms_per_gate()
        )?;
        writeln!(f, "waits:              {}", self.waits)?;
        writeln!(f, "spin iterations:    {}", self.spin_iters)?;
        writeln!(f, "records written:    {}", self.records_written)?;
        writeln!(f, "records read:       {}", self.records_read)?;
        writeln!(f, "deferred stores:    {}", self.deferred_finalizations)?;
        writeln!(f, "chunk flushes:      {}", self.chunk_flushes)?;
        writeln!(
            f,
            "trace I/O:          {} B out, {} B in, {} files",
            self.io_bytes_written, self.io_bytes_read, self.io_files
        )?;
        writeln!(f, "validate checks:    {}", self.validate_checks)?;
        write!(
            f,
            "cross-domain edges: {} recorded, {} replay waits",
            self.sync_edges, self.edge_waits
        )
    }
}

/// Distribution of *epoch sizes* in a DE trace — the analysis of Fig. 20.
///
/// The epoch size is the number of load/store accesses recorded with the
/// same epoch value. DC traces are the degenerate case where every epoch
/// has size 1 (§VI-B: *"we can view DC records as a special case where each
/// epoch is strictly limited to containing only one load or store
/// instruction"*).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochHistogram {
    /// `size -> number of epochs with that size`, sorted by size.
    pub counts: BTreeMap<u64, u64>,
}

impl EpochHistogram {
    /// Build the histogram from a recorded bundle by grouping all recorded
    /// values (clocks or epochs) across threads. Multi-domain bundles are
    /// grouped per `(domain, value)` — clocks in different gate domains are
    /// independent counters, so equal raw values across domains are *not*
    /// the same epoch.
    #[must_use]
    pub fn from_bundle(bundle: &TraceBundle) -> EpochHistogram {
        let mut population: BTreeMap<(usize, u64), u64> = BTreeMap::new();
        let nthreads = bundle.nthreads.max(1) as usize;
        for (i, thread) in bundle.threads.iter().enumerate() {
            let dom = i / nthreads;
            for &v in &thread.values {
                *population.entry((dom, v)).or_insert(0) += 1;
            }
        }
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for size in population.values() {
            *counts.entry(*size).or_insert(0) += 1;
        }
        EpochHistogram { counts }
    }

    /// Total number of epochs.
    #[must_use]
    pub fn total_epochs(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of epochs whose size exceeds 1 — the instructions that DE can
    /// execute concurrently in replay.
    #[must_use]
    pub fn epochs_gt1(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(size, _)| **size > 1)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Fraction of epochs with size > 1 (the per-application percentages of
    /// §VI-B: 10.6% AMG, 4% QuickSilver, 27.5% miniFE, 85% HACC, 57% HPCCG).
    #[must_use]
    pub fn frac_gt1(&self) -> f64 {
        let total = self.total_epochs();
        if total == 0 {
            0.0
        } else {
            self.epochs_gt1() as f64 / total as f64
        }
    }

    /// Number of *accesses* that live in epochs of size > 1 — the share of
    /// the replay that DE can execute concurrently (what drives Table X's
    /// replay speedups).
    #[must_use]
    pub fn accesses_in_gt1(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(size, _)| **size > 1)
            .map(|(size, n)| size * n)
            .sum()
    }

    /// Fraction of accesses in shared epochs (access-weighted counterpart
    /// of [`EpochHistogram::frac_gt1`]).
    #[must_use]
    pub fn frac_accesses_gt1(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.accesses_in_gt1() as f64 / total as f64
        }
    }

    /// Largest epoch size observed.
    #[must_use]
    pub fn max_size(&self) -> u64 {
        self.counts.keys().next_back().copied().unwrap_or(0)
    }

    /// Total accesses covered (Σ size·count).
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.counts.iter().map(|(size, n)| size * n).sum()
    }
}

impl fmt::Display for EpochHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "epoch size | occurrences")?;
        for (size, n) in &self.counts {
            writeln!(f, "{size:>10} | {n}")?;
        }
        write!(
            f,
            "epochs>1: {}/{} ({:.1}%)",
            self.epochs_gt1(),
            self.total_epochs(),
            self.frac_gt1() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Scheme;
    use crate::trace::{ThreadTrace, TraceBundle};

    fn bundle_with_values(per_thread: Vec<Vec<u64>>) -> TraceBundle {
        TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::De,
            nthreads: per_thread.len() as u32,
            domains: 1,
            threads: per_thread
                .into_iter()
                .map(|values| ThreadTrace {
                    values,
                    sites: None,
                    kinds: None,
                })
                .collect(),
            st: vec![],
        }
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = Stats::new();
        s.bump_gate(AccessKind::Load);
        s.bump_gate(AccessKind::Load);
        s.bump_gate(AccessKind::Critical);
        s.bump_comms(3);
        s.bump_lock();
        s.add_io_written(128);
        let snap = s.snapshot();
        assert_eq!(snap.gates, 3);
        assert_eq!(snap.gates_of(AccessKind::Load), 2);
        assert_eq!(snap.gates_of(AccessKind::Critical), 1);
        assert_eq!(snap.comms, 3);
        assert_eq!(snap.lock_acquires, 1);
        assert_eq!(snap.io_bytes_written, 128);
        assert!((snap.comms_per_gate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn histogram_matches_table_v_example() {
        // Table V epochs: {0,0,0}, {3,3}, {5}, {6} spread over 3 threads.
        let b = bundle_with_values(vec![vec![0, 3, 6], vec![0, 3], vec![0, 5]]);
        let h = EpochHistogram::from_bundle(&b);
        // sizes: epoch0 -> 3, epoch3 -> 2, epoch5 -> 1, epoch6 -> 1
        assert_eq!(h.counts.get(&3), Some(&1));
        assert_eq!(h.counts.get(&2), Some(&1));
        assert_eq!(h.counts.get(&1), Some(&2));
        assert_eq!(h.total_epochs(), 4);
        assert_eq!(h.epochs_gt1(), 2);
        assert_eq!(h.total_accesses(), 7);
        assert_eq!(h.max_size(), 3);
        assert!((h.frac_gt1() - 0.5).abs() < 1e-12);
        assert_eq!(h.accesses_in_gt1(), 5);
        assert!((h.frac_accesses_gt1() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn domain_counters_track_breakdown() {
        let s = Stats::with_domains(3);
        s.bump_domain_gate(0);
        s.bump_domain_gate(2);
        s.bump_domain_gate(2);
        s.bump_domain_lock(1);
        s.bump_domain_gate(99); // out of range: ignored, not a panic
        assert_eq!(s.domain_gates(), vec![1, 0, 2]);
        assert_eq!(s.domain_locks(), vec![0, 1, 0]);
        // Single-domain stats keep no breakdown.
        let s = Stats::with_domains(1);
        s.bump_domain_gate(0);
        assert!(s.domain_gates().is_empty());
    }

    #[test]
    fn histogram_keeps_domains_apart() {
        // Two domains, both with a value-0 pair. Per-domain grouping sees
        // two epochs of size 2, not one of size 4.
        let b = TraceBundle {
            plan: None,
            edges: vec![],
            checkpoint: None,
            scheme: Scheme::De,
            nthreads: 2,
            domains: 2,
            threads: vec![
                ThreadTrace {
                    values: vec![0],
                    sites: None,
                    kinds: None,
                };
                4
            ],
            st: vec![],
        };
        let h = EpochHistogram::from_bundle(&b);
        assert_eq!(h.counts.get(&2), Some(&2), "{h}");
        assert_eq!(h.total_epochs(), 2);
    }

    #[test]
    fn dc_trace_histogram_is_all_ones() {
        // Distinct clocks everywhere -> every epoch size is 1.
        let b = bundle_with_values(vec![vec![0, 2, 4], vec![1, 3, 5]]);
        let h = EpochHistogram::from_bundle(&b);
        assert_eq!(h.counts.len(), 1);
        assert_eq!(h.counts.get(&1), Some(&6));
        assert_eq!(h.frac_gt1(), 0.0);
    }

    #[test]
    fn display_is_well_formed() {
        let s = Stats::new().snapshot();
        let text = s.to_string();
        assert!(text.contains("gates"));
        let b = bundle_with_values(vec![vec![0, 0]]);
        let h = EpochHistogram::from_bundle(&b);
        assert!(h.to_string().contains("epochs>1"));
    }
}
