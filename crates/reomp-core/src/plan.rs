//! Domain planning: explicit site → gate-domain assignment.
//!
//! PR 3's gate domains partitioned sites with a blind `site.raw() % D`
//! hash. That partition has two defects the planning layer fixes:
//!
//! 1. **Soundness.** Two *aliased* sites — distinct instrumentation sites
//!    that touch the same memory cell — may hash into different domains,
//!    and multi-domain recording keeps no order *between* domains, so the
//!    relative order of those racing accesses is silently lost. A
//!    [`DomainPlan`] lets the race-detection toolflow pin every group of
//!    aliased/racing sites into **one** domain (see
//!    `racedet::DomainPlanner`), restoring the paper's ordering guarantee
//!    for exactly the accesses that need it.
//! 2. **Load balance.** Site ids derived from indexed labels are often
//!    sequential; raw modulo stripes adjacent sites into adjacent domains
//!    and can pile a hot loop's sites onto one domain. Sites *not*
//!    explicitly assigned by a plan fall back to a splitmix64-mixed hash
//!    before the modulo, which spreads any site-id pattern evenly.
//!
//! A plan is part of the trace: recordings made with a plan stamp it into
//! the store (`plan` manifest line + `plan.rtrc` section, see
//! [`crate::codec::encode_plan`]), and replay sessions reconstruct the
//! identical partition from the bundle. Plan-less multi-domain recordings
//! keep the legacy raw-modulo partition so PR 3 trace directories replay
//! unchanged.

use crate::site::{splitmix64, SiteId};
use std::collections::HashMap;

/// An explicit `SiteId → domain` assignment plus a mixed-hash fallback for
/// unassigned sites.
///
/// The partition is a pure function of the site id: record and replay
/// evaluate it identically, which is what makes per-domain order streams
/// replayable at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainPlan {
    domains: u32,
    assign: HashMap<u64, u32>,
}

impl Default for DomainPlan {
    /// The single-domain plan — `domains` must stay ≥ 1 even for a
    /// defaulted value, or it could be stamped into a trace that can
    /// never validate.
    fn default() -> DomainPlan {
        DomainPlan::new(1)
    }
}

impl DomainPlan {
    /// An empty plan over `domains` gate domains (clamped to ≥ 1): every
    /// site falls back to the mixed-hash partition.
    #[must_use]
    pub fn new(domains: u32) -> DomainPlan {
        DomainPlan {
            domains: domains.max(1),
            assign: HashMap::new(),
        }
    }

    /// A plan with explicit assignments.
    ///
    /// # Panics
    /// Panics when an assignment names a domain `>= domains` (a plan that
    /// routes a site outside the partition can never replay).
    #[must_use]
    pub fn with_assignments(
        domains: u32,
        assignments: impl IntoIterator<Item = (SiteId, u32)>,
    ) -> DomainPlan {
        let mut plan = DomainPlan::new(domains);
        for (site, dom) in assignments {
            plan.set(site, dom);
        }
        plan
    }

    /// Pin `site` to `dom`.
    ///
    /// # Panics
    /// Panics when `dom >= domains`.
    pub fn set(&mut self, site: SiteId, dom: u32) {
        assert!(
            dom < self.domains,
            "plan assigns {site} to domain {dom} but only {} domains exist",
            self.domains
        );
        self.assign.insert(site.raw(), dom);
    }

    /// Number of gate domains the plan partitions sites across.
    #[must_use]
    pub fn domains(&self) -> u32 {
        self.domains
    }

    /// Number of explicitly pinned sites.
    #[must_use]
    pub fn assigned(&self) -> usize {
        self.assign.len()
    }

    /// Whether the plan pins no sites (pure hash fallback).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// The domain of `site`: the explicit assignment when pinned, the
    /// mixed-hash fallback otherwise.
    #[inline]
    #[must_use]
    pub fn domain_of(&self, site: SiteId) -> u32 {
        if self.domains <= 1 {
            return 0;
        }
        match self.assign.get(&site.raw()) {
            Some(&dom) => dom,
            None => Self::hashed_fallback(self.domains, site),
        }
    }

    /// The mixed-hash fallback partition: splitmix64 over the raw site id,
    /// then modulo. Unlike the legacy `raw % D` it does not stripe
    /// sequentially-allocated site ids into adjacent domains.
    #[inline]
    #[must_use]
    pub fn hashed_fallback(domains: u32, site: SiteId) -> u32 {
        if domains <= 1 {
            0
        } else {
            (splitmix64(site.raw()) % u64::from(domains)) as u32
        }
    }

    /// The legacy plan-less partition (`raw % D`) used by PR 3 recordings
    /// and by sessions configured with a bare domain count. Kept distinct
    /// from [`DomainPlan::hashed_fallback`] so old traces replay with the
    /// partition they were recorded under.
    #[inline]
    #[must_use]
    pub fn legacy_modulo(domains: u32, site: SiteId) -> u32 {
        if domains <= 1 {
            0
        } else {
            (site.raw() % u64::from(domains)) as u32
        }
    }

    /// Explicit assignments sorted by raw site id — the deterministic
    /// iteration order the codec serializes.
    #[must_use]
    pub fn sorted_assignments(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.assign.iter().map(|(&s, &d)| (s, d)).collect();
        v.sort_unstable();
        v
    }

    /// Iterate the explicit assignments in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, u32)> + '_ {
        self.assign.iter().map(|(&s, &d)| (SiteId(s), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_uses_hashed_fallback() {
        let plan = DomainPlan::new(4);
        assert_eq!(plan.domains(), 4);
        assert!(plan.is_empty());
        for raw in 0..64u64 {
            let dom = plan.domain_of(SiteId(raw));
            assert!(dom < 4);
            assert_eq!(dom, DomainPlan::hashed_fallback(4, SiteId(raw)));
        }
    }

    #[test]
    fn explicit_assignment_wins_over_fallback() {
        let site = SiteId(0xfeed);
        let mut plan = DomainPlan::new(4);
        let fallback = plan.domain_of(site);
        let pinned = (fallback + 1) % 4;
        plan.set(site, pinned);
        assert_eq!(plan.domain_of(site), pinned);
        assert_eq!(plan.assigned(), 1);
    }

    #[test]
    fn hashed_fallback_spreads_sequential_sites() {
        // The defect the mixing hash fixes: 4k sequential ids must not
        // stripe — every domain should see a reasonable share even when
        // ids share low bits. With raw % 4, ids 0,4,8,.. (step 4) all land
        // in domain 0; with the mix they spread.
        let domains = 4u32;
        let mut hits = vec![0u32; domains as usize];
        for i in 0..4096u64 {
            hits[DomainPlan::hashed_fallback(domains, SiteId(i * 4)) as usize] += 1;
        }
        for (dom, &n) in hits.iter().enumerate() {
            assert!(
                n > 700,
                "domain {dom} got {n}/4096 sequential-stride sites: {hits:?}"
            );
        }
        // The legacy modulo demonstrably fails the same distribution.
        let mut legacy = vec![0u32; domains as usize];
        for i in 0..4096u64 {
            legacy[DomainPlan::legacy_modulo(domains, SiteId(i * 4)) as usize] += 1;
        }
        assert_eq!(legacy[0], 4096, "raw modulo stripes stride-4 ids");
    }

    #[test]
    fn partition_is_a_pure_function() {
        let plan = DomainPlan::with_assignments(3, [(SiteId(1), 2), (SiteId(9), 0)]);
        for raw in [1u64, 9, 77, u64::MAX] {
            assert_eq!(plan.domain_of(SiteId(raw)), plan.domain_of(SiteId(raw)));
        }
    }

    #[test]
    #[should_panic(expected = "only 2 domains exist")]
    fn out_of_range_assignment_rejected() {
        let mut plan = DomainPlan::new(2);
        plan.set(SiteId(3), 2);
    }

    #[test]
    fn single_domain_plan_maps_everything_to_zero() {
        let plan = DomainPlan::new(0); // clamps to 1
        assert_eq!(plan.domains(), 1);
        assert_eq!(plan.domain_of(SiteId(u64::MAX)), 0);
        // Default must uphold the same domains >= 1 invariant.
        assert_eq!(DomainPlan::default(), DomainPlan::new(1));
    }

    #[test]
    fn sorted_assignments_are_deterministic() {
        let plan =
            DomainPlan::with_assignments(4, [(SiteId(9), 1), (SiteId(1), 3), (SiteId(4), 0)]);
        assert_eq!(plan.sorted_assignments(), vec![(1, 3), (4, 0), (9, 1)]);
        assert_eq!(plan.iter().count(), 3);
    }
}
