//! Bounded in-situ "flight recorder" sink.
//!
//! Always-on recording pays for storage it almost never uses: the trace of
//! a run that finishes cleanly is thrown away. A *flight recorder* inverts
//! the deal — it retains only the last `N` chunks of every
//! `(thread, domain)` record stream in memory, checkpoints what the
//! evicted prefix would have replayed to, and materializes a replayable
//! bundle into a real [`StreamingTraceStore`] **only when something goes
//! wrong** (a detected race, a replay divergence, a panic, or an explicit
//! [`Session::dump`](crate::session::Session::dump)).
//!
//! # Window semantics
//!
//! Streams are the same flat domain-major `(thread, domain)` streams the
//! unbounded sinks keep, but each one is a ring of at most `window`
//! chunks. When a ring overflows, its oldest chunk is evicted and the
//! domain's *cut* rises to one past the largest record value evicted; the
//! prefix of **every** stream in that domain below the cut is then
//! trimmed, so the retained window stays consistent across threads:
//!
//! * DC — values are clocks (a permutation): after trimming, the retained
//!   clocks of domain `d` are exactly `base[d]..base[d]+n`, so the
//!   checkpointed `base` is the replay turnstile's starting value and
//!   [`TraceBundle::validate`](crate::trace::TraceBundle::validate)'s
//!   permutation check holds against it.
//! * DE — values are epochs (non-decreasing per stream since buffers are
//!   flushed in clock order): trimming every record with `epoch < cut`
//!   evicts a superset of the records with `clock < cut`, so
//!   `base[d] ≥ cut[d] ≥` every retained epoch's admission requirement and
//!   windowed replay cannot deadlock (see `dump` below).
//! * ST — the shared per-domain stream is its own order; eviction just
//!   counts records off the front (`base[d]` = evicted count) and edge
//!   anchors rebase by it.
//!
//! A dump replays the retained rings into a destination store through the
//! ordinary [`RecordSink`] stages, rebases cross-domain edge anchors by
//! each stream's evicted-record count (dropping edges whose anchor was
//! evicted; wait counts stay absolute because windowed replay starts every
//! turnstile at `base[d]`), and stamps a [`Checkpoint`] section. The
//! destination store's own crash-safety protocol (temp files + manifest
//! last) makes a crash mid-dump leave it `Empty` or intact, never corrupt.

use crate::error::TraceError;
use crate::plan::DomainPlan;
use crate::shim::atomic::{AtomicU64, Ordering};
use crate::shim::Mutex;
use crate::store::{check_columns, IoReport, RecordOptions, RecordSink, StreamingTraceStore};
use crate::trace::{Checkpoint, CrossDomainEdge, DumpTrigger};
use std::collections::VecDeque;
use std::sync::Arc;

/// Default retained window (chunks per stream) when `REOMP_FLIGHT` is set
/// without a count.
pub const DEFAULT_WINDOW: u32 = 8;

/// One retained chunk of a record stream, kept decoded so eviction can
/// trim by record value without re-parsing.
struct ChunkBuf<T> {
    data: Vec<T>,
    sites: Option<Vec<u64>>,
    kinds: Option<Vec<u8>>,
}

impl<T> ChunkBuf<T> {
    fn len(&self) -> usize {
        self.data.len()
    }

    /// Drop the first `n` records of the chunk.
    fn drop_prefix(&mut self, n: usize) {
        self.data.drain(..n);
        if let Some(s) = &mut self.sites {
            s.drain(..n);
        }
        if let Some(k) = &mut self.kinds {
            k.drain(..n);
        }
    }

    /// In-memory retention estimate in bytes.
    fn weight(&self) -> u64 {
        let n = self.data.len() as u64;
        n * std::mem::size_of::<T>() as u64
            + self.sites.as_ref().map_or(0, |_| n * 8)
            + self.kinds.as_ref().map_or(0, |_| n)
    }
}

/// A bounded stream: at most `window` chunks, plus the count of records
/// evicted off its front since the recording began.
struct StreamRing<T> {
    chunks: VecDeque<ChunkBuf<T>>,
    /// Records evicted from this stream (the rebase offset for edge
    /// anchors keyed to it).
    dropped: u64,
}

impl<T> StreamRing<T> {
    fn new() -> Self {
        StreamRing {
            chunks: VecDeque::new(),
            dropped: 0,
        }
    }

    fn records(&self) -> u64 {
        self.chunks.iter().map(|c| c.len() as u64).sum()
    }
}

impl StreamRing<u64> {
    /// Trim every leading record with value `< cut`. Values are
    /// non-decreasing along the stream (chunks arrive in clock order and
    /// are sorted before flushing), so this is a pure prefix. Returns the
    /// number of records trimmed.
    fn trim_below(&mut self, cut: u64) -> u64 {
        let mut trimmed = 0;
        while let Some(front) = self.chunks.front_mut() {
            let n = front.data.partition_point(|&v| v < cut);
            if n == front.len() {
                trimmed += n as u64;
                self.chunks.pop_front();
            } else {
                front.drop_prefix(n);
                trimmed += n as u64;
                break;
            }
        }
        self.dropped += trimmed;
        trimmed
    }
}

struct FlightState {
    /// Flat domain-major `(thread, domain)` rings (DC/DE records; holds
    /// only headers' worth of nothing for ST).
    threads: Vec<StreamRing<u64>>,
    /// Per-domain shared ST rings (empty for DC/DE).
    st: Vec<StreamRing<u32>>,
    /// Per-domain eviction cut: every retained record value in the domain
    /// is `>= cut[d]`.
    cut: Vec<u64>,
    /// Per-domain evicted-record counts — the checkpoint's clock bases.
    base: Vec<u64>,
    plan: Option<DomainPlan>,
    edges: Vec<CrossDomainEdge>,
}

/// The bounded in-situ recorder behind [`FlightSink`]. Shared (via `Arc`)
/// between the recording session's sink and whoever triggers dumps.
pub struct FlightRecorder {
    opts: RecordOptions,
    window: u32,
    state: Mutex<FlightState>,
    /// Peak chunks any single stream retained (measured after eviction, so
    /// it is `<= window` by construction — the bound the session report
    /// asserts).
    retained_peak: AtomicU64,
    /// Total records evicted across all streams.
    evicted: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining at most `window` chunks per stream (clamped to
    /// ≥ 1).
    #[must_use]
    pub fn new(opts: RecordOptions, window: u32) -> Self {
        let nstreams = opts.domains as usize * opts.nthreads as usize;
        FlightRecorder {
            opts,
            window: window.max(1),
            state: Mutex::new(FlightState {
                threads: (0..nstreams).map(|_| StreamRing::new()).collect(),
                st: if opts.scheme == crate::session::Scheme::St {
                    (0..opts.domains).map(|_| StreamRing::new()).collect()
                } else {
                    Vec::new()
                },
                cut: vec![0; opts.domains as usize],
                base: vec![0; opts.domains as usize],
                plan: None,
                edges: Vec::new(),
            }),
            retained_peak: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The recording's options (what a dump's `begin_record` will use).
    #[must_use]
    pub fn options(&self) -> RecordOptions {
        self.opts
    }

    /// Configured window (chunks per stream).
    #[must_use]
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Peak chunks any single stream retained at once so far.
    #[must_use]
    pub fn retained_peak(&self) -> u64 {
        self.retained_peak.load(Ordering::Acquire)
    }

    /// Total records evicted from the window so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Acquire)
    }

    fn note_peak(&self, state: &FlightState) {
        let peak = state
            .threads
            .iter()
            .map(|r| r.chunks.len())
            .chain(state.st.iter().map(|r| r.chunks.len()))
            .max()
            .unwrap_or(0) as u64;
        self.retained_peak.fetch_max(peak, Ordering::AcqRel);
    }

    /// Evict/trim domain `dom` so no thread ring exceeds the window and no
    /// retained record value is below the domain cut.
    fn enforce_window(&self, state: &mut FlightState, dom: u32) {
        let nthreads = self.opts.nthreads as usize;
        let streams = dom as usize * nthreads..(dom as usize + 1) * nthreads;
        let mut cut = state.cut[dom as usize];
        for i in streams.clone() {
            let ring = &mut state.threads[i];
            while ring.chunks.len() > self.window as usize {
                let evicted = ring.chunks.pop_front().expect("non-empty ring");
                if let Some(&last) = evicted.data.last() {
                    cut = cut.max(last + 1);
                }
                ring.dropped += evicted.len() as u64;
                state.base[dom as usize] += evicted.len() as u64;
                self.evicted
                    .fetch_add(evicted.len() as u64, Ordering::AcqRel);
            }
        }
        if cut > state.cut[dom as usize] {
            state.cut[dom as usize] = cut;
        }
        // Trim every stream in the domain below the (possibly raised) cut
        // so the retained window stays cross-thread consistent.
        for i in streams {
            let trimmed = state.threads[i].trim_below(cut);
            state.base[dom as usize] += trimmed;
            self.evicted.fetch_add(trimmed, Ordering::AcqRel);
        }
    }

    fn append_thread(
        &self,
        dom: u32,
        tid: u32,
        values: &[u64],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError> {
        check_columns(self.opts.validated, sites, kinds)?;
        if dom >= self.opts.domains || tid >= self.opts.nthreads {
            return Err(TraceError::Corrupt(format!(
                "no stream for domain {dom} thread {tid}"
            )));
        }
        let chunk = ChunkBuf {
            data: values.to_vec(),
            sites: sites.map(<[u64]>::to_vec),
            kinds: kinds.map(<[u8]>::to_vec),
        };
        let weight = chunk.weight();
        let mut state = self.state.lock();
        let idx = (dom * self.opts.nthreads + tid) as usize;
        state.threads[idx].chunks.push_back(chunk);
        self.enforce_window(&mut state, dom);
        self.note_peak(&state);
        Ok(weight)
    }

    fn append_st(
        &self,
        dom: u32,
        tids: &[u32],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError> {
        check_columns(self.opts.validated, sites, kinds)?;
        let chunk = ChunkBuf {
            data: tids.to_vec(),
            sites: sites.map(<[u64]>::to_vec),
            kinds: kinds.map(<[u8]>::to_vec),
        };
        let weight = chunk.weight();
        let mut state = self.state.lock();
        if dom as usize >= state.st.len() {
            return Err(TraceError::Corrupt(format!(
                "no st stream for domain {dom}"
            )));
        }
        let ring = &mut state.st[dom as usize];
        ring.chunks.push_back(chunk);
        let mut dropped = 0;
        while ring.chunks.len() > self.window as usize {
            let evicted = ring.chunks.pop_front().expect("non-empty ring");
            ring.dropped += evicted.len() as u64;
            dropped += evicted.len() as u64;
        }
        state.base[dom as usize] += dropped;
        self.evicted.fetch_add(dropped, Ordering::AcqRel);
        self.note_peak(&state);
        Ok(weight)
    }

    /// The retention report an unmaterialized recording finishes with:
    /// `bytes`/`chunks` describe what is currently held in memory,
    /// `files` is 0 (nothing was written), and
    /// `retained_peak`/`evicted` witness the window bound.
    fn retention_report(&self) -> IoReport {
        let state = self.state.lock();
        let mut report = IoReport {
            retained_peak: self.retained_peak(),
            evicted: self.evicted(),
            ..IoReport::default()
        };
        for ring in &state.threads {
            for c in &ring.chunks {
                report.bytes += c.weight();
                report.chunks += 1;
            }
        }
        for ring in &state.st {
            for c in &ring.chunks {
                report.bytes += c.weight();
                report.chunks += 1;
            }
        }
        report
    }

    /// Rebase one recorded edge onto the retained window: `None` if its
    /// anchor record was evicted, otherwise the anchor seq shifted by the
    /// anchor stream's evicted-record count. Wait counts stay absolute —
    /// windowed replay starts every domain turnstile at `base[d]`.
    fn rebase_edge(&self, state: &FlightState, edge: &CrossDomainEdge) -> Option<CrossDomainEdge> {
        let dropped = if self.opts.scheme == crate::session::Scheme::St {
            state.st.get(edge.domain as usize)?.dropped
        } else {
            let idx = (edge.domain * self.opts.nthreads + edge.thread) as usize;
            state.threads.get(idx)?.dropped
        };
        if edge.seq < dropped {
            return None;
        }
        Some(CrossDomainEdge {
            seq: edge.seq - dropped,
            ..edge.clone()
        })
    }

    /// Materialize the retained window into `store` as a replayable
    /// bundle stamped with a [`Checkpoint`].
    ///
    /// `plan` overrides the plan attached through the sink (sessions pass
    /// their config's plan because sinks only receive it at commit);
    /// `extra_edges` are edges the session has collected but not yet
    /// appended; `floors` are the DE per-domain clock floors recorded for
    /// provenance (empty for ST/DC).
    ///
    /// The returned report is the destination store's, with the recorder's
    /// retention counters stamped on top. Crash-safety is inherited from
    /// the destination: nothing becomes loadable before its final commit.
    pub fn dump_into(
        &self,
        store: &dyn StreamingTraceStore,
        trigger: DumpTrigger,
        plan: Option<&DomainPlan>,
        extra_edges: &[CrossDomainEdge],
        floors: Vec<u64>,
    ) -> Result<IoReport, TraceError> {
        // Hold the state lock across materialization: a dump is a
        // consistent snapshot even if other threads keep appending.
        let state = self.state.lock();
        let sink = store.begin_record(self.opts)?;
        let mut total: u64 = 0;
        for dom in 0..self.opts.domains {
            for tid in 0..self.opts.nthreads {
                let ring = &state.threads[(dom * self.opts.nthreads + tid) as usize];
                for c in &ring.chunks {
                    sink.append_thread_chunk(
                        dom,
                        tid,
                        &c.data,
                        c.sites.as_deref(),
                        c.kinds.as_deref(),
                    )?;
                }
                total += ring.records();
            }
        }
        for (dom, ring) in state.st.iter().enumerate() {
            for c in &ring.chunks {
                sink.append_st_chunk(dom as u32, &c.data, c.sites.as_deref(), c.kinds.as_deref())?;
            }
            total += ring.records();
        }
        if let Some(p) = plan.or(state.plan.as_ref()) {
            sink.put_plan(p)?;
        }
        let mut edges: Vec<CrossDomainEdge> = state
            .edges
            .iter()
            .chain(extra_edges)
            .filter_map(|e| self.rebase_edge(&state, e))
            .collect();
        edges.sort_by_key(|e| (e.domain, e.thread, e.seq));
        edges.dedup();
        if !edges.is_empty() {
            sink.append_edges(&edges)?;
        }
        sink.put_checkpoint(&Checkpoint {
            base: state.base.clone(),
            floors,
            window: self.window,
            trigger,
        })?;
        let mut report = sink.commit(total)?;
        report.retained_peak = self.retained_peak();
        report.evicted = self.evicted();
        Ok(report)
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("opts", &self.opts)
            .field("window", &self.window)
            .field("retained_peak", &self.retained_peak())
            .field("evicted", &self.evicted())
            .finish_non_exhaustive()
    }
}

/// The [`RecordSink`] face of a [`FlightRecorder`]: the retain stage of
/// the produce → retain → materialize pipeline. Appends land in the
/// bounded rings; `commit` finalizes the session *without* materializing
/// anything — the recording only ever reaches a store through
/// [`FlightRecorder::dump_into`].
pub struct FlightSink(Arc<FlightRecorder>);

impl FlightSink {
    /// Sink view of `recorder`.
    #[must_use]
    pub fn new(recorder: Arc<FlightRecorder>) -> Self {
        FlightSink(recorder)
    }
}

impl RecordSink for FlightSink {
    fn append_thread_chunk(
        &self,
        dom: u32,
        tid: u32,
        values: &[u64],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError> {
        self.0.append_thread(dom, tid, values, sites, kinds)
    }

    fn append_st_chunk(
        &self,
        dom: u32,
        tids: &[u32],
        sites: Option<&[u64]>,
        kinds: Option<&[u8]>,
    ) -> Result<u64, TraceError> {
        self.0.append_st(dom, tids, sites, kinds)
    }

    fn put_plan(&self, plan: &DomainPlan) -> Result<(), TraceError> {
        if plan.domains() != self.0.opts.domains {
            return Err(TraceError::Corrupt(format!(
                "plan partitions {} domains but the recording has {}",
                plan.domains(),
                self.0.opts.domains
            )));
        }
        self.0.state.lock().plan = Some(plan.clone());
        Ok(())
    }

    fn append_edges(&self, edges: &[CrossDomainEdge]) -> Result<(), TraceError> {
        self.0.state.lock().edges.extend_from_slice(edges);
        Ok(())
    }

    fn put_checkpoint(&self, _checkpoint: &Checkpoint) -> Result<(), TraceError> {
        Err(TraceError::Corrupt(
            "a flight recorder issues its own checkpoints at dump time".into(),
        ))
    }

    fn commit(self: Box<Self>, _total_records: u64) -> Result<IoReport, TraceError> {
        // Finishing a bounded recording persists nothing; the report
        // carries the retention counters instead of I/O.
        Ok(self.0.retention_report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Scheme;
    use crate::store::{MemStore, TraceStore};

    fn opts(scheme: Scheme, nthreads: u32, domains: u32) -> RecordOptions {
        RecordOptions::new(scheme, nthreads, domains, false)
    }

    #[test]
    fn ring_never_exceeds_the_window() {
        let rec = Arc::new(FlightRecorder::new(opts(Scheme::Dc, 1, 1), 3));
        for i in 0..50u64 {
            rec.append_thread(0, 0, &[i * 2, i * 2 + 1], None, None)
                .unwrap();
        }
        assert!(rec.retained_peak() <= 3, "peak {}", rec.retained_peak());
        assert_eq!(rec.evicted(), (50 - 3) * 2);
    }

    #[test]
    fn dc_window_dumps_as_a_valid_bundle_with_shifted_base() {
        // Two threads, interleaved clocks; window of 2 chunks per stream.
        let rec = Arc::new(FlightRecorder::new(opts(Scheme::Dc, 2, 1), 2));
        for c in 0..20u64 {
            // clock c goes to thread c % 2, one record per chunk.
            rec.append_thread(0, (c % 2) as u32, &[c], None, None)
                .unwrap();
        }
        let store = MemStore::default();
        let io = rec
            .dump_into(&store, DumpTrigger::Manual, None, &[], Vec::new())
            .unwrap();
        assert!(io.files > 0);
        let (bundle, _) = store.load().unwrap();
        let cp = bundle.checkpoint.as_ref().expect("checkpoint");
        assert_eq!(cp.trigger, DumpTrigger::Manual);
        assert_eq!(cp.window, 2);
        // 2 chunks × 1 record × 2 threads retained ⇒ base = 20 - 4 = 16.
        assert_eq!(cp.base, vec![16]);
        assert_eq!(bundle.total_records(), 4);
    }

    #[test]
    fn eviction_trims_sibling_streams_to_the_cut() {
        // Thread 0 floods its ring; thread 1's single old chunk (clocks
        // 0..2) must be trimmed away when the cut passes it.
        let rec = Arc::new(FlightRecorder::new(opts(Scheme::Dc, 2, 1), 2));
        rec.append_thread(0, 1, &[0, 1], None, None).unwrap();
        for c in 0..10u64 {
            rec.append_thread(0, 0, &[2 + c], None, None).unwrap();
        }
        let store = MemStore::default();
        rec.dump_into(&store, DumpTrigger::Race, None, &[], Vec::new())
            .unwrap();
        let (bundle, _) = store.load().unwrap();
        // Bundle validates ⇒ retained clocks are a contiguous run at base.
        assert_eq!(
            bundle.clock_base(0),
            bundle.checkpoint.as_ref().unwrap().base[0]
        );
        assert!(bundle.thread(0, 1).values.is_empty(), "old chunk trimmed");
    }

    #[test]
    fn st_window_counts_evictions_into_base() {
        let rec = Arc::new(FlightRecorder::new(opts(Scheme::St, 2, 1), 2));
        for i in 0..9u32 {
            rec.append_st(0, &[i % 2, (i + 1) % 2], None, None).unwrap();
        }
        let store = MemStore::default();
        rec.dump_into(&store, DumpTrigger::Panic, None, &[], Vec::new())
            .unwrap();
        let (bundle, _) = store.load().unwrap();
        // 9 chunks of 2, window 2 ⇒ 7 × 2 evicted.
        assert_eq!(bundle.checkpoint.as_ref().unwrap().base, vec![14]);
        assert_eq!(bundle.st[0].tids.len(), 4);
    }

    #[test]
    fn evicted_edge_anchors_are_dropped_and_survivors_rebased() {
        let rec = Arc::new(FlightRecorder::new(opts(Scheme::Dc, 1, 2), 1));
        // Domain 0: clocks 0..6 in 3 chunks — only the last chunk (4, 5)
        // survives, so 4 records dropped. Domain 1 keeps everything.
        for c in 0..3u64 {
            rec.append_thread(0, 0, &[c * 2, c * 2 + 1], None, None)
                .unwrap();
        }
        rec.append_thread(1, 0, &[0, 1], None, None).unwrap();
        let edges = vec![
            CrossDomainEdge {
                domain: 0,
                thread: 0,
                seq: 1, // evicted anchor
                waits: vec![(1, 1)],
            },
            CrossDomainEdge {
                domain: 0,
                thread: 0,
                seq: 5, // retained anchor → rebased to 1
                waits: vec![(1, 2)],
            },
        ];
        let store = MemStore::default();
        rec.dump_into(&store, DumpTrigger::Divergence, None, &edges, Vec::new())
            .unwrap();
        let (bundle, _) = store.load().unwrap();
        assert_eq!(bundle.edges.len(), 1);
        assert_eq!(bundle.edges[0].seq, 1);
        assert_eq!(bundle.edges[0].waits, vec![(1, 2)]);
    }

    #[test]
    fn sink_commit_reports_retention_not_io() {
        let rec = Arc::new(FlightRecorder::new(opts(Scheme::Dc, 1, 1), 2));
        let sink: Box<dyn RecordSink> = Box::new(FlightSink::new(Arc::clone(&rec)));
        for c in 0..5u64 {
            sink.append_thread_chunk(0, 0, &[c], None, None).unwrap();
        }
        let io = sink.commit(5).unwrap();
        assert_eq!(io.files, 0, "nothing materialized");
        assert_eq!(io.chunks, 2);
        assert_eq!(io.retained_peak, 2);
        assert_eq!(io.evicted, 3);
    }
}
