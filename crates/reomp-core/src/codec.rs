//! Binary record-file format.
//!
//! Record files must be cheap to write on the record hot path and compact
//! enough that trace I/O does not dominate (§II-B: the scalability of any
//! record-and-replay tool is ultimately bounded by its file-system usage).
//!
//! * Clock/epoch streams are **zigzag-delta varint** encoded: per-thread
//!   clock sequences are strictly increasing and DE epoch sequences are
//!   non-decreasing under the contiguous policy, so deltas are small
//!   non-negative integers that typically fit one byte.
//! * Thread-ID streams (ST) are plain varints.
//! * Site hashes are fixed 8-byte little-endian words (they are uniform
//!   hashes; varint would expand them).
//! * Kind codes are raw bytes.
//!
//! File layout (`encode_thread_trace`):
//!
//! ```text
//! magic "RTRC" | version u8 | scheme u8 | flags u8 | tid u32le |
//! count varint | values (zigzag-delta varints) |
//! [sites: count × u64le]   (flags bit 0)
//! [kinds: count × u8]      (flags bit 1)
//! ```
//!
//! The ST stream uses magic `RTST` and a tid varint stream instead of the
//! value stream.

use crate::error::TraceError;
use crate::session::Scheme;
use crate::trace::{StTrace, ThreadTrace};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC_THREAD: &[u8; 4] = b"RTRC";
const MAGIC_ST: &[u8; 4] = b"RTST";
const VERSION: u8 = 1;
const FLAG_SITES: u8 = 1;
const FLAG_KINDS: u8 = 2;

/// Append `v` as an LEB128 unsigned varint.
pub fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

/// Read one LEB128 unsigned varint.
pub fn get_uvarint(buf: &mut Bytes) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(TraceError::Corrupt("varint truncated".into()));
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(TraceError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt("varint too long".into()));
        }
    }
}

/// Zigzag-encode a signed delta.
#[inline]
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode a u64 stream as zigzag deltas (count is **not** written here).
pub fn put_delta_stream(buf: &mut BytesMut, values: &[u64]) {
    let mut prev = 0i64;
    for &v in values {
        let cur = v as i64;
        put_uvarint(buf, zigzag(cur.wrapping_sub(prev)));
        prev = cur;
    }
}

/// Decode `count` zigzag-delta values.
pub fn get_delta_stream(buf: &mut Bytes, count: usize) -> Result<Vec<u64>, TraceError> {
    let mut out = Vec::with_capacity(count);
    let mut prev = 0i64;
    for _ in 0..count {
        let d = unzigzag(get_uvarint(buf)?);
        prev = prev.wrapping_add(d);
        out.push(prev as u64);
    }
    Ok(out)
}

fn flags_of(sites: bool, kinds: bool) -> u8 {
    (if sites { FLAG_SITES } else { 0 }) | (if kinds { FLAG_KINDS } else { 0 })
}

fn put_columns(
    buf: &mut BytesMut,
    count: usize,
    sites: Option<&Vec<u64>>,
    kinds: Option<&Vec<u8>>,
) {
    if let Some(sites) = sites {
        debug_assert_eq!(sites.len(), count);
        for &s in sites {
            buf.put_u64_le(s);
        }
    }
    if let Some(kinds) = kinds {
        debug_assert_eq!(kinds.len(), count);
        buf.put_slice(kinds);
    }
}

type Columns = (Option<Vec<u64>>, Option<Vec<u8>>);

fn get_columns(buf: &mut Bytes, count: usize, flags: u8) -> Result<Columns, TraceError> {
    let sites = if flags & FLAG_SITES != 0 {
        if buf.remaining() < count * 8 {
            return Err(TraceError::Corrupt("site column truncated".into()));
        }
        Some((0..count).map(|_| buf.get_u64_le()).collect())
    } else {
        None
    };
    let kinds = if flags & FLAG_KINDS != 0 {
        if buf.remaining() < count {
            return Err(TraceError::Corrupt("kind column truncated".into()));
        }
        let mut k = vec![0u8; count];
        buf.copy_to_slice(&mut k);
        Some(k)
    } else {
        None
    };
    Ok((sites, kinds))
}

/// Serialize one per-thread trace.
#[must_use]
pub fn encode_thread_trace(trace: &ThreadTrace, scheme: Scheme, tid: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.values.len() * 2);
    buf.put_slice(MAGIC_THREAD);
    buf.put_u8(VERSION);
    buf.put_u8(scheme.code());
    buf.put_u8(flags_of(trace.sites.is_some(), trace.kinds.is_some()));
    buf.put_u32_le(tid);
    put_uvarint(&mut buf, trace.values.len() as u64);
    put_delta_stream(&mut buf, &trace.values);
    put_columns(
        &mut buf,
        trace.values.len(),
        trace.sites.as_ref(),
        trace.kinds.as_ref(),
    );
    buf.freeze()
}

/// Deserialize one per-thread trace; returns the trace, its scheme, and tid.
pub fn decode_thread_trace(bytes: &[u8]) -> Result<(ThreadTrace, Scheme, u32), TraceError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    check_header(&mut buf, MAGIC_THREAD)?;
    let scheme = Scheme::from_code(buf.get_u8())
        .ok_or_else(|| TraceError::Corrupt("bad scheme code".into()))?;
    let flags = buf.get_u8();
    if buf.remaining() < 4 {
        return Err(TraceError::Corrupt("header truncated".into()));
    }
    let tid = buf.get_u32_le();
    let count = get_uvarint(&mut buf)? as usize;
    let values = get_delta_stream(&mut buf, count)?;
    let (sites, kinds) = get_columns(&mut buf, count, flags)?;
    Ok((
        ThreadTrace {
            values,
            sites,
            kinds,
        },
        scheme,
        tid,
    ))
}

/// Serialize the shared ST trace.
#[must_use]
pub fn encode_st_trace(trace: &StTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.tids.len() * 2);
    buf.put_slice(MAGIC_ST);
    buf.put_u8(VERSION);
    buf.put_u8(Scheme::St.code());
    buf.put_u8(flags_of(trace.sites.is_some(), trace.kinds.is_some()));
    buf.put_u32_le(0);
    put_uvarint(&mut buf, trace.tids.len() as u64);
    for &t in &trace.tids {
        put_uvarint(&mut buf, u64::from(t));
    }
    put_columns(
        &mut buf,
        trace.tids.len(),
        trace.sites.as_ref(),
        trace.kinds.as_ref(),
    );
    buf.freeze()
}

/// Deserialize the shared ST trace.
pub fn decode_st_trace(bytes: &[u8]) -> Result<StTrace, TraceError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    check_header(&mut buf, MAGIC_ST)?;
    let _scheme = buf.get_u8();
    let flags = buf.get_u8();
    if buf.remaining() < 4 {
        return Err(TraceError::Corrupt("header truncated".into()));
    }
    let _tid = buf.get_u32_le();
    let count = get_uvarint(&mut buf)? as usize;
    let mut tids = Vec::with_capacity(count);
    for _ in 0..count {
        let t = get_uvarint(&mut buf)?;
        let t =
            u32::try_from(t).map_err(|_| TraceError::Corrupt(format!("tid {t} out of range")))?;
        tids.push(t);
    }
    let (sites, kinds) = get_columns(&mut buf, count, flags)?;
    Ok(StTrace { tids, sites, kinds })
}

fn check_header(buf: &mut Bytes, magic: &[u8; 4]) -> Result<(), TraceError> {
    if buf.remaining() < 6 {
        return Err(TraceError::Corrupt("file shorter than header".into()));
    }
    let mut found = [0u8; 4];
    buf.copy_to_slice(&mut found);
    if &found != magic {
        return Err(TraceError::BadMagic { found });
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        let mut buf = BytesMut::new();
        let cases = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &cases {
            buf.clear();
            put_uvarint(&mut buf, v);
            let mut b = buf.clone().freeze();
            assert_eq!(get_uvarint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut b = Bytes::from_static(&[0x80]);
        assert!(get_uvarint(&mut b).is_err());
        // 11 continuation bytes overflow u64.
        let mut b = Bytes::from_static(&[0xff; 11]);
        assert!(get_uvarint(&mut b).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-3i64, -1, 0, 1, 2, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn delta_stream_roundtrip_including_decreasing() {
        let values = vec![5u64, 5, 9, 2, 100, 0, u32::MAX as u64];
        let mut buf = BytesMut::new();
        put_delta_stream(&mut buf, &values);
        let mut b = buf.freeze();
        assert_eq!(get_delta_stream(&mut b, values.len()).unwrap(), values);
    }

    #[test]
    fn monotone_clock_stream_is_compact() {
        // Per-thread DC clock streams increase with small strides: each
        // delta should cost ~1 byte.
        let values: Vec<u64> = (0..1000u64).map(|i| i * 3).collect();
        let mut buf = BytesMut::new();
        put_delta_stream(&mut buf, &values);
        assert!(
            buf.len() <= values.len() + 8,
            "expected ~1 B/record, got {} B for {} records",
            buf.len(),
            values.len()
        );
    }

    #[test]
    fn thread_trace_roundtrip_with_columns() {
        let t = ThreadTrace {
            values: vec![0, 4, 4, 9],
            sites: Some(vec![0xdead, 0xbeef, 0xbeef, 0x1]),
            kinds: Some(vec![0, 1, 1, 3]),
        };
        let bytes = encode_thread_trace(&t, Scheme::De, 7);
        let (back, scheme, tid) = decode_thread_trace(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(scheme, Scheme::De);
        assert_eq!(tid, 7);
    }

    #[test]
    fn thread_trace_roundtrip_bare() {
        let t = ThreadTrace {
            values: vec![3, 1, 2],
            sites: None,
            kinds: None,
        };
        let bytes = encode_thread_trace(&t, Scheme::Dc, 0);
        let (back, _, _) = decode_thread_trace(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn st_trace_roundtrip() {
        let t = StTrace {
            tids: vec![2, 0, 1, 1, 2],
            sites: Some(vec![9, 9, 9, 9, 9]),
            kinds: Some(vec![3, 3, 3, 3, 3]),
        };
        let bytes = encode_st_trace(&t);
        assert_eq!(decode_st_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let t = ThreadTrace::default();
        let bytes = encode_thread_trace(&t, Scheme::Dc, 0);
        let mut corrupted = bytes.to_vec();
        corrupted[0] = b'X';
        assert!(matches!(
            decode_thread_trace(&corrupted),
            Err(TraceError::BadMagic { .. })
        ));
        let mut wrong_version = bytes.to_vec();
        wrong_version[4] = 99;
        assert!(matches!(
            decode_thread_trace(&wrong_version),
            Err(TraceError::BadVersion(99))
        ));
    }

    #[test]
    fn truncated_columns_rejected() {
        let t = ThreadTrace {
            values: vec![1, 2, 3],
            sites: Some(vec![1, 2, 3]),
            kinds: None,
        };
        let bytes = encode_thread_trace(&t, Scheme::De, 1);
        let cut = &bytes[..bytes.len() - 4];
        assert!(decode_thread_trace(cut).is_err());
    }

    #[test]
    fn st_rejects_oversized_tid() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTST");
        buf.put_u8(1); // version
        buf.put_u8(Scheme::St.code());
        buf.put_u8(0); // flags
        buf.put_u32_le(0);
        put_uvarint(&mut buf, 1); // one record
        put_uvarint(&mut buf, u64::from(u32::MAX) + 10); // tid out of range
        assert!(decode_st_trace(&buf.freeze()).is_err());
    }
}
