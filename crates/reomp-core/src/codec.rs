//! Binary record-file format.
//!
//! Record files must be cheap to write on the record hot path and compact
//! enough that trace I/O does not dominate (§II-B: the scalability of any
//! record-and-replay tool is ultimately bounded by its file-system usage).
//!
//! * Clock/epoch streams are **zigzag-delta varint** encoded: per-thread
//!   clock sequences are strictly increasing and DE epoch sequences are
//!   non-decreasing under the contiguous policy, so deltas are small
//!   non-negative integers that typically fit one byte.
//! * Thread-ID streams (ST) are plain varints.
//! * Site hashes are fixed 8-byte little-endian words (they are uniform
//!   hashes; varint would expand them).
//! * Kind codes are raw bytes.
//!
//! One-shot file layout (`encode_thread_trace`):
//!
//! ```text
//! magic "RTRC" | version u8 | scheme u8 | flags u8 | tid u32le |
//! [domain u32le]            (flags bit 3, FLAG_DOMAINS)
//! count varint | values (zigzag-delta varints) |
//! [sites: count × u64le]   (flags bit 0)
//! [kinds: count × u8]      (flags bit 1)
//! ```
//!
//! The ST stream uses magic `RTST` and a tid varint stream instead of the
//! value stream.
//!
//! Record files of a multi-domain recording (gate domains, see
//! [`crate::session::SessionConfig::domains`]) carry [`FLAG_DOMAINS`] and a
//! 4-byte little-endian domain id right after the tid. Single-domain
//! recordings never set the flag, so their files are byte-identical to the
//! pre-domain format and old traces decode unchanged (the decoder reports
//! `domain: None` for them).
//!
//! # Chunked (streaming) layout
//!
//! A record file whose header carries [`FLAG_CHUNKED`] (flags bit 2) is a
//! concatenation of **self-delimiting chunks** after the same 11-byte
//! header. Streaming recorders append one chunk per flush, so a trace never
//! has to exist in memory as a whole:
//!
//! ```text
//! header (flags | CHUNKED) | chunk* where each chunk is
//!   magic "RTCK" | nbytes varint | count varint |
//!   values (zigzag-delta varints, delta base restarts at 0) |
//!   [sites: count × u64le] [kinds: count × u8]
//! ```
//!
//! `nbytes` covers everything after itself up to the end of the chunk, so a
//! reader can bound-check (and skip) a chunk without decoding it. The delta
//! base restarts at zero in every chunk, making chunks independently
//! decodable. Decoding a chunked file concatenates the chunks back into one
//! [`ThreadTrace`]/[`StTrace`]; the result is indistinguishable from the
//! one-shot encoding of the same records.
//!
//! # Corrupt-input hardening
//!
//! All decode paths are total: record counts and chunk lengths are bounded
//! against the remaining buffer *before* any allocation (a corrupt varint
//! cannot trigger an OOM-sized `Vec::with_capacity`), and truncated
//! headers, value streams, or site/kind column tails yield
//! [`TraceError::Corrupt`] instead of panicking.

use crate::error::TraceError;
use crate::plan::DomainPlan;
use crate::session::Scheme;
use crate::site::SiteId;
use crate::trace::{Checkpoint, CrossDomainEdge, DumpTrigger, StTrace, ThreadTrace};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC_THREAD: &[u8; 4] = b"RTRC";
const MAGIC_ST: &[u8; 4] = b"RTST";
const MAGIC_CHUNK: &[u8; 4] = b"RTCK";
const MAGIC_PLAN: &[u8; 4] = b"RTPL";
const MAGIC_EDGES: &[u8; 4] = b"RTHB";
const MAGIC_CHECKPOINT: &[u8; 4] = b"RTCP";
const VERSION: u8 = 1;
const FLAG_SITES: u8 = 1;
const FLAG_KINDS: u8 = 2;
/// Header flag marking a chunked (streaming) record file.
pub const FLAG_CHUNKED: u8 = 4;
/// Header flag marking a record file that belongs to a multi-domain
/// recording; a 4-byte little-endian domain id follows the tid.
pub const FLAG_DOMAINS: u8 = 8;
/// Header flag marking a domain-plan section (set in the `RTPL` file so a
/// plan can never be confused with a record stream even if renamed).
pub const FLAG_PLAN: u8 = 16;
/// Header flag marking a stream whose chunk payloads are run-length
/// compressed (see [`encode_thread_chunk_opt`]); only valid together with
/// [`FLAG_CHUNKED`].
pub const FLAG_COMPRESSED: u8 = 32;

/// Upper bound on how many records a compressed chunk may claim per
/// payload byte. RLE legitimately decodes to many more records than it
/// occupies bytes, so the usual `count <= nbytes` bound does not apply;
/// this cap keeps a corrupt count from provoking an OOM-sized decode
/// while allowing any compression ratio a real recording can reach
/// (chunks hold at most one flush of records).
const MAX_RLE_EXPANSION: usize = 4096;

/// Append `v` as an LEB128 unsigned varint.
pub fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

/// Read one LEB128 unsigned varint.
pub fn get_uvarint(buf: &mut Bytes) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(TraceError::Corrupt("varint truncated".into()));
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(TraceError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt("varint too long".into()));
        }
    }
}

/// Zigzag-encode a signed delta.
#[inline]
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode a u64 stream as zigzag deltas (count is **not** written here).
pub fn put_delta_stream(buf: &mut BytesMut, values: &[u64]) {
    let mut prev = 0i64;
    for &v in values {
        let cur = v as i64;
        put_uvarint(buf, zigzag(cur.wrapping_sub(prev)));
        prev = cur;
    }
}

/// Decode `count` zigzag-delta values. `count` is bounded against the
/// remaining buffer (every value costs at least one byte) before the output
/// vector is allocated, so a corrupt count cannot OOM.
pub fn get_delta_stream(buf: &mut Bytes, count: usize) -> Result<Vec<u64>, TraceError> {
    if count > buf.remaining() {
        return Err(TraceError::Corrupt(format!(
            "value count {count} exceeds the {} remaining bytes",
            buf.remaining()
        )));
    }
    let mut out = Vec::with_capacity(count);
    let mut prev = 0i64;
    for _ in 0..count {
        let d = unzigzag(get_uvarint(buf)?);
        prev = prev.wrapping_add(d);
        out.push(prev as u64);
    }
    Ok(out)
}

/// Maximal runs of equal adjacent elements, as `(run_length, &value)`
/// pairs. The run-length scanner shared by every RLE stage of the codec
/// pipeline (compressed chunk payloads here, receive-event compression in
/// `rmpi::compress`).
pub fn rle_runs<T: PartialEq>(items: &[T]) -> Vec<(u64, &T)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < items.len() {
        let mut j = i + 1;
        while j < items.len() && items[j] == items[i] {
            j += 1;
        }
        out.push(((j - i) as u64, &items[i]));
        i = j;
    }
    out
}

/// Encode a u64 stream as run-length-encoded zigzag deltas:
/// `(run_len varint, delta varint)` per maximal run of equal deltas. The
/// delta base starts at 0 like [`put_delta_stream`], so clock streams
/// with a constant stride — and constant columns like repeated sites —
/// collapse to a handful of bytes.
pub fn put_rle_delta_stream(buf: &mut BytesMut, values: &[u64]) {
    let mut prev = 0i64;
    let deltas: Vec<u64> = values
        .iter()
        .map(|&v| {
            let cur = v as i64;
            let d = zigzag(cur.wrapping_sub(prev));
            prev = cur;
            d
        })
        .collect();
    for (run, &delta) in rle_runs(&deltas) {
        put_uvarint(buf, run);
        put_uvarint(buf, delta);
    }
}

/// Decode `count` values from a run-length-encoded zigzag-delta stream.
/// Run lengths must be non-zero and sum to exactly `count`; the caller
/// bounds `count` (see `MAX_RLE_EXPANSION`) before this allocates.
pub fn get_rle_delta_stream(buf: &mut Bytes, count: usize) -> Result<Vec<u64>, TraceError> {
    let mut out = Vec::with_capacity(count);
    let mut prev = 0i64;
    while out.len() < count {
        let run = get_uvarint(buf)? as usize;
        if run == 0 || run > count - out.len() {
            return Err(TraceError::Corrupt(format!(
                "RLE run of {run} in a stream expecting {} more values",
                count - out.len()
            )));
        }
        let d = unzigzag(get_uvarint(buf)?);
        for _ in 0..run {
            prev = prev.wrapping_add(d);
            out.push(prev as u64);
        }
    }
    Ok(out)
}

/// Encode a byte column as `(run_len varint, byte)` runs.
fn put_rle_bytes(buf: &mut BytesMut, bytes: &[u8]) {
    for (run, &b) in rle_runs(bytes) {
        put_uvarint(buf, run);
        buf.put_u8(b);
    }
}

/// Decode `count` bytes from a run-length-encoded column.
fn get_rle_bytes(buf: &mut Bytes, count: usize) -> Result<Vec<u8>, TraceError> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let run = get_uvarint(buf)? as usize;
        if run == 0 || run > count - out.len() {
            return Err(TraceError::Corrupt(format!(
                "RLE run of {run} in a column expecting {} more bytes",
                count - out.len()
            )));
        }
        if !buf.has_remaining() {
            return Err(TraceError::Corrupt("RLE column truncated".into()));
        }
        let b = buf.get_u8();
        out.extend(std::iter::repeat_n(b, run));
    }
    Ok(out)
}

fn flags_of(sites: bool, kinds: bool) -> u8 {
    (if sites { FLAG_SITES } else { 0 }) | (if kinds { FLAG_KINDS } else { 0 })
}

fn put_columns(
    buf: &mut BytesMut,
    count: usize,
    sites: Option<&Vec<u64>>,
    kinds: Option<&Vec<u8>>,
) {
    if let Some(sites) = sites {
        debug_assert_eq!(sites.len(), count);
        for &s in sites {
            buf.put_u64_le(s);
        }
    }
    if let Some(kinds) = kinds {
        debug_assert_eq!(kinds.len(), count);
        buf.put_slice(kinds);
    }
}

type Columns = (Option<Vec<u64>>, Option<Vec<u8>>);

fn get_columns(buf: &mut Bytes, count: usize, flags: u8) -> Result<Columns, TraceError> {
    let sites = if flags & FLAG_SITES != 0 {
        // Checked multiply: a corrupt count must not wrap the bound on
        // 32-bit targets and slip past the truncation check.
        let need = count
            .checked_mul(8)
            .ok_or_else(|| TraceError::Corrupt("site column length overflows".into()))?;
        if buf.remaining() < need {
            return Err(TraceError::Corrupt("site column truncated".into()));
        }
        Some((0..count).map(|_| buf.get_u64_le()).collect())
    } else {
        None
    };
    let kinds = if flags & FLAG_KINDS != 0 {
        if buf.remaining() < count {
            return Err(TraceError::Corrupt("kind column truncated".into()));
        }
        let mut k = vec![0u8; count];
        buf.copy_to_slice(&mut k);
        Some(k)
    } else {
        None
    };
    Ok((sites, kinds))
}

/// Write the shared header: magic, version, scheme, flags (with
/// [`FLAG_DOMAINS`] folded in when `domain` is present), tid, and the
/// optional domain id.
fn put_header(
    buf: &mut BytesMut,
    magic: &[u8; 4],
    scheme: Scheme,
    flags: u8,
    tid: u32,
    domain: Option<u32>,
) {
    buf.put_slice(magic);
    buf.put_u8(VERSION);
    buf.put_u8(scheme.code());
    buf.put_u8(flags | if domain.is_some() { FLAG_DOMAINS } else { 0 });
    buf.put_u32_le(tid);
    if let Some(dom) = domain {
        buf.put_u32_le(dom);
    }
}

/// Serialize one per-thread trace in the legacy (single-domain) layout —
/// byte-identical to the pre-domain format.
#[must_use]
pub fn encode_thread_trace(trace: &ThreadTrace, scheme: Scheme, tid: u32) -> Bytes {
    encode_thread_trace_opt(trace, scheme, tid, None)
}

/// Serialize one per-thread trace of a multi-domain recording: the header
/// carries [`FLAG_DOMAINS`] and `domain`.
#[must_use]
pub fn encode_thread_trace_domain(
    trace: &ThreadTrace,
    scheme: Scheme,
    tid: u32,
    domain: u32,
) -> Bytes {
    encode_thread_trace_opt(trace, scheme, tid, Some(domain))
}

/// Encode with an optional domain tag — the single dispatch point the
/// store layer uses (`None` = legacy single-domain layout).
pub(crate) fn encode_thread_trace_opt(
    trace: &ThreadTrace,
    scheme: Scheme,
    tid: u32,
    domain: Option<u32>,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(20 + trace.values.len() * 2);
    put_header(
        &mut buf,
        MAGIC_THREAD,
        scheme,
        flags_of(trace.sites.is_some(), trace.kinds.is_some()),
        tid,
        domain,
    );
    put_uvarint(&mut buf, trace.values.len() as u64);
    put_delta_stream(&mut buf, &trace.values);
    put_columns(
        &mut buf,
        trace.values.len(),
        trace.sites.as_ref(),
        trace.kinds.as_ref(),
    );
    buf.freeze()
}

/// A decoded per-thread record file, including how it was laid out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedThread {
    /// The reassembled trace.
    pub trace: ThreadTrace,
    /// Scheme stamped in the file header.
    pub scheme: Scheme,
    /// Thread ID stamped in the file header.
    pub tid: u32,
    /// Gate domain stamped in the file header, `None` for legacy
    /// (single-domain) files without [`FLAG_DOMAINS`].
    pub domain: Option<u32>,
    /// Number of chunks the file was stored as (0 for one-shot files).
    pub chunks: u64,
}

/// A decoded ST record file, including how it was laid out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSt {
    /// The reassembled shared trace.
    pub trace: StTrace,
    /// Gate domain stamped in the file header, `None` for legacy files.
    pub domain: Option<u32>,
    /// Number of chunks the file was stored as (0 for one-shot files).
    pub chunks: u64,
}

/// Deserialize one per-thread trace; returns the trace, its scheme, and tid.
pub fn decode_thread_trace(bytes: &[u8]) -> Result<(ThreadTrace, Scheme, u32), TraceError> {
    let d = decode_thread_records(bytes)?;
    Ok((d.trace, d.scheme, d.tid))
}

/// Chunk-aware deserialization of a per-thread record file: accepts both
/// the one-shot layout and a chunked stream, reassembling the latter into a
/// single [`ThreadTrace`].
pub fn decode_thread_records(bytes: &[u8]) -> Result<DecodedThread, TraceError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    check_header(&mut buf, MAGIC_THREAD)?;
    if buf.remaining() < 6 {
        return Err(TraceError::Corrupt("header truncated".into()));
    }
    let scheme = Scheme::from_code(buf.get_u8())
        .ok_or_else(|| TraceError::Corrupt("bad scheme code".into()))?;
    let flags = buf.get_u8();
    let tid = buf.get_u32_le();
    let domain = get_domain(&mut buf, flags)?;
    check_compressed_is_chunked(flags)?;
    let (trace, chunks) = if flags & FLAG_CHUNKED != 0 {
        let mut trace = empty_thread_trace(flags);
        let mut chunks = 0u64;
        while buf.has_remaining() {
            let (values, sites, kinds) = get_chunk(&mut buf, flags, StreamKind::Deltas)?;
            trace.values.extend(values);
            if let (Some(dst), Some(src)) = (trace.sites.as_mut(), sites) {
                dst.extend(src);
            }
            if let (Some(dst), Some(src)) = (trace.kinds.as_mut(), kinds) {
                dst.extend(src);
            }
            chunks += 1;
        }
        (trace, chunks)
    } else {
        let count = get_uvarint(&mut buf)? as usize;
        let values = get_delta_stream(&mut buf, count)?;
        let (sites, kinds) = get_columns(&mut buf, count, flags)?;
        (
            ThreadTrace {
                values,
                sites,
                kinds,
            },
            0,
        )
    };
    Ok(DecodedThread {
        trace,
        scheme,
        tid,
        domain,
        chunks,
    })
}

/// Read the optional [`FLAG_DOMAINS`] domain id following the tid.
fn get_domain(buf: &mut Bytes, flags: u8) -> Result<Option<u32>, TraceError> {
    if flags & FLAG_DOMAINS == 0 {
        return Ok(None);
    }
    if buf.remaining() < 4 {
        return Err(TraceError::Corrupt("domain id truncated".into()));
    }
    Ok(Some(buf.get_u32_le()))
}

fn empty_thread_trace(flags: u8) -> ThreadTrace {
    ThreadTrace {
        values: Vec::new(),
        sites: (flags & FLAG_SITES != 0).then(Vec::new),
        kinds: (flags & FLAG_KINDS != 0).then(Vec::new),
    }
}

/// Whether a chunk's value stream is zigzag-deltas (thread files) or plain
/// tid varints (the ST stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamKind {
    Deltas,
    Tids,
}

/// One decoded chunk: values (or raw tids) plus optional columns.
type DecodedChunk = (Vec<u64>, Option<Vec<u64>>, Option<Vec<u8>>);

/// Read one self-delimiting chunk. Bounds `nbytes` against the remaining
/// buffer and `count` against `nbytes` before allocating anything
/// (against `nbytes × `[`MAX_RLE_EXPANSION`] for compressed chunks), and
/// verifies the chunk consumed exactly the bytes it declared.
fn get_chunk(buf: &mut Bytes, flags: u8, kind: StreamKind) -> Result<DecodedChunk, TraceError> {
    if buf.remaining() < 4 {
        return Err(TraceError::Corrupt("chunk frame truncated".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC_CHUNK {
        return Err(TraceError::Corrupt(format!(
            "bad chunk magic {magic:?} (expected RTCK)"
        )));
    }
    let nbytes = get_uvarint(buf)? as usize;
    if nbytes > buf.remaining() {
        return Err(TraceError::Corrupt(format!(
            "chunk length {nbytes} exceeds the {} remaining bytes",
            buf.remaining()
        )));
    }
    let compressed = flags & FLAG_COMPRESSED != 0;
    let before = buf.remaining();
    let count = get_uvarint(buf)? as usize;
    let max_count = if compressed {
        nbytes.saturating_mul(MAX_RLE_EXPANSION)
    } else {
        nbytes
    };
    if count > max_count {
        return Err(TraceError::Corrupt(format!(
            "chunk record count {count} exceeds chunk length {nbytes}"
        )));
    }
    let values = match (kind, compressed) {
        (StreamKind::Deltas, false) => get_delta_stream(buf, count)?,
        (StreamKind::Deltas | StreamKind::Tids, true) => get_rle_delta_stream(buf, count)?,
        (StreamKind::Tids, false) => {
            let mut tids = Vec::with_capacity(count.min(buf.remaining()));
            for _ in 0..count {
                tids.push(get_uvarint(buf)?);
            }
            tids
        }
    };
    let (sites, kinds) = if compressed {
        let sites = (flags & FLAG_SITES != 0)
            .then(|| get_rle_delta_stream(buf, count))
            .transpose()?;
        let kinds = (flags & FLAG_KINDS != 0)
            .then(|| get_rle_bytes(buf, count))
            .transpose()?;
        (sites, kinds)
    } else {
        get_columns(buf, count, flags)?
    };
    let consumed = before - buf.remaining();
    if consumed != nbytes {
        return Err(TraceError::Corrupt(format!(
            "chunk declared {nbytes} bytes but decoding consumed {consumed}"
        )));
    }
    Ok((values, sites, kinds))
}

/// Serialize the 11-byte header of a chunked per-thread stream. Written
/// once when a streaming writer opens the file; chunks follow.
#[must_use]
pub fn encode_thread_stream_header(scheme: Scheme, tid: u32, sites: bool, kinds: bool) -> Bytes {
    encode_thread_stream_header_opt(scheme, tid, None, sites, kinds, false)
}

/// [`encode_thread_stream_header`] for a multi-domain recording (15-byte
/// header carrying [`FLAG_DOMAINS`] and the domain id).
#[must_use]
pub fn encode_thread_stream_header_domain(
    scheme: Scheme,
    tid: u32,
    domain: u32,
    sites: bool,
    kinds: bool,
) -> Bytes {
    encode_thread_stream_header_opt(scheme, tid, Some(domain), sites, kinds, false)
}

/// Stream-header variant of [`encode_thread_trace_opt`]; `compress`
/// stamps [`FLAG_COMPRESSED`], committing every chunk of the stream to the
/// RLE payload layout.
pub(crate) fn encode_thread_stream_header_opt(
    scheme: Scheme,
    tid: u32,
    domain: Option<u32>,
    sites: bool,
    kinds: bool,
    compress: bool,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(15);
    put_header(
        &mut buf,
        MAGIC_THREAD,
        scheme,
        flags_of(sites, kinds) | FLAG_CHUNKED | if compress { FLAG_COMPRESSED } else { 0 },
        tid,
        domain,
    );
    buf.freeze()
}

/// Serialize the 11-byte header of a chunked ST stream.
#[must_use]
pub fn encode_st_stream_header(sites: bool, kinds: bool) -> Bytes {
    encode_st_stream_header_opt(None, sites, kinds, false)
}

/// [`encode_st_stream_header`] for a multi-domain recording.
#[must_use]
pub fn encode_st_stream_header_domain(domain: u32, sites: bool, kinds: bool) -> Bytes {
    encode_st_stream_header_opt(Some(domain), sites, kinds, false)
}

/// Stream-header variant of [`encode_st_trace_opt`].
pub(crate) fn encode_st_stream_header_opt(
    domain: Option<u32>,
    sites: bool,
    kinds: bool,
    compress: bool,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(15);
    put_header(
        &mut buf,
        MAGIC_ST,
        Scheme::St,
        flags_of(sites, kinds) | FLAG_CHUNKED | if compress { FLAG_COMPRESSED } else { 0 },
        0,
        domain,
    );
    buf.freeze()
}

/// Serialize one self-delimiting chunk of per-thread records. The delta
/// base restarts at zero, so the chunk decodes independently of its
/// predecessors.
#[must_use]
pub fn encode_thread_chunk(values: &[u64], sites: Option<&[u64]>, kinds: Option<&[u8]>) -> Bytes {
    encode_thread_chunk_opt(values, sites, kinds, false)
}

/// [`encode_thread_chunk`] with an optional RLE compression stage: a
/// compressed payload is `count | values as RLE zigzag deltas | sites as
/// RLE zigzag deltas | kinds as RLE (run, byte) pairs`, and belongs in a
/// stream whose header carries [`FLAG_COMPRESSED`].
#[must_use]
pub fn encode_thread_chunk_opt(
    values: &[u64],
    sites: Option<&[u64]>,
    kinds: Option<&[u8]>,
    compress: bool,
) -> Bytes {
    let mut payload = BytesMut::with_capacity(8 + values.len() * 2);
    put_uvarint(&mut payload, values.len() as u64);
    if compress {
        put_rle_delta_stream(&mut payload, values);
        put_compressed_columns(&mut payload, sites, kinds);
    } else {
        put_delta_stream(&mut payload, values);
        put_column_slices(&mut payload, values.len(), sites, kinds);
    }
    frame_chunk(&payload)
}

/// Serialize one self-delimiting chunk of the shared ST stream.
#[must_use]
pub fn encode_st_chunk(tids: &[u32], sites: Option<&[u64]>, kinds: Option<&[u8]>) -> Bytes {
    encode_st_chunk_opt(tids, sites, kinds, false)
}

/// [`encode_st_chunk`] with the optional RLE compression stage; the tid
/// stream compresses as RLE zigzag deltas (runs of one thread's
/// consecutive gate passages collapse to one pair).
#[must_use]
pub fn encode_st_chunk_opt(
    tids: &[u32],
    sites: Option<&[u64]>,
    kinds: Option<&[u8]>,
    compress: bool,
) -> Bytes {
    let mut payload = BytesMut::with_capacity(8 + tids.len() * 2);
    put_uvarint(&mut payload, tids.len() as u64);
    if compress {
        let wide: Vec<u64> = tids.iter().map(|&t| u64::from(t)).collect();
        put_rle_delta_stream(&mut payload, &wide);
        put_compressed_columns(&mut payload, sites, kinds);
    } else {
        for &t in tids {
            put_uvarint(&mut payload, u64::from(t));
        }
        put_column_slices(&mut payload, tids.len(), sites, kinds);
    }
    frame_chunk(&payload)
}

fn put_compressed_columns(buf: &mut BytesMut, sites: Option<&[u64]>, kinds: Option<&[u8]>) {
    if let Some(sites) = sites {
        put_rle_delta_stream(buf, sites);
    }
    if let Some(kinds) = kinds {
        put_rle_bytes(buf, kinds);
    }
}

fn put_column_slices(
    buf: &mut BytesMut,
    count: usize,
    sites: Option<&[u64]>,
    kinds: Option<&[u8]>,
) {
    if let Some(sites) = sites {
        debug_assert_eq!(sites.len(), count);
        for &s in sites {
            buf.put_u64_le(s);
        }
    }
    if let Some(kinds) = kinds {
        debug_assert_eq!(kinds.len(), count);
        buf.put_slice(kinds);
    }
}

fn frame_chunk(payload: &BytesMut) -> Bytes {
    let mut out = BytesMut::with_capacity(payload.len() + 14);
    out.put_slice(MAGIC_CHUNK);
    put_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.freeze()
}

/// Serialize the shared ST trace in the legacy (single-domain) layout.
#[must_use]
pub fn encode_st_trace(trace: &StTrace) -> Bytes {
    encode_st_trace_opt(trace, None)
}

/// Serialize one domain's shared ST stream of a multi-domain recording.
#[must_use]
pub fn encode_st_trace_domain(trace: &StTrace, domain: u32) -> Bytes {
    encode_st_trace_opt(trace, Some(domain))
}

/// ST variant of [`encode_thread_trace_opt`].
pub(crate) fn encode_st_trace_opt(trace: &StTrace, domain: Option<u32>) -> Bytes {
    let mut buf = BytesMut::with_capacity(20 + trace.tids.len() * 2);
    put_header(
        &mut buf,
        MAGIC_ST,
        Scheme::St,
        flags_of(trace.sites.is_some(), trace.kinds.is_some()),
        0,
        domain,
    );
    put_uvarint(&mut buf, trace.tids.len() as u64);
    for &t in &trace.tids {
        put_uvarint(&mut buf, u64::from(t));
    }
    put_columns(
        &mut buf,
        trace.tids.len(),
        trace.sites.as_ref(),
        trace.kinds.as_ref(),
    );
    buf.freeze()
}

/// Deserialize the shared ST trace.
pub fn decode_st_trace(bytes: &[u8]) -> Result<StTrace, TraceError> {
    Ok(decode_st_records(bytes)?.trace)
}

/// Chunk-aware deserialization of the shared ST record file.
pub fn decode_st_records(bytes: &[u8]) -> Result<DecodedSt, TraceError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    check_header(&mut buf, MAGIC_ST)?;
    if buf.remaining() < 6 {
        return Err(TraceError::Corrupt("header truncated".into()));
    }
    let _scheme = buf.get_u8();
    let flags = buf.get_u8();
    let _tid = buf.get_u32_le();
    let domain = get_domain(&mut buf, flags)?;
    check_compressed_is_chunked(flags)?;
    let mut trace = StTrace {
        tids: Vec::new(),
        sites: (flags & FLAG_SITES != 0).then(Vec::new),
        kinds: (flags & FLAG_KINDS != 0).then(Vec::new),
    };
    let mut chunks = 0u64;
    if flags & FLAG_CHUNKED != 0 {
        while buf.has_remaining() {
            let (tids, sites, kinds) = get_chunk(&mut buf, flags, StreamKind::Tids)?;
            append_tids(&mut trace.tids, &tids)?;
            if let (Some(dst), Some(src)) = (trace.sites.as_mut(), sites) {
                dst.extend(src);
            }
            if let (Some(dst), Some(src)) = (trace.kinds.as_mut(), kinds) {
                dst.extend(src);
            }
            chunks += 1;
        }
    } else {
        let count = get_uvarint(&mut buf)? as usize;
        if count > buf.remaining() {
            return Err(TraceError::Corrupt(format!(
                "tid count {count} exceeds the {} remaining bytes",
                buf.remaining()
            )));
        }
        trace.tids.reserve(count);
        for _ in 0..count {
            let t = get_uvarint(&mut buf)?;
            append_tids(&mut trace.tids, &[t])?;
        }
        let (sites, kinds) = get_columns(&mut buf, count, flags)?;
        trace.sites = sites;
        trace.kinds = kinds;
    }
    Ok(DecodedSt {
        trace,
        domain,
        chunks,
    })
}

fn append_tids(dst: &mut Vec<u32>, raw: &[u64]) -> Result<(), TraceError> {
    for &t in raw {
        let t =
            u32::try_from(t).map_err(|_| TraceError::Corrupt(format!("tid {t} out of range")))?;
        dst.push(t);
    }
    Ok(())
}

/// Serialize a [`DomainPlan`] as the trace's plan section:
///
/// ```text
/// magic "RTPL" | version u8 | flags u8 (= FLAG_PLAN) | domains u32le |
/// count varint | count × (site u64le | domain varint)   — sorted by site
/// ```
#[must_use]
pub fn encode_plan(plan: &DomainPlan) -> Bytes {
    let entries = plan.sorted_assignments();
    let mut buf = BytesMut::with_capacity(16 + entries.len() * 10);
    buf.put_slice(MAGIC_PLAN);
    buf.put_u8(VERSION);
    buf.put_u8(FLAG_PLAN);
    buf.put_u32_le(plan.domains());
    put_uvarint(&mut buf, entries.len() as u64);
    for (site, dom) in entries {
        buf.put_u64_le(site);
        put_uvarint(&mut buf, u64::from(dom));
    }
    buf.freeze()
}

/// Deserialize a plan section. Entry count and every domain id are bounded
/// before allocation.
pub fn decode_plan(bytes: &[u8]) -> Result<DomainPlan, TraceError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    check_header(&mut buf, MAGIC_PLAN)?;
    if buf.remaining() < 5 {
        return Err(TraceError::Corrupt("plan header truncated".into()));
    }
    let flags = buf.get_u8();
    if flags & FLAG_PLAN == 0 {
        return Err(TraceError::Corrupt("plan section without FLAG_PLAN".into()));
    }
    let domains = buf.get_u32_le();
    if domains == 0 {
        return Err(TraceError::Corrupt("plan with zero domains".into()));
    }
    let count = get_uvarint(&mut buf)? as usize;
    // Every entry costs at least 9 bytes; bound before building the map.
    let need = count
        .checked_mul(9)
        .ok_or_else(|| TraceError::Corrupt("plan entry count overflows".into()))?;
    if need > buf.remaining() {
        return Err(TraceError::Corrupt(format!(
            "plan entry count {count} exceeds the {} remaining bytes",
            buf.remaining()
        )));
    }
    let mut plan = DomainPlan::new(domains);
    for _ in 0..count {
        if buf.remaining() < 8 {
            return Err(TraceError::Corrupt("plan entry truncated".into()));
        }
        let site = buf.get_u64_le();
        let dom = get_uvarint(&mut buf)?;
        let dom = u32::try_from(dom)
            .ok()
            .filter(|&d| d < domains)
            .ok_or_else(|| {
                TraceError::Corrupt(format!("plan assigns a site to domain {dom} of {domains}"))
            })?;
        plan.set(SiteId(site), dom);
    }
    if buf.has_remaining() {
        return Err(TraceError::Corrupt("plan has trailing bytes".into()));
    }
    Ok(plan)
}

/// Serialize the cross-domain happens-before edges:
///
/// ```text
/// magic "RTHB" | version u8 | flags u8 (= 0) | count varint |
/// count × ( domain varint | thread varint | seq varint |
///           nwaits varint | nwaits × (domain varint | count varint) )
/// ```
#[must_use]
pub fn encode_edges(edges: &[CrossDomainEdge]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + edges.len() * 8);
    buf.put_slice(MAGIC_EDGES);
    buf.put_u8(VERSION);
    buf.put_u8(0);
    put_uvarint(&mut buf, edges.len() as u64);
    for e in edges {
        put_uvarint(&mut buf, u64::from(e.domain));
        put_uvarint(&mut buf, u64::from(e.thread));
        put_uvarint(&mut buf, e.seq);
        put_uvarint(&mut buf, e.waits.len() as u64);
        for &(dom, count) in &e.waits {
            put_uvarint(&mut buf, u64::from(dom));
            put_uvarint(&mut buf, count);
        }
    }
    buf.freeze()
}

/// Deserialize an edge section; counts are bounded against the remaining
/// bytes before any allocation.
pub fn decode_edges(bytes: &[u8]) -> Result<Vec<CrossDomainEdge>, TraceError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    check_header(&mut buf, MAGIC_EDGES)?;
    if !buf.has_remaining() {
        return Err(TraceError::Corrupt("edge header truncated".into()));
    }
    let _flags = buf.get_u8();
    let count = get_uvarint(&mut buf)? as usize;
    // Every edge costs at least 4 bytes (four varints).
    if count
        .checked_mul(4)
        .is_none_or(|need| need > buf.remaining())
    {
        return Err(TraceError::Corrupt(format!(
            "edge count {count} exceeds the {} remaining bytes",
            buf.remaining()
        )));
    }
    let get_u32 = |buf: &mut Bytes, what: &str| -> Result<u32, TraceError> {
        let v = get_uvarint(buf)?;
        u32::try_from(v).map_err(|_| TraceError::Corrupt(format!("edge {what} {v} out of range")))
    };
    let mut edges = Vec::with_capacity(count);
    for _ in 0..count {
        let domain = get_u32(&mut buf, "domain")?;
        let thread = get_u32(&mut buf, "thread")?;
        let seq = get_uvarint(&mut buf)?;
        let nwaits = get_uvarint(&mut buf)? as usize;
        if nwaits.checked_mul(2).is_none_or(|n| n > buf.remaining()) {
            return Err(TraceError::Corrupt(format!(
                "edge wait count {nwaits} exceeds the {} remaining bytes",
                buf.remaining()
            )));
        }
        let mut waits = Vec::with_capacity(nwaits);
        for _ in 0..nwaits {
            let dom = get_u32(&mut buf, "wait domain")?;
            let c = get_uvarint(&mut buf)?;
            waits.push((dom, c));
        }
        edges.push(CrossDomainEdge {
            domain,
            thread,
            seq,
            waits,
        });
    }
    if buf.has_remaining() {
        return Err(TraceError::Corrupt(
            "edge section has trailing bytes".into(),
        ));
    }
    Ok(edges)
}

fn check_compressed_is_chunked(flags: u8) -> Result<(), TraceError> {
    if flags & FLAG_COMPRESSED != 0 && flags & FLAG_CHUNKED == 0 {
        return Err(TraceError::Corrupt(
            "compressed stream without FLAG_CHUNKED".into(),
        ));
    }
    Ok(())
}

/// Serialize a flight-recorder [`Checkpoint`] as the trace's checkpoint
/// section:
///
/// ```text
/// magic "RTCP" | version u8 | flags u8 (= 0) | trigger u8 | window u32le |
/// domains varint | domains × base varint |
/// nfloors varint | nfloors × floor varint
/// ```
#[must_use]
pub fn encode_checkpoint(cp: &Checkpoint) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + (cp.base.len() + cp.floors.len()) * 4);
    buf.put_slice(MAGIC_CHECKPOINT);
    buf.put_u8(VERSION);
    buf.put_u8(0);
    buf.put_u8(cp.trigger.code());
    buf.put_u32_le(cp.window);
    put_uvarint(&mut buf, cp.base.len() as u64);
    for &b in &cp.base {
        put_uvarint(&mut buf, b);
    }
    put_uvarint(&mut buf, cp.floors.len() as u64);
    for &f in &cp.floors {
        put_uvarint(&mut buf, f);
    }
    buf.freeze()
}

/// Deserialize a checkpoint section; both counts are bounded against the
/// remaining bytes before any allocation.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, TraceError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    check_header(&mut buf, MAGIC_CHECKPOINT)?;
    if buf.remaining() < 6 {
        return Err(TraceError::Corrupt("checkpoint header truncated".into()));
    }
    let _flags = buf.get_u8();
    let trigger_code = buf.get_u8();
    let trigger = DumpTrigger::from_code(trigger_code)
        .ok_or_else(|| TraceError::Corrupt(format!("bad dump trigger code {trigger_code}")))?;
    let window = buf.get_u32_le();
    let get_counts = |buf: &mut Bytes, what: &str| -> Result<Vec<u64>, TraceError> {
        let n = get_uvarint(buf)? as usize;
        if n > buf.remaining() {
            return Err(TraceError::Corrupt(format!(
                "checkpoint {what} count {n} exceeds the {} remaining bytes",
                buf.remaining()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(get_uvarint(buf)?);
        }
        Ok(out)
    };
    let base = get_counts(&mut buf, "base")?;
    let floors = get_counts(&mut buf, "floor")?;
    if buf.has_remaining() {
        return Err(TraceError::Corrupt(
            "checkpoint section has trailing bytes".into(),
        ));
    }
    Ok(Checkpoint {
        base,
        floors,
        window,
        trigger,
    })
}

fn check_header(buf: &mut Bytes, magic: &[u8; 4]) -> Result<(), TraceError> {
    if buf.remaining() < 6 {
        return Err(TraceError::Corrupt("file shorter than header".into()));
    }
    let mut found = [0u8; 4];
    buf.copy_to_slice(&mut found);
    if &found != magic {
        return Err(TraceError::BadMagic { found });
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        let mut buf = BytesMut::new();
        let cases = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &cases {
            buf.clear();
            put_uvarint(&mut buf, v);
            let mut b = buf.clone().freeze();
            assert_eq!(get_uvarint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut b = Bytes::from_static(&[0x80]);
        assert!(get_uvarint(&mut b).is_err());
        // 11 continuation bytes overflow u64.
        let mut b = Bytes::from_static(&[0xff; 11]);
        assert!(get_uvarint(&mut b).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-3i64, -1, 0, 1, 2, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn delta_stream_roundtrip_including_decreasing() {
        let values = vec![5u64, 5, 9, 2, 100, 0, u32::MAX as u64];
        let mut buf = BytesMut::new();
        put_delta_stream(&mut buf, &values);
        let mut b = buf.freeze();
        assert_eq!(get_delta_stream(&mut b, values.len()).unwrap(), values);
    }

    #[test]
    fn monotone_clock_stream_is_compact() {
        // Per-thread DC clock streams increase with small strides: each
        // delta should cost ~1 byte.
        let values: Vec<u64> = (0..1000u64).map(|i| i * 3).collect();
        let mut buf = BytesMut::new();
        put_delta_stream(&mut buf, &values);
        assert!(
            buf.len() <= values.len() + 8,
            "expected ~1 B/record, got {} B for {} records",
            buf.len(),
            values.len()
        );
    }

    #[test]
    fn thread_trace_roundtrip_with_columns() {
        let t = ThreadTrace {
            values: vec![0, 4, 4, 9],
            sites: Some(vec![0xdead, 0xbeef, 0xbeef, 0x1]),
            kinds: Some(vec![0, 1, 1, 3]),
        };
        let bytes = encode_thread_trace(&t, Scheme::De, 7);
        let (back, scheme, tid) = decode_thread_trace(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(scheme, Scheme::De);
        assert_eq!(tid, 7);
    }

    #[test]
    fn thread_trace_roundtrip_bare() {
        let t = ThreadTrace {
            values: vec![3, 1, 2],
            sites: None,
            kinds: None,
        };
        let bytes = encode_thread_trace(&t, Scheme::Dc, 0);
        let (back, _, _) = decode_thread_trace(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn st_trace_roundtrip() {
        let t = StTrace {
            tids: vec![2, 0, 1, 1, 2],
            sites: Some(vec![9, 9, 9, 9, 9]),
            kinds: Some(vec![3, 3, 3, 3, 3]),
        };
        let bytes = encode_st_trace(&t);
        assert_eq!(decode_st_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let t = ThreadTrace::default();
        let bytes = encode_thread_trace(&t, Scheme::Dc, 0);
        let mut corrupted = bytes.to_vec();
        corrupted[0] = b'X';
        assert!(matches!(
            decode_thread_trace(&corrupted),
            Err(TraceError::BadMagic { .. })
        ));
        let mut wrong_version = bytes.to_vec();
        wrong_version[4] = 99;
        assert!(matches!(
            decode_thread_trace(&wrong_version),
            Err(TraceError::BadVersion(99))
        ));
    }

    #[test]
    fn truncated_columns_rejected() {
        let t = ThreadTrace {
            values: vec![1, 2, 3],
            sites: Some(vec![1, 2, 3]),
            kinds: None,
        };
        let bytes = encode_thread_trace(&t, Scheme::De, 1);
        let cut = &bytes[..bytes.len() - 4];
        assert!(decode_thread_trace(cut).is_err());
    }

    #[test]
    fn header_exactly_six_bytes_is_corrupt_not_panic() {
        // Regression: a file cut right after magic+version used to panic in
        // the flags/tid reads instead of returning Corrupt.
        for len in 0..11 {
            let t = ThreadTrace {
                values: vec![1, 2],
                sites: None,
                kinds: None,
            };
            let bytes = encode_thread_trace(&t, Scheme::Dc, 3);
            let cut = &bytes[..len.min(bytes.len())];
            assert!(decode_thread_trace(cut).is_err(), "len {len}");
            let st = encode_st_trace(&StTrace {
                tids: vec![0, 1],
                sites: None,
                kinds: None,
            });
            let cut = &st[..len.min(st.len())];
            assert!(decode_st_trace(cut).is_err(), "st len {len}");
        }
    }

    #[test]
    fn oversized_count_is_bounded_before_allocation() {
        // A count far beyond the payload must fail fast, not allocate.
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTRC");
        buf.put_u8(1);
        buf.put_u8(Scheme::Dc.code());
        buf.put_u8(0);
        buf.put_u32_le(0);
        put_uvarint(&mut buf, u64::MAX / 2); // absurd record count
        buf.put_u8(0); // one lonely payload byte
        let err = decode_thread_trace(&buf.freeze()).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");

        let mut buf = BytesMut::new();
        buf.put_slice(b"RTST");
        buf.put_u8(1);
        buf.put_u8(Scheme::St.code());
        buf.put_u8(0);
        buf.put_u32_le(0);
        put_uvarint(&mut buf, u64::MAX / 2);
        buf.put_u8(0);
        let err = decode_st_trace(&buf.freeze()).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
    }

    fn sample_columns(n: usize) -> (Vec<u64>, Vec<u64>, Vec<u8>) {
        let values: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(3) % 97).collect();
        let sites: Vec<u64> = (0..n as u64).map(|i| 0x1000 + i % 5).collect();
        let kinds: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        (values, sites, kinds)
    }

    fn encode_in_chunks(
        trace: &ThreadTrace,
        scheme: Scheme,
        tid: u32,
        splits: &[usize],
    ) -> Vec<u8> {
        let mut out =
            encode_thread_stream_header(scheme, tid, trace.sites.is_some(), trace.kinds.is_some())
                .to_vec();
        let mut at = 0usize;
        for &len in splits {
            let end = (at + len).min(trace.values.len());
            if end == at {
                continue;
            }
            out.extend_from_slice(&encode_thread_chunk(
                &trace.values[at..end],
                trace.sites.as_ref().map(|s| &s[at..end]),
                trace.kinds.as_ref().map(|k| &k[at..end]),
            ));
            at = end;
        }
        assert_eq!(at, trace.values.len(), "splits must cover the trace");
        out
    }

    #[test]
    fn chunked_thread_stream_reassembles_to_one_shot() {
        let (values, sites, kinds) = sample_columns(23);
        let trace = ThreadTrace {
            values,
            sites: Some(sites),
            kinds: Some(kinds),
        };
        let bytes = encode_in_chunks(&trace, Scheme::De, 5, &[7, 1, 10, 23]);
        let d = decode_thread_records(&bytes).unwrap();
        assert_eq!(d.trace, trace);
        assert_eq!(d.scheme, Scheme::De);
        assert_eq!(d.tid, 5);
        assert_eq!(d.chunks, 4);

        // The one-shot encoding of the same records decodes equal.
        let one_shot = encode_thread_trace(&trace, Scheme::De, 5);
        let d1 = decode_thread_records(&one_shot).unwrap();
        assert_eq!(d1.trace, d.trace);
        assert_eq!(d1.chunks, 0);
    }

    #[test]
    fn chunked_stream_with_zero_chunks_is_an_empty_trace() {
        let bytes = encode_thread_stream_header(Scheme::Dc, 2, true, true);
        let d = decode_thread_records(&bytes).unwrap();
        assert_eq!(d.trace.values, Vec::<u64>::new());
        assert_eq!(d.trace.sites, Some(vec![]));
        assert_eq!(d.trace.kinds, Some(vec![]));
        assert_eq!(d.chunks, 0);
    }

    #[test]
    fn chunked_st_stream_reassembles() {
        let t = StTrace {
            tids: vec![2, 0, 1, 1, 2, 0, 0],
            sites: Some(vec![9; 7]),
            kinds: Some(vec![3; 7]),
        };
        let mut bytes = encode_st_stream_header(true, true).to_vec();
        for range in [0..3usize, 3..7] {
            bytes.extend_from_slice(&encode_st_chunk(
                &t.tids[range.clone()],
                Some(&t.sites.as_ref().unwrap()[range.clone()]),
                Some(&t.kinds.as_ref().unwrap()[range]),
            ));
        }
        let d = decode_st_records(&bytes).unwrap();
        assert_eq!(d.trace, t);
        assert_eq!(d.chunks, 2);
    }

    #[test]
    fn corrupt_chunks_rejected() {
        let (values, sites, kinds) = sample_columns(9);
        let trace = ThreadTrace {
            values,
            sites: Some(sites),
            kinds: Some(kinds),
        };
        let good = encode_in_chunks(&trace, Scheme::Dc, 0, &[9]);

        // Truncated mid-chunk.
        for cut in 12..good.len() {
            assert!(decode_thread_records(&good[..cut]).is_err(), "cut {cut}");
        }
        // Bad chunk magic.
        let mut bad = good.clone();
        bad[11] = b'X';
        assert!(decode_thread_records(&bad).is_err());
        // Declared length larger than the remaining bytes.
        let mut bytes = encode_thread_stream_header(Scheme::Dc, 0, false, false).to_vec();
        bytes.extend_from_slice(b"RTCK");
        let mut len = BytesMut::new();
        put_uvarint(&mut len, 1_000_000);
        bytes.extend_from_slice(&len);
        bytes.push(0);
        assert!(decode_thread_records(&bytes).is_err());
    }

    #[test]
    fn legacy_layout_bytes_are_pinned() {
        // Golden bytes: the single-domain encoding must stay byte-identical
        // to the pre-domain format so old traces and new D = 1 traces are
        // interchangeable. This test IS the format contract — if it fails,
        // back-compat broke.
        let t = ThreadTrace {
            values: vec![0, 1, 3],
            sites: None,
            kinds: None,
        };
        let bytes = encode_thread_trace(&t, Scheme::Dc, 2);
        let expected: &[u8] = &[
            b'R', b'T', b'R', b'C', // magic
            1,    // version
            1,    // scheme dc
            0,    // flags: no columns, no chunking, no domains
            2, 0, 0, 0, // tid u32le
            3, // count varint
            0, // delta 0 (zigzag)
            2, // delta +1
            4, // delta +2
        ];
        assert_eq!(&bytes[..], expected);

        let st = StTrace {
            tids: vec![1, 0],
            sites: None,
            kinds: None,
        };
        let bytes = encode_st_trace(&st);
        let expected: &[u8] = &[
            b'R', b'T', b'S', b'T', // magic
            1, 0, 0, // version, scheme st = 0, flags
            0, 0, 0, 0, // tid u32le (always 0 for the shared stream)
            2, // count
            1, 0, // tids
        ];
        assert_eq!(&bytes[..], expected);
    }

    #[test]
    fn domain_header_roundtrips() {
        let t = ThreadTrace {
            values: vec![4, 4, 7],
            sites: Some(vec![1, 2, 3]),
            kinds: Some(vec![0, 1, 0]),
        };
        let bytes = encode_thread_trace_domain(&t, Scheme::De, 3, 2);
        let d = decode_thread_records(&bytes).unwrap();
        assert_eq!(d.trace, t);
        assert_eq!((d.scheme, d.tid, d.domain), (Scheme::De, 3, Some(2)));
        // Legacy files report no domain.
        let legacy = encode_thread_trace(&t, Scheme::De, 3);
        assert_eq!(decode_thread_records(&legacy).unwrap().domain, None);
        // The domain header costs exactly 4 extra bytes.
        assert_eq!(bytes.len(), legacy.len() + 4);

        let st = StTrace {
            tids: vec![0, 1, 1],
            sites: None,
            kinds: None,
        };
        let bytes = encode_st_trace_domain(&st, 5);
        let d = decode_st_records(&bytes).unwrap();
        assert_eq!(d.trace, st);
        assert_eq!(d.domain, Some(5));
        assert_eq!(
            decode_st_records(&encode_st_trace(&st)).unwrap().domain,
            None
        );
    }

    #[test]
    fn chunked_domain_streams_roundtrip() {
        let t = ThreadTrace {
            values: vec![0, 2, 5, 9],
            sites: None,
            kinds: None,
        };
        let mut bytes = encode_thread_stream_header_domain(Scheme::Dc, 1, 3, false, false).to_vec();
        bytes.extend_from_slice(&encode_thread_chunk(&t.values[..2], None, None));
        bytes.extend_from_slice(&encode_thread_chunk(&t.values[2..], None, None));
        let d = decode_thread_records(&bytes).unwrap();
        assert_eq!(d.trace, t);
        assert_eq!((d.tid, d.domain, d.chunks), (1, Some(3), 2));

        let mut bytes = encode_st_stream_header_domain(7, false, false).to_vec();
        bytes.extend_from_slice(&encode_st_chunk(&[0, 1], None, None));
        let d = decode_st_records(&bytes).unwrap();
        assert_eq!(d.trace.tids, vec![0, 1]);
        assert_eq!(d.domain, Some(7));
    }

    #[test]
    fn truncated_domain_id_is_corrupt_not_panic() {
        let t = ThreadTrace {
            values: vec![1],
            sites: None,
            kinds: None,
        };
        let bytes = encode_thread_trace_domain(&t, Scheme::Dc, 0, 9);
        // Cut inside the 4-byte domain id (header is 11 + 4 bytes).
        for cut in 11..15 {
            let err = decode_thread_records(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, TraceError::Corrupt(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn plan_roundtrip() {
        let plan = DomainPlan::with_assignments(
            4,
            [(SiteId(9), 3), (SiteId(0xdead_beef), 0), (SiteId(1), 1)],
        );
        let bytes = encode_plan(&plan);
        assert_eq!(decode_plan(&bytes).unwrap(), plan);
        // Empty plans (pure hash fallback) roundtrip too.
        let empty = DomainPlan::new(2);
        assert_eq!(decode_plan(&encode_plan(&empty)).unwrap(), empty);
    }

    #[test]
    fn plan_bytes_are_pinned() {
        // Golden bytes for the plan section — the on-disk format contract.
        let plan = DomainPlan::with_assignments(2, [(SiteId(3), 1)]);
        let bytes = encode_plan(&plan);
        let expected: &[u8] = &[
            b'R', b'T', b'P', b'L', // magic
            1,    // version
            16,   // flags = FLAG_PLAN
            2, 0, 0, 0, // domains u32le
            1, // entry count varint
            3, 0, 0, 0, 0, 0, 0, 0, // site u64le
            1, // domain varint
        ];
        assert_eq!(&bytes[..], expected);
    }

    #[test]
    fn plan_rejects_corrupt_input() {
        let plan = DomainPlan::with_assignments(2, [(SiteId(3), 1), (SiteId(7), 0)]);
        let good = encode_plan(&plan);
        for cut in 0..good.len() {
            assert!(decode_plan(&good[..cut]).is_err(), "cut {cut}");
        }
        // Out-of-range domain id.
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTPL");
        buf.put_u8(1);
        buf.put_u8(FLAG_PLAN);
        buf.put_u32_le(2);
        put_uvarint(&mut buf, 1);
        buf.put_u64_le(3);
        put_uvarint(&mut buf, 5); // domain 5 of 2
        assert!(decode_plan(&buf.freeze()).is_err());
        // Absurd entry count must fail before allocation.
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTPL");
        buf.put_u8(1);
        buf.put_u8(FLAG_PLAN);
        buf.put_u32_le(2);
        put_uvarint(&mut buf, u64::MAX / 2);
        buf.put_u8(0);
        assert!(decode_plan(&buf.freeze()).is_err());
        // Trailing garbage rejected.
        let mut tail = good.to_vec();
        tail.push(0);
        assert!(decode_plan(&tail).is_err());
    }

    #[test]
    fn edges_roundtrip() {
        let edges = vec![
            CrossDomainEdge {
                domain: 1,
                thread: 0,
                seq: 4,
                waits: vec![(0, 7), (2, 1)],
            },
            CrossDomainEdge {
                domain: 0,
                thread: 3,
                seq: 0,
                waits: vec![(1, 100)],
            },
        ];
        let bytes = encode_edges(&edges);
        assert_eq!(decode_edges(&bytes).unwrap(), edges);
        assert_eq!(decode_edges(&encode_edges(&[])).unwrap(), vec![]);
    }

    #[test]
    fn edge_bytes_are_pinned() {
        let edges = vec![CrossDomainEdge {
            domain: 1,
            thread: 2,
            seq: 3,
            waits: vec![(0, 5)],
        }];
        let bytes = encode_edges(&edges);
        let expected: &[u8] = &[
            b'R', b'T', b'H', b'B', // magic
            1, 0, // version, flags
            1, // edge count
            1, 2, 3, // domain, thread, seq varints
            1, // wait count
            0, 5, // wait (domain, count)
        ];
        assert_eq!(&bytes[..], expected);
    }

    #[test]
    fn edges_reject_corrupt_input() {
        let edges = vec![CrossDomainEdge {
            domain: 0,
            thread: 1,
            seq: 9,
            waits: vec![(1, 2)],
        }];
        let good = encode_edges(&edges);
        for cut in 0..good.len() {
            assert!(decode_edges(&good[..cut]).is_err(), "cut {cut}");
        }
        // Oversized edge count bounded before allocation.
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTHB");
        buf.put_u8(1);
        buf.put_u8(0);
        put_uvarint(&mut buf, u64::MAX / 2);
        buf.put_u8(0);
        assert!(decode_edges(&buf.freeze()).is_err());
        // Oversized wait count bounded too.
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTHB");
        buf.put_u8(1);
        buf.put_u8(0);
        put_uvarint(&mut buf, 1); // one edge
        put_uvarint(&mut buf, 0); // domain
        put_uvarint(&mut buf, 0); // thread
        put_uvarint(&mut buf, 0); // seq
        put_uvarint(&mut buf, u64::MAX / 4); // nwaits
        buf.put_u8(0);
        assert!(decode_edges(&buf.freeze()).is_err());
    }

    #[test]
    fn st_rejects_oversized_tid() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTST");
        buf.put_u8(1); // version
        buf.put_u8(Scheme::St.code());
        buf.put_u8(0); // flags
        buf.put_u32_le(0);
        put_uvarint(&mut buf, 1); // one record
        put_uvarint(&mut buf, u64::from(u32::MAX) + 10); // tid out of range
        assert!(decode_st_trace(&buf.freeze()).is_err());
    }

    #[test]
    fn rle_delta_stream_roundtrip_and_compression() {
        // Constant stride collapses to one (run, delta) pair per stream.
        let values: Vec<u64> = (0..1000u64).collect();
        let mut buf = BytesMut::new();
        put_rle_delta_stream(&mut buf, &values);
        assert!(buf.len() <= 6, "1000 unit strides in {} bytes", buf.len());
        let mut b = buf.freeze();
        assert_eq!(get_rle_delta_stream(&mut b, values.len()).unwrap(), values);

        // Irregular streams still roundtrip.
        let values = vec![5u64, 5, 9, 2, 100, 0, u32::MAX as u64];
        let mut buf = BytesMut::new();
        put_rle_delta_stream(&mut buf, &values);
        let mut b = buf.freeze();
        assert_eq!(get_rle_delta_stream(&mut b, values.len()).unwrap(), values);
    }

    #[test]
    fn rle_decoder_rejects_bad_runs() {
        // A zero run length can never make progress.
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 0);
        put_uvarint(&mut buf, 2);
        assert!(get_rle_delta_stream(&mut buf.freeze(), 3).is_err());
        // A run overshooting the expected count is corrupt, not truncated.
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 9);
        put_uvarint(&mut buf, 2);
        assert!(get_rle_delta_stream(&mut buf.freeze(), 3).is_err());
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 9);
        assert!(get_rle_bytes(&mut buf.freeze(), 3).is_err());
    }

    #[test]
    fn compressed_chunk_stream_roundtrips() {
        let values: Vec<u64> = (10..5010u64).collect();
        let sites: Vec<u64> = values.iter().map(|v| 0x900 + v % 4).collect();
        let kinds: Vec<u8> = values.iter().map(|v| (v % 2) as u8).collect();
        let mut file = BytesMut::new();
        file.put_slice(&encode_thread_stream_header_opt(
            Scheme::Dc,
            3,
            Some(1),
            true,
            true,
            true,
        ));
        for chunk in values.chunks(700) {
            let at = (chunk[0] - values[0]) as usize;
            file.put_slice(&encode_thread_chunk_opt(
                chunk,
                Some(&sites[at..at + chunk.len()]),
                Some(&kinds[at..at + chunk.len()]),
                true,
            ));
        }
        let d = decode_thread_records(&file.freeze()).unwrap();
        assert_eq!(d.trace.values, values);
        assert_eq!(d.trace.sites.as_deref(), Some(&sites[..]));
        assert_eq!(d.trace.kinds.as_deref(), Some(&kinds[..]));
        assert_eq!((d.tid, d.domain, d.chunks), (3, Some(1), 8));
    }

    #[test]
    fn compressed_st_stream_roundtrips() {
        let tids: Vec<u32> = (0..600).map(|i| (i / 100) % 3).collect();
        let mut file = BytesMut::new();
        file.put_slice(&encode_st_stream_header_opt(None, false, false, true));
        file.put_slice(&encode_st_chunk_opt(&tids, None, None, true));
        let d = decode_st_records(&file.freeze()).unwrap();
        assert_eq!(d.trace.tids, tids);
    }

    #[test]
    fn compressed_chunks_beat_plain_on_regular_streams() {
        // The payload a DE flush typically produces: a slowly-advancing
        // epoch column plus heavily repeated sites/kinds.
        let values: Vec<u64> = (0..4096u64).map(|i| i / 64).collect();
        let sites: Vec<u64> = vec![0x900; 4096];
        let kinds: Vec<u8> = vec![1; 4096];
        let plain = encode_thread_chunk_opt(&values, Some(&sites), Some(&kinds), false);
        let packed = encode_thread_chunk_opt(&values, Some(&sites), Some(&kinds), true);
        assert!(
            packed.len() * 10 < plain.len(),
            "expected >10x on regular streams: {} vs {}",
            packed.len(),
            plain.len()
        );
    }

    #[test]
    fn compression_flag_requires_chunked_stream() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTRC");
        buf.put_u8(1);
        buf.put_u8(Scheme::Dc.code());
        buf.put_u8(FLAG_COMPRESSED); // compressed but not chunked
        buf.put_u32_le(0);
        put_uvarint(&mut buf, 0);
        assert!(decode_thread_records(&buf.freeze()).is_err());
    }

    #[test]
    fn uncompressed_encoders_are_byte_identical_to_the_legacy_path() {
        // REOMP_COMPRESS off must not perturb the on-disk format: the
        // golden-bytes pins elsewhere depend on it, and this is the local
        // witness.
        let values = [7u64, 9, 12];
        let sites = [1u64, 2, 3];
        assert_eq!(
            encode_thread_chunk_opt(&values, Some(&sites), None, false),
            encode_thread_chunk(&values, Some(&sites), None),
        );
        assert_eq!(
            encode_thread_stream_header_opt(Scheme::De, 2, None, true, false, false),
            encode_thread_stream_header(Scheme::De, 2, true, false),
        );
    }

    #[test]
    fn checkpoint_section_roundtrips_and_pins_bytes() {
        let cp = Checkpoint {
            base: vec![128, 0, 7],
            floors: vec![130, 1, 7],
            window: 4,
            trigger: DumpTrigger::Divergence,
        };
        let bytes = encode_checkpoint(&cp);
        // Golden bytes: magic, version, flags, trigger, window u32le,
        // 3 bases (128 needs two varint bytes), 3 floors.
        assert_eq!(
            &bytes[..],
            [
                b'R', b'T', b'C', b'P', 1, 0, 2, 4, 0, 0, 0, // header
                3, 0x80, 0x01, 0, 7, // base
                3, 0x82, 0x01, 1, 7, // floors
            ]
        );
        assert_eq!(decode_checkpoint(&bytes).unwrap(), cp);

        let cp = Checkpoint::default();
        assert_eq!(decode_checkpoint(&encode_checkpoint(&cp)).unwrap(), cp);
    }

    #[test]
    fn checkpoint_decoder_rejects_corrupt_input() {
        let cp = Checkpoint {
            base: vec![1, 2],
            floors: vec![],
            window: 2,
            trigger: DumpTrigger::Panic,
        };
        let good = encode_checkpoint(&cp);
        for cut in 0..good.len() {
            assert!(decode_checkpoint(&good[..cut]).is_err(), "cut {cut}");
        }
        // Trailing bytes.
        let mut long = good.to_vec();
        long.push(0);
        assert!(decode_checkpoint(&long).is_err());
        // Bad trigger code.
        let mut bad = good.to_vec();
        bad[6] = 250;
        assert!(decode_checkpoint(&bad).is_err());
        // Oversized base count bounded before allocation.
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTCP");
        buf.put_u8(1);
        buf.put_u8(0);
        buf.put_u8(0);
        buf.put_u32_le(1);
        put_uvarint(&mut buf, u64::MAX / 2);
        assert!(decode_checkpoint(&buf.freeze()).is_err());
    }
}
