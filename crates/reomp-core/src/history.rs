//! The shared-memory access-history ring buffer of DE recording.
//!
//! §IV-D: *"To compute `X_C`, DE recording needs to keep the access history.
//! We use a long-enough ring buffer so that the old access can automatically
//! be discarded."*
//!
//! The run-tracking in [`crate::epoch`] computes epochs exactly without
//! unbounded history, so the ring's roles here are (a) the paper-faithful
//! `X_C` *audit* path used by tests to cross-check the run-based epochs and
//! (b) post-mortem diagnostics (what were the last N accesses before a
//! divergence).

use crate::site::{AccessKind, SiteId};

/// One entry of the access history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Global logical clock at which the access was recorded.
    pub clock: u64,
    /// Site accessed.
    pub site: SiteId,
    /// Load/store/… kind.
    pub kind: AccessKind,
    /// Thread that performed the access.
    pub thread: u32,
}

/// Fixed-capacity ring buffer of the most recent accesses.
#[derive(Debug, Clone)]
pub struct HistoryRing {
    buf: Vec<AccessRecord>,
    head: usize,
    len: usize,
}

impl HistoryRing {
    /// Ring holding up to `capacity` records (capacity 0 disables history).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        HistoryRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of records retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Current number of records retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no records are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a record, discarding the oldest if full.
    pub fn push(&mut self, rec: AccessRecord) {
        if self.buf.capacity() == 0 {
            return;
        }
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(rec);
            self.len = self.buf.len();
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.buf.len();
        }
    }

    /// The `i`-th most recent record (0 = newest). `None` if evicted or
    /// never recorded.
    #[must_use]
    pub fn recent(&self, i: usize) -> Option<&AccessRecord> {
        if i >= self.len {
            return None;
        }
        if self.buf.len() < self.buf.capacity() {
            // Not yet wrapped: newest is at the end.
            self.buf.get(self.len - 1 - i)
        } else {
            let newest = (self.head + self.buf.len() - 1) % self.buf.len();
            let idx = (newest + self.buf.len() - i) % self.buf.len();
            self.buf.get(idx)
        }
    }

    /// Iterate newest-first.
    pub fn iter_recent(&self) -> impl Iterator<Item = &AccessRecord> {
        (0..self.len).filter_map(move |i| self.recent(i))
    }

    /// Paper-faithful `X_C` computation by history lookup (§IV-D): the
    /// number of *consecutive* immediately-preceding accesses that the
    /// incoming `(site, kind)` access could be grouped with.
    ///
    /// * For an incoming **load**: count the run of trailing loads to the
    ///   same site (condition (i) of Condition 1).
    /// * For an incoming **store**: count the run of trailing stores to the
    ///   same site (condition (ii) — validity of the grouping additionally
    ///   depends on the *next* access, which this backward-looking helper
    ///   cannot know; the epoch tracker handles that with deferral).
    /// * Non-eligible kinds always get `X_C = 0`.
    ///
    /// Returns `None` when the run extends beyond the ring capacity, i.e.
    /// the buffer was not "long enough" and the result would be a lower
    /// bound rather than the true value.
    #[must_use]
    pub fn lookup_xc(&self, site: SiteId, kind: AccessKind) -> Option<u64> {
        if !kind.is_epoch_eligible() {
            return Some(0);
        }
        let mut xc = 0u64;
        for i in 0..self.len {
            let rec = self.recent(i).expect("index < len");
            if rec.site == site && rec.kind == kind {
                xc += 1;
            } else {
                return Some(xc);
            }
        }
        if (self.len as u64) == xc && self.len == self.capacity() && self.capacity() > 0 {
            // Every retained record matched: the run may continue past the
            // evicted horizon.
            None
        } else {
            Some(xc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(clock: u64, site: u64, kind: AccessKind) -> AccessRecord {
        AccessRecord {
            clock,
            site: SiteId(site),
            kind,
            thread: 0,
        }
    }

    #[test]
    fn push_and_recent_before_wrap() {
        let mut r = HistoryRing::new(4);
        assert!(r.is_empty());
        r.push(rec(0, 1, AccessKind::Load));
        r.push(rec(1, 1, AccessKind::Load));
        assert_eq!(r.len(), 2);
        assert_eq!(r.recent(0).unwrap().clock, 1);
        assert_eq!(r.recent(1).unwrap().clock, 0);
        assert!(r.recent(2).is_none());
    }

    #[test]
    fn wraps_and_discards_oldest() {
        let mut r = HistoryRing::new(3);
        for c in 0..7 {
            r.push(rec(c, 1, AccessKind::Load));
        }
        assert_eq!(r.len(), 3);
        let recents: Vec<u64> = r.iter_recent().map(|a| a.clock).collect();
        assert_eq!(recents, vec![6, 5, 4]);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut r = HistoryRing::new(0);
        r.push(rec(0, 1, AccessKind::Load));
        assert!(r.is_empty());
        assert_eq!(r.lookup_xc(SiteId(1), AccessKind::Load), Some(0));
    }

    #[test]
    fn xc_matches_table_v() {
        // Table V: loads by T1,T2,T3 then stores by T1,T2,T3 then load T1,
        // all to address X. X_C at each arrival:
        //   x0 L:0, x1 L:1, x2 L:2, x3 S:0, x4 S:1, x5 S:2(backward-looking),
        //   x6 L:0.
        // Note: the *recorded* X_C for x5 in Table V is 0, because the
        // grouping is invalidated by x6 being a load — that forward-looking
        // adjustment is the epoch tracker's deferral job, not the ring's.
        let mut r = HistoryRing::new(16);
        let site = SiteId(0xa);
        let seq = [
            (AccessKind::Load, 0u64),
            (AccessKind::Load, 1),
            (AccessKind::Load, 2),
            (AccessKind::Store, 0),
            (AccessKind::Store, 1),
            (AccessKind::Store, 2),
            (AccessKind::Load, 0),
        ];
        for (clock, (kind, expect_xc)) in seq.into_iter().enumerate() {
            let got = r.lookup_xc(site, kind).unwrap();
            assert_eq!(got, expect_xc, "at clock {clock}");
            r.push(rec(clock as u64, site.0, kind));
        }
    }

    #[test]
    fn xc_breaks_on_other_site() {
        let mut r = HistoryRing::new(8);
        r.push(rec(0, 1, AccessKind::Load));
        r.push(rec(1, 2, AccessKind::Load)); // different site
        assert_eq!(r.lookup_xc(SiteId(1), AccessKind::Load), Some(0));
        assert_eq!(r.lookup_xc(SiteId(2), AccessKind::Load), Some(1));
    }

    #[test]
    fn xc_breaks_on_kind_change() {
        let mut r = HistoryRing::new(8);
        r.push(rec(0, 1, AccessKind::Store));
        r.push(rec(1, 1, AccessKind::Store));
        assert_eq!(r.lookup_xc(SiteId(1), AccessKind::Load), Some(0));
        assert_eq!(r.lookup_xc(SiteId(1), AccessKind::Store), Some(2));
    }

    #[test]
    fn xc_reports_truncation_when_ring_too_short() {
        let mut r = HistoryRing::new(2);
        for c in 0..5 {
            r.push(rec(c, 1, AccessKind::Load));
        }
        // All retained records match: true X_C is 5 but the ring can only
        // prove >= 2, so it reports None ("not long enough", §IV-D).
        assert_eq!(r.lookup_xc(SiteId(1), AccessKind::Load), None);
    }

    #[test]
    fn ineligible_kinds_always_zero() {
        let mut r = HistoryRing::new(4);
        r.push(rec(0, 1, AccessKind::Critical));
        r.push(rec(1, 1, AccessKind::Critical));
        assert_eq!(r.lookup_xc(SiteId(1), AccessKind::Critical), Some(0));
    }
}
