//! Session orchestration: one [`Session`] per record or replay run.
//!
//! A session owns the shared gate state (the paper's `global_clock`,
//! `next_clock`, `next_tid`, lock `L`, and trace buffers) plus statistics.
//! Runtime threads obtain a [`ThreadCtx`] via [`Session::register_thread`]
//! and wrap each shared-memory access region in [`ThreadCtx::gate`].
//!
//! Like the paper's `libreomp.so` (§V), the mode can be chosen with
//! environment variables: `REOMP_MODE` (`off`/`record`/`replay`),
//! `REOMP_SCHEME` (`st`/`dc`/`de`), `REOMP_EPOCH_POLICY`, `REOMP_DIR`
//! for the record-file directory, `REOMP_STREAM` (`1` streams the trace
//! to `REOMP_DIR` chunk-by-chunk as the run records),
//! `REOMP_FLUSH_RECORDS` (streaming flush threshold), `REOMP_DOMAINS`
//! (gate-domain count, see below), `REOMP_SPIN_TIMEOUT` (replay
//! watchdog in seconds, `0` disables it), `REOMP_TICKET_GATE`
//! (`0`/`false`/`off` routes every record gate through the legacy mutex
//! instead of the lock-free ticket fast path), and `REOMP_PUBLISH_BATCH`
//! (DE completion-count publication batch, see
//! [`SessionConfig::publish_batch`]).
//!
//! # Gate domains
//!
//! By default every gated access serializes through **one** gate lock and
//! one clock, regardless of which site it touches — the paper's layout.
//! [`SessionConfig::domains`] partitions sites across `D` independent gate
//! instances (*domains*): site `s` always belongs to domain
//! `s.raw() % D`, each domain owns its own lock, clock, epoch tracker, and
//! replay turnstile, and record files become per-thread **per-domain**
//! streams. Threads touching sites in different domains no longer contend
//! in record mode and replay concurrently in replay mode.
//!
//! Sharding is *sound* when ordering only ever matters within a domain:
//! the recorded order stream of each domain is complete for the sites it
//! contains (the partition is a pure function of the site id, identical in
//! record and replay), so the paper's ordering requirement — and the
//! Contiguous-policy monotonicity argument in [`crate::epoch`] — hold per
//! stream. What multi-domain recording does **not** capture per se is the
//! relative order of two racing accesses *to the same memory* made through
//! sites in different domains. Two mechanisms close that gap:
//!
//! * **Domain plans** ([`SessionConfig::plan`]): an explicit
//!   [`DomainPlan`] — typically produced by `racedet::DomainPlanner` from
//!   a race report — co-locates every group of aliased/racing sites in one
//!   domain (so their order is recorded) and spreads the remaining sites
//!   with a mixed-hash fallback. The plan is stamped into the trace and
//!   reconstructed on replay; a plan-less multi-domain session keeps the
//!   legacy `site.raw() % D` partition for PR 3 trace compatibility.
//! * **Cross-domain happens-before edges**: at barrier
//!   ([`ThreadCtx::sync_point`]) and critical-section gates of a
//!   multi-domain record run, the session stamps a sparse vector of the
//!   other domains' clocks into the trace ([`CrossDomainEdge`]); replay
//!   waits on the foreign domains' turnstiles before admitting the anchor
//!   access, restoring inter-domain order at synchronization points.
//!
//! The soundness contract is: **aliased sites co-locate, or edges restore
//! their order at the synchronization points that separate them.**
//!
//! # Streaming record runs
//!
//! [`Session::record_streaming`] attaches a [`RecordSink`] from a
//! [`StreamingTraceStore`]: whenever a per-thread buffer reaches
//! [`SessionConfig::flush_records`] entries, its stable prefix is encoded
//! as a chunk and appended to that thread's record stream, so the session
//! never holds more than a bounded window of the trace in memory. For DE,
//! a record is *stable* once no pending deferred store with a smaller
//! clock remains (the tracker's
//! [`min_pending_clock`](EpochTracker::min_pending_clock) watermark, kept
//! **per domain**); ST/DC records are stable as soon as they are buffered.
//! `finish` flushes the residue and atomically commits the store (manifest
//! last).

use crate::clock::{TicketGate, Turnstile};
use crate::epoch::{EpochPolicy, EpochTracker};
use crate::error::{FinishError, ReplayError, TraceError};
use crate::flight::{FlightRecorder, FlightSink, DEFAULT_WINDOW};
use crate::gate;
use crate::history::{AccessRecord, HistoryRing};
use crate::plan::DomainPlan;
use crate::shim::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crate::shim::Mutex;
use crate::site::{AccessKind, SiteId};
use crate::stats::{EpochHistogram, Stats, StatsSnapshot};
use crate::store::{
    DirStore, IoReport, RecordOptions, RecordSink, StreamingTraceStore, TraceStore,
};
use crate::sync::{BatonLock, RawLocked, SpinConfig};
use crate::trace::{CrossDomainEdge, DumpTrigger, StTrace, ThreadTrace, TraceBundle};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Recording scheme (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Serialized thread-ID recording — the traditional baseline (§IV-A).
    St,
    /// Distributed clock recording (§IV-B).
    Dc,
    /// Distributed epoch recording (§IV-D).
    De,
}

impl Scheme {
    /// Stable one-byte code used in trace headers.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Scheme::St => 0,
            Scheme::Dc => 1,
            Scheme::De => 2,
        }
    }

    /// Inverse of [`Scheme::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Scheme> {
        Some(match code {
            0 => Scheme::St,
            1 => Scheme::Dc,
            2 => Scheme::De,
            _ => return None,
        })
    }

    /// Lower-case name (`st`, `dc`, `de`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheme::St => "st",
            Scheme::Dc => "dc",
            Scheme::De => "de",
        }
    }

    /// Parse a name as produced by [`Scheme::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Scheme> {
        match s.to_ascii_lowercase().as_str() {
            "st" => Some(Scheme::St),
            "dc" => Some(Scheme::Dc),
            "de" => Some(Scheme::De),
            _ => None,
        }
    }

    /// All schemes, baseline first.
    pub const ALL: [Scheme; 3] = [Scheme::St, Scheme::Dc, Scheme::De];
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a session does at each gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Gates are no-ops (execution `w/o ReOMP` in the figures).
    Passthrough,
    /// Gates record the access order.
    Record,
    /// Gates enforce a previously recorded order.
    Replay,
}

/// Tuning knobs for a session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// DE run-boundary policy (see [`EpochPolicy`]).
    pub epoch_policy: EpochPolicy,
    /// Capacity of the access-history ring buffers (diagnostics/audit):
    /// the DE record-side `X_C` audit ring and, in replay, the per-domain
    /// last-N admitted-access history attached to divergence reports.
    /// `0` disables both.
    pub ring_capacity: usize,
    /// Replay spin-wait/watchdog policy.
    pub spin: SpinConfig,
    /// Record per-access sites and kinds so replay can detect divergence.
    pub validate_sites: bool,
    /// If set, only these sites are gated; everything else bypasses the
    /// recorder (the instrumentation plan produced by the race-detection
    /// step of the toolflow, Fig. 2 step (1)).
    pub gate_plan: Option<HashSet<SiteId>>,
    /// Streaming record runs: flush a per-thread buffer to its record
    /// stream once it holds this many records (clamped to ≥ 1). Ignored
    /// unless the session was created with [`Session::record_streaming`].
    pub flush_records: usize,
    /// Number of independent gate domains sites are partitioned across
    /// (clamped to ≥ 1). `1` — the default — reproduces the classic
    /// single-gate behavior and trace format byte-for-byte; larger values
    /// let accesses to sites in different domains record and replay
    /// concurrently (see the module docs for when that is sound). Replay
    /// sessions always use the domain count stamped in the trace. Without
    /// a [`SessionConfig::plan`], sites partition with the legacy
    /// `site.raw() % D` modulo.
    pub domains: u32,
    /// Explicit site → domain assignment (see [`DomainPlan`] and
    /// `racedet::DomainPlanner`). When set it **overrides**
    /// [`SessionConfig::domains`] with its own domain count, pins each
    /// planned site to its domain, and spreads unplanned sites with a
    /// splitmix64-mixed hash instead of the striping raw modulo. The plan
    /// is stamped into recorded traces; replay sessions always use the
    /// plan stamped in the trace (or the legacy modulo when none is).
    pub plan: Option<DomainPlan>,
    /// Bounded in-situ recording: retain only the last `n` chunks of every
    /// `(thread, domain)` record stream in memory (`REOMP_FLIGHT=<n>`)
    /// instead of streaming everything to the store. Nothing is persisted
    /// unless [`Session::dump`] (or a panic/divergence trigger) fires.
    /// `None` — the default — records unbounded.
    pub flight: Option<u32>,
    /// Run the per-chunk RLE compression stage on streamed record files
    /// (`REOMP_COMPRESS=1`).
    pub compress: bool,
    /// Record DC/DE plain loads and stores through the lock-free
    /// [`TicketGate`] instead of the gate mutex
    /// (`REOMP_TICKET_GATE`, default on). The region is still serialized —
    /// in ticket order — so the recorded trace is identical; only the
    /// synchronization changes (one `fetch_add` in, one out, no lock).
    /// ST, critical-section/edge-anchored accesses, and streaming DE keep
    /// the locked path (entered alongside a ghost ticket so the two paths
    /// compose). `false` forces the classic mutex bracket everywhere.
    pub ticket_gate: bool,
    /// Multi-domain DE record runs: publish a domain's completion count to
    /// *other* domains once per `publish_batch` accesses instead of on
    /// every access, batching the `Release` stores the way
    /// [`EpochTracker`] already batches run epochs (clamped to ≥ 1;
    /// `REOMP_PUBLISH_BATCH`). Critical and edge-anchored accesses always
    /// publish their completion immediately, so sync-point traffic — the
    /// accesses cross-domain edges exist to order — is counted exactly; a
    /// foreign snapshot may observe a domain's *plain* load/store count up
    /// to `publish_batch − 1` low, weakening (never breaking) the edge: the
    /// recorded waits stay a sound lower bound and stay acyclic, because
    /// batching only delays a publish, and a snapshot is still taken
    /// strictly before its own access publishes. `1` — the default —
    /// publishes every access (the pre-batching behavior, byte-identical
    /// traces).
    pub publish_batch: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            epoch_policy: EpochPolicy::default(),
            ring_capacity: 64,
            spin: SpinConfig::default(),
            validate_sites: true,
            gate_plan: None,
            flush_records: 4096,
            domains: 1,
            plan: None,
            flight: None,
            compress: false,
            ticket_gate: true,
            publish_batch: 1,
        }
    }
}

impl SessionConfig {
    /// The domain count the session will actually run with: the plan's
    /// count when a plan is set, the raw knob otherwise (clamped to ≥ 1).
    #[must_use]
    pub fn effective_domains(&self) -> u32 {
        self.plan
            .as_ref()
            .map(DomainPlan::domains)
            .unwrap_or(self.domains)
            .max(1)
    }
}

/// One finalized-but-unsorted record produced during a record run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecEntry {
    pub clock: u64,
    pub value: u64,
    pub site: u64,
    pub kind: u8,
}

/// State guarded by a domain's gate lock `L` during record runs.
pub(crate) struct RecCore {
    /// The paper's `global_clock` (Fig. 5 line 22), one per domain. Kept as
    /// a plain field because it is only touched under the domain's lock.
    pub clock: u64,
    /// DE epoch tracker (None for ST/DC).
    pub tracker: Option<EpochTracker>,
    /// ST shared log builder (None for DC/DE).
    pub st: Option<StBuilder>,
}

/// Builder for one domain's shared ST record stream.
pub(crate) struct StBuilder {
    pub tids: Vec<u32>,
    pub sites: Vec<u64>,
    pub kinds: Vec<u8>,
    pub validate: bool,
}

impl StBuilder {
    pub(crate) fn push(&mut self, tid: u32, site: SiteId, kind: AccessKind) {
        self.tids.push(tid);
        if self.validate {
            self.sites.push(site.raw());
            self.kinds.push(kind.code());
        }
    }
}

/// One gate domain's record-side state: its own lock + clock + tracker and
/// its own set of per-thread buffers.
pub(crate) struct DomainRecord {
    /// Gate lock + state; locked at `gate_in`, unlocked at `gate_out`.
    pub gate: RawLocked<RecCore>,
    /// Lock-free fast-path admission (`Some` only when this session can
    /// take the fast path at all: [`SessionConfig::ticket_gate`] on, a
    /// clocked scheme, and not streaming DE). When present, **every**
    /// accessor of [`DomainRecord::gate`]'s core holds a currently-served
    /// ticket: plain DC/DE loads and stores hold *only* the ticket (no
    /// lock), while the slow paths and out-of-band pausers take the raw
    /// lock first and then a ghost ticket — so either kind of entrant
    /// excludes both. The RecCore hand-off then rides the ticket word's
    /// acquire/release pair, not the mutex.
    pub ticket: Option<TicketGate>,
    /// Per-thread record buffers (Fig. 3-(b): one record file per thread —
    /// here one per thread *per domain*).
    pub bufs: Vec<Mutex<Vec<RecEntry>>>,
    /// Number of accesses this domain has completed (mirrors the clock):
    /// written under the domain's gate exclusion (lock and/or served
    /// ticket), read lock-free by *other* domains' gates when they stamp
    /// a cross-domain edge. For DE it may trail the clock by up to
    /// `publish_batch - 1` plain accesses (see
    /// [`SessionConfig::publish_batch`]); pause points re-sync it. Only
    /// maintained for multi-domain sessions.
    pub published: AtomicU64,
    /// Per-thread access counters in this domain — the `seq` a
    /// cross-domain edge anchors at. Bumped under the gate exclusion;
    /// only maintained for multi-domain sessions.
    pub seqs: Vec<AtomicU64>,
}

impl DomainRecord {
    /// Out-of-band exclusive access to the gate core (`finish`, residue
    /// flushes, flight dumps, trace assembly): takes the raw lock and —
    /// when the lock-free fast path is active — also claims a **ghost
    /// ticket**, so both mutex holders and ticket holders are excluded.
    /// The ghost ticket assigns no clock; it only occupies the served slot
    /// while `f` runs, which is why pausing leaves no hole in the recorded
    /// clock sequence.
    pub(crate) fn pause<R>(&self, f: impl FnOnce(&mut RecCore) -> R) -> R {
        self.gate.lock();
        let ghost = self.ticket.as_ref().map(|t| t.enter());
        // SAFETY: the raw lock is held, and when a ticket gate is present
        // the ghost ticket above is the currently-served one — either way
        // this thread is the unique accessor (see the `ticket` field docs).
        let out = f(unsafe { self.gate.get() });
        if let (Some(gate), Some(t)) = (self.ticket.as_ref(), ghost) {
            gate.exit(t);
        }
        // SAFETY: locked above on this thread.
        unsafe { self.gate.unlock() };
        out
    }
}

pub(crate) struct RecordState {
    /// Per-domain gate instances (length = configured domain count).
    pub domains: Vec<DomainRecord>,
    /// Attached streaming sink, when the session records incrementally.
    pub stream: Option<StreamState>,
    /// Cross-domain happens-before edges collected so far (multi-domain
    /// sessions only; appended outside the gate locks).
    pub edges: Mutex<Vec<CrossDomainEdge>>,
    /// Per-thread pending barrier snapshots: set by
    /// [`ThreadCtx::sync_point`], consumed by the thread's next gated
    /// access, which becomes the edge anchor.
    pub pending_sync: Vec<Mutex<Option<Vec<u64>>>>,
}

/// Streaming-record state: the sink plus the per-domain flush watermarks.
pub(crate) struct StreamState {
    /// The store's sink; read-locked for concurrent appends (each
    /// stream serializes its own writes), write-locked only to take it
    /// at commit time.
    pub sink: RwLock<Option<Box<dyn RecordSink>>>,
    /// Per-domain flush watermarks: records with clocks strictly below a
    /// domain's floor are complete in their owners' buffers and safe to
    /// persist. `u64::MAX` for ST/DC (records are stable on arrival);
    /// maintained under the domain's gate lock for DE from the tracker's
    /// pending-store minimum.
    pub floors: Vec<AtomicU64>,
    /// Per-domain chunk-order locks for the shared ST streams: acquired
    /// *before* the domain's gate lock is released when a batch is stolen,
    /// so two stolen batches can never append to that domain's file out of
    /// execution order.
    pub st_order: Vec<Mutex<()>>,
    /// Set after the first append failure; flushing stops and `finish`
    /// surfaces the error instead of committing a partial trace.
    pub failed: AtomicBool,
    /// The first append failure.
    pub error: Mutex<Option<TraceError>>,
}

impl StreamState {
    fn new(sink: Box<dyn RecordSink>, scheme: Scheme, domains: u32) -> StreamState {
        StreamState {
            sink: RwLock::new(Some(sink)),
            // DE starts with nothing stable recorded; ST/DC buffers only
            // ever hold stable records.
            floors: (0..domains)
                .map(|_| AtomicU64::new(if scheme == Scheme::De { 0 } else { u64::MAX }))
                .collect(),
            st_order: (0..domains).map(|_| Mutex::new(())).collect(),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    pub(crate) fn record_failure(&self, e: TraceError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.failed.store(true, Ordering::SeqCst);
    }
}

/// Sentinel `next_tid` values for ST replay.
pub(crate) const TID_NONE: u32 = u32::MAX;
pub(crate) const TID_EXHAUSTED: u32 = u32::MAX - 1;

/// One gate domain's replay-side state.
pub(crate) struct DomainReplay {
    /// The `next_clock` turnstile (DC/DE) — also used as the abort flag
    /// for ST replay.
    pub turnstile: Turnstile,
    /// Per-thread read positions into this domain's per-thread traces.
    pub cursors: Vec<AtomicUsize>,
    /// ST: the baton lock `L` of Fig. 4.
    pub baton: BatonLock,
    /// ST: shared read position into this domain's record stream.
    pub st_pos: AtomicUsize,
    /// ST: the published `next_tid` (Fig. 4 line 13).
    pub next_tid: AtomicU32,
    /// ST: site hash published with `next_tid` for replay validation.
    pub next_site: AtomicU64,
    /// ST: kind code published with `next_tid`.
    pub next_kind: AtomicU32,
    /// Last-N accesses this domain admitted, newest first — attached to
    /// divergence reports (capacity 0 disables it).
    pub history: Mutex<HistoryRing>,
}

pub(crate) struct ReplayState {
    pub bundle: TraceBundle,
    /// Per-domain replay gates (length = the bundle's domain count).
    pub domains: Vec<DomainReplay>,
    /// Edge waits keyed by anchor — `(domain, thread, seq)` for DC/DE,
    /// `(domain, 0, stream index)` for ST (see
    /// [`TraceBundle::edge_index`]).
    pub edges: HashMap<(u32, u32, u64), Vec<(u32, u64)>>,
}

/// Flight-recorder control state of a bounded record run: the shared
/// bounded recorder, the store a dump materializes into, and the dumps
/// taken so far.
struct FlightCtl {
    recorder: Arc<FlightRecorder>,
    target: Box<dyn StreamingTraceStore>,
    dumps: Mutex<Vec<(DumpTrigger, IoReport)>>,
}

/// A record or replay run.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Session {
    pub(crate) cfg: SessionConfig,
    mode: Mode,
    scheme: Scheme,
    nthreads: u32,
    pub(crate) stats: Stats,
    pub(crate) rec: Option<RecordState>,
    pub(crate) rep: Option<ReplayState>,
    /// Bounded-recording control (set only by [`Session::record_flight`]).
    flight: Option<FlightCtl>,
    /// Invoked (once) on the first replay failure — the divergence trigger
    /// a linked flight recorder's dump hangs off.
    failure_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
    active: AtomicU32,
    finished: AtomicBool,
    failure: Mutex<Option<String>>,
}

impl Session {
    /// A session whose gates do nothing (baseline `w/o ReOMP`).
    #[must_use]
    pub fn passthrough(nthreads: u32) -> Arc<Session> {
        Arc::new(Session::build(
            Mode::Passthrough,
            Scheme::De,
            nthreads,
            SessionConfig::default(),
            None,
            None,
        ))
    }

    /// Start a record run with default configuration.
    #[must_use]
    pub fn record(scheme: Scheme, nthreads: u32) -> Arc<Session> {
        Session::record_with(scheme, nthreads, SessionConfig::default())
    }

    /// Start a record run with explicit configuration.
    #[must_use]
    pub fn record_with(scheme: Scheme, nthreads: u32, cfg: SessionConfig) -> Arc<Session> {
        Arc::new(Session::build(
            Mode::Record,
            scheme,
            nthreads,
            cfg,
            None,
            None,
        ))
    }

    /// Start a record run that streams its trace into `store` as it runs
    /// (default configuration; see [`SessionConfig::flush_records`]).
    ///
    /// The trace never has to fit in memory: full per-thread buffers are
    /// appended to the store as self-delimiting chunks, and
    /// [`Session::finish`] commits the store atomically. The finished
    /// report carries the [`IoReport`] instead of an in-memory bundle.
    pub fn record_streaming(
        scheme: Scheme,
        nthreads: u32,
        store: &dyn StreamingTraceStore,
    ) -> Result<Arc<Session>, TraceError> {
        Session::record_streaming_with(scheme, nthreads, SessionConfig::default(), store)
    }

    /// [`Session::record_streaming`] with explicit configuration.
    pub fn record_streaming_with(
        scheme: Scheme,
        nthreads: u32,
        cfg: SessionConfig,
        store: &dyn StreamingTraceStore,
    ) -> Result<Arc<Session>, TraceError> {
        let domains = cfg.effective_domains();
        let sink = store.begin_record(
            RecordOptions::new(scheme, nthreads, domains, cfg.validate_sites)
                .with_compression(cfg.compress),
        )?;
        Ok(Arc::new(Session::build(
            Mode::Record,
            scheme,
            nthreads,
            cfg,
            None,
            Some(sink),
        )))
    }

    /// Start a bounded (flight-recorder) record run: only the last
    /// [`SessionConfig::flight`] chunks of every `(thread, domain)` record
    /// stream are retained in memory, and nothing reaches `store` unless
    /// [`Session::dump`] — or a panic/divergence trigger wired to it —
    /// materializes the retained window as a replayable bundle.
    ///
    /// [`Session::finish`] commits nothing for these runs; its
    /// [`IoReport`] carries the retention counters instead
    /// (`retained_peak` is the witness that no stream ever held more than
    /// the window).
    pub fn record_flight<S>(
        scheme: Scheme,
        nthreads: u32,
        cfg: SessionConfig,
        store: S,
    ) -> Result<Arc<Session>, TraceError>
    where
        S: StreamingTraceStore + 'static,
    {
        let domains = cfg.effective_domains();
        let window = cfg.flight.unwrap_or(DEFAULT_WINDOW);
        let opts = RecordOptions::new(scheme, nthreads, domains, cfg.validate_sites)
            .with_compression(cfg.compress);
        let recorder = Arc::new(FlightRecorder::new(opts, window));
        let sink: Box<dyn RecordSink> = Box::new(FlightSink::new(Arc::clone(&recorder)));
        let mut session = Session::build(Mode::Record, scheme, nthreads, cfg, None, Some(sink));
        session.flight = Some(FlightCtl {
            recorder,
            target: Box::new(store),
            dumps: Mutex::new(Vec::new()),
        });
        Ok(Arc::new(session))
    }

    /// The flight recorder behind a bounded record run, if any.
    #[must_use]
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref().map(|ctl| &ctl.recorder)
    }

    /// Dumps taken so far on a bounded record run: `(trigger, io)` per
    /// materialization, oldest first.
    #[must_use]
    pub fn dumps(&self) -> Vec<(DumpTrigger, IoReport)> {
        self.flight
            .as_ref()
            .map(|ctl| ctl.dumps.lock().clone())
            .unwrap_or_default()
    }

    /// Materialize the flight recorder's retained window into its target
    /// store as a replayable, checkpoint-stamped bundle.
    ///
    /// Residual records (per-thread buffers, the shared ST builders, and
    /// DE's pending deferred stores) are flushed into the window first, so
    /// the dump ends at the program's current position. The dump is a
    /// consistent snapshot when gates are quiescent; concurrent gated
    /// accesses may straddle it. Fails on sessions without a flight
    /// recorder.
    pub fn dump(&self, trigger: DumpTrigger) -> Result<IoReport, TraceError> {
        let ctl = self
            .flight
            .as_ref()
            .ok_or_else(|| TraceError::Corrupt("session has no flight recorder".into()))?;
        let rec = self
            .rec
            .as_ref()
            .ok_or_else(|| TraceError::Corrupt("dump on a non-record session".into()))?;
        let stream = rec.stream.as_ref().expect("flight runs stream");
        if stream.failed.load(Ordering::SeqCst) {
            return Err(TraceError::Corrupt(
                "an earlier streaming flush failed; the window is incomplete".into(),
            ));
        }
        let floors = self.flush_residues()?;
        // Snapshot (not drain) the collected edges: the run continues and
        // `finish` still owns them.
        let mut edges = rec.edges.lock().clone();
        edges.sort_by_key(|e| (e.domain, e.thread, e.seq));
        let io = ctl.recorder.dump_into(
            &*ctl.target,
            trigger,
            self.cfg.plan.as_ref(),
            &edges,
            floors,
        )?;
        ctl.dumps.lock().push((trigger, io));
        Ok(io)
    }

    /// Install `hook` to run (once) at the first replay failure of this
    /// session. Used to chain a divergence to a flight recorder's dump —
    /// see [`Session::dump_flight_on_failure`].
    pub fn on_failure(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.failure_hook.lock() = Some(Box::new(hook));
    }

    /// Wire this (replay) session's first failure to a divergence-triggered
    /// dump of `recorder`'s flight window. Holds only a weak reference, so
    /// the recorder session's lifetime is unaffected.
    pub fn dump_flight_on_failure(&self, recorder: &Arc<Session>) {
        let weak = Arc::downgrade(recorder);
        self.on_failure(move || {
            if let Some(session) = weak.upgrade() {
                let _ = session.dump(DumpTrigger::Divergence);
            }
        });
    }

    /// Start a replay run of `bundle` with default configuration.
    pub fn replay(bundle: TraceBundle) -> Result<Arc<Session>, TraceError> {
        Session::replay_with(bundle, SessionConfig::default())
    }

    /// Start a replay run with explicit configuration. The session's
    /// domain count always comes from the bundle (a trace can only be
    /// replayed against the partition it was recorded with), so
    /// [`SessionConfig::domains`] is ignored here.
    pub fn replay_with(
        bundle: TraceBundle,
        mut cfg: SessionConfig,
    ) -> Result<Arc<Session>, TraceError> {
        bundle.validate()?;
        let scheme = bundle.scheme;
        let nthreads = bundle.nthreads;
        cfg.domains = bundle.domains;
        Ok(Arc::new(Session::build(
            Mode::Replay,
            scheme,
            nthreads,
            cfg,
            Some(bundle),
            None,
        )))
    }

    /// Build a session from the `REOMP_MODE`/`REOMP_SCHEME`/`REOMP_DIR`
    /// environment, loading the trace from the directory store for replay.
    /// Unset or `off` mode yields a passthrough session.
    pub fn from_env(nthreads: u32) -> Result<Arc<Session>, TraceError> {
        let mode = std::env::var("REOMP_MODE").unwrap_or_else(|_| "off".into());
        let scheme = std::env::var("REOMP_SCHEME")
            .ok()
            .and_then(|s| Scheme::parse(&s))
            .unwrap_or(Scheme::De);
        let mut cfg = SessionConfig::default();
        if let Ok(p) = std::env::var("REOMP_EPOCH_POLICY") {
            if let Some(policy) = EpochPolicy::from_str_opt(&p) {
                cfg.epoch_policy = policy;
            }
        }
        if let Some(n) = Self::positive_env_knob("REOMP_FLUSH_RECORDS") {
            cfg.flush_records = usize::try_from(n).unwrap_or(usize::MAX);
        }
        if let Some(d) = Self::positive_env_knob("REOMP_DOMAINS") {
            match u32::try_from(d) {
                Ok(d) => cfg.domains = d,
                // Don't "clamp" to u32::MAX here — that would allocate four
                // billion gate instances. An absurd count keeps the default.
                Err(_) => eprintln!(
                    "reomp: REOMP_DOMAINS={d} out of range; keeping {}",
                    cfg.domains
                ),
            }
        }
        if let Some(b) = Self::positive_env_knob("REOMP_PUBLISH_BATCH") {
            match u32::try_from(b) {
                Ok(b) => cfg.publish_batch = b,
                Err(_) => eprintln!(
                    "reomp: REOMP_PUBLISH_BATCH={b} out of range; keeping {}",
                    cfg.publish_batch
                ),
            }
        }
        if let Ok(s) = std::env::var("REOMP_TICKET_GATE") {
            cfg.ticket_gate = !matches!(s.to_ascii_lowercase().as_str(), "0" | "false" | "off");
        }
        // Replay watchdog override: seconds, `0` disables the watchdog
        // entirely (oversubscribed CI boxes legitimately exceed the 30 s
        // default on long DE replays).
        if let Some(secs) = std::env::var("REOMP_SPIN_TIMEOUT")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            cfg.spin.timeout = (secs > 0).then(|| Duration::from_secs(secs));
        }
        let stream = std::env::var("REOMP_STREAM")
            .map(|s| matches!(s.to_ascii_lowercase().as_str(), "1" | "true" | "on"))
            .unwrap_or(false);
        cfg.compress = std::env::var("REOMP_COMPRESS")
            .map(|s| matches!(s.to_ascii_lowercase().as_str(), "1" | "true" | "on"))
            .unwrap_or(false);
        cfg.flight = std::env::var("REOMP_FLIGHT")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .filter(|&n| n > 0);
        match mode.to_ascii_lowercase().as_str() {
            // Bounded in-situ recording takes precedence over plain
            // streaming: the flight window IS a streaming sink, just a
            // bounded one that only persists on a trigger.
            "record" if cfg.flight.is_some() => {
                Session::record_flight(scheme, nthreads, cfg, Session::env_store())
            }
            "record" if stream => {
                Session::record_streaming_with(scheme, nthreads, cfg, &Session::env_store())
            }
            "record" => Ok(Session::record_with(scheme, nthreads, cfg)),
            "replay" => {
                let (bundle, _) = Session::env_store().load()?;
                Session::replay_with(bundle, cfg)
            }
            _ => Ok(Arc::new(Session::build(
                Mode::Passthrough,
                scheme,
                nthreads,
                cfg,
                None,
                None,
            ))),
        }
    }

    /// Parse a strictly-positive integer knob from the environment.
    /// Malformed values fall back to the built-in default (`None`, as
    /// before); an explicit `0` — always a configuration mistake for
    /// these knobs (a modulo-by-zero domain count, a never-flushing
    /// stream, a never-publishing batch) — is clamped to 1 with a warning
    /// instead of being silently absorbed.
    fn positive_env_knob(name: &str) -> Option<u64> {
        let raw = std::env::var(name).ok()?;
        match raw.trim().parse::<u64>() {
            Ok(0) => {
                eprintln!("reomp: {name}=0 is degenerate; clamping to 1");
                Some(1)
            }
            Ok(n) => Some(n),
            Err(_) => None,
        }
    }

    /// The directory store selected by `REOMP_DIR` (default:
    /// `<tmp>/reomp-trace`, which lives on tmpfs on Linux like the paper's
    /// record-file placement).
    #[must_use]
    pub fn env_store() -> DirStore {
        let dir = std::env::var_os("REOMP_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("reomp-trace"));
        DirStore::new(dir)
    }

    fn build(
        mode: Mode,
        scheme: Scheme,
        nthreads: u32,
        mut cfg: SessionConfig,
        bundle: Option<TraceBundle>,
        sink: Option<Box<dyn RecordSink>>,
    ) -> Session {
        assert!(nthreads > 0, "a session needs at least one thread");
        cfg.domains = cfg.effective_domains();
        // The ≥ 1 clamps live here, once, so every consumer — the ST
        // streaming steal, `maybe_flush_thread`, the publish cadence —
        // sees the same value and the record/flush paths cannot disagree.
        cfg.flush_records = cfg.flush_records.max(1);
        cfg.publish_batch = cfg.publish_batch.max(1);
        if let Some(bundle) = &bundle {
            // A trace replays against exactly the partition it was
            // recorded with: the stamped plan when one exists, the legacy
            // modulo otherwise.
            cfg.domains = bundle.domains;
            cfg.plan = bundle.plan.clone();
        }
        let domains = cfg.domains;
        // The fast path exists only where it is sound AND profitable:
        // ST serializes through the shared log builder (always locked),
        // and streaming DE must refresh the flush floor inside the served
        // section anyway — both would take the ghost-ticket slow path on
        // every access, paying two RMWs for nothing.
        let streaming = sink.is_some();
        let fast_path =
            cfg.ticket_gate && scheme != Scheme::St && !(streaming && scheme == Scheme::De);
        let rec = (mode == Mode::Record).then(|| RecordState {
            domains: (0..domains)
                .map(|_| DomainRecord {
                    ticket: fast_path.then(TicketGate::new),
                    gate: RawLocked::new(RecCore {
                        clock: 0,
                        tracker: (scheme == Scheme::De)
                            .then(|| EpochTracker::new(cfg.epoch_policy, cfg.ring_capacity)),
                        st: (scheme == Scheme::St).then(|| StBuilder {
                            tids: Vec::new(),
                            sites: Vec::new(),
                            kinds: Vec::new(),
                            validate: cfg.validate_sites,
                        }),
                    }),
                    bufs: (0..nthreads).map(|_| Mutex::new(Vec::new())).collect(),
                    published: AtomicU64::new(0),
                    seqs: (0..nthreads).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
            stream: sink.map(|s| StreamState::new(s, scheme, domains)),
            edges: Mutex::new(Vec::new()),
            pending_sync: (0..nthreads).map(|_| Mutex::new(None)).collect(),
        });
        let ring_capacity = cfg.ring_capacity;
        let rep = bundle.map(|bundle| ReplayState {
            domains: (0..domains)
                .map(|dom| DomainReplay {
                    cursors: (0..nthreads).map(|_| AtomicUsize::new(0)).collect(),
                    // Windowed (flight-recorder) bundles start each
                    // domain's completed-access count at the checkpointed
                    // base; full traces start at 0 as always.
                    turnstile: Turnstile::starting_at(bundle.clock_base(dom)),
                    baton: BatonLock::new(),
                    st_pos: AtomicUsize::new(0),
                    next_tid: AtomicU32::new(TID_NONE),
                    next_site: AtomicU64::new(0),
                    next_kind: AtomicU32::new(0),
                    history: Mutex::new(HistoryRing::new(ring_capacity)),
                })
                .collect(),
            edges: bundle.edge_index(),
            bundle,
        });
        Session {
            stats: Stats::with_domains(domains),
            cfg,
            mode,
            scheme,
            nthreads,
            rec,
            rep,
            flight: None,
            failure_hook: Mutex::new(None),
            active: AtomicU32::new(0),
            finished: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }

    /// Session mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Recording scheme.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of threads the session was created for.
    #[must_use]
    pub fn nthreads(&self) -> u32 {
        self.nthreads
    }

    /// Number of gate domains (≥ 1).
    #[must_use]
    pub fn domains(&self) -> u32 {
        self.cfg.domains
    }

    /// The gate domain site `site` belongs to: a fixed partition that
    /// record and replay compute identically — the session's
    /// [`DomainPlan`] when one is set, the legacy `raw % D` modulo
    /// otherwise.
    #[inline]
    #[must_use]
    pub fn domain_of(&self, site: SiteId) -> u32 {
        let d = self.cfg.domains;
        if d <= 1 {
            0
        } else if let Some(plan) = &self.cfg.plan {
            plan.domain_of(site)
        } else {
            DomainPlan::legacy_modulo(d, site)
        }
    }

    /// The session's domain plan, if it runs with one.
    #[must_use]
    pub fn plan(&self) -> Option<&DomainPlan> {
        self.cfg.plan.as_ref()
    }

    /// Live statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Register the calling thread as `tid` (0-based, `< nthreads`).
    ///
    /// The returned context is the handle through which the thread passes
    /// gates. A `tid` may be re-registered in a later parallel region after
    /// the previous context was dropped; cursors and clocks persist across
    /// regions.
    #[must_use]
    pub fn register_thread(self: &Arc<Self>, tid: u32) -> ThreadCtx {
        assert!(
            tid < self.nthreads,
            "tid {tid} >= nthreads {}",
            self.nthreads
        );
        assert!(
            !self.finished.load(Ordering::SeqCst),
            "session already finished"
        );
        self.active.fetch_add(1, Ordering::SeqCst);
        ThreadCtx {
            session: Arc::clone(self),
            tid,
        }
    }

    /// Snapshot every domain's published completion count (record mode,
    /// multi-domain). Index `d` is domain `d`'s count.
    pub(crate) fn snapshot_domain_counts(&self) -> Option<Vec<u64>> {
        let rec = self.rec.as_ref()?;
        if self.cfg.domains <= 1 {
            return None;
        }
        Some(
            rec.domains
                .iter()
                .map(|d| d.published.load(Ordering::Acquire))
                .collect(),
        )
    }

    /// Note a synchronization point (barrier) for `tid`: the snapshot of
    /// all domains' counts becomes the wait set of an edge anchored at the
    /// thread's *next* gated access.
    pub(crate) fn note_sync_point(&self, tid: u32) {
        if self.mode != Mode::Record {
            return;
        }
        let Some(snap) = self.snapshot_domain_counts() else {
            return;
        };
        if let Some(rec) = &self.rec {
            // A newer snapshot dominates an unconsumed older one (counts
            // are monotone), so plain replacement is the max-merge.
            *rec.pending_sync[tid as usize].lock() = Some(snap);
        }
    }

    /// Whether `tid` has an unconsumed barrier snapshot. A routing peek
    /// for the record fast path: only `tid` itself sets or takes its slot,
    /// so the answer cannot change between `record_in` and `record_out`.
    pub(crate) fn has_pending_sync(&self, tid: u32) -> bool {
        self.rec
            .as_ref()
            .is_some_and(|rec| rec.pending_sync[tid as usize].lock().is_some())
    }

    /// Take `tid`'s pending barrier snapshot, if any.
    pub(crate) fn take_pending_sync(&self, tid: u32) -> Option<Vec<u64>> {
        self.rec
            .as_ref()
            .and_then(|rec| rec.pending_sync[tid as usize].lock().take())
    }

    /// Append one cross-domain edge anchored at `(dom, tid, seq)` whose
    /// wait set is `counts` (a full per-domain snapshot; the anchor's own
    /// domain and zero counts are dropped here).
    pub(crate) fn push_edge(&self, dom: u32, tid: u32, seq: u64, counts: &[u64]) {
        let waits: Vec<(u32, u64)> = counts
            .iter()
            .enumerate()
            .filter(|&(j, &c)| j as u32 != dom && c > 0)
            .map(|(j, &c)| (j as u32, c))
            .collect();
        if waits.is_empty() {
            return;
        }
        if let Some(rec) = &self.rec {
            rec.edges.lock().push(CrossDomainEdge {
                domain: dom,
                thread: tid,
                seq,
                waits,
            });
            self.stats.bump_sync_edge();
        }
    }

    /// Enforce the cross-domain edge anchored at `(dom, tid, seq)`, if one
    /// was recorded: wait until every listed foreign domain's turnstile
    /// reaches its stamped count.
    pub(crate) fn wait_edges(
        &self,
        dom: u32,
        tid: u32,
        seq: u64,
        site: SiteId,
    ) -> Result<(), ReplayError> {
        let Some(rep) = &self.rep else { return Ok(()) };
        if rep.edges.is_empty() {
            return Ok(());
        }
        let key = (dom, if rep.bundle.is_st() { 0 } else { tid }, seq);
        let Some(waits) = rep.edges.get(&key) else {
            return Ok(());
        };
        for &(j, count) in waits {
            self.stats.bump_edge_wait();
            rep.domains[j as usize].turnstile.wait_at_least(
                count,
                tid,
                site,
                &self.cfg.spin,
                &self.stats,
            )?;
        }
        Ok(())
    }

    /// Record the first failure and release all replay waiters in every
    /// domain.
    ///
    /// Watchdog timeouts are the exception to the broadcast: a timed-out
    /// wait proves only that *this* thread's predecessor has not arrived
    /// yet — the recorded order is not contradicted, and the caller may
    /// legitimately retry the access once the predecessor shows up. Other
    /// stuck threads carry their own watchdogs. Aborting every turnstile
    /// here would poison those retries with [`ReplayError::Aborted`].
    pub(crate) fn fail(&self, err: &ReplayError) {
        {
            let mut slot = self.failure.lock();
            if slot.is_none() {
                *slot = Some(err.to_string());
            }
        }
        if let Some(rep) = &self.rep {
            if !matches!(err, ReplayError::Timeout { .. }) {
                for d in &rep.domains {
                    d.turnstile.abort();
                }
            }
        }
        // Fire the failure hook exactly once, outside our locks (it may
        // dump another session's flight recorder).
        let hook = self.failure_hook.lock().take();
        if let Some(hook) = hook {
            hook();
        }
    }

    /// The first replay failure observed, if any.
    #[must_use]
    pub fn failure(&self) -> Option<String> {
        self.failure.lock().clone()
    }

    /// Append one admitted access to a domain's replay history ring.
    #[inline]
    pub(crate) fn push_replay_history(&self, dom: u32, rec: AccessRecord) {
        if self.cfg.ring_capacity == 0 {
            return;
        }
        if let Some(rep) = &self.rep {
            rep.domains[dom as usize].history.lock().push(rec);
        }
    }

    /// Snapshot a domain's replay history, newest first (for diagnostics).
    pub(crate) fn replay_history(&self, dom: u32) -> Vec<AccessRecord> {
        match &self.rep {
            Some(rep) if self.cfg.ring_capacity > 0 => rep.domains[dom as usize]
                .history
                .lock()
                .iter_recent()
                .copied()
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Finish the run: flush pending DE stores, assemble the trace bundle
    /// (record mode), and produce the final report. All [`ThreadCtx`]s must
    /// have been dropped.
    pub fn finish(&self) -> Result<SessionReport, FinishError> {
        let active = self.active.load(Ordering::SeqCst);
        if active != 0 {
            return Err(FinishError::ThreadsActive(active));
        }
        if self.finished.swap(true, Ordering::SeqCst) {
            return Err(FinishError::AlreadyFinished);
        }

        let mut bundle = None;
        let mut io = None;
        let mut fully_consumed = None;
        match self.mode {
            Mode::Passthrough => {}
            Mode::Record => {
                let rec = self.rec.as_ref().expect("record state");
                if rec.stream.is_some() {
                    io = Some(self.commit_streaming().map_err(FinishError::Stream)?);
                } else {
                    // Flush every domain tracker's pending stores (trailing
                    // stores get their own clock — always safe).
                    for drec in &rec.domains {
                        drec.pause(|core| {
                            if let Some(tracker) = &mut core.tracker {
                                for f in tracker.flush() {
                                    drec.bufs[f.thread as usize].lock().push(RecEntry {
                                        clock: f.clock,
                                        value: f.epoch,
                                        site: f.site.raw(),
                                        kind: f.kind.code(),
                                    });
                                    self.stats.bump_record_written();
                                }
                            }
                        });
                    }
                    bundle = Some(self.assemble_bundle());
                }
            }
            Mode::Replay => {
                let rep = self.rep.as_ref().expect("replay state");
                let consumed = if rep.bundle.is_st() {
                    rep.domains
                        .iter()
                        .zip(&rep.bundle.st)
                        .all(|(d, st)| d.st_pos.load(Ordering::SeqCst) == st.len())
                } else {
                    rep.domains.iter().enumerate().all(|(dom, d)| {
                        d.cursors.iter().enumerate().all(|(tid, c)| {
                            c.load(Ordering::SeqCst)
                                >= rep.bundle.thread(dom as u32, tid as u32).len()
                        })
                    })
                };
                fully_consumed = Some(consumed);
            }
        }

        Ok(SessionReport {
            scheme: self.scheme,
            mode: self.mode,
            stats: self.stats.snapshot(),
            domain_gates: self.stats.domain_gates(),
            bundle,
            io,
            fully_consumed,
            failure: self.failure.lock().clone(),
        })
    }

    /// Flush everything still buffered in the session into the attached
    /// sink: the DE trackers' pending deferred stores (trailing stores get
    /// their own clock — always safe), the shared ST builders, and the
    /// per-thread buffers (sorted back to clock order). Returns DE's
    /// per-domain clock floors (empty for ST/DC) — the epoch-floor
    /// provenance a flight-recorder dump checkpoints.
    fn flush_residues(&self) -> Result<Vec<u64>, TraceError> {
        let rec = self.rec.as_ref().expect("record state");
        let mut floors = Vec::new();
        for (dom, drec) in rec.domains.iter().enumerate() {
            let dom = dom as u32;
            let clock = drec.pause(|core| {
                if let Some(tracker) = &mut core.tracker {
                    for f in tracker.flush() {
                        drec.bufs[f.thread as usize].lock().push(RecEntry {
                            clock: f.clock,
                            value: f.epoch,
                            site: f.site.raw(),
                            kind: f.kind.code(),
                        });
                        self.stats.bump_record_written();
                    }
                }
                core.clock
            });
            if self.scheme == Scheme::De {
                floors.push(clock);
                if self.cfg.domains > 1 {
                    // Publish batching may have left `published` lagging
                    // the clock; a pause is a quiescent point, so sync it
                    // for any snapshot taken after this flush.
                    drec.published.store(clock, Ordering::Release);
                }
            }
            // ST: steal whatever this domain's shared builder still holds.
            if self.scheme == Scheme::St {
                let stolen = drec.pause(|core| {
                    core.st.as_mut().map(|b| {
                        (
                            std::mem::take(&mut b.tids),
                            std::mem::take(&mut b.sites),
                            std::mem::take(&mut b.kinds),
                        )
                    })
                });
                if let Some((tids, sites, kinds)) = stolen {
                    if !tids.is_empty() {
                        self.append_st_chunk(dom, &tids, &sites, &kinds)?;
                    }
                }
            }
            // Per-thread residues, sorted to restore program (clock) order
            // after DE deferrals.
            for tid in 0..self.nthreads {
                let mut entries = std::mem::take(&mut *drec.bufs[tid as usize].lock());
                if entries.is_empty() {
                    continue;
                }
                entries.sort_unstable_by_key(|e| e.clock);
                self.append_thread_chunk(dom, tid, &entries)?;
            }
        }
        Ok(floors)
    }

    /// Flush all residual records of a streaming record run and commit the
    /// sink (manifest written last by the store).
    fn commit_streaming(&self) -> Result<IoReport, TraceError> {
        let rec = self.rec.as_ref().expect("record state");
        let stream = rec.stream.as_ref().expect("streaming state");
        // Surface a mid-run flush failure instead of committing a trace
        // with holes in it.
        if let Some(e) = stream.error.lock().take() {
            return Err(e);
        }
        self.flush_residues()?;
        // Stamp the domain plan and the collected cross-domain edges
        // before the manifest is published.
        {
            let guard = stream.sink.read();
            let sink = guard
                .as_ref()
                .ok_or_else(|| TraceError::Corrupt("streaming sink already committed".into()))?;
            if let Some(plan) = &self.cfg.plan {
                sink.put_plan(plan)?;
            }
            let edges = self.drain_edges();
            if !edges.is_empty() {
                sink.append_edges(&edges)?;
            }
        }
        let sink = stream
            .sink
            .write()
            .take()
            .ok_or_else(|| TraceError::Corrupt("streaming sink already committed".into()))?;
        sink.commit(self.stats.snapshot().records_written)
    }

    /// Encode `entries` as one chunk and append it to thread `tid`'s
    /// stream in domain `dom`, updating the flush counters.
    fn append_thread_chunk(
        &self,
        dom: u32,
        tid: u32,
        entries: &[RecEntry],
    ) -> Result<(), TraceError> {
        let rec = self.rec.as_ref().expect("record state");
        let stream = rec.stream.as_ref().expect("streaming state");
        let validate = self.cfg.validate_sites;
        let values: Vec<u64> = entries.iter().map(|e| e.value).collect();
        let sites: Option<Vec<u64>> = validate.then(|| entries.iter().map(|e| e.site).collect());
        let kinds: Option<Vec<u8>> = validate.then(|| entries.iter().map(|e| e.kind).collect());
        let guard = stream.sink.read();
        let sink = guard
            .as_ref()
            .ok_or_else(|| TraceError::Corrupt("streaming sink already committed".into()))?;
        let bytes =
            sink.append_thread_chunk(dom, tid, &values, sites.as_deref(), kinds.as_deref())?;
        self.stats.add_io_written(bytes);
        self.stats.bump_chunk_flush();
        Ok(())
    }

    /// Append one chunk of a domain's shared ST stream.
    fn append_st_chunk(
        &self,
        dom: u32,
        tids: &[u32],
        sites: &[u64],
        kinds: &[u8],
    ) -> Result<(), TraceError> {
        let rec = self.rec.as_ref().expect("record state");
        let stream = rec.stream.as_ref().expect("streaming state");
        let validate = self.cfg.validate_sites;
        let guard = stream.sink.read();
        let sink = guard
            .as_ref()
            .ok_or_else(|| TraceError::Corrupt("streaming sink already committed".into()))?;
        let bytes = sink.append_st_chunk(
            dom,
            tids,
            validate.then_some(sites),
            validate.then_some(kinds),
        )?;
        self.stats.add_io_written(bytes);
        self.stats.bump_chunk_flush();
        Ok(())
    }

    /// Hot-path flush check: if thread `tid`'s buffer in domain `dom`
    /// reached the flush threshold, persist its stable prefix (clocks
    /// below the domain's watermark) as one chunk. Failures are latched
    /// and surfaced at `finish`.
    pub(crate) fn maybe_flush_thread(&self, dom: u32, tid: u32) {
        let Some(rec) = self.rec.as_ref() else { return };
        let Some(stream) = rec.stream.as_ref() else {
            return;
        };
        // ORDERING: `failed` is a sticky go/no-go hint; a stale `false`
        // only means one more flush attempt whose error is latched again
        // under `error`'s mutex, and a stale `true` skips work that would
        // be discarded anyway. Nothing is published through this flag.
        if stream.failed.load(Ordering::Relaxed) {
            return;
        }
        // Already clamped ≥ 1 in `Session::build`.
        let threshold = self.cfg.flush_records;
        let floor = stream.floors[dom as usize].load(Ordering::Acquire);
        let mut buf = rec.domains[dom as usize].bufs[tid as usize].lock();
        if buf.len() < threshold {
            return;
        }
        // Cheap pre-check before sorting: while a DE deferred store pins
        // the watermark, an over-threshold buffer would otherwise be
        // re-sorted on every gate just to flush nothing.
        if !buf.iter().any(|e| e.clock < floor) {
            return;
        }
        buf.sort_unstable_by_key(|e| e.clock);
        let cut = buf.partition_point(|e| e.clock < floor);
        let stable: Vec<RecEntry> = buf.drain(..cut).collect();
        // Append while still holding the buffer lock: in DE, *any* thread
        // may flush this buffer (deferred records are routed across
        // threads), and two drained batches must reach the file in the
        // order they were drained.
        let result = self.append_thread_chunk(dom, tid, &stable);
        drop(buf);
        if let Err(e) = result {
            stream.record_failure(e);
        }
    }

    /// Hot-path ST flush: append a stolen prefix of a domain's shared
    /// stream.
    pub(crate) fn flush_st_records(&self, dom: u32, tids: &[u32], sites: &[u64], kinds: &[u8]) {
        let Some(rec) = self.rec.as_ref() else { return };
        let Some(stream) = rec.stream.as_ref() else {
            return;
        };
        if let Err(e) = self.append_st_chunk(dom, tids, sites, kinds) {
            stream.record_failure(e);
        }
    }

    /// Drain the collected cross-domain edges in deterministic order.
    fn drain_edges(&self) -> Vec<CrossDomainEdge> {
        let rec = self.rec.as_ref().expect("record state");
        let mut edges = std::mem::take(&mut *rec.edges.lock());
        edges.sort_by_key(|e| (e.domain, e.thread, e.seq));
        edges
    }

    fn assemble_bundle(&self) -> TraceBundle {
        let rec = self.rec.as_ref().expect("record state");
        let validate = self.cfg.validate_sites;

        let mut st = Vec::new();
        let mut threads = Vec::with_capacity(rec.domains.len() * self.nthreads as usize);
        for drec in &rec.domains {
            if self.scheme == Scheme::St {
                let stream = drec.pause(|core| {
                    core.st.take().map(|b| StTrace {
                        tids: b.tids,
                        sites: validate.then_some(b.sites),
                        kinds: validate.then_some(b.kinds),
                    })
                });
                st.push(stream.expect("st builder"));
            }
            for buf in &drec.bufs {
                let mut entries = std::mem::take(&mut *buf.lock());
                // DE deferral may append a record finalized by a later
                // access after the owner's own later records; restore the
                // thread's program order by clock.
                entries.sort_unstable_by_key(|e| e.clock);
                threads.push(ThreadTrace {
                    values: entries.iter().map(|e| e.value).collect(),
                    sites: validate.then(|| entries.iter().map(|e| e.site).collect()),
                    kinds: validate.then(|| entries.iter().map(|e| e.kind).collect()),
                });
            }
        }

        let bundle = TraceBundle {
            scheme: self.scheme,
            nthreads: self.nthreads,
            domains: self.cfg.domains,
            threads,
            st,
            plan: self.cfg.plan.clone(),
            edges: self.drain_edges(),
            checkpoint: None,
        };
        debug_assert!(bundle.validate().is_ok(), "assembled bundle is consistent");
        bundle
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("mode", &self.mode)
            .field("scheme", &self.scheme)
            .field("nthreads", &self.nthreads)
            .field("domains", &self.cfg.domains)
            .finish_non_exhaustive()
    }
}

/// Chain the process panic hook so a panic dumps `session`'s flight
/// recorder (trigger [`DumpTrigger::Panic`]) before the previous hook
/// runs. Holds only a weak reference; once the session is gone the hook
/// falls through to the previous one. The dump is best-effort: a panic
/// *inside* a gate leaves that access mid-flight.
///
/// The standard panic hook is process-global — install this once per
/// process, for the one session whose window matters.
pub fn install_panic_dump(session: &Arc<Session>) {
    let weak = Arc::downgrade(session);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(session) = weak.upgrade() {
            let _ = session.dump(DumpTrigger::Panic);
        }
        prev(info);
    }));
}

/// Per-thread gate handle (the instrumented thread's view of `libreomp`).
#[derive(Debug)]
pub struct ThreadCtx {
    session: Arc<Session>,
    tid: u32,
}

impl ThreadCtx {
    /// This thread's 0-based ID.
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// The owning session.
    #[must_use]
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Note a synchronization point (e.g. a barrier departure) for this
    /// thread.
    ///
    /// In a multi-domain record run this snapshots every gate domain's
    /// completion count; the snapshot becomes a [`CrossDomainEdge`]
    /// anchored at this thread's *next* gated access, so replay restores
    /// the inter-domain ordering the barrier established. A no-op in every
    /// other mode and for single-domain sessions — runtimes can call it
    /// unconditionally from their barrier shims.
    #[inline]
    pub fn sync_point(&self) {
        self.session.note_sync_point(self.tid);
    }

    /// Execute `f` as a shared-memory access region bracketed by
    /// `gate_in`/`gate_out` (Fig. 1). Panics on replay failure; see
    /// [`ThreadCtx::try_gate`] for the fallible form. The site hash doubles
    /// as the memory address for DE run grouping; use
    /// [`ThreadCtx::gate_at`] when one instruction touches many locations.
    #[inline]
    pub fn gate<R>(&self, site: SiteId, kind: AccessKind, f: impl FnOnce() -> R) -> R {
        self.gate_at(site, site.raw(), kind, f)
    }

    /// [`ThreadCtx::gate`] with an explicit memory address: Condition 1
    /// (§IV-D) groups runs per *address*, while the *site* identifies the
    /// instrumented instruction for replay validation.
    #[inline]
    pub fn gate_at<R>(
        &self,
        site: SiteId,
        addr: u64,
        kind: AccessKind,
        f: impl FnOnce() -> R,
    ) -> R {
        match self.try_gate_at(site, addr, kind, f) {
            Ok(r) => r,
            Err(e) => panic!("reomp gate failed: {e}"),
        }
    }

    /// Fallible form of [`ThreadCtx::gate`].
    pub fn try_gate<R>(
        &self,
        site: SiteId,
        kind: AccessKind,
        f: impl FnOnce() -> R,
    ) -> Result<R, ReplayError> {
        self.try_gate_at(site, site.raw(), kind, f)
    }

    /// Fallible gate with an explicit address: returns the replay error
    /// instead of panicking. The session is marked failed and all other
    /// waiters are released either way.
    pub fn try_gate_at<R>(
        &self,
        site: SiteId,
        addr: u64,
        kind: AccessKind,
        f: impl FnOnce() -> R,
    ) -> Result<R, ReplayError> {
        let session = &*self.session;
        // Instrumentation-plan bypass: ungated sites run untouched.
        if let Some(plan) = &session.cfg.gate_plan {
            if !plan.contains(&site) {
                return Ok(f());
            }
        }
        session.stats.bump_gate(kind);
        match session.mode {
            Mode::Passthrough => Ok(f()),
            Mode::Record => {
                let dom = session.domain_of(site);
                session.stats.bump_domain_gate(dom);
                let token = gate::record_in(session, dom, self.tid, kind);
                let out = f();
                gate::record_out(session, dom, self.tid, site, addr, kind, token);
                Ok(out)
            }
            Mode::Replay => {
                let dom = session.domain_of(site);
                session.stats.bump_domain_gate(dom);
                if let Err(e) = gate::replay_in(session, dom, self.tid, site, kind) {
                    session.fail(&e);
                    return Err(e);
                }
                let out = f();
                gate::replay_out(session, dom, self.tid);
                Ok(out)
            }
        }
    }
}

impl Drop for ThreadCtx {
    fn drop(&mut self) {
        self.session.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Outcome of a finished session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Scheme of the run.
    pub scheme: Scheme,
    /// Mode of the run.
    pub mode: Mode,
    /// Final statistics.
    pub stats: StatsSnapshot,
    /// Gate passages per gate domain (empty for single-domain sessions;
    /// for multi-domain record/replay runs it sums to `stats.gates` —
    /// passthrough gates never resolve a domain, so there the breakdown
    /// stays zero). A lopsided breakdown means the site→domain partition
    /// is not spreading the load.
    pub domain_gates: Vec<u64>,
    /// The recorded trace (record mode only; `None` for streaming record
    /// runs, whose trace lives in the store).
    pub bundle: Option<TraceBundle>,
    /// I/O totals of the committed trace (streaming record runs only).
    pub io: Option<IoReport>,
    /// Replay mode: whether every recorded access was consumed.
    pub fully_consumed: Option<bool>,
    /// First replay failure, if any.
    pub failure: Option<String>,
}

impl SessionReport {
    /// Epoch-size histogram of the recorded trace (Fig. 20 analysis).
    #[must_use]
    pub fn epoch_histogram(&self) -> Option<EpochHistogram> {
        self.bundle.as_ref().map(EpochHistogram::from_bundle)
    }

    /// Persist the recorded bundle to a store.
    pub fn save_to(&self, store: &dyn TraceStore) -> Result<IoReport, TraceError> {
        let bundle = self
            .bundle
            .as_ref()
            .ok_or_else(|| TraceError::Corrupt("report has no bundle (not a record run)".into()))?;
        store.save(bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_roundtrip_and_parse() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::from_code(s.code()), Some(s));
            assert_eq!(Scheme::parse(s.name()), Some(s));
        }
        assert_eq!(Scheme::parse("DE"), Some(Scheme::De));
        assert_eq!(Scheme::parse("nope"), None);
        assert_eq!(Scheme::from_code(77), None);
    }

    #[test]
    fn passthrough_gates_run_the_closure() {
        let s = Session::passthrough(1);
        let ctx = s.register_thread(0);
        let v = ctx.gate(SiteId(1), AccessKind::Load, || 41) + 1;
        assert_eq!(v, 42);
        drop(ctx);
        let report = s.finish().unwrap();
        assert_eq!(report.stats.gates, 1);
        assert!(report.bundle.is_none());
    }

    #[test]
    fn finish_requires_contexts_dropped() {
        let s = Session::record(Scheme::Dc, 1);
        let ctx = s.register_thread(0);
        assert!(matches!(s.finish(), Err(FinishError::ThreadsActive(1))));
        drop(ctx);
        assert!(s.finish().is_ok());
        assert!(matches!(s.finish(), Err(FinishError::AlreadyFinished)));
    }

    #[test]
    #[should_panic(expected = "tid 3 >= nthreads 2")]
    fn register_rejects_out_of_range_tid() {
        let s = Session::record(Scheme::Dc, 2);
        let _ = s.register_thread(3);
    }

    #[test]
    fn gate_plan_bypasses_unplanned_sites() {
        let gated = SiteId::from_label("gated");
        let free = SiteId::from_label("free");
        let cfg = SessionConfig {
            gate_plan: Some([gated].into_iter().collect()),
            ..Default::default()
        };
        let s = Session::record_with(Scheme::Dc, 1, cfg);
        let ctx = s.register_thread(0);
        ctx.gate(gated, AccessKind::Load, || ());
        ctx.gate(free, AccessKind::Load, || ());
        drop(ctx);
        let report = s.finish().unwrap();
        assert_eq!(report.stats.gates, 1, "only the planned site is gated");
        assert_eq!(report.bundle.unwrap().total_records(), 1);
    }

    #[test]
    fn from_env_defaults_to_passthrough() {
        // REOMP_MODE is not set in the test environment.
        let s = Session::from_env(2).unwrap();
        assert_eq!(s.mode(), Mode::Passthrough);
    }

    #[test]
    fn env_knobs_configure_domains_and_watchdog() {
        // One test mutates all REOMP_* knobs sequentially to avoid races
        // with other env-reading tests in this binary (they only read
        // REOMP_MODE, which stays unset here).
        std::env::set_var("REOMP_DOMAINS", "4");
        std::env::set_var("REOMP_SPIN_TIMEOUT", "120");
        let s = Session::from_env(2).unwrap();
        assert_eq!(s.cfg.domains, 4);
        assert_eq!(s.cfg.spin.timeout, Some(Duration::from_secs(120)));

        // 0 disables the watchdog entirely (oversubscribed-CI escape hatch).
        std::env::set_var("REOMP_SPIN_TIMEOUT", "0");
        let s = Session::from_env(2).unwrap();
        assert_eq!(s.cfg.spin.timeout, None);

        // Garbage values fall back to the defaults.
        std::env::set_var("REOMP_DOMAINS", "zero");
        std::env::set_var("REOMP_SPIN_TIMEOUT", "soon");
        let s = Session::from_env(2).unwrap();
        assert_eq!(s.cfg.domains, 1);
        assert_eq!(s.cfg.spin.timeout, SpinConfig::default().timeout);

        // Degenerate-but-parseable values clamp (with a warning) instead
        // of falling through to divide-by-zero / never-flush behavior.
        std::env::set_var("REOMP_DOMAINS", "0");
        std::env::set_var("REOMP_FLUSH_RECORDS", "0");
        std::env::set_var("REOMP_PUBLISH_BATCH", "0");
        let s = Session::from_env(2).unwrap();
        assert_eq!(s.cfg.domains, 1, "REOMP_DOMAINS=0 clamps to 1");
        assert_eq!(s.cfg.flush_records, 1, "REOMP_FLUSH_RECORDS=0 clamps to 1");
        assert_eq!(s.cfg.publish_batch, 1, "REOMP_PUBLISH_BATCH=0 clamps to 1");

        // Values that parse but overflow the u32 knobs keep the default
        // (clamping REOMP_DOMAINS to u32::MAX would try to allocate four
        // billion domain records).
        std::env::set_var("REOMP_DOMAINS", "4294967296");
        std::env::set_var("REOMP_PUBLISH_BATCH", "4294967296");
        let s = Session::from_env(2).unwrap();
        assert_eq!(s.cfg.domains, 1);
        assert_eq!(s.cfg.publish_batch, 1);

        // Sanity: in-range values land, and the ticket gate is on by
        // default but can be disabled.
        std::env::set_var("REOMP_FLUSH_RECORDS", "64");
        std::env::set_var("REOMP_PUBLISH_BATCH", "8");
        let s = Session::from_env(2).unwrap();
        assert_eq!(s.cfg.flush_records, 64);
        assert_eq!(s.cfg.publish_batch, 8);
        assert!(s.cfg.ticket_gate, "ticket gate defaults to on");
        std::env::set_var("REOMP_TICKET_GATE", "off");
        let s = Session::from_env(2).unwrap();
        assert!(!s.cfg.ticket_gate);
        std::env::set_var("REOMP_TICKET_GATE", "1");
        let s = Session::from_env(2).unwrap();
        assert!(s.cfg.ticket_gate);

        std::env::remove_var("REOMP_DOMAINS");
        std::env::remove_var("REOMP_SPIN_TIMEOUT");
        std::env::remove_var("REOMP_FLUSH_RECORDS");
        std::env::remove_var("REOMP_PUBLISH_BATCH");
        std::env::remove_var("REOMP_TICKET_GATE");
    }

    #[test]
    fn domain_partition_is_stable_and_total() {
        let cfg = SessionConfig {
            domains: 4,
            ..Default::default()
        };
        let s = Session::record_with(Scheme::Dc, 1, cfg);
        assert_eq!(s.domains(), 4);
        for raw in 0..64u64 {
            let site = SiteId(raw);
            let dom = s.domain_of(site);
            assert!(dom < 4);
            assert_eq!(dom, s.domain_of(site), "partition must be a function");
        }
        // D = 1 (and the clamped 0) always map to domain 0.
        let s = Session::record_with(
            Scheme::Dc,
            1,
            SessionConfig {
                domains: 0,
                ..Default::default()
            },
        );
        assert_eq!(s.domains(), 1, "domain count clamps to >= 1");
        assert_eq!(s.domain_of(SiteId(u64::MAX)), 0);
    }

    #[test]
    fn planned_session_partitions_by_plan_not_modulo() {
        // Pin sites opposite to what raw % 2 would do.
        let a = SiteId(2); // modulo: domain 0 — plan: domain 1
        let b = SiteId(3); // modulo: domain 1 — plan: domain 0
        let plan = DomainPlan::with_assignments(2, [(a, 1), (b, 0)]);
        let cfg = SessionConfig {
            plan: Some(plan.clone()),
            ..Default::default()
        };
        let s = Session::record_with(Scheme::Dc, 1, cfg);
        assert_eq!(s.domains(), 2);
        assert_eq!(s.domain_of(a), 1);
        assert_eq!(s.domain_of(b), 0);
        assert_eq!(s.plan(), Some(&plan));
        let ctx = s.register_thread(0);
        ctx.gate(a, AccessKind::Store, || ());
        drop(ctx);
        let bundle = s.finish().unwrap().bundle.unwrap();
        assert_eq!(bundle.plan.as_ref(), Some(&plan), "plan stamped in trace");
        assert!(bundle.thread(0, 0).is_empty());
        assert_eq!(bundle.thread(1, 0).len(), 1, "access landed per plan");

        // Replay reconstructs the plan from the bundle even when the
        // caller's config has none.
        let replay = Session::replay(bundle).unwrap();
        assert_eq!(replay.domain_of(a), 1);
        assert_eq!(replay.domain_of(b), 0);
    }

    #[test]
    fn plan_overrides_raw_domain_knob() {
        let cfg = SessionConfig {
            domains: 2,
            plan: Some(DomainPlan::new(4)),
            ..Default::default()
        };
        assert_eq!(cfg.effective_domains(), 4);
        let s = Session::record_with(Scheme::Dc, 1, cfg);
        assert_eq!(s.domains(), 4);
        // Unplanned sites take the mixed-hash fallback, not the modulo.
        let site = SiteId(6);
        assert_eq!(s.domain_of(site), DomainPlan::hashed_fallback(4, site));
    }

    #[test]
    fn streaming_record_persists_plan_and_edges() {
        use crate::store::{MemStore, TraceStore};
        let a = SiteId(0xa);
        let b = SiteId(0xb);
        let plan = DomainPlan::with_assignments(2, [(a, 0), (b, 1)]);
        let drive = |session: &Arc<Session>| {
            let c0 = session.register_thread(0);
            let c1 = session.register_thread(1);
            for _ in 0..3 {
                c0.gate(a, AccessKind::Critical, || ());
            }
            c1.gate(b, AccessKind::Critical, || ());
        };
        let cfg = SessionConfig {
            plan: Some(plan.clone()),
            ..Default::default()
        };
        let s = Session::record_with(Scheme::Dc, 2, cfg.clone());
        drive(&s);
        let one_shot = s.finish().unwrap().bundle.unwrap();
        assert!(!one_shot.edges.is_empty());

        let store = MemStore::new();
        let cfg = SessionConfig {
            flush_records: 2,
            ..cfg
        };
        let s = Session::record_streaming_with(Scheme::Dc, 2, cfg, &store).unwrap();
        drive(&s);
        s.finish().unwrap();
        let (loaded, _) = store.load().unwrap();
        assert_eq!(loaded, one_shot, "streamed plan+edges ≡ one-shot");
        assert_eq!(loaded.plan.as_ref(), Some(&plan));
    }

    #[test]
    fn multi_domain_record_produces_per_domain_streams() {
        let cfg = SessionConfig {
            domains: 2,
            ..Default::default()
        };
        let s = Session::record_with(Scheme::Dc, 2, cfg);
        let c0 = s.register_thread(0);
        let c1 = s.register_thread(1);
        // SiteId(2) -> domain 0, SiteId(3) -> domain 1.
        for _ in 0..5 {
            c0.gate(SiteId(2), AccessKind::Load, || ());
            c1.gate(SiteId(3), AccessKind::Store, || ());
        }
        drop((c0, c1));
        let report = s.finish().unwrap();
        assert_eq!(report.domain_gates, vec![5, 5]);
        let bundle = report.bundle.unwrap();
        assert_eq!(bundle.domains, 2);
        bundle.validate().unwrap();
        // Thread 0's accesses all live in domain 0, thread 1's in domain 1,
        // and each domain's clocks are independent 0..5 sequences.
        assert_eq!(bundle.thread(0, 0).values, vec![0, 1, 2, 3, 4]);
        assert!(bundle.thread(0, 1).is_empty());
        assert!(bundle.thread(1, 0).is_empty());
        assert_eq!(bundle.thread(1, 1).values, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn streaming_record_matches_one_shot_bundle() {
        use crate::store::{MemStore, TraceStore};
        // Drive both thread contexts from this test thread so the gate
        // order — and therefore the recorded trace — is deterministic.
        let run = |session: &Arc<Session>| {
            let c0 = session.register_thread(0);
            let c1 = session.register_thread(1);
            for i in 0..10u64 {
                let site = SiteId(100 + (i % 3));
                c0.gate(site, AccessKind::Load, || ());
                c1.gate(site, AccessKind::Store, || ());
                c1.gate(site, AccessKind::Load, || ());
            }
        };
        for domains in [1u32, 3] {
            for scheme in Scheme::ALL {
                let cfg = SessionConfig {
                    domains,
                    ..Default::default()
                };
                let s = Session::record_with(scheme, 2, cfg.clone());
                run(&s);
                let bundle = s.finish().unwrap().bundle.unwrap();
                assert_eq!(bundle.domains, domains);

                let store = MemStore::new();
                let cfg = SessionConfig {
                    flush_records: 4,
                    domains,
                    ..Default::default()
                };
                let s = Session::record_streaming_with(scheme, 2, cfg, &store).unwrap();
                run(&s);
                let report = s.finish().unwrap();
                assert!(report.bundle.is_none(), "streaming keeps no bundle");
                let io = report.io.expect("streaming report carries io totals");
                assert!(io.chunks > 0, "{scheme:?}/{domains}");
                assert!(report.stats.chunk_flushes > 0, "{scheme:?}/{domains}");
                let (loaded, _) = store.load().unwrap();
                assert_eq!(loaded, bundle, "{scheme:?}/{domains}: streamed ≡ one-shot");
            }
        }
    }

    #[test]
    fn streaming_record_without_validation() {
        use crate::store::{MemStore, TraceStore};
        let store = MemStore::new();
        let cfg = SessionConfig {
            validate_sites: false,
            flush_records: 2,
            ..Default::default()
        };
        let s = Session::record_streaming_with(Scheme::Dc, 1, cfg, &store).unwrap();
        let ctx = s.register_thread(0);
        for _ in 0..7 {
            ctx.gate(SiteId(9), AccessKind::Load, || ());
        }
        drop(ctx);
        s.finish().unwrap();
        let (loaded, _) = store.load().unwrap();
        assert_eq!(loaded.threads[0].values.len(), 7);
        assert_eq!(loaded.threads[0].sites, None);
    }

    #[test]
    fn report_save_requires_bundle() {
        let s = Session::passthrough(1);
        let report = s.finish().unwrap();
        let store = crate::store::MemStore::new();
        assert!(report.save_to(&store).is_err());
    }
}
