//! Session orchestration: one [`Session`] per record or replay run.
//!
//! A session owns the shared gate state (the paper's `global_clock`,
//! `next_clock`, `next_tid`, lock `L`, and trace buffers) plus statistics.
//! Runtime threads obtain a [`ThreadCtx`] via [`Session::register_thread`]
//! and wrap each shared-memory access region in [`ThreadCtx::gate`].
//!
//! Like the paper's `libreomp.so` (§V), the mode can be chosen with
//! environment variables: `REOMP_MODE` (`off`/`record`/`replay`),
//! `REOMP_SCHEME` (`st`/`dc`/`de`), `REOMP_EPOCH_POLICY`, `REOMP_DIR`
//! for the record-file directory, `REOMP_STREAM` (`1` streams the trace
//! to `REOMP_DIR` chunk-by-chunk as the run records), and
//! `REOMP_FLUSH_RECORDS` (streaming flush threshold).
//!
//! # Streaming record runs
//!
//! [`Session::record_streaming`] attaches a [`RecordSink`] from a
//! [`StreamingTraceStore`]: whenever a per-thread buffer reaches
//! [`SessionConfig::flush_records`] entries, its stable prefix is encoded
//! as a chunk and appended to that thread's record stream, so the session
//! never holds more than a bounded window of the trace in memory. For DE,
//! a record is *stable* once no pending deferred store with a smaller
//! clock remains (the tracker's
//! [`min_pending_clock`](EpochTracker::min_pending_clock) watermark);
//! ST/DC records are stable as soon as they are buffered. `finish`
//! flushes the residue and atomically commits the store (manifest last).

use crate::clock::Turnstile;
use crate::epoch::{EpochPolicy, EpochTracker};
use crate::error::{FinishError, ReplayError, TraceError};
use crate::gate;
use crate::site::{AccessKind, SiteId};
use crate::stats::{EpochHistogram, Stats, StatsSnapshot};
use crate::store::{DirStore, IoReport, RecordSink, StreamingTraceStore, TraceStore};
use crate::sync::{BatonLock, RawLocked, SpinConfig};
use crate::trace::{StTrace, ThreadTrace, TraceBundle};
use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Recording scheme (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Serialized thread-ID recording — the traditional baseline (§IV-A).
    St,
    /// Distributed clock recording (§IV-B).
    Dc,
    /// Distributed epoch recording (§IV-D).
    De,
}

impl Scheme {
    /// Stable one-byte code used in trace headers.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Scheme::St => 0,
            Scheme::Dc => 1,
            Scheme::De => 2,
        }
    }

    /// Inverse of [`Scheme::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Scheme> {
        Some(match code {
            0 => Scheme::St,
            1 => Scheme::Dc,
            2 => Scheme::De,
            _ => return None,
        })
    }

    /// Lower-case name (`st`, `dc`, `de`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheme::St => "st",
            Scheme::Dc => "dc",
            Scheme::De => "de",
        }
    }

    /// Parse a name as produced by [`Scheme::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Scheme> {
        match s.to_ascii_lowercase().as_str() {
            "st" => Some(Scheme::St),
            "dc" => Some(Scheme::Dc),
            "de" => Some(Scheme::De),
            _ => None,
        }
    }

    /// All schemes, baseline first.
    pub const ALL: [Scheme; 3] = [Scheme::St, Scheme::Dc, Scheme::De];
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a session does at each gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Gates are no-ops (execution `w/o ReOMP` in the figures).
    Passthrough,
    /// Gates record the access order.
    Record,
    /// Gates enforce a previously recorded order.
    Replay,
}

/// Tuning knobs for a session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// DE run-boundary policy (see [`EpochPolicy`]).
    pub epoch_policy: EpochPolicy,
    /// Capacity of the DE access-history ring buffer (diagnostics/audit).
    pub ring_capacity: usize,
    /// Replay spin-wait/watchdog policy.
    pub spin: SpinConfig,
    /// Record per-access sites and kinds so replay can detect divergence.
    pub validate_sites: bool,
    /// If set, only these sites are gated; everything else bypasses the
    /// recorder (the instrumentation plan produced by the race-detection
    /// step of the toolflow, Fig. 2 step (1)).
    pub gate_plan: Option<HashSet<SiteId>>,
    /// Streaming record runs: flush a per-thread buffer to its record
    /// stream once it holds this many records (clamped to ≥ 1). Ignored
    /// unless the session was created with [`Session::record_streaming`].
    pub flush_records: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            epoch_policy: EpochPolicy::default(),
            ring_capacity: 64,
            spin: SpinConfig::default(),
            validate_sites: true,
            gate_plan: None,
            flush_records: 4096,
        }
    }
}

/// One finalized-but-unsorted record produced during a record run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecEntry {
    pub clock: u64,
    pub value: u64,
    pub site: u64,
    pub kind: u8,
}

/// State guarded by the gate lock `L` during record runs.
pub(crate) struct RecCore {
    /// The paper's `global_clock` (Fig. 5 line 22). Kept as a plain field
    /// because it is only touched under the gate lock.
    pub clock: u64,
    /// DE epoch tracker (None for ST/DC).
    pub tracker: Option<EpochTracker>,
    /// ST shared log builder (None for DC/DE).
    pub st: Option<StBuilder>,
}

/// Builder for the single shared ST record stream.
pub(crate) struct StBuilder {
    pub tids: Vec<u32>,
    pub sites: Vec<u64>,
    pub kinds: Vec<u8>,
    pub validate: bool,
}

impl StBuilder {
    pub(crate) fn push(&mut self, tid: u32, site: SiteId, kind: AccessKind) {
        self.tids.push(tid);
        if self.validate {
            self.sites.push(site.raw());
            self.kinds.push(kind.code());
        }
    }
}

pub(crate) struct RecordState {
    /// Gate lock + state; locked at `gate_in`, unlocked at `gate_out`.
    pub gate: RawLocked<RecCore>,
    /// Per-thread record buffers (Fig. 3-(b): one record file per thread).
    pub bufs: Vec<Mutex<Vec<RecEntry>>>,
    /// Attached streaming sink, when the session records incrementally.
    pub stream: Option<StreamState>,
}

/// Streaming-record state: the sink plus the flush watermark.
pub(crate) struct StreamState {
    /// The store's sink; read-locked for concurrent appends (each
    /// stream serializes its own writes), write-locked only to take it
    /// at commit time.
    pub sink: RwLock<Option<Box<dyn RecordSink>>>,
    /// Flush watermark: records with clocks strictly below this value are
    /// complete in their owners' buffers and safe to persist. `u64::MAX`
    /// for ST/DC (records are stable on arrival); maintained under the
    /// gate lock for DE from the tracker's pending-store minimum.
    pub floor: AtomicU64,
    /// Chunk-order lock for the shared ST stream: acquired *before* the
    /// gate lock is released when a batch is stolen, so two stolen batches
    /// can never append to the file out of execution order.
    pub st_order: Mutex<()>,
    /// Set after the first append failure; flushing stops and `finish`
    /// surfaces the error instead of committing a partial trace.
    pub failed: AtomicBool,
    /// The first append failure.
    pub error: Mutex<Option<TraceError>>,
}

impl StreamState {
    fn new(sink: Box<dyn RecordSink>, scheme: Scheme) -> StreamState {
        StreamState {
            sink: RwLock::new(Some(sink)),
            // DE starts with nothing stable recorded; ST/DC buffers only
            // ever hold stable records.
            floor: AtomicU64::new(if scheme == Scheme::De { 0 } else { u64::MAX }),
            st_order: Mutex::new(()),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    pub(crate) fn record_failure(&self, e: TraceError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.failed.store(true, Ordering::SeqCst);
    }
}

/// Sentinel `next_tid` values for ST replay.
pub(crate) const TID_NONE: u32 = u32::MAX;
pub(crate) const TID_EXHAUSTED: u32 = u32::MAX - 1;

pub(crate) struct ReplayState {
    pub bundle: TraceBundle,
    /// The `next_clock` turnstile (DC/DE) — also used as the global abort
    /// flag for ST replay.
    pub turnstile: Turnstile,
    /// Per-thread read positions into the per-thread traces.
    pub cursors: Vec<AtomicUsize>,
    /// ST: the baton lock `L` of Fig. 4.
    pub baton: BatonLock,
    /// ST: shared read position into the single record stream.
    pub st_pos: AtomicUsize,
    /// ST: the published `next_tid` (Fig. 4 line 13).
    pub next_tid: AtomicU32,
    /// ST: site hash published with `next_tid` for replay validation.
    pub next_site: AtomicU64,
    /// ST: kind code published with `next_tid`.
    pub next_kind: AtomicU32,
}

/// A record or replay run.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Session {
    pub(crate) cfg: SessionConfig,
    mode: Mode,
    scheme: Scheme,
    nthreads: u32,
    pub(crate) stats: Stats,
    pub(crate) rec: Option<RecordState>,
    pub(crate) rep: Option<ReplayState>,
    active: AtomicU32,
    finished: AtomicBool,
    failure: Mutex<Option<String>>,
}

impl Session {
    /// A session whose gates do nothing (baseline `w/o ReOMP`).
    #[must_use]
    pub fn passthrough(nthreads: u32) -> Arc<Session> {
        Arc::new(Session::build(
            Mode::Passthrough,
            Scheme::De,
            nthreads,
            SessionConfig::default(),
            None,
            None,
        ))
    }

    /// Start a record run with default configuration.
    #[must_use]
    pub fn record(scheme: Scheme, nthreads: u32) -> Arc<Session> {
        Session::record_with(scheme, nthreads, SessionConfig::default())
    }

    /// Start a record run with explicit configuration.
    #[must_use]
    pub fn record_with(scheme: Scheme, nthreads: u32, cfg: SessionConfig) -> Arc<Session> {
        Arc::new(Session::build(
            Mode::Record,
            scheme,
            nthreads,
            cfg,
            None,
            None,
        ))
    }

    /// Start a record run that streams its trace into `store` as it runs
    /// (default configuration; see [`SessionConfig::flush_records`]).
    ///
    /// The trace never has to fit in memory: full per-thread buffers are
    /// appended to the store as self-delimiting chunks, and
    /// [`Session::finish`] commits the store atomically. The finished
    /// report carries the [`IoReport`] instead of an in-memory bundle.
    pub fn record_streaming(
        scheme: Scheme,
        nthreads: u32,
        store: &dyn StreamingTraceStore,
    ) -> Result<Arc<Session>, TraceError> {
        Session::record_streaming_with(scheme, nthreads, SessionConfig::default(), store)
    }

    /// [`Session::record_streaming`] with explicit configuration.
    pub fn record_streaming_with(
        scheme: Scheme,
        nthreads: u32,
        cfg: SessionConfig,
        store: &dyn StreamingTraceStore,
    ) -> Result<Arc<Session>, TraceError> {
        let sink = store.begin_record(scheme, nthreads, cfg.validate_sites)?;
        Ok(Arc::new(Session::build(
            Mode::Record,
            scheme,
            nthreads,
            cfg,
            None,
            Some(sink),
        )))
    }

    /// Start a replay run of `bundle` with default configuration.
    pub fn replay(bundle: TraceBundle) -> Result<Arc<Session>, TraceError> {
        Session::replay_with(bundle, SessionConfig::default())
    }

    /// Start a replay run with explicit configuration.
    pub fn replay_with(
        bundle: TraceBundle,
        cfg: SessionConfig,
    ) -> Result<Arc<Session>, TraceError> {
        bundle.validate()?;
        let scheme = bundle.scheme;
        let nthreads = bundle.nthreads;
        Ok(Arc::new(Session::build(
            Mode::Replay,
            scheme,
            nthreads,
            cfg,
            Some(bundle),
            None,
        )))
    }

    /// Build a session from the `REOMP_MODE`/`REOMP_SCHEME`/`REOMP_DIR`
    /// environment, loading the trace from the directory store for replay.
    /// Unset or `off` mode yields a passthrough session.
    pub fn from_env(nthreads: u32) -> Result<Arc<Session>, TraceError> {
        let mode = std::env::var("REOMP_MODE").unwrap_or_else(|_| "off".into());
        let scheme = std::env::var("REOMP_SCHEME")
            .ok()
            .and_then(|s| Scheme::parse(&s))
            .unwrap_or(Scheme::De);
        let mut cfg = SessionConfig::default();
        if let Ok(p) = std::env::var("REOMP_EPOCH_POLICY") {
            if let Some(policy) = EpochPolicy::from_str_opt(&p) {
                cfg.epoch_policy = policy;
            }
        }
        if let Some(n) = std::env::var("REOMP_FLUSH_RECORDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            cfg.flush_records = n;
        }
        let stream = std::env::var("REOMP_STREAM")
            .map(|s| matches!(s.to_ascii_lowercase().as_str(), "1" | "true" | "on"))
            .unwrap_or(false);
        match mode.to_ascii_lowercase().as_str() {
            "record" if stream => {
                Session::record_streaming_with(scheme, nthreads, cfg, &Session::env_store())
            }
            "record" => Ok(Session::record_with(scheme, nthreads, cfg)),
            "replay" => {
                let (bundle, _) = Session::env_store().load()?;
                Session::replay_with(bundle, cfg)
            }
            _ => Ok(Session::passthrough(nthreads)),
        }
    }

    /// The directory store selected by `REOMP_DIR` (default:
    /// `<tmp>/reomp-trace`, which lives on tmpfs on Linux like the paper's
    /// record-file placement).
    #[must_use]
    pub fn env_store() -> DirStore {
        let dir = std::env::var_os("REOMP_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("reomp-trace"));
        DirStore::new(dir)
    }

    fn build(
        mode: Mode,
        scheme: Scheme,
        nthreads: u32,
        cfg: SessionConfig,
        bundle: Option<TraceBundle>,
        sink: Option<Box<dyn RecordSink>>,
    ) -> Session {
        assert!(nthreads > 0, "a session needs at least one thread");
        let rec = (mode == Mode::Record).then(|| RecordState {
            gate: RawLocked::new(RecCore {
                clock: 0,
                tracker: (scheme == Scheme::De)
                    .then(|| EpochTracker::new(cfg.epoch_policy, cfg.ring_capacity)),
                st: (scheme == Scheme::St).then(|| StBuilder {
                    tids: Vec::new(),
                    sites: Vec::new(),
                    kinds: Vec::new(),
                    validate: cfg.validate_sites,
                }),
            }),
            bufs: (0..nthreads).map(|_| Mutex::new(Vec::new())).collect(),
            stream: sink.map(|s| StreamState::new(s, scheme)),
        });
        let rep = bundle.map(|bundle| ReplayState {
            cursors: (0..nthreads).map(|_| AtomicUsize::new(0)).collect(),
            turnstile: Turnstile::new(),
            baton: BatonLock::new(),
            st_pos: AtomicUsize::new(0),
            next_tid: AtomicU32::new(TID_NONE),
            next_site: AtomicU64::new(0),
            next_kind: AtomicU32::new(0),
            bundle,
        });
        Session {
            cfg,
            mode,
            scheme,
            nthreads,
            stats: Stats::new(),
            rec,
            rep,
            active: AtomicU32::new(0),
            finished: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }

    /// Session mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Recording scheme.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of threads the session was created for.
    #[must_use]
    pub fn nthreads(&self) -> u32 {
        self.nthreads
    }

    /// Live statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Register the calling thread as `tid` (0-based, `< nthreads`).
    ///
    /// The returned context is the handle through which the thread passes
    /// gates. A `tid` may be re-registered in a later parallel region after
    /// the previous context was dropped; cursors and clocks persist across
    /// regions.
    #[must_use]
    pub fn register_thread(self: &Arc<Self>, tid: u32) -> ThreadCtx {
        assert!(
            tid < self.nthreads,
            "tid {tid} >= nthreads {}",
            self.nthreads
        );
        assert!(
            !self.finished.load(Ordering::SeqCst),
            "session already finished"
        );
        self.active.fetch_add(1, Ordering::SeqCst);
        ThreadCtx {
            session: Arc::clone(self),
            tid,
        }
    }

    /// Record the first failure and release all replay waiters.
    pub(crate) fn fail(&self, err: &ReplayError) {
        let mut slot = self.failure.lock();
        if slot.is_none() {
            *slot = Some(err.to_string());
        }
        if let Some(rep) = &self.rep {
            rep.turnstile.abort();
        }
    }

    /// The first replay failure observed, if any.
    #[must_use]
    pub fn failure(&self) -> Option<String> {
        self.failure.lock().clone()
    }

    /// Finish the run: flush pending DE stores, assemble the trace bundle
    /// (record mode), and produce the final report. All [`ThreadCtx`]s must
    /// have been dropped.
    pub fn finish(&self) -> Result<SessionReport, FinishError> {
        let active = self.active.load(Ordering::SeqCst);
        if active != 0 {
            return Err(FinishError::ThreadsActive(active));
        }
        if self.finished.swap(true, Ordering::SeqCst) {
            return Err(FinishError::AlreadyFinished);
        }

        let mut bundle = None;
        let mut io = None;
        let mut fully_consumed = None;
        match self.mode {
            Mode::Passthrough => {}
            Mode::Record => {
                let rec = self.rec.as_ref().expect("record state");
                // Flush the DE tracker's pending stores (trailing stores
                // get their own clock — always safe).
                rec.gate.with(|core| {
                    if let Some(tracker) = &mut core.tracker {
                        for f in tracker.flush() {
                            rec.bufs[f.thread as usize].lock().push(RecEntry {
                                clock: f.clock,
                                value: f.epoch,
                                site: f.site.raw(),
                                kind: f.kind.code(),
                            });
                            self.stats.bump_record_written();
                        }
                    }
                });
                if rec.stream.is_some() {
                    io = Some(self.commit_streaming().map_err(FinishError::Stream)?);
                } else {
                    bundle = Some(self.assemble_bundle());
                }
            }
            Mode::Replay => {
                let rep = self.rep.as_ref().expect("replay state");
                let consumed = match &rep.bundle.st {
                    Some(st) => rep.st_pos.load(Ordering::SeqCst) == st.len(),
                    None => rep
                        .cursors
                        .iter()
                        .zip(&rep.bundle.threads)
                        .all(|(c, t)| c.load(Ordering::SeqCst) >= t.len()),
                };
                fully_consumed = Some(consumed);
            }
        }

        Ok(SessionReport {
            scheme: self.scheme,
            mode: self.mode,
            stats: self.stats.snapshot(),
            bundle,
            io,
            fully_consumed,
            failure: self.failure.lock().clone(),
        })
    }

    /// Flush all residual records of a streaming record run and commit the
    /// sink (manifest written last by the store).
    fn commit_streaming(&self) -> Result<IoReport, TraceError> {
        let rec = self.rec.as_ref().expect("record state");
        let stream = rec.stream.as_ref().expect("streaming state");
        // Surface a mid-run flush failure instead of committing a trace
        // with holes in it.
        if let Some(e) = stream.error.lock().take() {
            return Err(e);
        }
        // ST: steal whatever the shared builder still holds.
        if self.scheme == Scheme::St {
            let stolen = rec.gate.with(|core| {
                core.st.as_mut().map(|b| {
                    (
                        std::mem::take(&mut b.tids),
                        std::mem::take(&mut b.sites),
                        std::mem::take(&mut b.kinds),
                    )
                })
            });
            if let Some((tids, sites, kinds)) = stolen {
                if !tids.is_empty() {
                    self.append_st_chunk(&tids, &sites, &kinds)?;
                }
            }
        }
        // Per-thread residues. Recording is over, so everything is stable;
        // sorting restores program (clock) order after DE deferrals.
        for tid in 0..self.nthreads {
            let mut entries = std::mem::take(&mut *rec.bufs[tid as usize].lock());
            if entries.is_empty() {
                continue;
            }
            entries.sort_unstable_by_key(|e| e.clock);
            self.append_thread_chunk(tid, &entries)?;
        }
        let sink = stream
            .sink
            .write()
            .take()
            .ok_or_else(|| TraceError::Corrupt("streaming sink already committed".into()))?;
        sink.commit(self.stats.snapshot().records_written)
    }

    /// Encode `entries` as one chunk and append it to thread `tid`'s
    /// stream, updating the flush counters.
    fn append_thread_chunk(&self, tid: u32, entries: &[RecEntry]) -> Result<(), TraceError> {
        let rec = self.rec.as_ref().expect("record state");
        let stream = rec.stream.as_ref().expect("streaming state");
        let validate = self.cfg.validate_sites;
        let values: Vec<u64> = entries.iter().map(|e| e.value).collect();
        let sites: Option<Vec<u64>> = validate.then(|| entries.iter().map(|e| e.site).collect());
        let kinds: Option<Vec<u8>> = validate.then(|| entries.iter().map(|e| e.kind).collect());
        let guard = stream.sink.read();
        let sink = guard
            .as_ref()
            .ok_or_else(|| TraceError::Corrupt("streaming sink already committed".into()))?;
        let bytes = sink.append_thread_chunk(tid, &values, sites.as_deref(), kinds.as_deref())?;
        self.stats.add_io_written(bytes);
        self.stats.bump_chunk_flush();
        Ok(())
    }

    /// Append one chunk of the shared ST stream.
    fn append_st_chunk(&self, tids: &[u32], sites: &[u64], kinds: &[u8]) -> Result<(), TraceError> {
        let rec = self.rec.as_ref().expect("record state");
        let stream = rec.stream.as_ref().expect("streaming state");
        let validate = self.cfg.validate_sites;
        let guard = stream.sink.read();
        let sink = guard
            .as_ref()
            .ok_or_else(|| TraceError::Corrupt("streaming sink already committed".into()))?;
        let bytes =
            sink.append_st_chunk(tids, validate.then_some(sites), validate.then_some(kinds))?;
        self.stats.add_io_written(bytes);
        self.stats.bump_chunk_flush();
        Ok(())
    }

    /// Hot-path flush check: if thread `tid`'s buffer reached the flush
    /// threshold, persist its stable prefix (clocks below the watermark)
    /// as one chunk. Failures are latched and surfaced at `finish`.
    pub(crate) fn maybe_flush_thread(&self, tid: u32) {
        let Some(rec) = self.rec.as_ref() else { return };
        let Some(stream) = rec.stream.as_ref() else {
            return;
        };
        if stream.failed.load(Ordering::Relaxed) {
            return;
        }
        let threshold = self.cfg.flush_records.max(1);
        let floor = stream.floor.load(Ordering::Acquire);
        let mut buf = rec.bufs[tid as usize].lock();
        if buf.len() < threshold {
            return;
        }
        // Cheap pre-check before sorting: while a DE deferred store pins
        // the watermark, an over-threshold buffer would otherwise be
        // re-sorted on every gate just to flush nothing.
        if !buf.iter().any(|e| e.clock < floor) {
            return;
        }
        buf.sort_unstable_by_key(|e| e.clock);
        let cut = buf.partition_point(|e| e.clock < floor);
        let stable: Vec<RecEntry> = buf.drain(..cut).collect();
        // Append while still holding the buffer lock: in DE, *any* thread
        // may flush this buffer (deferred records are routed across
        // threads), and two drained batches must reach the file in the
        // order they were drained.
        let result = self.append_thread_chunk(tid, &stable);
        drop(buf);
        if let Err(e) = result {
            stream.record_failure(e);
        }
    }

    /// Hot-path ST flush: append a stolen prefix of the shared stream.
    pub(crate) fn flush_st_records(&self, tids: &[u32], sites: &[u64], kinds: &[u8]) {
        let Some(rec) = self.rec.as_ref() else { return };
        let Some(stream) = rec.stream.as_ref() else {
            return;
        };
        if let Err(e) = self.append_st_chunk(tids, sites, kinds) {
            stream.record_failure(e);
        }
    }

    fn assemble_bundle(&self) -> TraceBundle {
        let rec = self.rec.as_ref().expect("record state");
        let validate = self.cfg.validate_sites;

        let st = rec.gate.with(|core| {
            core.st.take().map(|b| StTrace {
                tids: b.tids,
                sites: validate.then_some(b.sites),
                kinds: validate.then_some(b.kinds),
            })
        });

        let threads: Vec<ThreadTrace> = rec
            .bufs
            .iter()
            .map(|buf| {
                let mut entries = std::mem::take(&mut *buf.lock());
                // DE deferral may append a record finalized by a later
                // access after the owner's own later records; restore the
                // thread's program order by clock.
                entries.sort_unstable_by_key(|e| e.clock);
                ThreadTrace {
                    values: entries.iter().map(|e| e.value).collect(),
                    sites: validate.then(|| entries.iter().map(|e| e.site).collect()),
                    kinds: validate.then(|| entries.iter().map(|e| e.kind).collect()),
                }
            })
            .collect();

        let bundle = TraceBundle {
            scheme: self.scheme,
            nthreads: self.nthreads,
            threads,
            st,
        };
        debug_assert!(bundle.validate().is_ok(), "assembled bundle is consistent");
        bundle
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("mode", &self.mode)
            .field("scheme", &self.scheme)
            .field("nthreads", &self.nthreads)
            .finish_non_exhaustive()
    }
}

/// Per-thread gate handle (the instrumented thread's view of `libreomp`).
#[derive(Debug)]
pub struct ThreadCtx {
    session: Arc<Session>,
    tid: u32,
}

impl ThreadCtx {
    /// This thread's 0-based ID.
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// The owning session.
    #[must_use]
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Execute `f` as a shared-memory access region bracketed by
    /// `gate_in`/`gate_out` (Fig. 1). Panics on replay failure; see
    /// [`ThreadCtx::try_gate`] for the fallible form. The site hash doubles
    /// as the memory address for DE run grouping; use
    /// [`ThreadCtx::gate_at`] when one instruction touches many locations.
    #[inline]
    pub fn gate<R>(&self, site: SiteId, kind: AccessKind, f: impl FnOnce() -> R) -> R {
        self.gate_at(site, site.raw(), kind, f)
    }

    /// [`ThreadCtx::gate`] with an explicit memory address: Condition 1
    /// (§IV-D) groups runs per *address*, while the *site* identifies the
    /// instrumented instruction for replay validation.
    #[inline]
    pub fn gate_at<R>(
        &self,
        site: SiteId,
        addr: u64,
        kind: AccessKind,
        f: impl FnOnce() -> R,
    ) -> R {
        match self.try_gate_at(site, addr, kind, f) {
            Ok(r) => r,
            Err(e) => panic!("reomp gate failed: {e}"),
        }
    }

    /// Fallible form of [`ThreadCtx::gate`].
    pub fn try_gate<R>(
        &self,
        site: SiteId,
        kind: AccessKind,
        f: impl FnOnce() -> R,
    ) -> Result<R, ReplayError> {
        self.try_gate_at(site, site.raw(), kind, f)
    }

    /// Fallible gate with an explicit address: returns the replay error
    /// instead of panicking. The session is marked failed and all other
    /// waiters are released either way.
    pub fn try_gate_at<R>(
        &self,
        site: SiteId,
        addr: u64,
        kind: AccessKind,
        f: impl FnOnce() -> R,
    ) -> Result<R, ReplayError> {
        let session = &*self.session;
        // Instrumentation-plan bypass: ungated sites run untouched.
        if let Some(plan) = &session.cfg.gate_plan {
            if !plan.contains(&site) {
                return Ok(f());
            }
        }
        session.stats.bump_gate(kind);
        match session.mode {
            Mode::Passthrough => Ok(f()),
            Mode::Record => {
                gate::record_in(session);
                let out = f();
                gate::record_out(session, self.tid, site, addr, kind);
                Ok(out)
            }
            Mode::Replay => {
                if let Err(e) = gate::replay_in(session, self.tid, site, kind) {
                    session.fail(&e);
                    return Err(e);
                }
                let out = f();
                gate::replay_out(session, self.tid);
                Ok(out)
            }
        }
    }
}

impl Drop for ThreadCtx {
    fn drop(&mut self) {
        self.session.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Outcome of a finished session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Scheme of the run.
    pub scheme: Scheme,
    /// Mode of the run.
    pub mode: Mode,
    /// Final statistics.
    pub stats: StatsSnapshot,
    /// The recorded trace (record mode only; `None` for streaming record
    /// runs, whose trace lives in the store).
    pub bundle: Option<TraceBundle>,
    /// I/O totals of the committed trace (streaming record runs only).
    pub io: Option<IoReport>,
    /// Replay mode: whether every recorded access was consumed.
    pub fully_consumed: Option<bool>,
    /// First replay failure, if any.
    pub failure: Option<String>,
}

impl SessionReport {
    /// Epoch-size histogram of the recorded trace (Fig. 20 analysis).
    #[must_use]
    pub fn epoch_histogram(&self) -> Option<EpochHistogram> {
        self.bundle.as_ref().map(EpochHistogram::from_bundle)
    }

    /// Persist the recorded bundle to a store.
    pub fn save_to(&self, store: &dyn TraceStore) -> Result<IoReport, TraceError> {
        let bundle = self
            .bundle
            .as_ref()
            .ok_or_else(|| TraceError::Corrupt("report has no bundle (not a record run)".into()))?;
        store.save(bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_roundtrip_and_parse() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::from_code(s.code()), Some(s));
            assert_eq!(Scheme::parse(s.name()), Some(s));
        }
        assert_eq!(Scheme::parse("DE"), Some(Scheme::De));
        assert_eq!(Scheme::parse("nope"), None);
        assert_eq!(Scheme::from_code(77), None);
    }

    #[test]
    fn passthrough_gates_run_the_closure() {
        let s = Session::passthrough(1);
        let ctx = s.register_thread(0);
        let v = ctx.gate(SiteId(1), AccessKind::Load, || 41) + 1;
        assert_eq!(v, 42);
        drop(ctx);
        let report = s.finish().unwrap();
        assert_eq!(report.stats.gates, 1);
        assert!(report.bundle.is_none());
    }

    #[test]
    fn finish_requires_contexts_dropped() {
        let s = Session::record(Scheme::Dc, 1);
        let ctx = s.register_thread(0);
        assert!(matches!(s.finish(), Err(FinishError::ThreadsActive(1))));
        drop(ctx);
        assert!(s.finish().is_ok());
        assert!(matches!(s.finish(), Err(FinishError::AlreadyFinished)));
    }

    #[test]
    #[should_panic(expected = "tid 3 >= nthreads 2")]
    fn register_rejects_out_of_range_tid() {
        let s = Session::record(Scheme::Dc, 2);
        let _ = s.register_thread(3);
    }

    #[test]
    fn gate_plan_bypasses_unplanned_sites() {
        let gated = SiteId::from_label("gated");
        let free = SiteId::from_label("free");
        let cfg = SessionConfig {
            gate_plan: Some([gated].into_iter().collect()),
            ..Default::default()
        };
        let s = Session::record_with(Scheme::Dc, 1, cfg);
        let ctx = s.register_thread(0);
        ctx.gate(gated, AccessKind::Load, || ());
        ctx.gate(free, AccessKind::Load, || ());
        drop(ctx);
        let report = s.finish().unwrap();
        assert_eq!(report.stats.gates, 1, "only the planned site is gated");
        assert_eq!(report.bundle.unwrap().total_records(), 1);
    }

    #[test]
    fn from_env_defaults_to_passthrough() {
        // REOMP_MODE is not set in the test environment.
        let s = Session::from_env(2).unwrap();
        assert_eq!(s.mode(), Mode::Passthrough);
    }

    #[test]
    fn streaming_record_matches_one_shot_bundle() {
        use crate::store::{MemStore, TraceStore};
        // Drive both thread contexts from this test thread so the gate
        // order — and therefore the recorded trace — is deterministic.
        let run = |session: &Arc<Session>| {
            let c0 = session.register_thread(0);
            let c1 = session.register_thread(1);
            for i in 0..10u64 {
                let site = SiteId(100 + (i % 3));
                c0.gate(site, AccessKind::Load, || ());
                c1.gate(site, AccessKind::Store, || ());
                c1.gate(site, AccessKind::Load, || ());
            }
        };
        for scheme in Scheme::ALL {
            let s = Session::record(scheme, 2);
            run(&s);
            let bundle = s.finish().unwrap().bundle.unwrap();

            let store = MemStore::new();
            let cfg = SessionConfig {
                flush_records: 4,
                ..Default::default()
            };
            let s = Session::record_streaming_with(scheme, 2, cfg, &store).unwrap();
            run(&s);
            let report = s.finish().unwrap();
            assert!(report.bundle.is_none(), "streaming keeps no bundle");
            let io = report.io.expect("streaming report carries io totals");
            assert!(io.chunks > 0, "{scheme:?}");
            assert!(report.stats.chunk_flushes > 0, "{scheme:?}");
            let (loaded, _) = store.load().unwrap();
            assert_eq!(loaded, bundle, "{scheme:?}: streamed ≡ one-shot");
        }
    }

    #[test]
    fn streaming_record_without_validation() {
        use crate::store::{MemStore, TraceStore};
        let store = MemStore::new();
        let cfg = SessionConfig {
            validate_sites: false,
            flush_records: 2,
            ..Default::default()
        };
        let s = Session::record_streaming_with(Scheme::Dc, 1, cfg, &store).unwrap();
        let ctx = s.register_thread(0);
        for _ in 0..7 {
            ctx.gate(SiteId(9), AccessKind::Load, || ());
        }
        drop(ctx);
        s.finish().unwrap();
        let (loaded, _) = store.load().unwrap();
        assert_eq!(loaded.threads[0].values.len(), 7);
        assert_eq!(loaded.threads[0].sites, None);
    }

    #[test]
    fn report_save_requires_bundle() {
        let s = Session::passthrough(1);
        let report = s.finish().unwrap();
        let store = crate::store::MemStore::new();
        assert!(report.save_to(&store).is_err());
    }
}
