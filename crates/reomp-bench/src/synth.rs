//! The synthetic benchmarks of Fig. 8 (paper §VI-A, Table VIII).
//!
//! The template is
//!
//! ```c
//! #pragma omp parallel for private(i) <X>
//! for (i = 0; i < N; i++) { <Y> sum += 1; }
//! ```
//!
//! instantiated four ways: `omp_reduction` (`<X> = reduction(+:sum)`),
//! `omp_critical`, `omp_atomic`, and `data_race` (bare racy update). The
//! racy `sum += 1` is modelled as it compiles — a gated load followed by a
//! gated store.

use ompr::{Critical, RacyCell, Reduction, Runtime};
use reomp_core::{Session, SiteId};
use std::sync::Arc;

/// `omp_reduction`: thread-local partials, one gated combine per thread.
/// Returns the final sum.
pub fn omp_reduction(session: &Arc<Session>, n: usize) -> f64 {
    let rt = Runtime::new(Arc::clone(session));
    let red = Reduction::sum_f64("fig8:reduction:sum");
    rt.parallel(|w| {
        let mut local = 0.0f64;
        w.for_static(0..n, |_i| local += 1.0);
        w.reduce(&red, local);
    });
    red.load()
}

/// `omp_critical`: every increment inside a named critical section.
pub fn omp_critical(session: &Arc<Session>, n: usize) -> f64 {
    let rt = Runtime::new(Arc::clone(session));
    let cs = Critical::new("fig8:critical");
    let sum = RacyCell::new("fig8:critical:sum", 0.0f64);
    rt.parallel(|w| {
        w.for_static(0..n, |_i| {
            w.critical(&cs, || sum.raw_store(sum.raw_load() + 1.0));
        });
    });
    sum.raw_load()
}

/// `omp_atomic`: every increment is a gated atomic RMW.
pub fn omp_atomic(session: &Arc<Session>, n: usize) -> f64 {
    let rt = Runtime::new(Arc::clone(session));
    let sum = ompr::AtomicF64::new(0.0);
    let site = SiteId::from_label("fig8:atomic:sum");
    rt.parallel(|w| {
        w.for_static(0..n, |_i| {
            w.atomic_add_f64(site, &sum, 1.0);
        });
    });
    sum.load(std::sync::atomic::Ordering::Relaxed)
}

/// `data_race`: bare `sum += 1` — a gated load plus a gated store, updates
/// may be lost (that is the point: the interleaving is what gets recorded).
pub fn data_race(session: &Arc<Session>, n: usize) -> f64 {
    let rt = Runtime::new(Arc::clone(session));
    let sum = RacyCell::new("fig8:race:sum", 0.0f64);
    rt.parallel(|w| {
        w.for_static(0..n, |_i| {
            w.racy_update(&sum, |v| v + 1.0);
        });
    });
    sum.raw_load()
}

/// A synthetic benchmark entry point.
pub type SynthFn = fn(&Arc<Session>, usize) -> f64;

/// The four benchmarks with their paper names.
pub const SYNTH_BENCHES: [(&str, SynthFn); 4] = [
    ("omp_reduction", omp_reduction),
    ("omp_critical", omp_critical),
    ("omp_atomic", omp_atomic),
    ("data_race", data_race),
];

/// Default per-figure iteration count at scale 1.
#[must_use]
pub fn default_iters(bench: &str) -> usize {
    // The gated constructs cost ~µs each under record/replay; keep the
    // loop sizes proportionate so each sweep cell stays sub-second.
    match bench {
        "omp_reduction" => 400_000, // gates: one per thread
        "omp_critical" => 8_000,
        "omp_atomic" => 8_000,
        "data_race" => 6_000,
        _ => 4_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reomp_core::Scheme;

    #[test]
    fn reduction_sums_exactly() {
        let session = Session::passthrough(4);
        assert_eq!(omp_reduction(&session, 1000), 1000.0);
        session.finish().unwrap();
    }

    #[test]
    fn critical_and_atomic_lose_nothing() {
        let session = Session::passthrough(4);
        assert_eq!(omp_critical(&session, 400), 400.0);
        session.finish().unwrap();
        let session = Session::passthrough(4);
        assert_eq!(omp_atomic(&session, 400), 400.0);
        session.finish().unwrap();
    }

    #[test]
    fn data_race_may_lose_but_replays_exactly() {
        let session = Session::record(Scheme::De, 4);
        let recorded = data_race(&session, 200);
        assert!(recorded <= 800.0);
        let bundle = session.finish().unwrap().bundle.unwrap();
        let session = Session::replay(bundle).unwrap();
        let replayed = data_race(&session, 200);
        assert_eq!(session.finish().unwrap().failure, None);
        assert_eq!(replayed, recorded);
    }

    #[test]
    fn all_benches_run_under_every_scheme() {
        for (name, bench) in SYNTH_BENCHES {
            for scheme in Scheme::ALL {
                let session = Session::record(scheme, 2);
                let v = bench(&session, 64);
                assert!(v > 0.0, "{name} under {scheme:?}");
                let bundle = session.finish().unwrap().bundle.unwrap();
                let session = Session::replay(bundle).unwrap();
                let r = bench(&session, 64);
                let report = session.finish().unwrap();
                assert_eq!(report.failure, None, "{name} under {scheme:?}");
                assert_eq!(r, v, "{name} under {scheme:?}");
            }
        }
    }
}
