//! Shared harness utilities for the figure/table benchmarks.
//!
//! Every table and figure of the paper's evaluation (§VI) has a dedicated
//! `harness = false` bench target in `benches/`; `cargo bench` regenerates
//! them all. Absolute numbers differ from the paper's 2×56-core Xeon Max
//! node — the *shape* (who wins, by what factor, where crossovers fall) is
//! the reproduction target; see `EXPERIMENTS.md`.
//!
//! Environment knobs:
//! * `REOMP_BENCH_THREADS` — comma-separated thread counts (default
//!   `1,2,4,…` capped at 2× the host cores — replay waits spin, and heavy
//!   oversubscription measures the scheduler, not the schemes);
//! * `REOMP_BENCH_SCALE` — workload scale multiplier (default 1; the
//!   paper-sized runs need a much bigger machine);
//! * `REOMP_BENCH_REPS` — timing repetitions per cell (default 3; the
//!   minimum is reported).

#![warn(missing_docs)]

use reomp_core::{Scheme, Session, SessionConfig, TraceBundle};
use std::time::{Duration, Instant};

pub mod synth;

/// Thread counts to sweep.
#[must_use]
pub fn bench_threads() -> Vec<u32> {
    if let Ok(list) = std::env::var("REOMP_BENCH_THREADS") {
        let parsed: Vec<u32> = list
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&t| t > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(2);
    // Replay waits spin; oversubscribing cores heavily turns waiting into
    // scheduler thrash that the paper's 112-core node never sees. Cap the
    // default sweep at 2x the cores.
    [1u32, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&t| t <= (2 * cores).max(4))
        .collect()
}

/// Workload scale multiplier.
#[must_use]
pub fn bench_scale() -> usize {
    std::env::var("REOMP_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// Timing repetitions (minimum is reported).
#[must_use]
pub fn bench_reps() -> u32 {
    std::env::var("REOMP_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(3)
}

/// Time one closure, returning the minimum over [`bench_reps`] runs.
pub fn time_min(mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..bench_reps() {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// The seven columns of the paper's per-figure sweeps.
pub const MODE_COLUMNS: [&str; 7] = [
    "w/o ReOMP",
    "ST record",
    "ST replay",
    "DC record",
    "DC replay",
    "DE record",
    "DE replay",
];

/// Run a workload under one session mode and time it.
///
/// `work` receives the session; it must register/drop its thread contexts
/// itself (the `ompr::Runtime` does). Returns the wall time and, for record
/// modes, the bundle for the paired replay.
pub fn run_mode(
    scheme_mode: Option<(Scheme, bool)>, // None = passthrough; bool = replay
    nthreads: u32,
    replay_bundle: Option<&TraceBundle>,
    work: impl Fn(&std::sync::Arc<Session>),
) -> (Duration, Option<TraceBundle>) {
    match scheme_mode {
        None => {
            let mut best = Duration::MAX;
            for _ in 0..bench_reps() {
                let session = Session::passthrough(nthreads);
                let t0 = Instant::now();
                work(&session);
                best = best.min(t0.elapsed());
                let _ = session.finish();
            }
            (best, None)
        }
        Some((scheme, false)) => {
            // Re-record each repetition (a recording consumes its session);
            // keep the last bundle for the paired replay.
            let mut best = Duration::MAX;
            let mut bundle = None;
            for _ in 0..bench_reps() {
                let session = Session::record(scheme, nthreads);
                let t0 = Instant::now();
                work(&session);
                best = best.min(t0.elapsed());
                let report = session.finish().expect("record finish");
                bundle = report.bundle;
            }
            (best, bundle)
        }
        Some((_scheme, true)) => {
            let bundle = replay_bundle.expect("replay needs a bundle");
            let mut best = Duration::MAX;
            for _ in 0..bench_reps() {
                let session = Session::replay(bundle.clone()).expect("valid bundle");
                let t0 = Instant::now();
                work(&session);
                best = best.min(t0.elapsed());
                let report = session.finish().expect("replay finish");
                assert_eq!(report.failure, None, "replay diverged during benching");
            }
            (best, None)
        }
    }
}

/// Sweep all seven paper modes for one workload at one thread count.
/// Returns times in `MODE_COLUMNS` order.
pub fn sweep_modes(nthreads: u32, work: impl Fn(&std::sync::Arc<Session>)) -> [Duration; 7] {
    let mut out = [Duration::ZERO; 7];
    let (t, _) = run_mode(None, nthreads, None, &work);
    out[0] = t;
    for (i, scheme) in Scheme::ALL.into_iter().enumerate() {
        let (t_rec, bundle) = run_mode(Some((scheme, false)), nthreads, None, &work);
        out[1 + 2 * i] = t_rec;
        let (t_rep, _) = run_mode(Some((scheme, true)), nthreads, bundle.as_ref(), &work);
        out[2 + 2 * i] = t_rep;
    }
    out
}

/// Print the standard figure header.
pub fn print_figure_header(figure: &str, description: &str) {
    println!("\n=== {figure}: {description} ===");
    print!("{:>8}", "threads");
    for col in MODE_COLUMNS {
        print!(" {col:>12}");
    }
    println!();
}

/// Print one sweep row (seconds).
pub fn print_figure_row(nthreads: u32, times: &[Duration; 7]) {
    print!("{nthreads:>8}");
    for t in times {
        print!(" {:>12.6}", t.as_secs_f64());
    }
    println!();
}

/// Format a relative-time table like Table IX (normalized to column 0).
pub fn print_relative_row(label: &str, times: &[Duration; 7]) {
    let base = times[0].as_secs_f64().max(1e-12);
    print!("{label:>14}");
    for t in &times[1..] {
        print!(" {:>10.2}", t.as_secs_f64() / base);
    }
    println!();
}

/// Default session config with an explicit epoch policy (ablations).
#[must_use]
pub fn config_with_policy(policy: reomp_core::EpochPolicy) -> SessionConfig {
    SessionConfig {
        epoch_policy: policy,
        ..SessionConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_list_is_nonempty_and_positive() {
        let ts = bench_threads();
        assert!(!ts.is_empty());
        assert!(ts.iter().all(|&t| t > 0));
    }

    #[test]
    fn sweep_runs_all_modes_for_trivial_work() {
        let site = reomp_core::SiteId::from_label("bench:test");
        let times = sweep_modes(2, |session| {
            std::thread::scope(|s| {
                for tid in 0..2 {
                    let ctx = session.register_thread(tid);
                    s.spawn(move || {
                        for _ in 0..10 {
                            ctx.gate(site, reomp_core::AccessKind::Load, || {});
                        }
                    });
                }
            });
        });
        assert!(times.iter().all(|t| *t > Duration::ZERO));
    }
}
