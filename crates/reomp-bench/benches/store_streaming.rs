//! Trace-store throughput: one-shot save vs. the streaming chunked store
//! on long synthetic traces (§II-B: record-and-replay scalability is
//! bounded by file-system usage, which is why the record-file layout and
//! write path matter).
//!
//! Sweeps the records-per-chunk knob and reports save and load wall time
//! plus the on-disk volume, for both the parallel per-thread I/O mode and
//! the serial ablation. Also times a live streaming record run against the
//! buffer-everything baseline.
//!
//! `REOMP_BENCH_SCALE` multiplies the trace length (default ~1M records).

use reomp_bench::{bench_scale, time_min};
use reomp_core::store::StreamingTraceStore;
use reomp_core::trace::{ThreadTrace, TraceBundle};
use reomp_core::{AccessKind, DirStore, Scheme, Session, SessionConfig, SiteId, TraceStore};
use std::path::PathBuf;

/// A long synthetic DC bundle: `nthreads` round-robin clock streams with
/// validation columns, mimicking a heavily gated run.
fn synthetic_bundle(nthreads: u32, records_per_thread: usize) -> TraceBundle {
    let threads = (0..nthreads)
        .map(|tid| {
            let values: Vec<u64> = (0..records_per_thread)
                .map(|i| i as u64 * u64::from(nthreads) + u64::from(tid))
                .collect();
            ThreadTrace {
                sites: Some(values.iter().map(|v| 0x1000 + v % 7).collect()),
                kinds: Some(values.iter().map(|v| (v % 2) as u8).collect()),
                values,
            }
        })
        .collect();
    TraceBundle {
        plan: None,
        edges: vec![],
        checkpoint: None,
        scheme: Scheme::Dc,
        nthreads,
        domains: 1,
        threads,
        st: vec![],
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("reomp-bench-store-{tag}-{}", std::process::id()))
}

fn main() {
    let nthreads = 8u32;
    let per_thread = 125_000 * bench_scale();
    let bundle = synthetic_bundle(nthreads, per_thread);
    let total = bundle.total_records();
    println!(
        "\n=== Store streaming: {total} records across {nthreads} threads (one-shot vs chunked) ==="
    );
    println!(
        "{:>10} {:>20} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "io mode", "layout", "save (s)", "load (s)", "bytes", "chunks", "B/event"
    );

    for parallel in [true, false] {
        let io_mode = if parallel { "parallel" } else { "serial" };
        let dir = bench_dir(io_mode);
        let store = DirStore::new(&dir).with_parallel_io(parallel);

        let t_save = time_min(|| {
            store.save(&bundle).expect("one-shot save");
        });
        let report = store.save(&bundle).expect("one-shot save");
        let t_load = time_min(|| {
            let (b, _) = store.load().expect("load");
            assert_eq!(b.total_records(), total);
        });
        println!(
            "{io_mode:>10} {:>20} {:>12.6} {:>12.6} {:>12} {:>10} {:>9.3}",
            "one-shot",
            t_save.as_secs_f64(),
            t_load.as_secs_f64(),
            report.bytes,
            report.chunks,
            report.bytes as f64 / total as f64
        );

        for records_per_chunk in [4_096usize, 65_536, 1_048_576] {
            // Plain chunked vs per-chunk RLE compression (REOMP_COMPRESS):
            // same loaded bundle, different bytes/event.
            for compress in [false, true] {
                let t_save = time_min(|| {
                    store
                        .save_chunked_opt(&bundle, records_per_chunk, compress)
                        .expect("chunked save");
                });
                let report = store
                    .save_chunked_opt(&bundle, records_per_chunk, compress)
                    .expect("chunked save");
                let t_load = time_min(|| {
                    let (b, _) = store.load().expect("load");
                    assert_eq!(b.total_records(), total);
                });
                let layout = if compress {
                    format!("chunk {records_per_chunk} +rle")
                } else {
                    format!("chunk {records_per_chunk}")
                };
                println!(
                    "{io_mode:>10} {layout:>20} {:>12.6} {:>12.6} {:>12} {:>10} {:>9.3}",
                    t_save.as_secs_f64(),
                    t_load.as_secs_f64(),
                    report.bytes,
                    report.chunks,
                    report.bytes as f64 / total as f64
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Live comparison: buffer-everything record + save vs streaming record.
    let gates_per_thread = 20_000 * bench_scale();
    let live_threads = 4u32;
    let site = SiteId::from_label("bench:store_streaming");
    let workload = |session: &std::sync::Arc<Session>| {
        std::thread::scope(|s| {
            for tid in 0..live_threads {
                let ctx = session.register_thread(tid);
                s.spawn(move || {
                    for i in 0..gates_per_thread {
                        let kind = if i % 4 == 0 {
                            AccessKind::Store
                        } else {
                            AccessKind::Load
                        };
                        ctx.gate(site, kind, || {});
                    }
                });
            }
        });
    };
    println!(
        "\n--- live DE record of {} gates: buffered one-shot vs streaming ---",
        u64::from(live_threads) * gates_per_thread as u64
    );
    let dir = bench_dir("live");
    let store = DirStore::new(&dir);

    let t_buffered = time_min(|| {
        let session = Session::record(Scheme::De, live_threads);
        workload(&session);
        let report = session.finish().expect("finish");
        report.save_to(&store).expect("save");
    });
    println!(
        "  buffered record+save: {:>10.6} s",
        t_buffered.as_secs_f64()
    );

    let t_streaming = time_min(|| {
        let cfg = SessionConfig::default();
        let session = Session::record_streaming_with(Scheme::De, live_threads, cfg, &store)
            .expect("begin streaming");
        workload(&session);
        let report = session.finish().expect("finish");
        assert!(report.io.is_some());
    });
    println!(
        "  streaming record:     {:>10.6} s",
        t_streaming.as_secs_f64()
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Flight recorder: bounded in-situ retention on the same live run —
    // no file I/O while recording, a window dump only on the trigger.
    // "retained" is the peak chunks per stream (≤ window by invariant),
    // "dump bytes" the materialized window, "dump (s)" its latency.
    println!("\n--- flight recorder: window sweep on the same live DE run ---");
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "window", "record (s)", "dump (s)", "dump bytes", "retained", "evicted"
    );
    for window in [2u32, 8, 32] {
        let dir = bench_dir(&format!("flight-{window}"));
        let cfg = SessionConfig {
            flight: Some(window),
            flush_records: 1024,
            ..SessionConfig::default()
        };
        let t_record = time_min(|| {
            let session =
                Session::record_flight(Scheme::De, live_threads, cfg.clone(), DirStore::new(&dir))
                    .expect("begin flight");
            workload(&session);
            session.finish().expect("finish");
        });
        let session =
            Session::record_flight(Scheme::De, live_threads, cfg.clone(), DirStore::new(&dir))
                .expect("begin flight");
        workload(&session);
        let t_dump = time_min(|| {
            session
                .dump(reomp_core::DumpTrigger::Manual)
                .expect("dump window");
        });
        let dump_io = session.dumps().last().expect("at least one dump").1;
        let report = session.finish().expect("finish");
        let retention = report.io.expect("flight report");
        println!(
            "{window:>8} {:>12.6} {:>10.6} {:>12} {:>10} {:>10}",
            t_record.as_secs_f64(),
            t_dump.as_secs_f64(),
            dump_io.bytes,
            retention.retained_peak,
            retention.evicted
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!(
        "\nExpected shape: chunked saves track one-shot closely (same bytes ±\n\
         framing) while bounding memory; streaming record folds the save into\n\
         the run and overlaps encoding with execution."
    );
}
