//! Ablation studies for the design choices DESIGN.md calls out (beyond the
//! paper's own evaluation):
//!
//! 1. **Epoch policy** — contiguous (provably replay-safe) vs per-address
//!    (paper-literal): epoch sharing and DE replay time.
//! 2. **Ring capacity** — the access-history ring is diagnostics-only in
//!    this implementation; verify capacity does not change epochs.
//! 3. **Trace codec** — varint-delta vs raw 8-byte encoding size on real
//!    app traces (the I/O volume that bounds scalability, §II-B).
//! 4. **Parallel trace I/O** — DirStore with per-thread writers vs serial.

use miniapps::App;
use ompr::Runtime;
use reomp_bench::{bench_scale, bench_threads, config_with_policy};
use reomp_core::{
    codec, DirStore, EpochHistogram, EpochPolicy, Scheme, Session, TraceBundle, TraceStore,
};
use std::time::Instant;

fn record_app(app: App, threads: u32, scale: usize, policy: EpochPolicy) -> TraceBundle {
    let session = Session::record_with(Scheme::De, threads, config_with_policy(policy));
    let rt = Runtime::new(session.clone());
    let _ = app.run_scaled(&rt, scale);
    session.finish().expect("finish").bundle.expect("bundle")
}

fn replay_time(bundle: TraceBundle, app: App, scale: usize) -> f64 {
    let session = Session::replay(bundle).expect("bundle valid");
    let rt = Runtime::new(session.clone());
    let t0 = Instant::now();
    let _ = app.run_scaled(&rt, scale);
    let dt = t0.elapsed().as_secs_f64();
    let report = session.finish().expect("finish");
    assert_eq!(report.failure, None);
    dt
}

fn main() {
    let threads = bench_threads().into_iter().max().unwrap_or(4);
    let scale = bench_scale();

    println!("\n=== Ablation 1: epoch policy (DE, {threads} threads) ===");
    println!(
        "{:>14} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "app", "policy", "epochs>1 (%)", "accesses>1 (%)", "replay (s)", "records"
    );
    for app in [App::Hacc, App::Hpccg] {
        for policy in [EpochPolicy::Contiguous, EpochPolicy::PerAddress] {
            let bundle = record_app(app, threads, scale, policy);
            let hist = EpochHistogram::from_bundle(&bundle);
            let records = bundle.total_records();
            let t = replay_time(bundle, app, scale);
            println!(
                "{:>14} {:>12} {:>14.1} {:>14.1} {:>12.6} {:>12}",
                app.name(),
                policy.name(),
                hist.frac_gt1() * 100.0,
                hist.frac_accesses_gt1() * 100.0,
                t,
                records
            );
        }
    }

    println!("\n=== Ablation 2: history-ring capacity (epochs must be identical) ===");
    for cap in [0usize, 16, 64, 1024] {
        let mut cfg = config_with_policy(EpochPolicy::Contiguous);
        cfg.ring_capacity = cap;
        let session = Session::record_with(Scheme::De, threads, cfg);
        let rt = Runtime::new(session.clone());
        let _ = App::Hacc.run_scaled(&rt, scale);
        let bundle = session.finish().expect("finish").bundle.expect("bundle");
        let hist = EpochHistogram::from_bundle(&bundle);
        println!(
            "  ring={cap:>5}: {} records, {:.1}% shared epochs",
            bundle.total_records(),
            hist.frac_gt1() * 100.0
        );
    }

    println!(
        "\n=== Ablation 3: trace codec size (clock/epoch stream, varint-delta vs raw 8 B) ==="
    );
    for app in App::ALL {
        let mut bundle = record_app(app, threads, scale, EpochPolicy::Contiguous);
        // Measure the clock/epoch stream itself (validation columns are an
        // optional debugging aid with their own fixed-width cost).
        for t in &mut bundle.threads {
            t.sites = None;
            t.kinds = None;
        }
        let mut encoded = 0usize;
        for (tid, t) in bundle.threads.iter().enumerate() {
            encoded += codec::encode_thread_trace(t, bundle.scheme, tid as u32).len();
        }
        let raw = bundle.total_records() * 8;
        println!(
            "  {:>12}: {:>8} records, {:>8} B encoded vs {:>8} B raw ({:.1}x)",
            app.name(),
            bundle.total_records(),
            encoded,
            raw,
            raw as f64 / encoded.max(1) as f64
        );
    }

    println!("\n=== Ablation 4: parallel vs serial per-thread trace I/O ===");
    let bundle = record_app(App::Hacc, threads, scale.max(2), EpochPolicy::Contiguous);
    for parallel in [true, false] {
        let dir = std::env::temp_dir().join(format!("reomp-ablation-io-{parallel}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirStore::new(&dir).with_parallel_io(parallel);
        let t0 = Instant::now();
        let report = store.save(&bundle).expect("save");
        let t_save = t0.elapsed();
        let t0 = Instant::now();
        let _ = store.load().expect("load");
        let t_load = t0.elapsed();
        println!(
            "  parallel={parallel:<5}: save {:>10.6} s, load {:>10.6} s, {} files, {} B",
            t_save.as_secs_f64(),
            t_load.as_secs_f64(),
            report.files,
            report.bytes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
