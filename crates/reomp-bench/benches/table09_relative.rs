//! Table IX of the paper: relative execution times of ST/DC/DE record and
//! replay versus the run without ReOMP, at the maximum thread count.
//!
//! Paper values at 112 threads for reference:
//! ```text
//!                 ST rec  ST rep  DC rec  DC rep  DE rec  DE rep
//! omp_reduction     1.23    1.37    1.20    1.03    1.37    1.05
//! omp_critical      1.49    3.55    1.41    1.95    1.34    1.93
//! omp_atomic       30.54   66.34   20.15   40.56   21.51   35.40
//! data_race        82.46  241.82   65.86   98.31   59.57   73.05
//! ```

use reomp_bench::synth::{default_iters, SYNTH_BENCHES};
use reomp_bench::{bench_scale, bench_threads, print_relative_row, sweep_modes, MODE_COLUMNS};

fn main() {
    let t = bench_threads().into_iter().max().unwrap_or(4);
    println!("\n=== Table IX: relative execution times vs `w/o ReOMP` at {t} threads ===");
    print!("{:>14}", "benchmark");
    for col in &MODE_COLUMNS[1..] {
        print!(" {col:>10}");
    }
    println!();
    for (name, bench) in SYNTH_BENCHES {
        let n = default_iters(name) * bench_scale();
        let times = sweep_modes(t, |session| {
            let _ = bench(session, n);
        });
        print_relative_row(name, &times);
    }
    println!(
        "\nExpected shape: reduction ≈ 1 everywhere; critical/atomic/data_race pay large\n\
         record+replay overheads; ST replay worst; DE replay fastest on data_race."
    );
}
