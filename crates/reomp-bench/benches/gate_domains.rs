//! Gate-domain scaling: record-mode throughput on a **disjoint-site**
//! workload as the gate is sharded across `D` domains.
//!
//! Every thread hammers its own private site, so with `D = 1` the run is
//! pure gate-lock contention (the global serialization the paper's DC/DE
//! schemes keep for *ordering* even though their *storage* is
//! distributed), while `D = nthreads` removes all cross-thread contention.
//! The point of the table is the record-throughput column rising
//! monotonically with `D` — sharding turns the dominant record-mode
//! bottleneck into a dial.
//!
//! Also reports the paired replay wall time: with disjoint sites, domains
//! replay independently, so replay scales the same way.
//!
//! Environment knobs: `REOMP_BENCH_THREADS` (first value ≥ 2 is used,
//! default 8), `REOMP_BENCH_SCALE` (iterations multiplier),
//! `REOMP_BENCH_REPS`.

use reomp_bench::{bench_scale, bench_threads, time_min};
use reomp_core::{AccessKind, DomainPlan, Scheme, Session, SessionConfig, SiteId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Each thread performs `iters` load+store pairs on its own site,
/// `site = tid * stride`. With `stride == 1` the legacy modulo spreads the
/// threads evenly across `D | nthreads` domains; with a stride divisible
/// by `D` it stripes every site into domain 0 — the load-balance defect
/// the plan's mixed-hash fallback and explicit assignment both fix.
fn disjoint_workload(session: &Arc<Session>, nthreads: u32, iters: usize, stride: u64) {
    std::thread::scope(|s| {
        for tid in 0..nthreads {
            let ctx = session.register_thread(tid);
            s.spawn(move || {
                let site = SiteId(u64::from(tid) * stride);
                let cell = AtomicU64::new(0);
                for _ in 0..iters {
                    let v = ctx.gate(site, AccessKind::Load, || cell.load(Ordering::Relaxed));
                    ctx.gate(site, AccessKind::Store, || {
                        cell.store(v + 1, Ordering::Relaxed)
                    });
                }
            });
        }
    });
}

fn main() {
    let nthreads = bench_threads()
        .into_iter()
        .find(|&t| t >= 2)
        .unwrap_or(8)
        .max(2);
    let iters = 20_000 * bench_scale();
    let total_records = u64::from(nthreads) * iters as u64 * 2;

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("\n=== gate_domains: record throughput vs. domain count ===");
    println!("disjoint-site workload · {nthreads} threads · {iters} iters/thread · {cores} cores");
    if cores < 2 {
        println!(
            "NOTE: on a single core the gate lock is never contended in \
             parallel, so sharding only adds overhead here; the domain \
             dial pays off with cores >= threads."
        );
    }
    println!(
        "{:>8} {:>14} {:>16} {:>14} {:>12}",
        "domains", "record (s)", "Mrec/s", "replay (s)", "speedup"
    );

    for scheme in [Scheme::Dc, Scheme::De] {
        println!("--- {} ---", scheme.name());
        let mut base = None;
        for domains in [1u32, 2, 4, 8] {
            if domains > nthreads {
                continue;
            }
            let cfg = SessionConfig {
                domains,
                // Replay of a heavily oversubscribed disjoint workload can
                // legitimately take a while on small hosts.
                spin: reomp_core::sync::SpinConfig {
                    spin_hints: 64,
                    timeout: Some(Duration::from_secs(300)),
                },
                ..SessionConfig::default()
            };

            let record = time_min(|| {
                let session = Session::record_with(scheme, nthreads, cfg.clone());
                disjoint_workload(&session, nthreads, iters, 1);
                let _ = session.finish().unwrap();
            });

            // One more recording to produce the replay input.
            let session = Session::record_with(scheme, nthreads, cfg.clone());
            disjoint_workload(&session, nthreads, iters, 1);
            let bundle = session.finish().unwrap().bundle.unwrap();

            let replay = time_min(|| {
                let session = Session::replay_with(bundle.clone(), cfg.clone()).unwrap();
                disjoint_workload(&session, nthreads, iters, 1);
                let report = session.finish().unwrap();
                assert_eq!(report.failure, None, "replay diverged during benching");
            });

            let speedup = base.get_or_insert(record).as_secs_f64() / record.as_secs_f64();
            println!(
                "{domains:>8} {:>14.6} {:>16.2} {:>14.6} {:>11.2}x",
                record.as_secs_f64(),
                total_records as f64 / record.as_secs_f64() / 1e6,
                replay.as_secs_f64(),
                speedup
            );
        }
    }
    println!("\n(speedup column is record-mode, relative to domains = 1)");

    // Lock-free ticket gate vs the legacy mutex gate at D = 1 (every
    // thread funnels through one domain — the maximum-contention corner
    // the fast path exists for) and single-threaded (the uncontended
    // fast-path cost). The acceptance bar: no slower single-threaded,
    // faster under >= 2-thread contention (needs cores >= 2 to show).
    println!("\n=== gate_domains: ticket vs locked gate (D = 1) ===");
    println!(
        "{:>8} {:>10} {:>14} {:>16} {:>12}",
        "threads", "gate", "record (s)", "Mrec/s", "ticket/locked"
    );
    for scheme in [Scheme::Dc, Scheme::De] {
        println!("--- {} ---", scheme.name());
        for nthr in [1, nthreads] {
            let mut locked_time = None;
            for (name, ticket_gate) in [("locked", false), ("ticket", true)] {
                let cfg = SessionConfig {
                    ticket_gate,
                    spin: reomp_core::sync::SpinConfig {
                        spin_hints: 64,
                        timeout: Some(Duration::from_secs(300)),
                    },
                    ..SessionConfig::default()
                };
                let record = time_min(|| {
                    let session = Session::record_with(scheme, nthr, cfg.clone());
                    disjoint_workload(&session, nthr, iters, 1);
                    let _ = session.finish().unwrap();
                });
                let records = u64::from(nthr) * iters as u64 * 2;
                let ratio = locked_time.get_or_insert(record).as_secs_f64() / record.as_secs_f64();
                println!(
                    "{nthr:>8} {name:>10} {:>14.6} {:>16.2} {:>11.2}x",
                    record.as_secs_f64(),
                    records as f64 / record.as_secs_f64() / 1e6,
                    ratio
                );
            }
        }
    }
    println!("(ticket/locked: locked record time over this row's — higher is better for ticket)");

    // Planned vs modulo assignment on STRIPED sites (site = tid * 8): the
    // legacy modulo folds every site into domain 0 whenever D divides the
    // stride, so sharding buys nothing; an explicit plan (site i → i mod D)
    // — or the planned hash fallback — restores the spread. The imbalance
    // is visible in record throughput whenever cores ≥ threads.
    let stride = 8u64;
    println!("\n=== gate_domains: planned vs modulo on striped sites (stride {stride}) ===");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>14}",
        "domains", "partition", "record (s)", "Mrec/s", "max dom share"
    );
    for domains in [2u32, 4, 8] {
        if domains > nthreads {
            continue;
        }
        let planned = DomainPlan::with_assignments(
            domains,
            (0..nthreads).map(|t| (SiteId(u64::from(t) * stride), t % domains)),
        );
        let partitions: [(&str, Option<DomainPlan>); 3] = [
            ("modulo", None),
            ("hash", Some(DomainPlan::new(domains))),
            ("planned", Some(planned)),
        ];
        for (name, plan) in partitions {
            let cfg = SessionConfig {
                domains,
                plan,
                spin: reomp_core::sync::SpinConfig {
                    spin_hints: 64,
                    timeout: Some(Duration::from_secs(300)),
                },
                ..SessionConfig::default()
            };
            let record = time_min(|| {
                let session = Session::record_with(Scheme::Dc, nthreads, cfg.clone());
                disjoint_workload(&session, nthreads, iters, stride);
                let _ = session.finish().unwrap();
            });
            // Imbalance diagnostic: the share of gates the hottest domain
            // absorbed (1/D is perfect, 1.0 is fully serialized).
            let session = Session::record_with(Scheme::Dc, nthreads, cfg.clone());
            disjoint_workload(&session, nthreads, iters, stride);
            let report = session.finish().unwrap();
            let total: u64 = report.domain_gates.iter().sum::<u64>().max(1);
            let share = *report.domain_gates.iter().max().unwrap_or(&0) as f64 / total as f64;
            println!(
                "{domains:>8} {name:>12} {:>14.6} {:>14.2} {:>13.0}%",
                record.as_secs_f64(),
                total_records as f64 / record.as_secs_f64() / 1e6,
                share * 100.0
            );
        }
    }
    println!("(max dom share: fraction of gates in the hottest domain; 1/D is ideal)");
}
