//! Fig. 19 of the paper: MPI+OpenMP HPCCG with ReMPI+ReOMP — execution
//! time versus the total worker count, for `w/o`, `DE record`, `DE replay`.
//! See `fig18_hybrid_hacc.rs` for the sweep conventions.

use miniapps::hpccg;
use reomp_bench::{bench_scale, time_min};
use reomp_core::Scheme;

fn rank_thread_pairs() -> Vec<(u32, u32)> {
    if let Ok(list) = std::env::var("REOMP_BENCH_RANKS") {
        let parsed: Vec<(u32, u32)> = list
            .split(',')
            .filter_map(|s| {
                let (r, t) = s.trim().split_once('x')?;
                Some((r.parse().ok()?, t.parse().ok()?))
            })
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    vec![(1, 2), (2, 2), (2, 4), (4, 2), (4, 4)]
}

fn main() {
    let scale = bench_scale();
    println!("\n=== Fig. 19: OpenMP+MPI HPCCG with ReMPI+ReOMP (DE) ===");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "ranks", "threads", "total", "w/o (s)", "DE rec (s)", "DE rep (s)"
    );
    for (ranks, threads) in rank_thread_pairs() {
        let cfg = hpccg::HybridConfig {
            base: hpccg::Config::scaled(scale),
            ranks,
            threads,
            scheme: Scheme::De,
        };
        let t_off = time_min(|| {
            let _ = hpccg::run_hybrid_passthrough(&cfg);
        });
        let t0 = std::time::Instant::now();
        let (out_rec, traces) = hpccg::run_hybrid_record(&cfg);
        let t_rec = t0.elapsed();
        let t0 = std::time::Instant::now();
        let out_rep = hpccg::run_hybrid_replay(&cfg, traces);
        let t_rep = t0.elapsed();
        assert_eq!(out_rep, out_rec, "hybrid replay must reproduce the run");
        println!(
            "{:>6} {:>8} {:>8} {:>12.6} {:>12.6} {:>12.6}",
            ranks,
            threads,
            ranks * threads,
            t_off.as_secs_f64(),
            t_rec.as_secs_f64(),
            t_rep.as_secs_f64()
        );
    }
    println!("\nExpected shape: record/replay overhead small and stable as ranks grow.");
}
