//! Fig. 11 of the paper: `omp_atomic` under all scheme/mode combinations.

use reomp_bench::synth;
use reomp_bench::{bench_scale, bench_threads, print_figure_header, print_figure_row, sweep_modes};

fn main() {
    let n = synth::default_iters("omp_atomic") * bench_scale();
    print_figure_header(
        "Fig. 11",
        "omp_atomic execution time vs threads (paper: DC/DE beat ST)",
    );
    for t in bench_threads() {
        let times = sweep_modes(t, |session| {
            let _ = synth::omp_atomic(session, n);
        });
        print_figure_row(t, &times);
    }
}
