//! Criterion microbenchmarks of the building blocks: single-gate record
//! cost per scheme, epoch-tracker throughput, trace codec, and turnstile
//! operations. These quantify the constant factors behind the figure-level
//! results.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use reomp_core::codec;
use reomp_core::epoch::{EpochPolicy, EpochTracker};
use reomp_core::{AccessKind, Scheme, Session, SessionConfig, SiteId};
use std::hint::black_box;

fn bench_gate_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_record_single_thread");
    let site = SiteId::from_label("micro:gate");
    for scheme in Scheme::ALL {
        group.bench_function(scheme.name(), |b| {
            b.iter_batched(
                || Session::record(scheme, 1),
                |session| {
                    let ctx = session.register_thread(0);
                    for _ in 0..100 {
                        ctx.gate(site, AccessKind::Store, || black_box(()));
                    }
                    drop(ctx);
                    session.finish().unwrap()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Lock-free ticket gate vs the legacy mutex gate, DC record mode: the
/// single-thread rows measure the uncontended fast path (one `fetch_add`
/// vs a full lock/unlock bracket); the contended rows put 4 threads on
/// one domain, where FIFO ticket service replaces mutex arbitration.
fn bench_ticket_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ticket_vs_locked_gate");
    let site = SiteId::from_label("micro:ticket");
    let cfg = |ticket_gate: bool| SessionConfig {
        ticket_gate,
        ..SessionConfig::default()
    };
    for (name, ticket) in [("ticket", true), ("locked", false)] {
        group.bench_function(format!("dc_single_thread_{name}"), |b| {
            b.iter_batched(
                || Session::record_with(Scheme::Dc, 1, cfg(ticket)),
                |session| {
                    let ctx = session.register_thread(0);
                    for _ in 0..100 {
                        ctx.gate(site, AccessKind::Store, || black_box(()));
                    }
                    drop(ctx);
                    session.finish().unwrap()
                },
                BatchSize::SmallInput,
            );
        });
    }
    for (name, ticket) in [("ticket", true), ("locked", false)] {
        group.bench_function(format!("dc_contended_4t_{name}"), |b| {
            b.iter_batched(
                || Session::record_with(Scheme::Dc, 4, cfg(ticket)),
                |session| {
                    std::thread::scope(|s| {
                        for tid in 0..4 {
                            let ctx = session.register_thread(tid);
                            s.spawn(move || {
                                for _ in 0..50 {
                                    ctx.gate(site, AccessKind::Store, || black_box(()));
                                }
                            });
                        }
                    });
                    session.finish().unwrap()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    // The raw admission word, uncontended enter/exit cycle (the record
    // fast path's whole synchronization cost).
    c.bench_function("ticket_word_uncontended_cycle", |b| {
        let gate = reomp_core::clock::TicketGate::new();
        b.iter(|| {
            let t = gate.enter();
            gate.exit(black_box(t));
        });
    });
}

fn bench_epoch_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_tracker_observe");
    for policy in [EpochPolicy::Contiguous, EpochPolicy::PerAddress] {
        group.bench_function(policy.name(), |b| {
            b.iter_batched(
                || EpochTracker::new(policy, 64),
                |mut tracker| {
                    for clock in 0..1_000u64 {
                        let addr = clock % 7;
                        let kind = if clock % 3 == 0 {
                            AccessKind::Store
                        } else {
                            AccessKind::Load
                        };
                        black_box(tracker.observe(
                            (clock % 4) as u32,
                            SiteId(addr + 1),
                            addr,
                            kind,
                            clock,
                        ));
                    }
                    tracker.flush()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let values: Vec<u64> = (0..10_000u64).map(|i| i * 3 / 2).collect();
    let trace = reomp_core::trace::ThreadTrace {
        values,
        sites: None,
        kinds: None,
    };
    c.bench_function("codec_encode_10k_values", |b| {
        b.iter(|| black_box(codec::encode_thread_trace(&trace, Scheme::Dc, 0)));
    });
    let bytes = codec::encode_thread_trace(&trace, Scheme::Dc, 0);
    c.bench_function("codec_decode_10k_values", |b| {
        b.iter(|| black_box(codec::decode_thread_trace(&bytes).unwrap()));
    });
}

fn bench_turnstile(c: &mut Criterion) {
    c.bench_function("turnstile_uncontended_advance", |b| {
        let t = reomp_core::clock::Turnstile::new();
        let stats = reomp_core::stats::Stats::new();
        b.iter(|| black_box(t.advance(&stats)));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_gate_record, bench_ticket_gate, bench_epoch_tracker, bench_codec, bench_turnstile
);
criterion_main!(benches);
