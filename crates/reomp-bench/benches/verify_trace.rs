//! Static verifier wall time vs. trace size: how long does it take to
//! prove a bundle replayable, across schemes and domain counts?
//!
//! The verifier is an offline CI-side tool, so the figure of merit is
//! throughput on *large* traces: all three tiers (structural / ordering /
//! plan) run over synthetic bundles shaped exactly like real recordings
//! (contiguous per-domain clocks, monotone per-thread streams, validation
//! columns, stamped plan for D > 1). The offline race sweep
//! (`racedet::offline`), which layers FastTrack on top, is timed
//! separately on the largest DC configuration.
//!
//! Environment knobs: `REOMP_BENCH_SCALE` (record-count multiplier),
//! `REOMP_BENCH_REPS`.

use reomp_bench::{bench_scale, time_min};
use reomp_core::trace::{StTrace, ThreadTrace, TraceBundle};
use reomp_core::{AccessKind, DomainPlan, Scheme, SiteId, Verifier};
use std::time::Duration;

const NTHREADS: u32 = 8;
const NSITES: u64 = 64;

/// Build a valid bundle with `records` accesses: sites cycle over
/// `NSITES`, each access routes to `site % domains` and takes the next
/// clock of its domain; threads round-robin. D > 1 stamps the matching
/// plan so the plan tier has real work to do.
fn synth(scheme: Scheme, domains: u32, records: usize) -> TraceBundle {
    let route = |site: u64| (site % u64::from(domains)) as u32;
    let mut threads = vec![
        ThreadTrace {
            values: vec![],
            sites: Some(vec![]),
            kinds: Some(vec![]),
        };
        (domains * NTHREADS) as usize
    ];
    let mut st = vec![
        StTrace {
            tids: vec![],
            sites: Some(vec![]),
            kinds: Some(vec![]),
        };
        domains as usize
    ];
    let mut clocks = vec![0u64; domains as usize];
    for i in 0..records {
        let site = 1 + (i as u64 % NSITES);
        let tid = i as u32 % NTHREADS;
        let kind = if i % 2 == 0 {
            AccessKind::Load
        } else {
            AccessKind::Store
        };
        let dom = route(site);
        if scheme == Scheme::St {
            let s = &mut st[dom as usize];
            s.tids.push(tid);
            s.sites.as_mut().unwrap().push(site);
            s.kinds.as_mut().unwrap().push(kind.code());
        } else {
            let t = &mut threads[(dom * NTHREADS + tid) as usize];
            t.values.push(clocks[dom as usize]);
            t.sites.as_mut().unwrap().push(site);
            t.kinds.as_mut().unwrap().push(kind.code());
        }
        clocks[dom as usize] += 1;
    }
    let plan = (domains > 1).then(|| {
        let mut p = DomainPlan::new(domains);
        for site in 1..=NSITES {
            p.set(SiteId(site), route(site));
        }
        p
    });
    TraceBundle {
        scheme,
        nthreads: NTHREADS,
        domains,
        threads,
        st: if scheme == Scheme::St { st } else { vec![] },
        plan,
        edges: vec![],
        checkpoint: None,
    }
}

fn per_m(d: Duration, records: usize) -> String {
    let per = d.as_secs_f64() * 1e9 / records as f64;
    format!("{per:8.1} ms/Mrec")
}

fn main() {
    let scale = bench_scale();
    let sizes: Vec<usize> = [50_000usize, 500_000].iter().map(|s| s * scale).collect();
    let verifier = Verifier::new();

    println!("\n=== verify_trace: static verifier wall time (all three tiers) ===");
    println!(
        "{:>8} {:>4} {:>10}  {:>12}  rate",
        "scheme", "D", "records", "wall"
    );
    for &records in &sizes {
        for scheme in [Scheme::St, Scheme::Dc, Scheme::De] {
            for domains in [1u32, 4] {
                let bundle = synth(scheme, domains, records);
                let d = time_min(|| {
                    let report = verifier.verify(&bundle);
                    assert!(report.is_clean(), "{report}");
                });
                println!(
                    "{:>8} {:>4} {:>10}  {:>10.2?}  {}",
                    scheme.to_string(),
                    domains,
                    records,
                    d,
                    per_m(d, records)
                );
            }
        }
    }

    println!("\n--- offline race sweep + plan soundness (DC, D = 4) ---");
    for &records in &sizes {
        let bundle = synth(Scheme::Dc, 4, records);
        let d = time_min(|| {
            let report = racedet::offline_report(&bundle).unwrap();
            let sound = racedet::check_plan_soundness(&bundle, &report).unwrap();
            assert!(sound.is_sound());
        });
        println!(
            "{:>8} {:>4} {:>10}  {:>10.2?}  {}",
            "dc",
            4,
            records,
            d,
            per_m(d, records)
        );
    }
}
