//! Fig. 9 of the paper: `omp_reduction` under all scheme/mode combinations.

use reomp_bench::synth;
use reomp_bench::{bench_scale, bench_threads, print_figure_header, print_figure_row, sweep_modes};

fn main() {
    let n = synth::default_iters("omp_reduction") * bench_scale();
    print_figure_header(
        "Fig. 9",
        "omp_reduction execution time vs threads (paper: overhead negligible for all schemes)",
    );
    for t in bench_threads() {
        let times = sweep_modes(t, |session| {
            let _ = synth::omp_reduction(session, n);
        });
        print_figure_row(t, &times);
    }
}
