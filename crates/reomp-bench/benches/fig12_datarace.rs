//! Fig. 12 of the paper: `data_race` under all scheme/mode combinations.

use reomp_bench::synth;
use reomp_bench::{bench_scale, bench_threads, print_figure_header, print_figure_row, sweep_modes};

fn main() {
    let n = synth::default_iters("data_race") * bench_scale();
    print_figure_header(
        "Fig. 12",
        "data_race execution time vs threads (paper: largest overheads; DE replay fastest)",
    );
    for t in bench_threads() {
        let times = sweep_modes(t, |session| {
            let _ = synth::data_race(session, n);
        });
        print_figure_row(t, &times);
    }
}
