//! Table VI of the paper: which operations are serialized (S) versus
//! parallelized/overlapped (P/O) in ST, DC, and DE recording — verified
//! empirically from session statistics rather than asserted.
//!
//! ```text
//!                                        ST   DC   DE
//! Getting thread ID or clock             S    S    S
//! I/O for record-and-replay              S    P/O  P/O
//! Consecutive load and store instrs      S    S    P/O
//! ```

use reomp_bench::synth::data_race;
use reomp_core::{EpochHistogram, Scheme, Session};

fn main() {
    println!("\n=== Table VI: serialized (S) vs parallel/overlapped (P/O) operations ===");
    println!("{:<44} {:>5} {:>5} {:>5}", "operation", "ST", "DC", "DE");

    let n = 400;
    let threads = 4;
    let mut row_lock = Vec::new(); // lock acquisitions == gates → serialized
    let mut row_files = Vec::new(); // 1 shared stream vs per-thread streams
    let mut row_shared = Vec::new(); // any epoch with >1 member?

    for scheme in Scheme::ALL {
        let session = Session::record(scheme, threads);
        let _ = data_race(&session, n);
        let report = session.finish().expect("finish");
        let stats = report.stats;
        row_lock.push(stats.lock_acquires >= stats.gates);
        let bundle = report.bundle.expect("bundle");
        row_files.push(bundle.is_st());
        let hist = EpochHistogram::from_bundle(&bundle);
        row_shared.push(hist.epochs_gt1() > 0);
    }

    let s_po = |serialized: bool| if serialized { "S" } else { "P/O" };
    println!(
        "{:<44} {:>5} {:>5} {:>5}",
        "Getting thread ID or clock",
        s_po(row_lock[0]),
        s_po(row_lock[1]),
        s_po(row_lock[2])
    );
    println!(
        "{:<44} {:>5} {:>5} {:>5}",
        "I/O for record-and-replay (shared stream?)",
        s_po(row_files[0]),
        s_po(row_files[1]),
        s_po(row_files[2])
    );
    println!(
        "{:<44} {:>5} {:>5} {:>5}",
        "Consecutive load/store instructions",
        s_po(!row_shared[0]),
        s_po(!row_shared[1]),
        s_po(!row_shared[2])
    );
    println!(
        "\nMeasured: gate-lock acquisitions equal gate count in every scheme (row 1 = S);\n\
         ST writes one shared stream while DC/DE write per-thread streams (row 2);\n\
         only DE traces contain epochs with more than one member (row 3)."
    );
}
