//! Table X of the paper: factors of performance improvement of DC and DE
//! recording over ST recording at the maximum thread count, for the five
//! applications.
//!
//! Paper values at 112 threads for reference:
//! ```text
//!               DC rec  DE rec  DC rep  DE rep
//! AMG             0.97    0.95    3.32    4.49
//! QuickSilver     1.05    1.02    1.93    2.06
//! miniFE          1.11    1.15    2.87    3.58
//! HACC            1.20    1.29    4.01    5.61
//! HPCCG           0.97    0.90    1.91    3.37
//! ```

use miniapps::App;
use ompr::Runtime;
use reomp_bench::{bench_scale, bench_threads, sweep_modes};

fn main() {
    let t = bench_threads().into_iter().max().unwrap_or(4);
    let scale = bench_scale();
    println!("\n=== Table X: DC/DE improvement factors over ST at {t} threads ===");
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10}",
        "app", "DC record", "DE record", "DC replay", "DE replay"
    );
    for app in App::ALL {
        let times = sweep_modes(t, |session| {
            let rt = Runtime::new(std::sync::Arc::clone(session));
            let _ = app.run_scaled(&rt, scale);
        });
        // times: [off, st_rec, st_rep, dc_rec, dc_rep, de_rec, de_rep]
        let f =
            |num: usize, den: usize| times[num].as_secs_f64() / times[den].as_secs_f64().max(1e-12);
        println!(
            "{:>14} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            app.name(),
            f(1, 3), // ST record / DC record
            f(1, 5), // ST record / DE record
            f(2, 4), // ST replay / DC replay
            f(2, 6), // ST replay / DE replay
        );
    }
    println!(
        "\nExpected shape: record factors ≈ 1 (all schemes serialize recording);\n\
         replay factors > 1 with DE ≥ DC, largest for HACC, smallest for QuickSilver."
    );
}
