//! Fig. 20 of the paper: the number of occurrences of each epoch size in
//! the five applications' DE traces, plus the §VI-B epochs>1 percentages
//! (paper at 112 threads: AMG 10.6 %, QuickSilver 4 %, miniFE 27.5 %,
//! HACC 85 %, HPCCG 57 %).
//!
//! Epoch grouping follows the paper-literal per-address Condition 1
//! (`EpochPolicy::PerAddress`); the conservative contiguous policy is
//! reported alongside as the ablation.

use miniapps::App;
use ompr::Runtime;
use reomp_bench::{bench_scale, bench_threads, config_with_policy};
use reomp_core::{EpochHistogram, EpochPolicy, Scheme, Session};

fn histogram(app: App, threads: u32, scale: usize, policy: EpochPolicy) -> EpochHistogram {
    let session = Session::record_with(Scheme::De, threads, config_with_policy(policy));
    let rt = Runtime::new(session.clone());
    let _ = app.run_scaled(&rt, scale);
    session
        .finish()
        .expect("record finish")
        .epoch_histogram()
        .expect("record mode has a bundle")
}

fn main() {
    let threads = bench_threads().into_iter().max().unwrap_or(4);
    let scale = bench_scale();
    println!("\n=== Fig. 20: occurrences of each epoch size (DE record, {threads} threads) ===");

    for app in App::ALL {
        let hist = histogram(app, threads, scale, EpochPolicy::PerAddress);
        println!(
            "\n--- {} (per-address policy, paper-literal) ---",
            app.name()
        );
        print!("  sizes:");
        for (size, n) in hist.counts.iter().take(12) {
            print!(" {size}:{n}");
        }
        if hist.counts.len() > 12 {
            print!(" …(max size {})", hist.max_size());
        }
        println!();
        println!(
            "  epochs>1: {:.1}% of epochs, {:.1}% of accesses (paper @112T: {})",
            hist.frac_gt1() * 100.0,
            hist.frac_accesses_gt1() * 100.0,
            paper_pct(app)
        );
        let contiguous = histogram(app, threads, scale, EpochPolicy::Contiguous);
        println!(
            "  contiguous-policy ablation: {:.1}% of epochs, {:.1}% of accesses",
            contiguous.frac_gt1() * 100.0,
            contiguous.frac_accesses_gt1() * 100.0,
        );
    }
    println!(
        "\nExpected shape: HACC ≫ HPCCG > miniFE > AMG > QuickSilver in sharing;\n\
         QuickSilver near zero (atomic tallies cannot share epochs)."
    );
}

fn paper_pct(app: App) -> &'static str {
    match app {
        App::Amg => "10.6%",
        App::QuickSilver => "4%",
        App::MiniFe => "27.5%",
        App::Hacc => "85%",
        App::Hpccg => "57%",
    }
}
