//! Fig. 16 of the paper: HACC execution time vs threads, all scheme/mode combinations.

use miniapps::App;
use ompr::Runtime;
use reomp_bench::{bench_scale, bench_threads, print_figure_header, print_figure_row, sweep_modes};

fn main() {
    let scale = bench_scale();
    print_figure_header("Fig. 16", "HACC execution time vs threads");
    for t in bench_threads() {
        let times = sweep_modes(t, |session| {
            let rt = Runtime::new(std::sync::Arc::clone(session));
            let _ = App::Hacc.run_scaled(&rt, scale);
        });
        print_figure_row(t, &times);
    }
}
