//! rmpi receive-order sharding: per-rank single stream vs **(rank ×
//! domain)** streams.
//!
//! Part 1 isolates the session layer: `T` threads of one rank log (and
//! then replay-pop) wildcard receives whose requested tags route to
//! disjoint receive sites. With `D = 1` every log/pop serializes on the
//! rank's single stream lock — the classic ReMPI layout — while
//! `D = T` removes all cross-thread contention, the same dial
//! `gate_domains` shows for the thread gate.
//!
//! Part 2 runs the hybrid halo miniapp (2 ranks × threads) end to end at
//! `D ∈ {1, 4}`: record and replay wall time with the full stack (racy
//! thread gates + gated receives + collectives) in the loop.
//!
//! Environment knobs: `REOMP_BENCH_THREADS` (first value ≥ 2, default 8),
//! `REOMP_BENCH_SCALE`, `REOMP_BENCH_REPS`.

use miniapps::halo;
use reomp_bench::{bench_scale, bench_threads, time_min};
use reomp_core::Scheme;
use rmpi::{recv_site, MpiSession, MpiSessionConfig, ANY_SOURCE};
use std::time::Duration;

fn session_layer_table(nthreads: u32, iters: usize) {
    let total = u64::from(nthreads) * iters as u64;
    println!("\n=== mpi_domains: receive-order stream throughput vs domain count ===");
    println!("1 rank · {nthreads} logging threads (one tag each) · {iters} receives/thread");
    println!(
        "{:>8} {:>14} {:>12} {:>14} {:>12}",
        "domains", "record (s)", "Mrec/s", "replay (s)", "Mpop/s"
    );
    for domains in [1u32, 2, 4, 8] {
        if domains > nthreads {
            continue;
        }
        let cfg = MpiSessionConfig::with_domains(domains);
        let drive_record = |session: &MpiSession| {
            std::thread::scope(|s| {
                for t in 0..nthreads {
                    let dom = session.domain_of(recv_site(0, ANY_SOURCE, t));
                    s.spawn(move || {
                        for _ in 0..iters {
                            session.log_recv(0, dom, (t + 1) % nthreads, t);
                        }
                    });
                }
            });
        };
        let record = time_min(|| {
            let session = MpiSession::record_with(1, cfg.clone());
            drive_record(&session);
            let trace = session.finish();
            assert_eq!(trace.total_events(), total);
        });

        // One more recording to produce the replay input.
        let session = MpiSession::record_with(1, cfg.clone());
        drive_record(&session);
        let trace = session.finish();

        let replay = time_min(|| {
            let session = MpiSession::replay(trace.clone());
            std::thread::scope(|s| {
                for t in 0..nthreads {
                    let session = &session;
                    let dom = session.domain_of(recv_site(0, ANY_SOURCE, t));
                    // Threads sharing a stream split its pops; per-thread
                    // pop counts follow the recorded stream lengths.
                    let pops = trace.recv_stream(0, dom).len()
                        / (0..nthreads)
                            .filter(|&u| session.domain_of(recv_site(0, ANY_SOURCE, u)) == dom)
                            .count();
                    s.spawn(move || {
                        for _ in 0..pops {
                            let _ = session.next_recv(0, dom).unwrap();
                        }
                    });
                }
            });
        });

        println!(
            "{domains:>8} {:>14.6} {:>12.2} {:>14.6} {:>12.2}",
            record.as_secs_f64(),
            total as f64 / record.as_secs_f64() / 1e6,
            replay.as_secs_f64(),
            total as f64 / replay.as_secs_f64() / 1e6,
        );
    }
    println!("(Mrec/s = million receive-order records logged per second)");
}

fn hybrid_halo_table(threads: u32, scale: usize) {
    println!("\n=== mpi_domains: hybrid halo end-to-end (2 ranks × {threads} threads) ===");
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>10}",
        "domains", "record (s)", "replay (s)", "mpi evts", "edges"
    );
    for domains in [1u32, 4] {
        let cfg = halo::HybridConfig {
            cells: 24 * scale,
            steps: 6,
            ranks: 2,
            threads,
            scheme: Scheme::De,
            mpi_domains: domains,
            site_groups: 2,
            seed: 7,
            replay_timeout: Some(Duration::from_secs(300)),
        };
        let record = time_min(|| {
            let _ = halo::run_hybrid_record(&cfg);
        });
        let (_, traces) = halo::run_hybrid_record(&cfg);
        let events = traces.mpi.total_events();
        let edges: usize = traces.omp.iter().map(|b| b.edges.len()).sum();
        let replay = time_min(|| {
            let _ = halo::run_hybrid_replay(&cfg, traces.clone());
        });
        println!(
            "{domains:>8} {:>14.6} {:>14.6} {:>10} {:>10}",
            record.as_secs_f64(),
            replay.as_secs_f64(),
            events,
            edges
        );
    }
    println!("(edges: cross-domain HB edges stamped by barriers in the thread traces)");
}

fn main() {
    let nthreads = bench_threads()
        .into_iter()
        .find(|&t| t >= 2)
        .unwrap_or(8)
        .max(2);
    let scale = bench_scale();
    let iters = 50_000 * scale;

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("mpi_domains · {cores} cores");
    if cores < 2 {
        println!(
            "NOTE: on a single core the stream lock is never contended in \
             parallel; the domain dial pays off with cores >= threads."
        );
    }
    session_layer_table(nthreads, iters);
    hybrid_halo_table(nthreads.min(4), scale);
}
