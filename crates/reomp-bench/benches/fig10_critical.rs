//! Fig. 10 of the paper: `omp_critical` under all scheme/mode combinations.

use reomp_bench::synth;
use reomp_bench::{bench_scale, bench_threads, print_figure_header, print_figure_row, sweep_modes};

fn main() {
    let n = synth::default_iters("omp_critical") * bench_scale();
    print_figure_header(
        "Fig. 10",
        "omp_critical execution time vs threads (paper: ST replay slowest; DC~DE)",
    );
    for t in bench_threads() {
        let times = sweep_modes(t, |session| {
            let _ = synth::omp_critical(session, n);
        });
        print_figure_row(t, &times);
    }
}
