//! Model-checking harnesses over the real gate primitives.
//!
//! Every harness is a pure function `Config -> Report`: it runs
//! [`shuttle::check`] over a small closed scenario and returns the
//! exploration report. A correct primitive yields `report.violation ==
//! None`; a violation carries a replayable witness and the granted-op
//! trace of the failing schedule.
//!
//! The scenarios are deliberately tiny (2–3 threads, a handful of
//! operations each): the point is not load, it is *coverage* — DFS visits
//! every interleaving the dependence relation distinguishes, including
//! stale `Relaxed` reads from shuttle's per-location store buffers.

use reomp_core::clock::{TicketGate, Turnstile};
use reomp_core::stats::Stats;
use reomp_core::sync::{BatonLock, SpinConfig};
use reomp_core::{
    AccessKind, DumpTrigger, FlightRecorder, FlightSink, MemStore, RecordOptions, RecordSink,
    Scheme, Session, SessionConfig, SiteId, TraceStore,
};
use shuttle::sync::atomic::{AtomicU64, Ordering};
use shuttle::sync::Mutex;
use shuttle::{Config, Report};
use std::sync::Arc;
use std::time::Duration;

/// Baton-like hand-off surface, so the same harness checks the real
/// [`BatonLock`] and the seeded mutants in [`crate::mutants`].
pub trait BatonApi: Send + Sync + 'static {
    /// Non-blocking acquire; `true` on success.
    fn try_acquire(&self) -> bool;
    /// Release (any thread may call it; must panic on double release).
    fn release(&self);
}

impl BatonApi for BatonLock {
    fn try_acquire(&self) -> bool {
        BatonLock::try_acquire(self)
    }
    fn release(&self) {
        BatonLock::release(self);
    }
}

/// Turnstile-like admission surface for the real [`Turnstile`] and its
/// mutants. Waits are infallible here: harness configs keep the watchdog
/// generous enough that a timeout would itself be a bug.
pub trait TurnstileApi: Send + Sync + 'static {
    /// Block until exactly `clock` accesses completed (DC admission).
    fn wait_exact(&self, clock: u64);
    /// Block until at least `epoch` accesses completed (DE admission).
    fn wait_at_least(&self, epoch: u64);
    /// Complete one access.
    fn advance(&self);
}

/// The real turnstile plus the spin policy and stats its waits need.
pub struct RealTurnstile {
    turnstile: Turnstile,
    spin: SpinConfig,
    stats: Stats,
}

impl RealTurnstile {
    /// A turnstile with a model-friendly spin policy: tight yield cadence
    /// (every parked step advances virtual time) and a watchdog far above
    /// any legal wait in these scenarios.
    #[must_use]
    pub fn new() -> Self {
        RealTurnstile {
            turnstile: Turnstile::new(),
            spin: SpinConfig {
                spin_hints: 1,
                timeout: Some(Duration::from_millis(200)),
            },
            stats: Stats::new(),
        }
    }
}

impl Default for RealTurnstile {
    fn default() -> Self {
        RealTurnstile::new()
    }
}

impl TurnstileApi for RealTurnstile {
    fn wait_exact(&self, clock: u64) {
        self.turnstile
            .wait_exact(clock, 0, SiteId(1), &self.spin, &self.stats)
            .expect("turnstile wait failed");
    }
    fn wait_at_least(&self, epoch: u64) {
        self.turnstile
            .wait_at_least(epoch, 0, SiteId(1), &self.spin, &self.stats)
            .expect("turnstile wait failed");
    }
    fn advance(&self) {
        self.turnstile.advance(&self.stats);
    }
}

/// Ticket-gate admission surface for the real [`TicketGate`] and its
/// mutants.
pub trait TicketApi: Send + Sync + 'static {
    /// Take the next ticket and block until it is served.
    fn enter(&self) -> u32;
    /// Release the gate to the next ticket holder.
    fn exit(&self, ticket: u32);
}

impl TicketApi for TicketGate {
    fn enter(&self) -> u32 {
        TicketGate::enter(self)
    }
    fn exit(&self, ticket: u32) {
        TicketGate::exit(self, ticket);
    }
}

/// Ticket-gate hand-off purity — the lock-free analogue of
/// [`baton_handoff`]: two threads funnel a benign-racy (`Relaxed`
/// load-then-store) increment through the gate. Exclusion comes from FIFO
/// ticket service; *visibility* comes from the Acquire `enter` (RMW and
/// spin load) pairing with the predecessor's Release `exit` — exactly the
/// pairing the RecCore hand-off rides on the record fast path. A relaxed
/// mutant on either side loses an update in some schedule.
pub fn ticket_handoff<T: TicketApi>(
    make: impl Fn() -> T + Send + Sync + 'static,
    cfg: &Config,
) -> Report {
    shuttle::check(cfg.clone(), move || {
        let gate = Arc::new(make());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let counter = Arc::clone(&counter);
                shuttle::thread::spawn(move || {
                    let t = gate.enter();
                    // The gated region: correct only if entry published the
                    // predecessor's writes.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    gate.exit(t);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            counter.load(Ordering::Relaxed),
            2,
            "lost update through the ticket-gate hand-off"
        );
    })
}

/// ST hand-off purity: two threads funnel increments of a deliberately
/// non-atomic (load-then-store, `Relaxed`) counter through the baton. The
/// baton's Acquire CAS / Release swap must make every critical section
/// see its predecessor's writes — any weakening loses an update.
pub fn baton_handoff<B: BatonApi>(
    make: impl Fn() -> B + Send + Sync + 'static,
    cfg: &Config,
) -> Report {
    shuttle::check(cfg.clone(), move || {
        let baton = Arc::new(make());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let baton = Arc::clone(&baton);
                let counter = Arc::clone(&counter);
                shuttle::thread::spawn(move || {
                    while !baton.try_acquire() {
                        shuttle::hint::spin_loop();
                    }
                    // The paper's gated region: a benign-racy increment
                    // that is only correct because the baton orders it.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    baton.release();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            counter.load(Ordering::Relaxed),
            2,
            "lost update through the baton hand-off"
        );
    })
}

/// Double-release detection: releasing a free baton must panic in every
/// schedule (the protocol-violation guard ST replay depends on), and the
/// panic must not corrupt the baton.
pub fn baton_double_release<B: BatonApi>(
    make: impl Fn() -> B + Send + Sync + 'static,
    cfg: &Config,
) -> Report {
    shuttle::check(cfg.clone(), move || {
        let baton = Arc::new(make());
        assert!(baton.try_acquire());
        baton.release();
        let b = Arc::clone(&baton);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || b.release()));
        assert!(
            caught.is_err(),
            "double release must panic, not silently clear the baton"
        );
        assert!(baton.try_acquire(), "baton unusable after double release");
        baton.release();
    })
}

/// Racing releases: with the baton held once, two concurrent `release`
/// calls must resolve to exactly one success and one panic in **every**
/// interleaving — the reason the check is a `swap`, not load-then-store.
pub fn baton_racing_releases<B: BatonApi>(
    make: impl Fn() -> B + Send + Sync + 'static,
    cfg: &Config,
) -> Report {
    shuttle::check(cfg.clone(), move || {
        let baton = Arc::new(make());
        assert!(baton.try_acquire());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&baton);
                shuttle::thread::spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.release())).is_ok()
                })
            })
            .collect();
        let successes = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count();
        assert_eq!(
            successes, 1,
            "exactly one of two racing releases may succeed"
        );
    })
}

/// DC admission order ≡ recorded clocks: three waiters with clocks 2, 1, 0
/// must complete in clock order no matter how they are scheduled.
pub fn turnstile_admit_order<T: TurnstileApi>(
    make: impl Fn() -> T + Send + Sync + 'static,
    cfg: &Config,
) -> Report {
    shuttle::check(cfg.clone(), move || {
        let t = Arc::new(make());
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = [2u64, 1, 0]
            .into_iter()
            .map(|clock| {
                let t = Arc::clone(&t);
                let order = Arc::clone(&order);
                shuttle::thread::spawn(move || {
                    t.wait_exact(clock);
                    order.lock().push(clock);
                    t.advance();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            *order.lock(),
            vec![0, 1, 2],
            "DC turnstile admitted out of clock order"
        );
    })
}

/// DE epoch-group admission: two epoch-0 accesses are admitted in either
/// order, but the epoch-2 access only after both completed.
pub fn turnstile_epoch_group<T: TurnstileApi>(
    make: impl Fn() -> T + Send + Sync + 'static,
    cfg: &Config,
) -> Report {
    shuttle::check(cfg.clone(), move || {
        let t = Arc::new(make());
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = [(0u64, 'a'), (0, 'b'), (2, 'c')]
            .into_iter()
            .map(|(epoch, tag)| {
                let t = Arc::clone(&t);
                let order = Arc::clone(&order);
                shuttle::thread::spawn(move || {
                    t.wait_at_least(epoch);
                    order.lock().push(tag);
                    t.advance();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let order: Vec<char> = order.lock().clone();
        assert_eq!(order.len(), 3);
        assert_eq!(
            order[2], 'c',
            "epoch-2 access admitted before its group completed: {order:?}"
        );
    })
}

/// Turnstile hand-off visibility: data written (Relaxed) before `advance`
/// must be visible to the waiter it admits. The AcqRel `fetch_add` in
/// `advance` paired with the Acquire load in the wait loop is what carries
/// the edge — a relaxed mutant lets the waiter read stale data.
pub fn turnstile_handoff_visibility<T: TurnstileApi>(
    make: impl Fn() -> T + Send + Sync + 'static,
    cfg: &Config,
) -> Report {
    shuttle::check(cfg.clone(), move || {
        let t = Arc::new(make());
        let data = Arc::new(AtomicU64::new(0));
        let writer = {
            let t = Arc::clone(&t);
            let data = Arc::clone(&data);
            shuttle::thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                t.advance();
            })
        };
        let reader = {
            let t = Arc::clone(&t);
            let data = Arc::clone(&data);
            shuttle::thread::spawn(move || {
                t.wait_at_least(1);
                assert_eq!(
                    data.load(Ordering::Relaxed),
                    42,
                    "turnstile admission did not publish the writer's data"
                );
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    })
}

/// Model-friendly session spin policy (see [`RealTurnstile::new`]).
fn model_spin() -> SpinConfig {
    SpinConfig {
        spin_hints: 1,
        timeout: Some(Duration::from_millis(200)),
    }
}

/// DE epoch-floor publication: a streaming DE record run with a one-record
/// flush threshold, so every gate-out races a flush against the other
/// thread's gate-in. The floor protocol (records routed, then the floor
/// refreshed with `Release`, both under the gate lock; the flusher reads
/// the floor with `Acquire` before locking the buffer) must make the
/// final store contain every record exactly once.
pub fn epoch_floor_publication(cfg: &Config) -> Report {
    shuttle::check(cfg.clone(), move || {
        let store = Arc::new(MemStore::default());
        let session = Session::record_streaming_with(
            Scheme::De,
            2,
            SessionConfig {
                flush_records: 1,
                spin: model_spin(),
                ..SessionConfig::default()
            },
            store.as_ref(),
        )
        .unwrap();
        let site = SiteId(7);
        let handles: Vec<_> = (0..2u32)
            .map(|tid| {
                let session = Arc::clone(&session);
                shuttle::thread::spawn(move || {
                    let ctx = session.register_thread(tid);
                    ctx.gate(site, AccessKind::Load, || ());
                    ctx.gate(site, AccessKind::Store, || ());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        session.finish().expect("streaming DE finish");
        let (bundle, _) = store.load().expect("committed store loads");
        bundle.validate().expect("windowless DE bundle validates");
        assert_eq!(
            bundle.total_records(),
            4,
            "floor protocol lost or duplicated records"
        );
    })
}

/// Cross-domain edge soundness on the real engines: a two-domain DC
/// record run followed by its replay, all inside the model. The
/// snapshot-strictly-before-publish rule in `stamp_clocked` keeps the
/// recorded edge set acyclic, so replay must terminate in every schedule;
/// a cyclic edge set would park both replay threads forever and surface
/// as a timeout panic or livelock.
pub fn cross_domain_record_replay(cfg: &Config) -> Report {
    shuttle::check(cfg.clone(), move || {
        // SiteId(2) % 2 = domain 0, SiteId(3) % 2 = domain 1.
        let sites = [SiteId(2), SiteId(3)];
        let session = Session::record_with(
            Scheme::Dc,
            2,
            SessionConfig {
                domains: 2,
                spin: model_spin(),
                ..SessionConfig::default()
            },
        );
        let handles: Vec<_> = (0..2u32)
            .map(|tid| {
                let session = Arc::clone(&session);
                shuttle::thread::spawn(move || {
                    let ctx = session.register_thread(tid);
                    // Opposite domain orders per thread: the schedule where
                    // both threads sit in different domains concurrently is
                    // exactly where a cyclic snapshot would be recorded.
                    ctx.gate(sites[tid as usize], AccessKind::Store, || ());
                    ctx.gate(sites[1 - tid as usize], AccessKind::Store, || ());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = session.finish().expect("record finish");
        let bundle = report.bundle.expect("in-memory record bundle");
        bundle.validate().expect("recorded bundle validates");

        let replay = Session::replay_with(
            bundle,
            SessionConfig {
                spin: model_spin(),
                ..SessionConfig::default()
            },
        )
        .expect("replay session");
        let handles: Vec<_> = (0..2u32)
            .map(|tid| {
                let replay = Arc::clone(&replay);
                shuttle::thread::spawn(move || {
                    let ctx = replay.register_thread(tid);
                    ctx.gate(sites[tid as usize], AccessKind::Store, || ());
                    ctx.gate(sites[1 - tid as usize], AccessKind::Store, || ());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        replay.finish().expect("replay finish");
    })
}

/// Flight-ring evict-vs-dump atomicity: one thread floods a
/// `window = 2` recorder with single-record chunks (clocks 0..6, evicting
/// continuously); another dumps mid-stream. The dump holds the state lock
/// across materialization, so the resulting bundle must always be a
/// *consistent* window: the retained clocks are exactly
/// `base .. base + len` for the checkpointed base.
pub fn flight_evict_vs_dump(cfg: &Config) -> Report {
    shuttle::check(cfg.clone(), move || {
        let rec = Arc::new(FlightRecorder::new(
            RecordOptions::new(Scheme::Dc, 1, 1, false),
            2,
        ));
        let store = Arc::new(MemStore::default());
        let appender = {
            let sink = FlightSink::new(Arc::clone(&rec));
            shuttle::thread::spawn(move || {
                for c in 0..6u64 {
                    sink.append_thread_chunk(0, 0, &[c], None, None)
                        .expect("append");
                }
            })
        };
        let dumper = {
            let rec = Arc::clone(&rec);
            let store = Arc::clone(&store);
            shuttle::thread::spawn(move || {
                rec.dump_into(store.as_ref(), DumpTrigger::Manual, None, &[], Vec::new())
                    .expect("dump");
            })
        };
        appender.join().unwrap();
        dumper.join().unwrap();
        let (bundle, _) = store.load().expect("dumped store loads");
        let base = bundle.checkpoint.as_ref().expect("checkpoint").base[0];
        let values = &bundle.thread(0, 0).values;
        let expect: Vec<u64> = (base..base + values.len() as u64).collect();
        assert_eq!(
            *values, expect,
            "dump interleaved with eviction: window not contiguous at base {base}"
        );
    })
}

/// Tentpole equivalence harness: the lock-free ticket fast path must be
/// observationally equivalent to the locked gate. A two-thread
/// benign-racy workload records through the ticket gate (D = 1, DC —
/// every access takes the fast path, no mutex bracket); in every schedule
/// the bundle must validate and its replay must reproduce both the
/// per-access values and the final state of the racy cell — the same
/// contract the locked gate's scheme tests pin outside the model.
/// (Byte-identity of deterministic traces across the two gates is pinned
/// separately by `ticket_gate_traces_identical_to_locked_gate` in
/// `reomp-core`; replay is gate-agnostic, so reproducing a ticket-recorded
/// trace through the same turnstiles *is* the equivalence statement.)
pub fn ticket_gate_equivalence(cfg: &Config) -> Report {
    shuttle::check(cfg.clone(), move || {
        let site = SiteId(5);
        // One benign-racy increment per thread: gated load, gated store.
        let run = |session: &Arc<Session>| -> (u64, Vec<u64>) {
            let shared = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2u32)
                .map(|tid| {
                    let session = Arc::clone(session);
                    let shared = Arc::clone(&shared);
                    shuttle::thread::spawn(move || {
                        let ctx = session.register_thread(tid);
                        let v = ctx.gate(site, AccessKind::Load, || shared.load(Ordering::Relaxed));
                        ctx.gate(site, AccessKind::Store, || {
                            shared.store(v + 1, Ordering::Relaxed);
                        });
                        v
                    })
                })
                .collect();
            let observed = handles.into_iter().map(|h| h.join().unwrap()).collect();
            (shared.load(Ordering::Relaxed), observed)
        };
        let record = Session::record_with(
            Scheme::Dc,
            2,
            SessionConfig {
                spin: model_spin(),
                ..SessionConfig::default()
            },
        );
        let (final_rec, observed_rec) = run(&record);
        let bundle = record
            .finish()
            .expect("record finish")
            .bundle
            .expect("in-memory bundle");
        bundle.validate().expect("ticket-gate bundle validates");
        let replay = Session::replay_with(
            bundle,
            SessionConfig {
                spin: model_spin(),
                ..SessionConfig::default()
            },
        )
        .expect("replay session");
        let (final_rep, observed_rep) = run(&replay);
        replay.finish().expect("replay finish");
        assert_eq!(
            observed_rep, observed_rec,
            "replay diverged from the ticket-gate recording"
        );
        assert_eq!(
            final_rep, final_rec,
            "replay reached a different final state than the recording"
        );
    })
}

/// Batched DE publication composed with the two admission protocols, on
/// the real engines: a two-domain DE record run with `publish_batch = 4`
/// (plain accesses skip most `published` stores) where each thread makes
/// one plain fast-path access and one critical slow-path access (lock +
/// ghost ticket) that anchors a cross-domain edge. Lagged publication may
/// only *weaken* the edge snapshots — acyclicity and replayability must
/// survive, so replay terminates in every schedule.
pub fn batched_cross_domain_record_replay(cfg: &Config) -> Report {
    shuttle::check(cfg.clone(), move || {
        // SiteId(2) % 2 = domain 0, SiteId(3) % 2 = domain 1.
        let sites = [SiteId(2), SiteId(3)];
        let workload = |session: &Arc<Session>| {
            let handles: Vec<_> = (0..2u32)
                .map(|tid| {
                    let session = Arc::clone(session);
                    shuttle::thread::spawn(move || {
                        let ctx = session.register_thread(tid);
                        ctx.gate(sites[tid as usize], AccessKind::Store, || ());
                        ctx.gate(sites[1 - tid as usize], AccessKind::Critical, || ());
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        };
        let session = Session::record_with(
            Scheme::De,
            2,
            SessionConfig {
                domains: 2,
                publish_batch: 4,
                spin: model_spin(),
                ..SessionConfig::default()
            },
        );
        workload(&session);
        let report = session.finish().expect("record finish");
        let bundle = report.bundle.expect("in-memory bundle");
        bundle.validate().expect("batched bundle validates");

        let replay = Session::replay_with(
            bundle,
            SessionConfig {
                spin: model_spin(),
                ..SessionConfig::default()
            },
        )
        .expect("replay session");
        workload(&replay);
        replay.finish().expect("replay finish");
    })
}

/// SpinWait watchdog liveness: a wait that can never be satisfied must
/// resolve into a structured `ReplayError::Timeout` — never a livelock —
/// under the model's virtual clock. Passing `None` for the timeout is the
/// watchdog-disabled mutant: the checker then reports a livelock.
pub fn spinwait_watchdog(timeout: Option<Duration>, cfg: &Config) -> Report {
    shuttle::check(cfg.clone(), move || {
        let t = Turnstile::new();
        let spin = SpinConfig {
            spin_hints: 1,
            timeout,
        };
        let stats = Stats::new();
        // Nothing ever advances the turnstile: the wait is unsatisfiable.
        let res = t.wait_exact(1, 0, SiteId(3), &spin, &stats);
        assert!(
            matches!(res, Err(reomp_core::ReplayError::Timeout { .. })),
            "unsatisfiable wait must trip the watchdog, got {res:?}"
        );
    })
}
